//! Umbrella crate: re-exports the whole workspace public API.
//!
//! This is the crate downstream users depend on; the individual member
//! crates remain usable standalone.
//!
//! * [`dnaseq`] — sequence primitives (k-mers, tiles, qualities).
//! * [`genio`] — FASTA/quality IO, parallel partitioning, synthetic data.
//! * [`mpisim`] — the in-process message-passing runtime + BG/Q cost model.
//! * [`reptile`] — the sequential Reptile corrector (baseline).
//! * [`reptile_dist`] — the distributed-spectrum parallel corrector
//!   (the IPDPSW'16 contribution).

pub use dnaseq;
pub use genio;
pub use mpisim;
pub use reptile;
pub use reptile_dist;
