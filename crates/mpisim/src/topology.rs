//! Node/rank layout.
//!
//! BlueGene/Q packs up to 64 hardware threads on a 16-core node; the paper
//! runs 8–32 MPI ranks per node and observes that intra-node messages use
//! shared memory while inter-node messages cross the 5-D torus (§IV:
//! "using multiple ranks per node also gives us a benefit: it allows any
//! communication between the ranks on the same node to use the shared
//! memory on the node"). The topology tells the runtime and the cost
//! model which pairs are on the same node.

/// Rank-to-node assignment: `ranks_per_node` consecutive ranks per node
/// (block mapping, BG/Q's default).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    ranks_per_node: usize,
    /// Worker/communication threads each rank runs during correction
    /// (2 in the paper's step IV). Used by the SMT oversubscription model.
    pub threads_per_rank: usize,
}

impl Topology {
    /// All ranks on one node (the default for small test universes).
    pub fn single_node() -> Topology {
        Topology { ranks_per_node: usize::MAX, threads_per_rank: 2 }
    }

    /// `ranks_per_node` consecutive ranks share each node.
    pub fn new(ranks_per_node: usize) -> Topology {
        assert!(ranks_per_node > 0);
        Topology { ranks_per_node, threads_per_rank: 2 }
    }

    /// Same, with an explicit threads-per-rank count (the allgather-both
    /// heuristic runs 1 rank × 64 threads per node).
    pub fn with_threads(ranks_per_node: usize, threads_per_rank: usize) -> Topology {
        assert!(ranks_per_node > 0 && threads_per_rank > 0);
        Topology { ranks_per_node, threads_per_rank }
    }

    /// Ranks hosted on each node.
    #[inline]
    pub fn ranks_per_node(&self) -> usize {
        self.ranks_per_node
    }

    /// The node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node
    }

    /// Whether two ranks share a node (shared-memory messaging path).
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Number of nodes needed for `np` ranks.
    #[inline]
    pub fn nodes_for(&self, np: usize) -> usize {
        np.div_ceil(self.ranks_per_node.min(np.max(1)))
    }

    /// Total software threads per node during the correction phase.
    #[inline]
    pub fn threads_per_node(&self, np: usize) -> usize {
        self.ranks_per_node.min(np) * self.threads_per_rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mapping() {
        let t = Topology::new(32);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(31), 0);
        assert_eq!(t.node_of(32), 1);
        assert!(t.same_node(0, 31));
        assert!(!t.same_node(31, 32));
        assert_eq!(t.nodes_for(128), 4);
        assert_eq!(t.nodes_for(129), 5);
    }

    #[test]
    fn single_node_groups_everything() {
        let t = Topology::single_node();
        assert!(t.same_node(0, 10_000));
        assert_eq!(t.nodes_for(64), 1);
    }

    #[test]
    fn threads_per_node_counts_both_threads() {
        let t = Topology::new(32);
        assert_eq!(t.threads_per_node(128), 64); // 32 ranks × 2 threads
        let t8 = Topology::new(8);
        assert_eq!(t8.threads_per_node(128), 16);
        // fewer ranks than a full node
        assert_eq!(t.threads_per_node(4), 8);
    }
}
