//! The BlueGene/Q analytic cost model.
//!
//! The thread-backed runtime executes the real algorithm and counts work
//! and traffic; this model maps those counts to modeled seconds on the
//! paper's hardware (BG/Q: 16 in-order PowerPC A2 cores @1.6 GHz, 4-way
//! SMT, 5-D torus, §IV). It is deliberately simple — a linear model per
//! event class — because the paper's findings are about *ratios and
//! scaling shapes* (communication dominates; tiles dominate communication;
//! 32 ranks/node is ~30% slower than 8; load balancing halves runtime),
//! all of which survive any monotone per-event cost assignment. Absolute
//! seconds are calibrated only loosely; EXPERIMENTS.md reports
//! paper-vs-modeled numbers side by side.
//!
//! Every parameter is public: benches and ablations sweep them.

/// Cost parameters. All times in nanoseconds unless noted.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Hash-table lookup (k-mer or tile) on the 1.6 GHz in-order core.
    pub hash_lookup_ns: f64,
    /// Hash-table insert (spectrum construction).
    pub hash_insert_ns: f64,
    /// Per-base sequence processing (encoding, quality scan, IO parse).
    pub per_base_ns: f64,
    /// Per-candidate evaluation in the corrector's neighbour search.
    pub candidate_eval_ns: f64,
    /// One-way network message latency between nodes.
    pub net_latency_ns: f64,
    /// One-way latency between ranks on the same node (shared memory).
    pub shm_latency_ns: f64,
    /// Inter-node bandwidth, bytes per nanosecond (== GB/s).
    pub net_bw_bytes_per_ns: f64,
    /// Intra-node bandwidth, bytes per nanosecond.
    pub shm_bw_bytes_per_ns: f64,
    /// Comm-thread service time per lookup request (recv + hash lookup +
    /// send of the reply).
    pub request_service_ns: f64,
    /// Extra per-request cost of tag-probing before the receive. The
    /// *universal* heuristic eliminates it ("makes the call to MPI Probe
    /// unwarranted", §III-B) at the price of one extra payload byte.
    pub probe_ns: f64,
    /// Queueing/congestion multiplier on service time: every rank's comm
    /// thread is saturated during correction, so a request waits behind
    /// others (§IV: "most of the error-correction time is spent in
    /// communication as expected").
    pub service_queue_factor: f64,
    /// Per-hop latency term of a collective (`latency · ⌈log2 np⌉`).
    pub collective_hop_ns: f64,
    /// Approximate resident bytes per k-mer hash-table entry
    /// (key + count + table overhead at typical load factor).
    pub kmer_entry_bytes: f64,
    /// Approximate resident bytes per tile hash-table entry.
    pub tile_entry_bytes: f64,
    /// Fixed per-process overhead (runtime, buffers), bytes.
    pub process_base_bytes: f64,
    /// Per-file latency of opening and seeking a snapshot shard on the
    /// parallel filesystem (GPFS on BG/Q; NFS on the commodity preset).
    pub disk_latency_ns: f64,
    /// Sustained per-rank snapshot I/O bandwidth, bytes per nanosecond.
    pub disk_bw_bytes_per_ns: f64,
}

impl CostModel {
    /// Parameters for IBM BlueGene/Q (see module docs).
    pub fn bgq() -> CostModel {
        CostModel {
            hash_lookup_ns: 150.0,
            hash_insert_ns: 260.0,
            per_base_ns: 6.0,
            candidate_eval_ns: 120.0,
            net_latency_ns: 3_000.0,
            shm_latency_ns: 900.0,
            net_bw_bytes_per_ns: 1.8,
            shm_bw_bytes_per_ns: 8.0,
            request_service_ns: 4_000.0,
            probe_ns: 1_800.0,
            service_queue_factor: 3.0,
            collective_hop_ns: 3_500.0,
            kmer_entry_bytes: 26.0,
            tile_entry_bytes: 42.0,
            process_base_bytes: 24.0 * 1024.0 * 1024.0,
            disk_latency_ns: 500_000.0,
            disk_bw_bytes_per_ns: 1.0,
        }
    }

    /// SMT oversubscription factor for a node running
    /// `threads_per_node` software threads on BG/Q's 16 cores × 4 SMT
    /// threads. 1.0 while threads fit on physical cores; grows as
    /// hardware threads are shared (the paper measures ≈30% slowdown at
    /// 32 ranks × 2 threads = 64 threads/node vs 8 × 2 = 16, Fig 2).
    pub fn smt_factor(&self, threads_per_node: usize) -> f64 {
        const CORES: f64 = 16.0;
        const MAX_THREADS: f64 = 64.0;
        let t = threads_per_node as f64;
        if t <= CORES {
            1.0
        } else {
            // linear ramp: 16 threads -> 1.0, 64 threads -> 1.30
            1.0 + 0.30 * ((t - CORES) / (MAX_THREADS - CORES)).min(1.5)
        }
    }

    /// One-way message time for `bytes` (latency + transfer).
    pub fn message_ns(&self, bytes: usize, intra_node: bool) -> f64 {
        if intra_node {
            self.shm_latency_ns + bytes as f64 / self.shm_bw_bytes_per_ns
        } else {
            self.net_latency_ns + bytes as f64 / self.net_bw_bytes_per_ns
        }
    }

    /// Worker-visible time of one synchronous remote lookup (request out,
    /// service under load, response back). `intra_node` is whether the
    /// owner shares this rank's node.
    pub fn lookup_roundtrip_ns(
        &self,
        req_bytes: usize,
        resp_bytes: usize,
        intra_node: bool,
    ) -> f64 {
        self.message_ns(req_bytes, intra_node)
            + self.request_service_ns * self.service_queue_factor
            + self.message_ns(resp_bytes, intra_node)
    }

    /// Expected roundtrip with a random owner in a `np`-rank job laid out
    /// `ranks_per_node` per node: blends the intra/inter paths.
    pub fn avg_lookup_roundtrip_ns(
        &self,
        req_bytes: usize,
        resp_bytes: usize,
        np: usize,
        ranks_per_node: usize,
    ) -> f64 {
        let rpn = ranks_per_node.min(np) as f64;
        let p_intra = rpn / np as f64;
        p_intra * self.lookup_roundtrip_ns(req_bytes, resp_bytes, true)
            + (1.0 - p_intra) * self.lookup_roundtrip_ns(req_bytes, resp_bytes, false)
    }

    /// Modeled time of an `alltoallv` where this rank contributes
    /// `bytes_sent` and the largest per-rank contribution is `max_bytes`
    /// (collectives complete together, so the max governs).
    pub fn alltoallv_ns(&self, np: usize, max_bytes: usize) -> f64 {
        let hops = (np.max(2) as f64).log2().ceil();
        self.collective_hop_ns * hops + max_bytes as f64 / self.net_bw_bytes_per_ns
    }

    /// Modeled time of an `allgatherv` delivering `union_bytes` to every
    /// rank (the hot-shard replication collective: each contributor's
    /// part travels a log-depth tree, then every rank streams the whole
    /// union). Same latency/bandwidth decomposition as
    /// [`alltoallv_ns`](CostModel::alltoallv_ns); the bandwidth term is
    /// governed by the union size because every rank must receive it all.
    pub fn allgatherv_ns(&self, np: usize, union_bytes: usize) -> f64 {
        let hops = (np.max(2) as f64).log2().ceil();
        self.collective_hop_ns * hops + union_bytes as f64 / self.net_bw_bytes_per_ns
    }

    /// Modeled makespan of `rounds` pipelined compute/exchange rounds
    /// where each round's collective overlaps the next round's compute
    /// (the double-buffered spectrum build): the first compute runs bare,
    /// the last exchange drains bare, and every interior round costs
    /// `max(compute, comm)`:
    ///
    /// `C + (rounds-1)·max(C, X) + X
    ///    = rounds·C + rounds·X − (rounds−1)·min(C, X)`
    ///
    /// With one round (or either term zero) this degrades to the
    /// unpipelined sum, so callers can use it unconditionally.
    pub fn overlapped_rounds_ns(
        &self,
        rounds: u64,
        compute_per_round_ns: f64,
        comm_per_round_ns: f64,
    ) -> f64 {
        let r = rounds.max(1) as f64;
        r * (compute_per_round_ns + comm_per_round_ns)
            - (r - 1.0) * compute_per_round_ns.min(comm_per_round_ns)
    }

    /// Modeled resident set of a rank holding spectrum entries and
    /// auxiliary tables — the legacy linear-per-entry approximation, kept
    /// for what-if models that only know entry counts (prior-art
    /// comparison). Engines that can measure or derive real table bytes
    /// use [`rank_memory_bytes_measured`](CostModel::rank_memory_bytes_measured).
    pub fn rank_memory_bytes(&self, kmer_entries: u64, tile_entries: u64) -> f64 {
        self.process_base_bytes
            + kmer_entries as f64 * self.kmer_entry_bytes
            + tile_entries as f64 * self.tile_entry_bytes
    }

    /// Resident set of a rank whose spectrum tables occupy
    /// `spectrum_bytes` (measured with the tables' own `memory_bytes`,
    /// or predicted from the flat-table geometry): base process
    /// overhead plus the byte-accurate table footprint.
    pub fn rank_memory_bytes_measured(&self, spectrum_bytes: u64) -> f64 {
        self.process_base_bytes + spectrum_bytes as f64
    }

    /// Modeled time to read or write `bytes` of snapshot shards
    /// (open/seek latency + streaming transfer). This is what a loading
    /// rank is charged *instead of* spectrum construction: the whole
    /// point of persistent snapshots is that
    /// `snapshot_io_ns(shard_bytes) ≪ build time` on any realistic
    /// filesystem.
    pub fn snapshot_io_ns(&self, bytes: u64) -> f64 {
        self.disk_latency_ns + bytes as f64 / self.disk_bw_bytes_per_ns
    }

    /// Modeled time to stream `bytes` of out-of-core spill runs through
    /// the disk (one seek/open per merge or spill wave plus sequential
    /// transfer). Spill runs are written once and read twice (the
    /// survivor-count pass and the table-stream pass), so a budgeted
    /// build charges `spill_io_ns(written) + spill_io_ns(2·written)` on
    /// top of construction — the memory/time trade the out-of-core mode
    /// makes explicit.
    pub fn spill_io_ns(&self, bytes: u64) -> f64 {
        self.disk_latency_ns + bytes as f64 / self.disk_bw_bytes_per_ns
    }

    /// Modeled time of an online Reed-Solomon shard repair during a
    /// snapshot load: stream the `survivor_bytes` of the surviving
    /// shards from disk, then run the GF(2^8) matrix-vector rebuild
    /// over them to produce `rebuilt_bytes`. The arithmetic term is a
    /// flat ~1 ns/byte — one table-lookup multiply-accumulate per
    /// survivor byte on the in-order core — which keeps repair
    /// IO-dominated, exactly why repairing beats re-running spectrum
    /// construction (`snapshot_io_ns ≪ build`, and repair adds only a
    /// linear scan on top).
    pub fn rs_repair_ns(&self, survivor_bytes: u64, rebuilt_bytes: u64) -> f64 {
        const GF_MAC_NS_PER_BYTE: f64 = 1.0;
        self.snapshot_io_ns(survivor_bytes)
            + survivor_bytes as f64 * GF_MAC_NS_PER_BYTE
            + rebuilt_bytes as f64 / self.disk_bw_bytes_per_ns
    }

    /// Modeled time spent waiting out `failed_attempts` consecutive
    /// missed deadlines under the Step IV retry protocol: attempt `i`
    /// waits `deadline · 2^i` before resending, so the total is the
    /// geometric sum `deadline · (2^n − 1)`. Zero failed attempts cost
    /// nothing — the fault-free path never waits.
    pub fn retry_wait_ns(&self, deadline_ns: f64, failed_attempts: u32) -> f64 {
        deadline_ns * ((1u64 << failed_attempts.min(62)) - 1) as f64
    }
}

impl CostModel {
    /// A commodity Ethernet cluster circa the paper (1 GbE, deeper
    /// per-message latency, faster out-of-order cores): the environment
    /// where replication heuristics look better relative to
    /// distribution, because each remote lookup is ~10× dearer.
    ///
    /// The compute-side constants are calibrated from kernels *measured*
    /// on a commodity x86-64 host (`BENCH_spectrum.json` /
    /// `benches/extract.rs`): flat-table lookup ≈7–11 ns warm,
    /// sorted bulk insert ≈24 ns/key, SWAR/SIMD base classification
    /// ≈1 ns/base. The BG/Q preset stays a literature-derived model —
    /// no A2 hardware to measure on — which is exactly the measured-vs-
    /// modeled split DESIGN.md §9 documents.
    pub fn commodity_cluster() -> CostModel {
        CostModel {
            hash_lookup_ns: 10.0,
            hash_insert_ns: 24.0,
            per_base_ns: 1.0,
            candidate_eval_ns: 50.0,
            net_latency_ns: 30_000.0,
            shm_latency_ns: 600.0,
            net_bw_bytes_per_ns: 0.12,
            shm_bw_bytes_per_ns: 12.0,
            request_service_ns: 6_000.0,
            probe_ns: 2_500.0,
            service_queue_factor: 3.0,
            collective_hop_ns: 35_000.0,
            kmer_entry_bytes: 26.0,
            tile_entry_bytes: 42.0,
            process_base_bytes: 24.0 * 1024.0 * 1024.0,
            disk_latency_ns: 200_000.0,
            disk_bw_bytes_per_ns: 0.4,
        }
    }

    /// BG/Q parameters with an overridden inter-node latency — the knob
    /// for sensitivity sweeps ("at what latency does heuristic X win?").
    pub fn bgq_with_latency(net_latency_ns: f64) -> CostModel {
        CostModel { net_latency_ns, ..CostModel::bgq() }
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::bgq()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smt_factor_shape() {
        let m = CostModel::bgq();
        assert_eq!(m.smt_factor(8), 1.0);
        assert_eq!(m.smt_factor(16), 1.0);
        let f32t = m.smt_factor(32);
        let f64t = m.smt_factor(64);
        assert!(f32t > 1.0 && f32t < f64t);
        assert!((f64t - 1.30).abs() < 1e-9);
        // monotone beyond
        assert!(m.smt_factor(80) >= f64t);
    }

    #[test]
    fn intra_node_messages_cheaper() {
        let m = CostModel::bgq();
        assert!(m.message_ns(32, true) < m.message_ns(32, false));
        assert!(m.lookup_roundtrip_ns(24, 16, true) < m.lookup_roundtrip_ns(24, 16, false));
    }

    #[test]
    fn avg_roundtrip_interpolates() {
        let m = CostModel::bgq();
        let all_intra = m.avg_lookup_roundtrip_ns(24, 16, 32, 32);
        let mostly_inter = m.avg_lookup_roundtrip_ns(24, 16, 1024, 32);
        assert!((all_intra - m.lookup_roundtrip_ns(24, 16, true)).abs() < 1e-6);
        assert!(mostly_inter > all_intra);
        let pure_inter = m.lookup_roundtrip_ns(24, 16, false);
        assert!(mostly_inter < pure_inter);
    }

    #[test]
    fn retry_wait_is_a_geometric_backoff_sum() {
        let m = CostModel::bgq();
        assert_eq!(m.retry_wait_ns(1000.0, 0), 0.0);
        assert_eq!(m.retry_wait_ns(1000.0, 1), 1000.0);
        // 1 + 2 + 4 = 7 deadlines waited across three misses
        assert_eq!(m.retry_wait_ns(1000.0, 3), 7000.0);
        // absurd budgets saturate instead of overflowing the shift
        assert!(m.retry_wait_ns(1.0, u32::MAX).is_finite());
    }

    #[test]
    fn bandwidth_term_scales_with_bytes() {
        let m = CostModel::bgq();
        let small = m.alltoallv_ns(128, 1 << 10);
        let big = m.alltoallv_ns(128, 1 << 30);
        assert!(big > small * 10.0);
    }

    #[test]
    fn allgather_scales_with_union_and_ranks() {
        let m = CostModel::bgq();
        // latency term grows with rank count, bandwidth term with bytes
        assert!(m.allgatherv_ns(1024, 1 << 10) > m.allgatherv_ns(8, 1 << 10));
        let small = m.allgatherv_ns(64, 1 << 10);
        let big = m.allgatherv_ns(64, 1 << 30);
        assert!(big > small * 10.0);
    }

    #[test]
    fn overlapped_rounds_hide_the_smaller_term() {
        let m = CostModel::bgq();
        // one round: plain sum, nothing to hide
        assert_eq!(m.overlapped_rounds_ns(1, 100.0, 40.0), 140.0);
        // comm smaller: all but the last exchange hides under compute
        assert_eq!(m.overlapped_rounds_ns(4, 100.0, 40.0), 4.0 * 100.0 + 40.0);
        // compute smaller: all but the first compute hides under comm
        assert_eq!(m.overlapped_rounds_ns(4, 40.0, 100.0), 40.0 + 4.0 * 100.0);
        // never worse than perfect overlap, never better than serial
        let serial = 4.0 * (100.0 + 40.0);
        let piped = m.overlapped_rounds_ns(4, 100.0, 40.0);
        assert!(piped < serial);
        assert!(piped >= 4.0 * 100.0);
    }

    #[test]
    fn presets_are_distinct_and_sane() {
        let bgq = CostModel::bgq();
        let eth = CostModel::commodity_cluster();
        assert!(eth.net_latency_ns > bgq.net_latency_ns * 5.0, "GbE latency is much higher");
        assert!(eth.net_bw_bytes_per_ns < bgq.net_bw_bytes_per_ns);
        assert!(eth.per_base_ns < bgq.per_base_ns, "commodity cores are faster than A2");
        // lookup roundtrips reflect the latency gap
        assert!(
            eth.lookup_roundtrip_ns(16, 8, false) > 3.0 * bgq.lookup_roundtrip_ns(16, 8, false)
        );
    }

    #[test]
    fn latency_override_only_touches_latency() {
        let base = CostModel::bgq();
        let hot = CostModel::bgq_with_latency(50_000.0);
        assert_eq!(hot.net_latency_ns, 50_000.0);
        assert_eq!(hot.request_service_ns, base.request_service_ns);
        assert_eq!(hot.hash_lookup_ns, base.hash_lookup_ns);
        assert_eq!(hot.shm_latency_ns, base.shm_latency_ns);
    }

    #[test]
    fn memory_model_counts_entries() {
        let m = CostModel::bgq();
        let empty = m.rank_memory_bytes(0, 0);
        let loaded = m.rank_memory_bytes(1_000_000, 1_000_000);
        assert!((loaded - empty - 26e6 - 42e6).abs() < 1e-3);
    }

    #[test]
    fn snapshot_io_beats_construction_at_scale() {
        let m = CostModel::bgq();
        // latency floor for tiny snapshots
        assert_eq!(m.snapshot_io_ns(0), m.disk_latency_ns);
        // streaming term dominates large ones, linearly
        let one_gb = m.snapshot_io_ns(1 << 30);
        let two_gb = m.snapshot_io_ns(2 << 30);
        assert!(two_gb > one_gb && two_gb < one_gb * 2.1);
        // loading a 100 MB shard set must beat inserting its ~4M entries
        let load = m.snapshot_io_ns(100 << 20);
        let build = 4_000_000.0 * m.hash_insert_ns;
        assert!(load < build, "snapshot load ({load} ns) should beat rebuild ({build} ns)");
        // the commodity preset's NFS is slower but still present
        let eth = CostModel::commodity_cluster();
        assert!(eth.snapshot_io_ns(1 << 20) > m.snapshot_io_ns(1 << 20));
    }

    #[test]
    fn repair_is_io_dominated_and_beats_rebuild() {
        let m = CostModel::bgq();
        // repair of a 100 MB group (3 survivors read, 1 shard rebuilt)
        let survivors = 75u64 << 20;
        let rebuilt = 25u64 << 20;
        let repair = m.rs_repair_ns(survivors, rebuilt);
        // strictly more than the pure IO of the survivors, but within
        // a small constant of it: the GF arithmetic must not dominate
        let io = m.snapshot_io_ns(survivors);
        assert!(repair > io);
        assert!(repair < io * 3.0, "GF term should stay IO-comparable");
        // and far cheaper than rebuilding the shard's ~1M entries
        let build = 1_000_000.0 * m.hash_insert_ns;
        assert!(repair < build, "repair ({repair} ns) should beat rebuild ({build} ns)");
    }

    #[test]
    fn measured_memory_is_base_plus_bytes() {
        let m = CostModel::bgq();
        assert_eq!(m.rank_memory_bytes_measured(0), m.process_base_bytes);
        let bytes = 123_456_789u64;
        assert_eq!(m.rank_memory_bytes_measured(bytes), m.process_base_bytes + bytes as f64);
    }
}
