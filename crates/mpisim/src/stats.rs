//! Per-rank traffic counters.
//!
//! Counters are the raw material of the BG/Q time model: the virtual
//! engine multiplies them by [`crate::CostModel`] parameters to obtain the
//! modeled communication time per rank. They are atomic because a rank's
//! worker and communication threads share one [`crate::Comm`].

use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Default)]
pub(crate) struct RankStats {
    p2p_sent_msgs: AtomicU64,
    p2p_sent_bytes: AtomicU64,
    p2p_sent_intra_node: AtomicU64,
    p2p_recv_msgs: AtomicU64,
    p2p_recv_bytes: AtomicU64,
    collective_ops: AtomicU64,
    collective_sent_bytes: AtomicU64,
    nonblocking_collective_ops: AtomicU64,
    faults_dropped: AtomicU64,
    faults_duplicated: AtomicU64,
    faults_reordered: AtomicU64,
    faults_delayed: AtomicU64,
    faults_stalled: AtomicU64,
}

impl RankStats {
    pub(crate) fn count_send(&self, bytes: usize, intra: bool) {
        self.p2p_sent_msgs.fetch_add(1, Ordering::Relaxed);
        self.p2p_sent_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        if intra {
            self.p2p_sent_intra_node.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn count_recv(&self, bytes: usize) {
        self.p2p_recv_msgs.fetch_add(1, Ordering::Relaxed);
        self.p2p_recv_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn count_collective(&self, bytes_sent: usize) {
        self.collective_ops.fetch_add(1, Ordering::Relaxed);
        self.collective_sent_bytes.fetch_add(bytes_sent as u64, Ordering::Relaxed);
    }

    /// A non-blocking collective counts like a blocking one for volume,
    /// plus its own op counter so reports can show how much of the
    /// traffic was overlappable.
    pub(crate) fn count_collective_nonblocking(&self, bytes_sent: usize) {
        self.count_collective(bytes_sent);
        self.nonblocking_collective_ops.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_fault_dropped(&self) {
        self.faults_dropped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_fault_duplicated(&self) {
        self.faults_duplicated.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_fault_reordered(&self) {
        self.faults_reordered.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_fault_delayed(&self) {
        self.faults_delayed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_fault_stalled(&self) {
        self.faults_stalled.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> RankStatsSnapshot {
        RankStatsSnapshot {
            p2p_sent_msgs: self.p2p_sent_msgs.load(Ordering::Relaxed),
            p2p_sent_bytes: self.p2p_sent_bytes.load(Ordering::Relaxed),
            p2p_sent_intra_node: self.p2p_sent_intra_node.load(Ordering::Relaxed),
            p2p_recv_msgs: self.p2p_recv_msgs.load(Ordering::Relaxed),
            p2p_recv_bytes: self.p2p_recv_bytes.load(Ordering::Relaxed),
            collective_ops: self.collective_ops.load(Ordering::Relaxed),
            collective_sent_bytes: self.collective_sent_bytes.load(Ordering::Relaxed),
            nonblocking_collective_ops: self.nonblocking_collective_ops.load(Ordering::Relaxed),
            faults_dropped: self.faults_dropped.load(Ordering::Relaxed),
            faults_duplicated: self.faults_duplicated.load(Ordering::Relaxed),
            faults_reordered: self.faults_reordered.load(Ordering::Relaxed),
            faults_delayed: self.faults_delayed.load(Ordering::Relaxed),
            faults_stalled: self.faults_stalled.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one rank's traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankStatsSnapshot {
    /// Point-to-point messages sent.
    pub p2p_sent_msgs: u64,
    /// Point-to-point bytes sent.
    pub p2p_sent_bytes: u64,
    /// Of the sent messages, how many stayed on-node (shared memory path).
    pub p2p_sent_intra_node: u64,
    /// Point-to-point messages received.
    pub p2p_recv_msgs: u64,
    /// Point-to-point bytes received.
    pub p2p_recv_bytes: u64,
    /// Collective operations participated in.
    pub collective_ops: u64,
    /// Bytes this rank contributed to collectives.
    pub collective_sent_bytes: u64,
    /// Of the collectives, how many were started non-blocking
    /// ([`crate::Comm::start_alltoallv`]) and thus overlappable.
    pub nonblocking_collective_ops: u64,
    /// Messages this rank sent that the fault plan discarded (including
    /// messages on a severed edge of a killed rank).
    pub faults_dropped: u64,
    /// Messages the fault plan delivered twice.
    pub faults_duplicated: u64,
    /// Messages the fault plan enqueued out of order.
    pub faults_reordered: u64,
    /// Messages the fault plan delayed before delivery.
    pub faults_delayed: u64,
    /// Operations on which this rank served a stall pause.
    pub faults_stalled: u64,
}
