//! Collective operations.
//!
//! The paper's algorithm leans on three collectives:
//!
//! * `MPI_Alltoallv` — shipping k-mers/tiles/reads to their owning ranks
//!   (spectrum construction Step III, the load-balancing shuffle §III-A,
//!   the batch-reads heuristic);
//! * `MPI_Allgatherv` — the replication heuristics ("Allgather
//!   k-mers/tiles/both", §III-B);
//! * `MPI_Reduce(MAX)` on the batch count — realized as an allreduce since
//!   every rank drives its batch loop off the result.
//!
//! Implementation: ranks rendezvous at a shared slot matrix guarded by a
//! barrier sandwich (deposit → barrier → collect → barrier). Values move
//! by ownership transfer — `Vec`s are handed over, not copied — matching
//! how we count bytes for the cost model.
//!
//! All ranks must issue collectives in the same order (an MPI requirement
//! we inherit); a rank that skips one deadlocks, exactly like real MPI —
//! which is why the batch-reads heuristic needs its max-batches allreduce
//! (§III-B: "Each process thus continues this process for the maximum
//! number of batches even though it might have exhausted its set of
//! reads").

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

type Slot = Mutex<Option<Box<dyn Any + Send>>>;

pub(crate) struct CollectiveState {
    np: usize,
    barrier: Barrier,
    /// np×np alltoall slots, row-major: `matrix[src*np + dst]`.
    matrix: Vec<Slot>,
    /// np gather/reduce slots.
    row: Vec<Slot>,
    /// Per-rank issue counters for non-blocking rounds. All ranks must
    /// start non-blocking collectives in the same order (MPI's matching
    /// rule), so the n-th `start_alltoallv` of every rank shares one
    /// round id regardless of arrival timing.
    nb_seq: Vec<AtomicU64>,
    /// In-flight non-blocking rounds, keyed by round id. Unlike the
    /// blocking matrix there is no barrier sandwich: depositors never
    /// wait, and `wait` blocks on the condvar only until all `np` rows
    /// of its round have arrived — that is what buys the overlap.
    nb: Mutex<HashMap<u64, NbRound>>,
    nb_cv: Condvar,
}

struct NbRound {
    /// np×np slots, row-major `slots[src*np + dst]`.
    slots: Vec<Option<Box<dyn Any + Send>>>,
    deposited: usize,
    collected: usize,
}

impl CollectiveState {
    pub(crate) fn new(np: usize) -> CollectiveState {
        CollectiveState {
            np,
            barrier: Barrier::new(np),
            matrix: (0..np * np).map(|_| Mutex::new(None)).collect(),
            row: (0..np).map(|_| Mutex::new(None)).collect(),
            nb_seq: (0..np).map(|_| AtomicU64::new(0)).collect(),
            nb: Mutex::new(HashMap::new()),
            nb_cv: Condvar::new(),
        }
    }
}

/// Handle for an in-flight non-blocking alltoallv round
/// ([`crate::Comm::start_alltoallv`]); redeem with [`wait`] to receive.
/// Dropping the handle without waiting leaks the round's buffers for the
/// lifetime of the universe (peers are unaffected — they only need the
/// deposit, which happened at start).
///
/// [`wait`]: PendingAlltoallv::wait
#[must_use = "an unawaited alltoallv never delivers its received rows"]
pub struct PendingAlltoallv<'c, T> {
    comm: &'c crate::comm::Comm,
    round: u64,
    _elem: PhantomData<fn() -> T>,
}

impl crate::comm::Comm {
    /// Synchronize all ranks (`MPI_Barrier`).
    pub fn barrier(&self) {
        self.shared().stall_tick(self.rank());
        self.shared().collectives.barrier.wait();
    }

    /// `MPI_Alltoallv`: `send[d]` goes to rank `d`; returns `recv` where
    /// `recv[s]` came from rank `s` (so `recv[s]` is what rank `s` put in
    /// its `send[me]`).
    pub fn alltoallv<T: Send + 'static>(&self, send: Vec<Vec<T>>) -> Vec<Vec<T>> {
        let cs = &self.shared().collectives;
        let np = cs.np;
        assert_eq!(send.len(), np, "alltoallv send buffer must have one entry per rank");
        let me = self.rank();
        let bytes: usize = send.iter().map(|v| v.len() * std::mem::size_of::<T>()).sum();
        self.shared().stats[me].count_collective(bytes);
        self.shared().stall_tick(me);
        for (dst, data) in send.into_iter().enumerate() {
            *cs.matrix[me * np + dst].lock() = Some(Box::new(data));
        }
        cs.barrier.wait();
        let mut recv = Vec::with_capacity(np);
        for src in 0..np {
            let boxed = cs.matrix[src * np + me].lock().take().expect("deposited before barrier");
            recv.push(*boxed.downcast::<Vec<T>>().expect("uniform alltoallv element type"));
        }
        cs.barrier.wait();
        recv
    }

    /// Non-blocking `MPI_Ialltoallv`: deposit `send` and return
    /// immediately with a handle; [`PendingAlltoallv::wait`] delivers the
    /// received rows. Between start and wait the rank is free to compute —
    /// the double-buffered spectrum build overlaps batch *B*'s exchange
    /// with batch *B+1*'s extraction this way.
    ///
    /// Matching follows MPI's rule: every rank must start its
    /// non-blocking collectives in the same order (the n-th start on each
    /// rank forms one round). Several rounds may be in flight at once.
    pub fn start_alltoallv<T: Send + 'static>(&self, send: Vec<Vec<T>>) -> PendingAlltoallv<'_, T> {
        let cs = &self.shared().collectives;
        let np = cs.np;
        assert_eq!(send.len(), np, "alltoallv send buffer must have one entry per rank");
        let me = self.rank();
        let bytes: usize = send.iter().map(|v| v.len() * std::mem::size_of::<T>()).sum();
        self.shared().stats[me].count_collective_nonblocking(bytes);
        self.shared().stall_tick(me);
        let round = cs.nb_seq[me].fetch_add(1, Ordering::Relaxed);
        {
            let mut rounds = cs.nb.lock();
            let entry = rounds.entry(round).or_insert_with(|| NbRound {
                slots: (0..np * np).map(|_| None).collect(),
                deposited: 0,
                collected: 0,
            });
            for (dst, data) in send.into_iter().enumerate() {
                entry.slots[me * np + dst] = Some(Box::new(data));
            }
            entry.deposited += 1;
        }
        cs.nb_cv.notify_all();
        PendingAlltoallv { comm: self, round, _elem: PhantomData }
    }

    /// `MPI_Allgatherv`: every rank contributes `mine`; everyone receives
    /// all contributions indexed by rank.
    pub fn allgatherv<T: Clone + Send + 'static>(&self, mine: Vec<T>) -> Vec<Vec<T>> {
        let cs = &self.shared().collectives;
        let np = cs.np;
        let me = self.rank();
        self.shared().stats[me].count_collective(mine.len() * std::mem::size_of::<T>());
        self.shared().stall_tick(me);
        *cs.row[me].lock() = Some(Box::new(mine));
        cs.barrier.wait();
        let mut all = Vec::with_capacity(np);
        for src in 0..np {
            let guard = cs.row[src].lock();
            let vec = guard
                .as_ref()
                .expect("deposited before barrier")
                .downcast_ref::<Vec<T>>()
                .expect("uniform allgatherv element type");
            all.push(vec.clone());
        }
        cs.barrier.wait();
        all
    }

    /// Generic allreduce: fold every rank's `value` with `f` in rank order
    /// (deterministic). Every rank must pass an equivalent `f`.
    pub fn allreduce<T, F>(&self, value: T, f: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let cs = &self.shared().collectives;
        let me = self.rank();
        self.shared().stats[me].count_collective(std::mem::size_of::<T>());
        self.shared().stall_tick(me);
        *cs.row[me].lock() = Some(Box::new(value));
        cs.barrier.wait();
        let mut acc: Option<T> = None;
        for src in 0..cs.np {
            let guard = cs.row[src].lock();
            let v = guard
                .as_ref()
                .expect("deposited before barrier")
                .downcast_ref::<T>()
                .expect("uniform allreduce element type")
                .clone();
            acc = Some(match acc {
                None => v,
                Some(a) => f(a, v),
            });
        }
        cs.barrier.wait();
        acc.expect("np >= 1")
    }

    /// `MPI_Allreduce(MAX)` on a `u64` — the paper's batch-count reduce.
    pub fn allreduce_max_u64(&self, value: u64) -> u64 {
        self.allreduce(value, u64::max)
    }

    /// `MPI_Allreduce(SUM)` on a `u64`.
    pub fn allreduce_sum_u64(&self, value: u64) -> u64 {
        self.allreduce(value, |a, b| a + b)
    }

    /// `MPI_Gatherv` to `root`: root receives every rank's contribution
    /// (indexed by rank); other ranks receive an empty vector.
    pub fn gatherv<T: Send + 'static>(&self, root: usize, mine: Vec<T>) -> Vec<Vec<T>> {
        let cs = &self.shared().collectives;
        let me = self.rank();
        self.shared().stats[me].count_collective(mine.len() * std::mem::size_of::<T>());
        self.shared().stall_tick(me);
        *cs.row[me].lock() = Some(Box::new(mine));
        cs.barrier.wait();
        let out = if me == root {
            (0..cs.np)
                .map(|src| {
                    let boxed = cs.row[src].lock().take().expect("deposited before barrier");
                    *boxed.downcast::<Vec<T>>().expect("uniform gatherv element type")
                })
                .collect()
        } else {
            Vec::new()
        };
        cs.barrier.wait();
        out
    }

    /// `MPI_Scatterv` from `root`: the root supplies one vector per rank
    /// (`Some(parts)`, `parts.len() == np`); every rank receives its part.
    pub fn scatterv<T: Send + 'static>(&self, root: usize, parts: Option<Vec<Vec<T>>>) -> Vec<T> {
        let cs = &self.shared().collectives;
        let np = cs.np;
        let me = self.rank();
        if me == root {
            let parts = parts.expect("root must supply the scatter parts");
            assert_eq!(parts.len(), np, "scatterv needs one part per rank");
            let bytes: usize = parts.iter().map(|p| p.len() * std::mem::size_of::<T>()).sum();
            self.shared().stats[me].count_collective(bytes);
            self.shared().stall_tick(me);
            for (dst, part) in parts.into_iter().enumerate() {
                *cs.matrix[root * np + dst].lock() = Some(Box::new(part));
            }
        } else {
            assert!(parts.is_none(), "non-root ranks must pass None");
        }
        cs.barrier.wait();
        let boxed = cs.matrix[root * np + me].lock().take().expect("root deposited");
        let mine = *boxed.downcast::<Vec<T>>().expect("uniform scatterv element type");
        cs.barrier.wait();
        mine
    }

    /// `MPI_Bcast` from `root`: `value` must be `Some` exactly on the root.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        let cs = &self.shared().collectives;
        let me = self.rank();
        if me == root {
            let v = value.expect("root must supply the broadcast value");
            self.shared().stats[me].count_collective(std::mem::size_of::<T>());
            self.shared().stall_tick(me);
            *cs.row[root].lock() = Some(Box::new(v));
        } else {
            assert!(value.is_none(), "non-root ranks must pass None");
        }
        cs.barrier.wait();
        let out = {
            let guard = cs.row[root].lock();
            guard
                .as_ref()
                .expect("root deposited before barrier")
                .downcast_ref::<T>()
                .expect("uniform bcast element type")
                .clone()
        };
        cs.barrier.wait();
        out
    }
}

impl<T: Send + 'static> PendingAlltoallv<'_, T> {
    /// Block until every rank's deposit for this round has arrived, then
    /// take this rank's received rows: `recv[s]` is what rank `s` put in
    /// its `send[me]`, exactly like the blocking [`Comm::alltoallv`].
    ///
    /// [`Comm::alltoallv`]: crate::comm::Comm::alltoallv
    pub fn wait(self) -> Vec<Vec<T>> {
        let cs = &self.comm.shared().collectives;
        let np = cs.np;
        let me = self.comm.rank();
        let mut rounds = cs.nb.lock();
        while rounds.get(&self.round).is_none_or(|r| r.deposited < np) {
            cs.nb_cv.wait(&mut rounds);
        }
        let round = rounds.get_mut(&self.round).expect("round present while waiting");
        let mut recv = Vec::with_capacity(np);
        for src in 0..np {
            let boxed = round.slots[src * np + me].take().expect("all ranks deposited");
            recv.push(*boxed.downcast::<Vec<T>>().expect("uniform alltoallv element type"));
        }
        round.collected += 1;
        if round.collected == np {
            rounds.remove(&self.round);
        }
        recv
    }
}

#[cfg(test)]
mod tests {
    use crate::universe::Universe;

    #[test]
    fn alltoallv_transposes() {
        let np = 5;
        let results = Universe::new(np).run(|comm| {
            let me = comm.rank();
            // send[d] = [me*10 + d]
            let send: Vec<Vec<usize>> = (0..np).map(|d| vec![me * 10 + d]).collect();
            comm.alltoallv(send)
        });
        for (me, recv) in results.into_iter().enumerate() {
            for (src, v) in recv.into_iter().enumerate() {
                assert_eq!(v, vec![src * 10 + me]);
            }
        }
    }

    #[test]
    fn alltoallv_variable_lengths() {
        let np = 4;
        let results = Universe::new(np).run(|comm| {
            let me = comm.rank();
            // rank r sends r copies of its id to each destination
            let send: Vec<Vec<u8>> = (0..np).map(|_| vec![me as u8; me]).collect();
            comm.alltoallv(send)
        });
        for recv in results {
            for (src, v) in recv.into_iter().enumerate() {
                assert_eq!(v, vec![src as u8; src]);
            }
        }
    }

    #[test]
    fn back_to_back_alltoallv_do_not_interfere() {
        let np = 3;
        let results = Universe::new(np).run(|comm| {
            let me = comm.rank();
            let a = comm.alltoallv((0..np).map(|d| vec![(me, d, 'a')]).collect());
            let b = comm.alltoallv((0..np).map(|d| vec![(me, d, 'b')]).collect());
            (a, b)
        });
        for (me, (a, b)) in results.into_iter().enumerate() {
            for src in 0..np {
                assert_eq!(a[src], vec![(src, me, 'a')]);
                assert_eq!(b[src], vec![(src, me, 'b')]);
            }
        }
    }

    #[test]
    fn allgatherv_collects_everything() {
        let np = 4;
        let results = Universe::new(np).run(|comm| {
            let me = comm.rank();
            comm.allgatherv(vec![me; me + 1])
        });
        for all in results {
            for (src, v) in all.into_iter().enumerate() {
                assert_eq!(v, vec![src; src + 1]);
            }
        }
    }

    #[test]
    fn allreduce_max_and_sum() {
        let np = 6;
        let results = Universe::new(np).run(|comm| {
            let me = comm.rank() as u64;
            (comm.allreduce_max_u64(me * 3), comm.allreduce_sum_u64(me))
        });
        for (max, sum) in results {
            assert_eq!(max, 15);
            assert_eq!(sum, 15);
        }
    }

    #[test]
    fn allreduce_fold_order_is_rank_order() {
        let np = 4;
        let results = Universe::new(np).run(|comm| {
            let me = comm.rank();
            comm.allreduce(vec![me], |mut a, b| {
                a.extend(b);
                a
            })
        });
        for folded in results {
            assert_eq!(folded, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn gatherv_collects_at_root_only() {
        let np = 4;
        let results = Universe::new(np).run(|comm| {
            let me = comm.rank();
            comm.gatherv(1, vec![me as u32; me])
        });
        for (me, got) in results.into_iter().enumerate() {
            if me == 1 {
                for (src, part) in got.into_iter().enumerate() {
                    assert_eq!(part, vec![src as u32; src]);
                }
            } else {
                assert!(got.is_empty());
            }
        }
    }

    #[test]
    fn scatterv_delivers_parts() {
        let np = 3;
        let results = Universe::new(np).run(|comm| {
            let parts = if comm.rank() == 0 {
                Some((0..np).map(|d| vec![d as u8 * 10; d + 1]).collect())
            } else {
                None
            };
            comm.scatterv(0, parts)
        });
        for (me, part) in results.into_iter().enumerate() {
            assert_eq!(part, vec![me as u8 * 10; me + 1]);
        }
    }

    #[test]
    fn gather_then_scatter_round_trips() {
        let np = 4;
        let results = Universe::new(np).run(|comm| {
            let me = comm.rank();
            let gathered = comm.gatherv(0, vec![me * 7]);
            let parts = if me == 0 { Some(gathered) } else { None };
            comm.scatterv(0, parts)
        });
        for (me, part) in results.into_iter().enumerate() {
            assert_eq!(part, vec![me * 7]);
        }
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let np = 3;
        let results = Universe::new(np).run(|comm| {
            let v = if comm.rank() == 2 { Some("hello".to_string()) } else { None };
            comm.bcast(2, v)
        });
        assert!(results.iter().all(|s| s == "hello"));
    }

    #[test]
    fn single_rank_collectives() {
        let results = Universe::new(1).run(|comm| {
            comm.barrier();
            let a = comm.alltoallv(vec![vec![42u32]]);
            let g = comm.allgatherv(vec![7u8]);
            let m = comm.allreduce_max_u64(9);
            (a, g, m)
        });
        assert_eq!(results[0].0, vec![vec![42]]);
        assert_eq!(results[0].1, vec![vec![7]]);
        assert_eq!(results[0].2, 9);
    }

    #[test]
    fn start_alltoallv_transposes_like_blocking() {
        let np = 5;
        let results = Universe::new(np).run(|comm| {
            let me = comm.rank();
            let send: Vec<Vec<usize>> = (0..np).map(|d| vec![me * 10 + d]).collect();
            comm.start_alltoallv(send).wait()
        });
        for (me, recv) in results.into_iter().enumerate() {
            for (src, v) in recv.into_iter().enumerate() {
                assert_eq!(v, vec![src * 10 + me]);
            }
        }
    }

    #[test]
    fn start_alltoallv_overlaps_compute_between_start_and_wait() {
        // Ranks start the exchange, then do rank-skewed local work before
        // waiting — no rank may block until its own wait().
        let np = 4;
        let results = Universe::new(np).run(|comm| {
            let me = comm.rank();
            let pending = comm.start_alltoallv((0..np).map(|d| vec![(me, d)]).collect());
            let local: usize = (0..(me + 1) * 1000).sum(); // stand-in compute
            (pending.wait(), local)
        });
        for (me, (recv, _)) in results.into_iter().enumerate() {
            for (src, v) in recv.into_iter().enumerate() {
                assert_eq!(v, vec![(src, me)]);
            }
        }
    }

    #[test]
    fn multiple_nonblocking_rounds_in_flight() {
        // Double buffering keeps two rounds pending at once (k-mers and
        // tiles of one batch); rounds must match by issue order, not by
        // completion order.
        let np = 3;
        let results = Universe::new(np).run(|comm| {
            let me = comm.rank();
            let a = comm.start_alltoallv((0..np).map(|d| vec![(me, d, 'a')]).collect());
            let b = comm.start_alltoallv((0..np).map(|d| vec![(me, d, 'b')]).collect());
            // Wait out of issue order on purpose.
            let rb = b.wait();
            let ra = a.wait();
            (ra, rb)
        });
        for (me, (a, b)) in results.into_iter().enumerate() {
            for src in 0..np {
                assert_eq!(a[src], vec![(src, me, 'a')]);
                assert_eq!(b[src], vec![(src, me, 'b')]);
            }
        }
    }

    #[test]
    fn nonblocking_interleaves_with_blocking_collectives() {
        let np = 4;
        let results = Universe::new(np).run(|comm| {
            let me = comm.rank() as u64;
            let pending =
                comm.start_alltoallv((0..np).map(|d| vec![me * 100 + d as u64]).collect());
            let max = comm.allreduce_max_u64(me);
            (pending.wait(), max)
        });
        for (me, (recv, max)) in results.into_iter().enumerate() {
            assert_eq!(max, np as u64 - 1);
            for (src, v) in recv.into_iter().enumerate() {
                assert_eq!(v, vec![src as u64 * 100 + me as u64]);
            }
        }
    }

    #[test]
    fn single_rank_nonblocking_round_trips() {
        let results = Universe::new(1).run(|comm| comm.start_alltoallv(vec![vec![7u8, 8]]).wait());
        assert_eq!(results[0], vec![vec![7, 8]]);
    }

    #[test]
    fn nonblocking_stats_counted() {
        let results = Universe::new(2).run(|comm| {
            let p = comm.start_alltoallv(vec![vec![0u64; 4], vec![0u64; 4]]);
            let _ = p.wait();
            comm.stats()
        });
        assert_eq!(results[0].collective_ops, 1);
        assert_eq!(results[0].collective_sent_bytes, 64);
        assert_eq!(results[0].nonblocking_collective_ops, 1);
    }

    #[test]
    fn collective_stats_counted() {
        let results = Universe::new(2).run(|comm| {
            let _ = comm.alltoallv(vec![vec![0u64; 4], vec![0u64; 4]]);
            comm.stats()
        });
        assert_eq!(results[0].collective_ops, 1);
        assert_eq!(results[0].collective_sent_bytes, 64);
    }
}
