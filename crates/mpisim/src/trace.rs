//! Per-rank event tracing.
//!
//! A lightweight, allocation-conscious event log in the spirit of MPI
//! profiling interfaces (MPE/Score-P): engines record phase boundaries
//! and communication events per rank, and the renderer prints an aligned
//! timeline for post-mortem inspection — which rank stalled, when the
//! collectives fired, where the lookup storms were. Tracing is entirely
//! opt-in; the runtime itself never records anything (hot paths stay
//! untouched).

use std::time::Instant;

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A named phase began (construction, correction, shutdown, …).
    PhaseStart,
    /// The current phase ended.
    PhaseEnd,
    /// A point-to-point send (`dst`, `bytes` in the fields).
    Send,
    /// A point-to-point receive (`src`, `bytes`).
    Recv,
    /// A collective operation (alltoallv, allgather, …).
    Collective,
    /// A retry of an unanswered request (`peer` = the unresponsive
    /// owner, `bytes` = resent payload size).
    Retry,
    /// An injected or observed fault (drop, duplicate, deadline miss,
    /// degradation — the label says which).
    Fault,
    /// Anything else worth a mark.
    Marker,
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Microseconds since the trace began.
    pub at_us: u64,
    /// Event class.
    pub kind: EventKind,
    /// Short static label ("construct", "kmer-req", …).
    pub label: &'static str,
    /// Peer rank for p2p events, `usize::MAX` otherwise.
    pub peer: usize,
    /// Payload bytes for communication events.
    pub bytes: usize,
}

/// A single rank's event log. `Clone` so a finished log can ride inside
/// a returned report while the engine keeps appending to its own copy.
#[derive(Clone, Debug)]
pub struct TraceLog {
    rank: usize,
    epoch: Instant,
    events: Vec<Event>,
}

impl TraceLog {
    /// Start a trace for `rank`, with `now` as time zero.
    pub fn new(rank: usize) -> TraceLog {
        TraceLog { rank, epoch: Instant::now(), events: Vec::new() }
    }

    /// The rank this log belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }

    fn stamp(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Record a phase start.
    pub fn phase_start(&mut self, label: &'static str) {
        let at_us = self.stamp();
        self.events.push(Event {
            at_us,
            kind: EventKind::PhaseStart,
            label,
            peer: usize::MAX,
            bytes: 0,
        });
    }

    /// Record a phase end.
    pub fn phase_end(&mut self, label: &'static str) {
        let at_us = self.stamp();
        self.events.push(Event {
            at_us,
            kind: EventKind::PhaseEnd,
            label,
            peer: usize::MAX,
            bytes: 0,
        });
    }

    /// Record a send.
    pub fn send(&mut self, label: &'static str, dst: usize, bytes: usize) {
        let at_us = self.stamp();
        self.events.push(Event { at_us, kind: EventKind::Send, label, peer: dst, bytes });
    }

    /// Record a receive.
    pub fn recv(&mut self, label: &'static str, src: usize, bytes: usize) {
        let at_us = self.stamp();
        self.events.push(Event { at_us, kind: EventKind::Recv, label, peer: src, bytes });
    }

    /// Record a collective.
    pub fn collective(&mut self, label: &'static str, bytes: usize) {
        let at_us = self.stamp();
        self.events.push(Event {
            at_us,
            kind: EventKind::Collective,
            label,
            peer: usize::MAX,
            bytes,
        });
    }

    /// Record a request retry toward `peer`.
    pub fn retry(&mut self, label: &'static str, peer: usize, bytes: usize) {
        let at_us = self.stamp();
        self.events.push(Event { at_us, kind: EventKind::Retry, label, peer, bytes });
    }

    /// Record a fault event (deadline miss, degradation, injected drop).
    pub fn fault(&mut self, label: &'static str, peer: usize) {
        let at_us = self.stamp();
        self.events.push(Event { at_us, kind: EventKind::Fault, label, peer, bytes: 0 });
    }

    /// Record a free-form marker.
    pub fn marker(&mut self, label: &'static str) {
        let at_us = self.stamp();
        self.events.push(Event {
            at_us,
            kind: EventKind::Marker,
            label,
            peer: usize::MAX,
            bytes: 0,
        });
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Total bytes sent according to this log.
    pub fn bytes_sent(&self) -> usize {
        self.events.iter().filter(|e| e.kind == EventKind::Send).map(|e| e.bytes).sum()
    }

    /// Duration of the named phase (first start to first matching end),
    /// microseconds. `None` when the phase never completed.
    pub fn phase_duration_us(&self, label: &str) -> Option<u64> {
        let start =
            self.events.iter().find(|e| e.kind == EventKind::PhaseStart && e.label == label)?.at_us;
        let end =
            self.events.iter().find(|e| e.kind == EventKind::PhaseEnd && e.label == label)?.at_us;
        end.checked_sub(start)
    }
}

/// Render a set of rank logs as a merged, time-sorted timeline.
pub fn render_timeline(logs: &[TraceLog]) -> String {
    let mut rows: Vec<(u64, usize, String)> = Vec::new();
    for log in logs {
        for e in log.events() {
            let desc = match e.kind {
                EventKind::PhaseStart => format!("begin {}", e.label),
                EventKind::PhaseEnd => format!("end   {}", e.label),
                EventKind::Send => format!("send  {} -> r{} ({}B)", e.label, e.peer, e.bytes),
                EventKind::Recv => format!("recv  {} <- r{} ({}B)", e.label, e.peer, e.bytes),
                EventKind::Collective => format!("coll  {} ({}B)", e.label, e.bytes),
                EventKind::Retry => format!("retry {} -> r{} ({}B)", e.label, e.peer, e.bytes),
                EventKind::Fault => format!("fault {} (r{})", e.label, e.peer),
                EventKind::Marker => format!("mark  {}", e.label),
            };
            rows.push((e.at_us, log.rank(), desc));
        }
    }
    rows.sort_by_key(|&(t, r, _)| (t, r));
    let mut out = String::with_capacity(rows.len() * 48);
    for (t, rank, desc) in rows {
        out.push_str(&format!("{t:>10}us r{rank:<4} {desc}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_accumulate_in_order() {
        let mut log = TraceLog::new(3);
        log.phase_start("construct");
        log.send("kmer-exchange", 1, 128);
        log.recv("kmer-exchange", 2, 256);
        log.collective("alltoallv", 4096);
        log.phase_end("construct");
        let evs = log.events();
        assert_eq!(evs.len(), 5);
        assert!(evs.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        assert_eq!(log.bytes_sent(), 128);
        assert_eq!(log.rank(), 3);
    }

    #[test]
    fn phase_duration_measured() {
        let mut log = TraceLog::new(0);
        log.phase_start("work");
        std::thread::sleep(std::time::Duration::from_millis(5));
        log.phase_end("work");
        let d = log.phase_duration_us("work").expect("phase completed");
        assert!(d >= 4_000, "{d}us");
        assert!(log.phase_duration_us("other").is_none());
    }

    #[test]
    fn unfinished_phase_has_no_duration() {
        let mut log = TraceLog::new(0);
        log.phase_start("hung");
        assert!(log.phase_duration_us("hung").is_none());
    }

    #[test]
    fn timeline_merges_ranks_by_time() {
        let mut a = TraceLog::new(0);
        let mut b = TraceLog::new(1);
        a.marker("first");
        std::thread::sleep(std::time::Duration::from_millis(2));
        b.marker("second");
        let text = render_timeline(&[a, b]);
        let first_pos = text.find("first").unwrap();
        let second_pos = text.find("second").unwrap();
        assert!(first_pos < second_pos, "{text}");
        assert!(text.contains("r0"));
        assert!(text.contains("r1"));
    }

    #[test]
    fn renderer_formats_all_kinds() {
        let mut log = TraceLog::new(7);
        log.phase_start("p");
        log.send("x", 1, 10);
        log.recv("y", 2, 20);
        log.collective("z", 30);
        log.retry("batch-req", 3, 40);
        log.fault("deadline-miss", 3);
        log.marker("m");
        log.phase_end("p");
        let text = render_timeline(&[log]);
        for needle in [
            "begin p",
            "send  x -> r1 (10B)",
            "recv  y <- r2 (20B)",
            "coll  z (30B)",
            "retry batch-req -> r3 (40B)",
            "fault deadline-miss (r3)",
            "mark  m",
            "end   p",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }

    #[test]
    fn renderer_covers_snapshot_phases() {
        // The engines bracket snapshot I/O in snapshot-save /
        // snapshot-load phase spans; the timeline must render both with
        // measurable durations, merged across ranks.
        let mut saver = TraceLog::new(0);
        saver.phase_start("snapshot-save");
        saver.marker("manifest");
        saver.phase_end("snapshot-save");
        let mut loader = TraceLog::new(1);
        loader.phase_start("snapshot-load");
        std::thread::sleep(std::time::Duration::from_millis(1));
        loader.phase_end("snapshot-load");
        assert!(saver.phase_duration_us("snapshot-save").is_some());
        assert!(loader.phase_duration_us("snapshot-load").unwrap() >= 1_000);
        let text = render_timeline(&[saver, loader]);
        for needle in [
            "begin snapshot-save",
            "end   snapshot-save",
            "begin snapshot-load",
            "end   snapshot-load",
            "mark  manifest",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
        // both ranks appear, save rows under r0 and load rows under r1
        assert!(text.lines().any(|l| l.contains("r0") && l.contains("snapshot-save")));
        assert!(text.lines().any(|l| l.contains("r1") && l.contains("snapshot-load")));
    }

    #[test]
    fn retry_and_fault_events_recorded() {
        let mut log = TraceLog::new(0);
        log.retry("kmer-req", 2, 16);
        log.fault("degraded", 2);
        let evs = log.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, EventKind::Retry);
        assert_eq!(evs[0].peer, 2);
        assert_eq!(evs[0].bytes, 16);
        assert_eq!(evs[1].kind, EventKind::Fault);
        // retries do not count as plain sends
        assert_eq!(log.bytes_sent(), 0);
    }
}
