//! Deterministic fault injection for the point-to-point plane.
//!
//! A [`FaultPlan`] describes which messages the runtime should drop,
//! duplicate, reorder, or delay, plus whole-rank failure modes (kill and
//! stall). Decisions are **deterministic**: each is a pure function of
//! the plan's seed and the message's `(src, dst, per-edge index)`, so a
//! run with a given plan misbehaves identically every time — faults are
//! reproducible test inputs, not noise. The plan is installed on the
//! [`crate::Universe`] and applied inside [`crate::Comm::send`], so
//! every consumer of the p2p plane inherits it without opting in.
//!
//! Scope: the probabilistic faults and rank kill apply to the mailbox
//! (point-to-point) plane only. Collectives stay reliable — they are the
//! barrier-synchronized control plane (a dropped barrier is not a fault
//! model, it is a deadlock) — but a *stalled* rank also stalls its
//! collectives, modeling a slow node. This mirrors how the large-scale
//! k-mer pipelines (diBELLA and kin) treat the request/response lookup
//! traffic as the reliability-critical path while bulk-synchronous
//! exchanges are checkpointed or retried wholesale.

use std::time::Duration;

/// Which rank to kill: its point-to-point plane goes silent (messages to
/// and from it are discarded), modeling a crashed service. Collectives
/// still complete (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KillSpec {
    /// The killed rank.
    pub rank: usize,
}

/// Snapshot-file truncation: before rank `rank` loads its spectrum
/// shard, the file is chopped down to `keep_bytes` — modeling an
/// interrupted snapshot write or a partially transferred file. The
/// snapshot layer must surface this as a typed error, never as garbage
/// corrections; the fault matrix verifies that end to end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotChopSpec {
    /// The rank whose shard is truncated.
    pub rank: usize,
    /// Bytes to keep (0 = empty file).
    pub keep_bytes: u64,
}

/// Chop `path` down to `keep_bytes` — the snapshot truncation
/// injection. Lives here, behind the fault plan, so production snapshot
/// code has no truncation entry point to reach by accident. A no-op
/// when the file is already shorter.
pub fn chop_file(path: &std::path::Path, keep_bytes: u64) -> std::io::Result<()> {
    let file = std::fs::OpenOptions::new().write(true).open(path)?;
    let len = file.metadata()?.len();
    if keep_bytes < len {
        file.set_len(keep_bytes)?;
    }
    Ok(())
}

/// Which rank to stall: every `every`-th operation (send or collective)
/// on that rank sleeps for `pause`, modeling a slow or oversubscribed
/// node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallSpec {
    /// The stalled rank.
    pub rank: usize,
    /// Stall every n-th operation (1 = every operation).
    pub every: u64,
    /// How long each stall lasts.
    pub pause: Duration,
}

/// A seeded, deterministic fault schedule for one run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for every per-message decision.
    pub seed: u64,
    /// Probability a p2p message is silently dropped.
    pub drop_p: f64,
    /// Probability a p2p message is delivered twice.
    pub dup_p: f64,
    /// Probability a p2p message is enqueued ahead of the previous
    /// pending message (a deterministic adjacent swap).
    pub reorder_p: f64,
    /// Probability a p2p message is delayed by [`delay`](Self::delay).
    pub delay_p: f64,
    /// The delay applied when the delay fault fires.
    pub delay: Duration,
    /// Optional rank kill.
    pub kill: Option<KillSpec>,
    /// Optional rank stall.
    pub stall: Option<StallSpec>,
    /// Optional snapshot-shard truncation (applied by the engines'
    /// snapshot-load path, not by the message plane).
    pub snapshot_chop: Option<SnapshotChopSpec>,
}

/// Per-message fault decision, derived deterministically from the plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultDecision {
    /// Discard the message.
    pub dropped: bool,
    /// Enqueue the message twice.
    pub duplicated: bool,
    /// Enqueue ahead of the previously queued message.
    pub reordered: bool,
    /// Sleep for the plan's delay before enqueueing.
    pub delayed: bool,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

/// splitmix64: the standard 64-bit finalizer; good avalanche, no state.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash to [0, 1) with 53 bits of precision.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// The fault-free plan (every probability zero, nobody killed).
    pub const fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop_p: 0.0,
            dup_p: 0.0,
            reorder_p: 0.0,
            delay_p: 0.0,
            delay: Duration::ZERO,
            kill: None,
            stall: None,
            snapshot_chop: None,
        }
    }

    /// Whether this plan injects nothing (fast-path check in `send`).
    pub fn is_none(&self) -> bool {
        self.drop_p == 0.0
            && self.dup_p == 0.0
            && self.reorder_p == 0.0
            && self.delay_p == 0.0
            && self.kill.is_none()
            && self.stall.is_none()
            && self.snapshot_chop.is_none()
    }

    /// Bytes to truncate `rank`'s snapshot shard to, when the plan chops
    /// that rank.
    pub fn snapshot_chop_for(&self, rank: usize) -> Option<u64> {
        self.snapshot_chop.filter(|c| c.rank == rank).map(|c| c.keep_bytes)
    }

    /// Whether `rank` is killed under this plan.
    pub fn kills(&self, rank: usize) -> bool {
        self.kill.is_some_and(|k| k.rank == rank)
    }

    /// Whether the p2p edge `src -> dst` is severed (either endpoint is
    /// killed).
    pub fn severed(&self, src: usize, dst: usize) -> bool {
        self.kills(src) || self.kills(dst)
    }

    /// The deterministic fault decision for the `n`-th message on the
    /// edge `src -> dst`. Each fault class draws from an independent
    /// derived stream, so e.g. `drop_p = 1.0` does not starve the
    /// duplicate counter in tests.
    pub fn decide(&self, src: usize, dst: usize, n: u64) -> FaultDecision {
        let base = mix(self.seed ^ mix((src as u64) << 32 | dst as u64).wrapping_add(mix(n)));
        FaultDecision {
            dropped: unit(mix(base ^ 0x1)) < self.drop_p,
            duplicated: unit(mix(base ^ 0x2)) < self.dup_p,
            reordered: unit(mix(base ^ 0x3)) < self.reorder_p,
            delayed: unit(mix(base ^ 0x4)) < self.delay_p,
        }
    }

    /// Parse a plan from its CLI spec: comma-separated clauses
    /// `seed=N`, `drop=P`, `dup=P`, `reorder=P`, `delay=P:DUR`,
    /// `kill=RANK`, `stall=RANK:EVERY:DUR`, `chop=RANK:BYTES` (truncate
    /// that rank's snapshot shard to BYTES before it loads), where `DUR`
    /// is an integer with a `us`/`ms`/`s` suffix (e.g. `500us`, `2ms`).
    ///
    /// ```
    /// use mpisim::FaultPlan;
    /// let p = FaultPlan::parse("seed=7,drop=0.1,delay=0.05:500us,kill=2").unwrap();
    /// assert_eq!(p.seed, 7);
    /// assert!(p.kills(2));
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for clause in spec.split(',').filter(|c| !c.is_empty()) {
            let (key, val) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault plan clause '{clause}' is not key=value"))?;
            match key {
                "seed" => plan.seed = parse_num(key, val)?,
                "drop" => plan.drop_p = parse_prob(key, val)?,
                "dup" => plan.dup_p = parse_prob(key, val)?,
                "reorder" => plan.reorder_p = parse_prob(key, val)?,
                "delay" => {
                    let (p, dur) = val
                        .split_once(':')
                        .ok_or_else(|| format!("delay needs P:DUR, got '{val}'"))?;
                    plan.delay_p = parse_prob(key, p)?;
                    plan.delay = parse_duration(dur)?;
                }
                "kill" => plan.kill = Some(KillSpec { rank: parse_num::<usize>(key, val)? }),
                "stall" => {
                    let mut it = val.split(':');
                    let rank = parse_num("stall rank", it.next().unwrap_or(""))?;
                    let every = parse_num::<u64>(
                        "stall every",
                        it.next().ok_or("stall needs RANK:EVERY:DUR")?,
                    )?;
                    let pause = parse_duration(it.next().ok_or("stall needs RANK:EVERY:DUR")?)?;
                    if every == 0 {
                        return Err("stall every must be >= 1".into());
                    }
                    plan.stall = Some(StallSpec { rank, every, pause });
                }
                "chop" => {
                    let (rank, bytes) = val
                        .split_once(':')
                        .ok_or_else(|| format!("chop needs RANK:BYTES, got '{val}'"))?;
                    plan.snapshot_chop = Some(SnapshotChopSpec {
                        rank: parse_num("chop rank", rank)?,
                        keep_bytes: parse_num("chop bytes", bytes)?,
                    });
                }
                other => return Err(format!("unknown fault plan key '{other}'")),
            }
        }
        Ok(plan)
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, val: &str) -> Result<T, String> {
    val.parse().map_err(|_| format!("{key}: '{val}' is not a valid number"))
}

fn parse_prob(key: &str, val: &str) -> Result<f64, String> {
    let p: f64 = parse_num(key, val)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("{key}: probability {p} outside [0, 1]"));
    }
    Ok(p)
}

/// Parse `123us` / `5ms` / `2s` into a [`Duration`].
pub fn parse_duration(s: &str) -> Result<Duration, String> {
    let (num, unit): (&str, fn(u64) -> Duration) = if let Some(n) = s.strip_suffix("us") {
        (n, Duration::from_micros)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, Duration::from_millis)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, Duration::from_secs)
    } else {
        return Err(format!("duration '{s}' needs a us/ms/s suffix"));
    };
    let v: u64 = num.parse().map_err(|_| format!("duration '{s}': bad number"))?;
    Ok(unit(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan { seed: 42, drop_p: 0.3, dup_p: 0.2, ..FaultPlan::none() };
        for n in 0..100 {
            assert_eq!(plan.decide(0, 1, n), plan.decide(0, 1, n));
        }
        // different seed changes at least one decision over the window
        let other = FaultPlan { seed: 43, ..plan };
        assert!((0..100).any(|n| plan.decide(0, 1, n) != other.decide(0, 1, n)));
        // different edges draw independent streams
        assert!((0..100).any(|n| plan.decide(0, 1, n) != plan.decide(1, 0, n)));
    }

    #[test]
    fn probabilities_hit_roughly_at_rate() {
        let plan = FaultPlan { seed: 9, drop_p: 0.25, ..FaultPlan::none() };
        let hits = (0..10_000).filter(|&n| plan.decide(2, 5, n).dropped).count();
        assert!((2_000..3_000).contains(&hits), "{hits} drops at p=0.25");
        // independent classes: no duplicates at dup_p = 0
        assert!((0..10_000).all(|n| !plan.decide(2, 5, n).duplicated));
    }

    #[test]
    fn extreme_probabilities() {
        let all = FaultPlan { seed: 1, drop_p: 1.0, ..FaultPlan::none() };
        assert!((0..100).all(|n| all.decide(0, 1, n).dropped));
        let none = FaultPlan::none();
        assert!(none.is_none());
        assert!((0..100).all(|n| none.decide(0, 1, n) == FaultDecision::default()));
    }

    #[test]
    fn kill_severs_both_directions() {
        let plan = FaultPlan { kill: Some(KillSpec { rank: 2 }), ..FaultPlan::none() };
        assert!(plan.kills(2));
        assert!(!plan.kills(1));
        assert!(plan.severed(2, 0) && plan.severed(0, 2));
        assert!(!plan.severed(0, 1));
        assert!(!plan.is_none());
    }

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse(
            "seed=11,drop=0.1,dup=0.2,reorder=0.3,delay=0.4:500us,kill=3,stall=1:10:2ms",
        )
        .unwrap();
        assert_eq!(p.seed, 11);
        assert_eq!(p.drop_p, 0.1);
        assert_eq!(p.dup_p, 0.2);
        assert_eq!(p.reorder_p, 0.3);
        assert_eq!(p.delay_p, 0.4);
        assert_eq!(p.delay, Duration::from_micros(500));
        assert_eq!(p.kill, Some(KillSpec { rank: 3 }));
        assert_eq!(
            p.stall,
            Some(StallSpec { rank: 1, every: 10, pause: Duration::from_millis(2) })
        );
    }

    #[test]
    fn snapshot_chop_parses_and_targets_one_rank() {
        let p = FaultPlan::parse("chop=2:150").unwrap();
        assert_eq!(p.snapshot_chop, Some(SnapshotChopSpec { rank: 2, keep_bytes: 150 }));
        assert!(!p.is_none());
        assert_eq!(p.snapshot_chop_for(2), Some(150));
        assert_eq!(p.snapshot_chop_for(1), None);
        assert_eq!(FaultPlan::none().snapshot_chop_for(0), None);
        assert!(FaultPlan::parse("chop=2").is_err(), "chop needs RANK:BYTES");
        assert!(FaultPlan::parse("chop=x:10").is_err());
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("drop=1.5").is_err());
        assert!(FaultPlan::parse("drop=x").is_err());
        assert!(FaultPlan::parse("unknown=1").is_err());
        assert!(FaultPlan::parse("delay=0.5").is_err());
        assert!(FaultPlan::parse("delay=0.5:10").is_err(), "duration without suffix");
        assert!(FaultPlan::parse("stall=1:0:1ms").is_err(), "every must be >= 1");
        assert!(FaultPlan::parse("seed").is_err(), "clause without =");
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
    }

    #[test]
    fn parse_durations() {
        assert_eq!(parse_duration("7us").unwrap(), Duration::from_micros(7));
        assert_eq!(parse_duration("3ms").unwrap(), Duration::from_millis(3));
        assert_eq!(parse_duration("2s").unwrap(), Duration::from_secs(2));
        assert!(parse_duration("abcms").is_err());
        assert!(parse_duration("12m").is_err());
    }
}
