//! Spawning rank universes.

use crate::comm::{Comm, Shared};
use crate::fault::FaultPlan;
use crate::topology::Topology;
use std::sync::Arc;

/// A fixed-size set of ranks executed on OS threads (compare `mpirun -np`).
///
/// ```
/// use mpisim::Universe;
/// let sums = Universe::new(4).run(|comm| comm.allreduce_sum_u64(comm.rank() as u64));
/// assert_eq!(sums, vec![6, 6, 6, 6]);
/// ```
pub struct Universe {
    np: usize,
    topology: Topology,
    fault: FaultPlan,
}

impl Universe {
    /// A universe of `np` ranks on a single node.
    pub fn new(np: usize) -> Universe {
        assert!(np > 0, "need at least one rank");
        Universe { np, topology: Topology::single_node(), fault: FaultPlan::none() }
    }

    /// A universe of `np` ranks with an explicit node layout.
    pub fn with_topology(np: usize, topology: Topology) -> Universe {
        assert!(np > 0, "need at least one rank");
        Universe { np, topology, fault: FaultPlan::none() }
    }

    /// Install a fault plan: every rank's [`Comm`] applies it to the
    /// point-to-point plane (see [`crate::fault`]).
    pub fn with_fault_plan(mut self, fault: FaultPlan) -> Universe {
        if let Some(k) = fault.kill {
            assert!(k.rank < self.np, "killed rank {} out of range", k.rank);
        }
        self.fault = fault;
        self
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.np
    }

    /// Run `f` once per rank on its own thread; returns the per-rank
    /// results in rank order. Panics in any rank propagate after all
    /// ranks have been joined (a rank panic usually deadlocks peers
    /// waiting on it in real MPI too — here remaining ranks blocked on a
    /// vanished peer would hang, so keep rank bodies panic-free except in
    /// tests that expect full-universe completion).
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Comm) -> T + Sync,
    {
        let shared = Arc::new(Shared::new(self.np, self.topology, self.fault));
        let comms: Vec<Comm> = (0..self.np).map(|r| Comm::new(r, Arc::clone(&shared))).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .iter()
                .map(|comm| {
                    let f = &f;
                    scope.spawn(move || f(comm))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_numbered_in_order() {
        let ids = Universe::new(8).run(|comm| (comm.rank(), comm.size()));
        for (i, (rank, size)) in ids.into_iter().enumerate() {
            assert_eq!(rank, i);
            assert_eq!(size, 8);
        }
    }

    #[test]
    fn topology_visible_to_ranks() {
        let t = Topology::new(4);
        let nodes = Universe::with_topology(8, t).run(|comm| comm.topology().node_of(comm.rank()));
        assert_eq!(nodes, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn large_universe_runs() {
        // 128 ranks of trivial work: ensures thread spawning scales to the
        // rank counts the integration tests use.
        let sums = Universe::new(128).run(|comm| comm.allreduce_sum_u64(1));
        assert!(sums.into_iter().all(|s| s == 128));
    }
}
