//! Per-rank communicator handles and point-to-point messaging.
//!
//! Semantics follow MPI:
//!
//! * messages between a fixed (src, dst) pair are delivered in send order;
//! * `recv`/`probe` match on `(Source, TagSel)` selectors, where either
//!   side may be a wildcard (`MPI_ANY_SOURCE`, `MPI_ANY_TAG`);
//! * [`Comm::probe`] blocks until a matching message is pending and
//!   returns its envelope without consuming it — exactly what the paper's
//!   communication thread does ("the communication thread of each rank
//!   probes any incoming messages – based on the probe, it first finds
//!   out the nature of the request", §III step IV);
//! * a [`Comm`] may be used from several threads of its rank concurrently
//!   (the worker + communication thread pair of step IV).

use crate::collectives::CollectiveState;
use crate::fault::FaultPlan;
use crate::message::{Message, MessageInfo};
use crate::stats::RankStats;
use crate::topology::Topology;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Source selector for receives and probes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// Match any sender (`MPI_ANY_SOURCE`).
    Any,
    /// Match one specific rank.
    Rank(usize),
}

/// Tag selector for receives and probes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TagSel {
    /// Match any tag (`MPI_ANY_TAG`).
    Any,
    /// Match one specific tag.
    Tag(u32),
}

impl Source {
    #[inline]
    fn matches(self, src: usize) -> bool {
        match self {
            Source::Any => true,
            Source::Rank(r) => r == src,
        }
    }
}

impl TagSel {
    #[inline]
    fn matches(self, tag: u32) -> bool {
        match self {
            TagSel::Any => true,
            TagSel::Tag(t) => t == tag,
        }
    }
}

pub(crate) struct Mailbox {
    queue: Mutex<VecDeque<Message>>,
    arrived: Condvar,
}

impl Mailbox {
    fn new() -> Mailbox {
        Mailbox { queue: Mutex::new(VecDeque::new()), arrived: Condvar::new() }
    }
}

pub(crate) struct Shared {
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) collectives: CollectiveState,
    pub(crate) stats: Vec<RankStats>,
    pub(crate) topology: Topology,
    pub(crate) fault: FaultPlan,
    /// Per-edge message counters (row-major `src*np + dst`) feeding the
    /// deterministic per-message fault decisions.
    edge_seq: Vec<AtomicU64>,
    /// Per-rank operation counters (sends + collectives) for the stall
    /// fault's every-n-th schedule.
    op_seq: Vec<AtomicU64>,
}

impl Shared {
    pub(crate) fn new(np: usize, topology: Topology, fault: FaultPlan) -> Shared {
        Shared {
            mailboxes: (0..np).map(|_| Mailbox::new()).collect(),
            collectives: CollectiveState::new(np),
            stats: (0..np).map(|_| RankStats::default()).collect(),
            topology,
            fault,
            edge_seq: (0..np * np).map(|_| AtomicU64::new(0)).collect(),
            op_seq: (0..np).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Apply the stall fault for one operation on `rank` (send or
    /// collective). No-op without a matching stall spec.
    pub(crate) fn stall_tick(&self, rank: usize) {
        if let Some(st) = self.fault.stall {
            if st.rank == rank {
                let n = self.op_seq[rank].fetch_add(1, Ordering::Relaxed);
                if n.is_multiple_of(st.every) {
                    self.stats[rank].count_fault_stalled();
                    std::thread::sleep(st.pause);
                }
            }
        }
    }
}

/// A rank's communicator: the only way ranks exchange data.
#[derive(Clone)]
pub struct Comm {
    rank: usize,
    shared: Arc<Shared>,
}

impl Comm {
    pub(crate) fn new(rank: usize, shared: Arc<Shared>) -> Comm {
        Comm { rank, shared }
    }

    /// This rank's id (`MPI_Comm_rank`).
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks (`MPI_Comm_size`).
    #[inline]
    pub fn size(&self) -> usize {
        self.shared.mailboxes.len()
    }

    /// The node/rank layout this universe was configured with.
    #[inline]
    pub fn topology(&self) -> Topology {
        self.shared.topology
    }

    /// Send `payload` to `dst` with `tag`. Buffered & non-blocking, like a
    /// small-message `MPI_Send` in practice.
    ///
    /// If the universe carries a [`FaultPlan`], it is applied here: the
    /// message may be dropped, duplicated, reordered, or delayed, and
    /// messages on a severed edge (either endpoint killed) are discarded.
    pub fn send(&self, dst: usize, tag: u32, payload: Vec<u8>) {
        let nbytes = payload.len();
        let intra = self.shared.topology.same_node(self.rank, dst);
        let stats = &self.shared.stats[self.rank];
        stats.count_send(nbytes, intra);
        let fault = &self.shared.fault;
        let mut duplicated = false;
        let mut reordered = false;
        if !fault.is_none() {
            self.shared.stall_tick(self.rank);
            if fault.severed(self.rank, dst) {
                stats.count_fault_dropped();
                return;
            }
            let n = self.edge_tick(dst);
            let d = fault.decide(self.rank, dst, n);
            if d.delayed {
                stats.count_fault_delayed();
                std::thread::sleep(fault.delay);
            }
            if d.dropped {
                stats.count_fault_dropped();
                return;
            }
            duplicated = d.duplicated;
            reordered = d.reordered;
        }
        let mailbox = &self.shared.mailboxes[dst];
        {
            let mut q = mailbox.queue.lock();
            let msg = Message { src: self.rank, tag, payload };
            if duplicated {
                stats.count_fault_duplicated();
                q.push_back(msg.clone());
            }
            if reordered && !q.is_empty() {
                stats.count_fault_reordered();
                let at = q.len() - 1;
                q.insert(at, msg);
            } else {
                q.push_back(msg);
            }
        }
        mailbox.arrived.notify_all();
    }

    fn edge_tick(&self, dst: usize) -> u64 {
        let np = self.shared.mailboxes.len();
        self.shared.edge_seq[self.rank * np + dst].fetch_add(1, Ordering::Relaxed)
    }

    /// [`send`](Comm::send) from a borrowed buffer: one exact-size copy
    /// into the transfer payload, so callers can reuse a scratch
    /// serialization buffer across messages (MPI semantics — the send
    /// buffer is the caller's to reuse once the call returns).
    pub fn send_from_slice(&self, dst: usize, tag: u32, payload: &[u8]) {
        self.send(dst, tag, payload.to_vec());
    }

    /// Blocking receive of the first pending message matching the
    /// selectors (`MPI_Recv`).
    pub fn recv(&self, src: Source, tag: TagSel) -> Message {
        let mailbox = &self.shared.mailboxes[self.rank];
        let mut q = mailbox.queue.lock();
        loop {
            if let Some(i) = q.iter().position(|m| src.matches(m.src) && tag.matches(m.tag)) {
                let msg = q.remove(i).expect("index valid under lock");
                self.shared.stats[self.rank].count_recv(msg.payload.len());
                return msg;
            }
            mailbox.arrived.wait(&mut q);
        }
    }

    /// Blocking receive with a deadline: like [`recv`](Comm::recv), but
    /// returns `None` if no matching message arrives within `timeout`.
    /// This is the primitive under the Step IV retry protocol — an MPI
    /// code expresses it as `MPI_Irecv` + `MPI_Test` in a timed loop.
    pub fn recv_deadline(&self, src: Source, tag: TagSel, timeout: Duration) -> Option<Message> {
        let deadline = Instant::now() + timeout;
        let mailbox = &self.shared.mailboxes[self.rank];
        let mut q = mailbox.queue.lock();
        loop {
            if let Some(i) = q.iter().position(|m| src.matches(m.src) && tag.matches(m.tag)) {
                let msg = q.remove(i).expect("index valid under lock");
                self.shared.stats[self.rank].count_recv(msg.payload.len());
                return Some(msg);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            mailbox.arrived.wait_for(&mut q, deadline - now);
        }
    }

    /// Non-blocking receive (`MPI_Irecv` + immediate test).
    pub fn try_recv(&self, src: Source, tag: TagSel) -> Option<Message> {
        let mailbox = &self.shared.mailboxes[self.rank];
        let mut q = mailbox.queue.lock();
        let i = q.iter().position(|m| src.matches(m.src) && tag.matches(m.tag))?;
        let msg = q.remove(i).expect("index valid under lock");
        self.shared.stats[self.rank].count_recv(msg.payload.len());
        Some(msg)
    }

    /// Blocking probe (`MPI_Probe`): wait until a matching message is
    /// pending and describe it without consuming it.
    pub fn probe(&self, src: Source, tag: TagSel) -> MessageInfo {
        let mailbox = &self.shared.mailboxes[self.rank];
        let mut q = mailbox.queue.lock();
        loop {
            if let Some(m) = q.iter().find(|m| src.matches(m.src) && tag.matches(m.tag)) {
                return MessageInfo { src: m.src, tag: m.tag, len: m.payload.len() };
            }
            mailbox.arrived.wait(&mut q);
        }
    }

    /// Blocking probe over a *set* of tags: wait until a message with any
    /// of `tags` is pending. This is how a server thread that must not
    /// consume other threads' traffic (e.g. step IV's communication
    /// thread, which must leave count responses to the worker) waits; an
    /// MPI code expresses the same thing as an `MPI_Iprobe` loop over the
    /// tag list.
    pub fn probe_tags(&self, src: Source, tags: &[u32]) -> MessageInfo {
        let mailbox = &self.shared.mailboxes[self.rank];
        let mut q = mailbox.queue.lock();
        loop {
            if let Some(m) = q.iter().find(|m| src.matches(m.src) && tags.contains(&m.tag)) {
                return MessageInfo { src: m.src, tag: m.tag, len: m.payload.len() };
            }
            mailbox.arrived.wait(&mut q);
        }
    }

    /// [`probe_tags`](Comm::probe_tags) with a deadline: returns `None`
    /// if no matching message is pending within `timeout`. The Step IV
    /// comm thread polls with this so it can notice its shutdown flag
    /// (or its own death under a fault plan) instead of blocking forever
    /// on traffic that will never come.
    pub fn probe_tags_deadline(
        &self,
        src: Source,
        tags: &[u32],
        timeout: Duration,
    ) -> Option<MessageInfo> {
        let deadline = Instant::now() + timeout;
        let mailbox = &self.shared.mailboxes[self.rank];
        let mut q = mailbox.queue.lock();
        loop {
            if let Some(m) = q.iter().find(|m| src.matches(m.src) && tags.contains(&m.tag)) {
                return Some(MessageInfo { src: m.src, tag: m.tag, len: m.payload.len() });
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            mailbox.arrived.wait_for(&mut q, deadline - now);
        }
    }

    /// Non-blocking probe (`MPI_Iprobe`).
    pub fn iprobe(&self, src: Source, tag: TagSel) -> Option<MessageInfo> {
        let mailbox = &self.shared.mailboxes[self.rank];
        let q = mailbox.queue.lock();
        q.iter().find(|m| src.matches(m.src) && tag.matches(m.tag)).map(|m| MessageInfo {
            src: m.src,
            tag: m.tag,
            len: m.payload.len(),
        })
    }

    /// The fault plan this universe runs under ([`FaultPlan::none`] by
    /// default).
    pub fn fault_plan(&self) -> FaultPlan {
        self.shared.fault
    }

    /// Snapshot this rank's traffic counters.
    pub fn stats(&self) -> crate::stats::RankStatsSnapshot {
        self.shared.stats[self.rank].snapshot()
    }

    pub(crate) fn shared(&self) -> &Shared {
        &self.shared
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn ring_pass() {
        let results = Universe::new(4).run(|comm| {
            let next = (comm.rank() + 1) % comm.size();
            comm.send(next, 0, vec![comm.rank() as u8]);
            let msg = comm.recv(Source::Any, TagSel::Any);
            (msg.src, msg.payload[0] as usize)
        });
        for (rank, (src, val)) in results.into_iter().enumerate() {
            let prev = (rank + 3) % 4;
            assert_eq!(src, prev);
            assert_eq!(val, prev);
        }
    }

    #[test]
    fn per_pair_fifo_order() {
        let results = Universe::new(2).run(|comm| {
            if comm.rank() == 0 {
                for i in 0..100u8 {
                    comm.send(1, 0, vec![i]);
                }
                Vec::new()
            } else {
                (0..100).map(|_| comm.recv(Source::Rank(0), TagSel::Tag(0)).payload[0]).collect()
            }
        });
        assert_eq!(results[1], (0..100).collect::<Vec<u8>>());
    }

    #[test]
    fn tag_selection_skips_non_matching() {
        let results = Universe::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, b"seven".to_vec());
                comm.send(1, 9, b"nine".to_vec());
                (Vec::new(), Vec::new())
            } else {
                // Receive tag 9 first even though tag 7 arrived first.
                let nine = comm.recv(Source::Any, TagSel::Tag(9)).payload;
                let seven = comm.recv(Source::Any, TagSel::Tag(7)).payload;
                (nine, seven)
            }
        });
        assert_eq!(results[1].0, b"nine");
        assert_eq!(results[1].1, b"seven");
    }

    #[test]
    fn probe_then_recv() {
        let results = Universe::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, vec![1, 2, 3, 4]);
                0
            } else {
                let info = comm.probe(Source::Any, TagSel::Any);
                assert_eq!(info.src, 0);
                assert_eq!(info.tag, 3);
                assert_eq!(info.len, 4);
                // message still pending after probe
                let msg = comm.recv(Source::Rank(info.src), TagSel::Tag(info.tag));
                msg.payload.len()
            }
        });
        assert_eq!(results[1], 4);
    }

    #[test]
    fn iprobe_and_try_recv_nonblocking() {
        Universe::new(2).run(|comm| {
            if comm.rank() == 1 {
                // nothing can be in flight before the barrier below, so
                // the non-blocking calls must report empty
                assert!(comm.iprobe(Source::Any, TagSel::Any).is_none());
                assert!(comm.try_recv(Source::Any, TagSel::Any).is_none());
                comm.barrier();
                let info = loop {
                    if let Some(i) = comm.iprobe(Source::Rank(0), TagSel::Tag(5)) {
                        break i;
                    }
                    std::thread::yield_now();
                };
                assert_eq!(info.len, 1);
                assert!(comm.try_recv(Source::Rank(0), TagSel::Tag(5)).is_some());
            } else {
                // send only after rank 1 has performed its empty checks
                comm.barrier();
                comm.send(1, 5, vec![9]);
            }
        });
    }

    #[test]
    fn multithreaded_rank_worker_plus_comm_thread() {
        // Mimic step IV: rank 0 runs a worker thread sending requests and a
        // comm thread answering rank 1's requests concurrently.
        let results = Universe::new(2).run(|comm| {
            const REQ: u32 = 1;
            const RESP: u32 = 2;
            const SHUTDOWN: u32 = 3;
            let me = comm.rank();
            let peer = 1 - me;
            let mut answered = 0u32;
            let mut got = Vec::new();
            std::thread::scope(|s| {
                // communication thread: answer until shutdown. It must
                // probe only the tags it owns — an ANY_TAG probe would
                // also surface RESP messages addressed to the worker.
                let server = s.spawn(|| {
                    let mut count = 0;
                    loop {
                        let info = comm.probe_tags(Source::Any, &[REQ, SHUTDOWN]);
                        match info.tag {
                            REQ => {
                                let m = comm.recv(Source::Rank(info.src), TagSel::Tag(REQ));
                                comm.send(m.src, RESP, vec![m.payload[0] * 2]);
                                count += 1;
                            }
                            SHUTDOWN => {
                                let _ = comm.recv(Source::Rank(info.src), TagSel::Tag(SHUTDOWN));
                                break;
                            }
                            _ => unreachable!("probe_tags filtered"),
                        }
                    }
                    count
                });
                // worker thread: issue 50 requests to the peer
                let worker = s.spawn(|| {
                    let mut results = Vec::new();
                    for i in 0..50u8 {
                        comm.send(peer, REQ, vec![i]);
                        let resp = comm.recv(Source::Rank(peer), TagSel::Tag(RESP));
                        results.push(resp.payload[0]);
                    }
                    results
                });
                got = worker.join().unwrap();
                // both workers done before shutting down servers
                comm.barrier();
                comm.send(peer, SHUTDOWN, Vec::new());
                answered = server.join().unwrap();
            });
            (got, answered)
        });
        for (got, answered) in results {
            assert_eq!(got, (0..50).map(|i| i * 2).collect::<Vec<u8>>());
            assert_eq!(answered, 50);
        }
    }

    #[test]
    fn recv_deadline_times_out_then_delivers() {
        Universe::new(2).run(|comm| {
            if comm.rank() == 1 {
                // nothing pending: must time out
                let t0 = std::time::Instant::now();
                let none = comm.recv_deadline(Source::Any, TagSel::Any, Duration::from_millis(20));
                assert!(none.is_none());
                assert!(t0.elapsed() >= Duration::from_millis(20));
                comm.barrier();
                // sender released: must deliver well within the deadline
                let msg = comm
                    .recv_deadline(Source::Rank(0), TagSel::Tag(4), Duration::from_secs(10))
                    .expect("message sent after barrier");
                assert_eq!(msg.payload, vec![7]);
            } else {
                comm.barrier();
                comm.send(1, 4, vec![7]);
            }
        });
    }

    #[test]
    fn probe_tags_deadline_times_out_without_traffic() {
        Universe::new(2).run(|comm| {
            if comm.rank() == 1 {
                assert!(comm
                    .probe_tags_deadline(Source::Any, &[9], Duration::from_millis(10))
                    .is_none());
                comm.barrier();
                let info = comm
                    .probe_tags_deadline(Source::Any, &[9], Duration::from_secs(10))
                    .expect("pending after barrier");
                assert_eq!(info.tag, 9);
                assert!(comm.try_recv(Source::Rank(0), TagSel::Tag(9)).is_some());
            } else {
                comm.barrier();
                comm.send(1, 9, vec![1]);
            }
        });
    }

    #[test]
    fn fault_drop_all_loses_messages() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan { seed: 1, drop_p: 1.0, ..FaultPlan::none() };
        let results = Universe::new(2).with_fault_plan(plan).run(|comm| {
            if comm.rank() == 0 {
                for i in 0..10u8 {
                    comm.send(1, 0, vec![i]);
                }
            }
            comm.barrier();
            (comm.try_recv(Source::Any, TagSel::Any).is_none(), comm.stats())
        });
        assert!(results[1].0, "all messages dropped");
        assert_eq!(results[0].1.faults_dropped, 10);
        assert_eq!(results[0].1.p2p_sent_msgs, 10, "sends are counted even when lost");
        assert_eq!(results[1].1.p2p_recv_msgs, 0);
    }

    #[test]
    fn fault_duplicate_all_doubles_messages() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan { seed: 1, dup_p: 1.0, ..FaultPlan::none() };
        let results = Universe::new(2).with_fault_plan(plan).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![5]);
            }
            comm.barrier();
            let mut got = Vec::new();
            while let Some(m) = comm.try_recv(Source::Any, TagSel::Any) {
                got.push(m.payload[0]);
            }
            (got, comm.stats())
        });
        assert_eq!(results[1].0, vec![5, 5]);
        assert_eq!(results[0].1.faults_duplicated, 1);
    }

    #[test]
    fn fault_reorder_swaps_adjacent_pending() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan { seed: 1, reorder_p: 1.0, ..FaultPlan::none() };
        let results = Universe::new(2).with_fault_plan(plan).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![1]);
                comm.send(1, 0, vec![2]);
                comm.send(1, 0, vec![3]);
            }
            comm.barrier();
            let mut got = Vec::new();
            while let Some(m) = comm.try_recv(Source::Any, TagSel::Any) {
                got.push(m.payload[0]);
            }
            got
        });
        // every enqueue after the first jumps ahead of the previous
        // pending message: 1 | 2,1 | 2,3,1
        assert_eq!(results[1], vec![2, 3, 1]);
    }

    #[test]
    fn fault_kill_severs_both_directions() {
        use crate::fault::{FaultPlan, KillSpec};
        let plan = FaultPlan { kill: Some(KillSpec { rank: 1 }), ..FaultPlan::none() };
        let results = Universe::new(3).with_fault_plan(plan).run(|comm| {
            let me = comm.rank();
            // everyone sends to everyone else
            for dst in 0..comm.size() {
                if dst != me {
                    comm.send(dst, 0, vec![me as u8]);
                }
            }
            comm.barrier();
            let mut got = Vec::new();
            while let Some(m) = comm.try_recv(Source::Any, TagSel::Any) {
                got.push(m.payload[0]);
            }
            got.sort_unstable();
            got
        });
        assert_eq!(results[0], vec![2], "rank 1's message to rank 0 lost");
        assert!(results[1].is_empty(), "killed rank receives nothing");
        assert_eq!(results[2], vec![0]);
    }

    #[test]
    fn fault_determinism_same_plan_same_outcome() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan { seed: 77, drop_p: 0.4, dup_p: 0.2, ..FaultPlan::none() };
        let run = || {
            Universe::new(2).with_fault_plan(plan).run(|comm| {
                if comm.rank() == 0 {
                    for i in 0..50u8 {
                        comm.send(1, 0, vec![i]);
                    }
                }
                comm.barrier();
                let mut got = Vec::new();
                while let Some(m) = comm.try_recv(Source::Any, TagSel::Any) {
                    got.push(m.payload[0]);
                }
                got
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same faults, same delivery");
        assert!(a[1].len() < 50, "some of the 50 messages dropped at p=0.4");
        assert!(!a[1].is_empty(), "not all dropped at p=0.4");
    }

    #[test]
    fn fault_stall_pauses_the_stalled_rank() {
        use crate::fault::{FaultPlan, StallSpec};
        let plan = FaultPlan {
            stall: Some(StallSpec { rank: 0, every: 1, pause: Duration::from_millis(5) }),
            ..FaultPlan::none()
        };
        let results = Universe::new(2).with_fault_plan(plan).run(|comm| {
            let t0 = std::time::Instant::now();
            if comm.rank() == 0 {
                for _ in 0..4 {
                    comm.send(1, 0, vec![0]);
                }
            } else {
                for _ in 0..4 {
                    comm.recv(Source::Any, TagSel::Any);
                }
            }
            (t0.elapsed(), comm.stats())
        });
        assert!(results[0].0 >= Duration::from_millis(20), "4 stalled sends >= 4 * 5ms");
        assert_eq!(results[0].1.faults_stalled, 4);
        assert_eq!(results[1].1.faults_stalled, 0);
    }

    #[test]
    fn stats_count_traffic() {
        let results = Universe::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0; 10]);
                comm.send(1, 0, vec![0; 20]);
            } else {
                comm.recv(Source::Any, TagSel::Any);
                comm.recv(Source::Any, TagSel::Any);
            }
            comm.barrier();
            comm.stats()
        });
        assert_eq!(results[0].p2p_sent_msgs, 2);
        assert_eq!(results[0].p2p_sent_bytes, 30);
        assert_eq!(results[1].p2p_recv_msgs, 2);
        assert_eq!(results[1].p2p_recv_bytes, 30);
    }
}
