//! Message envelopes and fixed-width wire codecs.
//!
//! Point-to-point payloads are byte vectors, as in MPI: the application
//! serializes its request/response structs explicitly. The codec helpers
//! here are what an MPI code would express with derived datatypes —
//! little-endian fixed-width integers, no framing overhead.

/// A delivered point-to-point message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// Application tag (compare MPI's `tag`).
    pub tag: u32,
    /// Owned payload bytes.
    pub payload: Vec<u8>,
}

/// Result of a (successful) probe: everything about a pending message
/// except its payload (compare `MPI_Status` after `MPI_Probe`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageInfo {
    /// Sending rank.
    pub src: usize,
    /// Application tag.
    pub tag: u32,
    /// Payload length in bytes (compare `MPI_Get_count`).
    pub len: usize,
}

/// Incremental little-endian writer for wire payloads.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Create a writer, pre-sizing the buffer.
    pub fn with_capacity(cap: usize) -> WireWriter {
        WireWriter { buf: Vec::with_capacity(cap) }
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u128`.
    pub fn put_u128(&mut self, v: u128) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an `i64`.
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a `u32`-length-prefixed vector of `u64` (a derived
    /// datatype for batched key requests).
    pub fn put_u64s(&mut self, vs: &[u64]) -> &mut Self {
        self.put_u32(vs.len() as u32);
        self.buf.reserve(8 * vs.len());
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// Append a `u32`-length-prefixed vector of `u128`.
    pub fn put_u128s(&mut self, vs: &[u128]) -> &mut Self {
        self.put_u32(vs.len() as u32);
        self.buf.reserve(16 * vs.len());
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// Append a `u32`-length-prefixed vector of `i64` (batched counts).
    pub fn put_i64s(&mut self, vs: &[i64]) -> &mut Self {
        self.put_u32(vs.len() as u32);
        self.buf.reserve(8 * vs.len());
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// Finish and take the payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Clear the buffer for reuse, keeping its allocation (hot request/
    /// response paths reuse one scratch writer instead of allocating
    /// per message).
    pub fn reset(&mut self) -> &mut Self {
        self.buf.clear();
        self
    }

    /// The bytes written so far, without consuming the writer.
    pub fn payload(&self) -> &[u8] {
        &self.buf
    }
}

/// Incremental little-endian reader for wire payloads.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wrap a payload.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Read a `u128`.
    pub fn get_u128(&mut self) -> u128 {
        u128::from_le_bytes(self.take(16).try_into().unwrap())
    }

    /// Read an `i64`.
    pub fn get_i64(&mut self) -> i64 {
        i64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Read a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> &'a [u8] {
        let n = self.get_u64() as usize;
        self.take(n)
    }

    /// Read a `u32`-length-prefixed vector of `u64`.
    pub fn get_u64s(&mut self) -> Vec<u64> {
        let n = self.get_u32() as usize;
        (0..n).map(|_| self.get_u64()).collect()
    }

    /// Read a `u32`-length-prefixed vector of `u128`.
    pub fn get_u128s(&mut self) -> Vec<u128> {
        let n = self.get_u32() as usize;
        (0..n).map(|_| self.get_u128()).collect()
    }

    /// Read a `u32`-length-prefixed vector of `i64`.
    pub fn get_i64s(&mut self) -> Vec<i64> {
        let n = self.get_u32() as usize;
        (0..n).map(|_| self.get_i64()).collect()
    }

    /// Bytes remaining past the cursor.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_round_trip() {
        let mut w = WireWriter::with_capacity(64);
        w.put_u8(7).put_u32(0xDEAD_BEEF).put_u64(u64::MAX).put_u128(1u128 << 100);
        w.put_i64(-42).put_bytes(b"hello");
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), u64::MAX);
        assert_eq!(r.get_u128(), 1u128 << 100);
        assert_eq!(r.get_i64(), -42);
        assert_eq!(r.get_bytes(), b"hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn reader_panics_on_underflow() {
        let mut r = WireReader::new(&[1, 2]);
        let _ = r.get_u64();
    }

    #[test]
    fn empty_bytes_round_trip() {
        let mut w = WireWriter::default();
        w.put_bytes(b"");
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.get_bytes(), b"");
    }

    #[test]
    fn vector_payloads_round_trip() {
        let ks = vec![0u64, 1, u64::MAX, 0x1234_5678_9ABC_DEF0];
        let ts = vec![u128::MAX, 0, 1u128 << 100];
        let cs = vec![-1i64, 0, i64::MAX, i64::MIN];
        let mut w = WireWriter::with_capacity(16);
        w.put_u64s(&ks).put_u128s(&ts).put_i64s(&cs).put_u64s(&[]);
        let buf = w.finish();
        assert_eq!(buf.len(), 4 + 8 * 4 + 4 + 16 * 3 + 4 + 8 * 4 + 4);
        let mut r = WireReader::new(&buf);
        assert_eq!(r.get_u64s(), ks);
        assert_eq!(r.get_u128s(), ts);
        assert_eq!(r.get_i64s(), cs);
        assert_eq!(r.get_u64s(), Vec::<u64>::new());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reset_keeps_allocation_and_clears_content() {
        let mut w = WireWriter::with_capacity(8);
        w.put_u64(7);
        assert_eq!(w.payload().len(), 8);
        w.reset();
        assert_eq!(w.payload(), b"");
        w.put_u8(1);
        assert_eq!(w.finish(), vec![1]);
    }
}
