//! Message envelopes and fixed-width wire codecs.
//!
//! Point-to-point payloads are byte vectors, as in MPI: the application
//! serializes its request/response structs explicitly. The codec helpers
//! here are what an MPI code would express with derived datatypes —
//! little-endian fixed-width integers, no framing overhead.

/// A delivered point-to-point message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// Application tag (compare MPI's `tag`).
    pub tag: u32,
    /// Owned payload bytes.
    pub payload: Vec<u8>,
}

/// Result of a (successful) probe: everything about a pending message
/// except its payload (compare `MPI_Status` after `MPI_Probe`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageInfo {
    /// Sending rank.
    pub src: usize,
    /// Application tag.
    pub tag: u32,
    /// Payload length in bytes (compare `MPI_Get_count`).
    pub len: usize,
}

/// Incremental little-endian writer for wire payloads.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Create a writer, pre-sizing the buffer.
    pub fn with_capacity(cap: usize) -> WireWriter {
        WireWriter { buf: Vec::with_capacity(cap) }
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u128`.
    pub fn put_u128(&mut self, v: u128) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an `i64`.
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    /// Finish and take the payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Incremental little-endian reader for wire payloads.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wrap a payload.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Read a `u128`.
    pub fn get_u128(&mut self) -> u128 {
        u128::from_le_bytes(self.take(16).try_into().unwrap())
    }

    /// Read an `i64`.
    pub fn get_i64(&mut self) -> i64 {
        i64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Read a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> &'a [u8] {
        let n = self.get_u64() as usize;
        self.take(n)
    }

    /// Bytes remaining past the cursor.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_round_trip() {
        let mut w = WireWriter::with_capacity(64);
        w.put_u8(7).put_u32(0xDEAD_BEEF).put_u64(u64::MAX).put_u128(1u128 << 100);
        w.put_i64(-42).put_bytes(b"hello");
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), u64::MAX);
        assert_eq!(r.get_u128(), 1u128 << 100);
        assert_eq!(r.get_i64(), -42);
        assert_eq!(r.get_bytes(), b"hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn reader_panics_on_underflow() {
        let mut r = WireReader::new(&[1, 2]);
        let _ = r.get_u64();
    }

    #[test]
    fn empty_bytes_round_trip() {
        let mut w = WireWriter::default();
        w.put_bytes(b"");
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.get_bytes(), b"");
    }
}
