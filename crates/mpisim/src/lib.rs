//! An in-process MPI-like message-passing runtime.
//!
//! The paper's implementation is an MPI program for IBM BlueGene/Q. This
//! crate provides the message-passing substrate the reproduction runs on:
//! ranks are OS threads inside one process, connected by mailboxes that
//! implement MPI's point-to-point semantics (tags, `ANY_SOURCE` /
//! `ANY_TAG`, `MPI_Probe` / `MPI_Iprobe`, per-pair FIFO ordering) and the
//! collectives the paper uses (`MPI_Barrier`, `MPI_Alltoallv`,
//! `MPI_Allgatherv`, `MPI_Allreduce` — the paper's `MPI_Reduce(MAX)` on
//! batch counts is an allreduce here since every rank needs the result).
//!
//! Because ranks share one address space, "messages" move by `Vec`
//! ownership transfer, which keeps the runtime honest (no shared-state
//! shortcuts in the algorithm code: everything goes through [`Comm`]) and
//! fast enough to run hundreds of ranks in tests.
//!
//! The [`cost`] module provides the BlueGene/Q analytic cost model used by
//! the large-scale virtual engine (see `reptile-dist`) to translate
//! counted work and traffic into modeled seconds; [`topology`] describes
//! the node/rank layout (ranks per node, intra- vs inter-node links);
//! [`fault`] provides deterministic seeded fault injection (message drop /
//! duplicate / reorder / delay, rank stall and kill) on the
//! point-to-point plane, installed per-universe via
//! [`Universe::with_fault_plan`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collectives;
pub mod comm;
pub mod cost;
pub mod fault;
pub mod message;
pub mod stats;
pub mod topology;
pub mod trace;
pub mod universe;

pub use collectives::PendingAlltoallv;
pub use comm::{Comm, Source, TagSel};
pub use cost::CostModel;
pub use fault::{chop_file, parse_duration, FaultPlan, KillSpec, SnapshotChopSpec, StallSpec};
pub use message::{Message, MessageInfo};
pub use stats::RankStatsSnapshot;
pub use topology::Topology;
pub use trace::{render_timeline, TraceLog};
pub use universe::Universe;
