//! Stress tests: many ranks, mixed traffic, no deadlocks, nothing lost.

use mpisim::{Source, TagSel, Topology, Universe};

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Every rank sends a known number of messages to pseudo-random peers
/// with pseudo-random tags; total received must equal total sent, and
/// per-pair FIFO must hold per tag stream.
#[test]
fn random_traffic_is_conserved() {
    const NP: usize = 16;
    const MSGS: usize = 300;
    let received = Universe::new(NP).run(|comm| {
        let me = comm.rank();
        // deterministic plan: every rank can compute everyone's sends
        let mut expected_to_me = 0u64;
        for src in 0..NP {
            for i in 0..MSGS {
                let h = mix((src as u64) << 32 | i as u64);
                if (h % NP as u64) as usize == me {
                    expected_to_me += 1;
                }
            }
        }
        // send phase
        for i in 0..MSGS {
            let h = mix((me as u64) << 32 | i as u64);
            let dst = (h % NP as u64) as usize;
            let tag = ((h >> 8) % 4) as u32;
            comm.send(dst, tag, (i as u64).to_le_bytes().to_vec());
        }
        // receive phase: drain exactly the expected number
        let mut got = 0u64;
        let mut last_seen: std::collections::HashMap<(usize, u32), u64> =
            std::collections::HashMap::new();
        while got < expected_to_me {
            let msg = comm.recv(Source::Any, TagSel::Any);
            let seq = u64::from_le_bytes(msg.payload[..8].try_into().unwrap());
            // FIFO within (src, tag): sequence numbers strictly increase
            if let Some(prev) = last_seen.insert((msg.src, msg.tag), seq) {
                assert!(seq > prev, "FIFO violated for ({}, {})", msg.src, msg.tag);
            }
            got += 1;
        }
        comm.barrier();
        assert!(comm.iprobe(Source::Any, TagSel::Any).is_none(), "stray message");
        got
    });
    let total: u64 = received.iter().sum();
    assert_eq!(total, (NP * MSGS) as u64);
}

/// Request/response servers on every rank at once (the step IV pattern at
/// full mesh): every rank both serves and queries; termination via DONE
/// counting. This is the deadlock-prone shape — it must complete.
#[test]
fn full_mesh_request_response() {
    const NP: usize = 8;
    const QUERIES: usize = 120;
    const REQ: u32 = 1;
    const RESP: u32 = 2;
    const DONE: u32 = 3;
    let results = Universe::new(NP).run(|comm| {
        let me = comm.rank();
        let mut answers = Vec::new();
        let mut served = 0u64;
        std::thread::scope(|s| {
            let server = s.spawn(|| {
                let mut done = 0;
                let mut served = 0u64;
                loop {
                    let info = comm.probe_tags(Source::Any, &[REQ, DONE]);
                    if info.tag == DONE {
                        comm.recv(Source::Rank(info.src), TagSel::Tag(DONE));
                        done += 1;
                        if done == NP {
                            return served;
                        }
                        continue;
                    }
                    let m = comm.recv(Source::Rank(info.src), TagSel::Tag(REQ));
                    let x = u64::from_le_bytes(m.payload[..8].try_into().unwrap());
                    comm.send(m.src, RESP, (x * 3).to_le_bytes().to_vec());
                    served += 1;
                }
            });
            for i in 0..QUERIES {
                let peer = (me + 1 + i % (NP - 1)) % NP;
                comm.send(peer, REQ, (i as u64).to_le_bytes().to_vec());
                let resp = comm.recv(Source::Rank(peer), TagSel::Tag(RESP));
                answers.push(u64::from_le_bytes(resp.payload[..8].try_into().unwrap()));
            }
            for dst in 0..NP {
                comm.send(dst, DONE, Vec::new());
            }
            served = server.join().unwrap();
        });
        (answers, served)
    });
    let total_served: u64 = results.iter().map(|(_, s)| s).sum();
    assert_eq!(total_served, (NP * QUERIES) as u64);
    for (answers, _) in results {
        for (i, a) in answers.into_iter().enumerate() {
            assert_eq!(a, i as u64 * 3);
        }
    }
}

/// Collectives interleaved with p2p traffic across a multi-node topology.
#[test]
fn collectives_and_p2p_interleave() {
    const NP: usize = 12;
    let results = Universe::with_topology(NP, Topology::new(4)).run(|comm| {
        let me = comm.rank() as u64;
        let sum1 = comm.allreduce_sum_u64(me);
        comm.send((comm.rank() + 1) % NP, 9, vec![me as u8]);
        let from_prev = comm.recv(Source::Any, TagSel::Tag(9)).payload[0] as usize;
        let gathered = comm.allgatherv(vec![from_prev]);
        let sum2 = comm.allreduce_sum_u64(me * 2);
        (sum1, gathered, sum2)
    });
    let expect: u64 = (0..NP as u64).sum();
    for (sum1, gathered, sum2) in results {
        assert_eq!(sum1, expect);
        assert_eq!(sum2, 2 * expect);
        // gathered[r] = predecessor of r
        for (r, v) in gathered.into_iter().enumerate() {
            assert_eq!(v, vec![(r + NP - 1) % NP]);
        }
    }
}
