//! Property tests for the message-passing runtime.

use mpisim::{Source, TagSel, Universe};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// alltoallv conserves elements: the multiset of (value) items each
    /// rank receives equals the multiset the senders addressed to it.
    #[test]
    fn alltoallv_conserves_elements(
        np in 1usize..=8,
        seed in any::<u64>(),
    ) {
        // Deterministic pseudo-random send matrix derived from the seed.
        let lens: Vec<Vec<usize>> = (0..np)
            .map(|s| (0..np).map(|d| (dnaseq_mix(seed ^ (s as u64) << 8 ^ d as u64) % 7) as usize).collect())
            .collect();
        let lens_ref = &lens;
        let results = Universe::new(np).run(move |comm| {
            let me = comm.rank();
            let send: Vec<Vec<u64>> = (0..np)
                .map(|d| (0..lens_ref[me][d]).map(|i| pack(me, d, i)).collect())
                .collect();
            comm.alltoallv(send)
        });
        for (me, recv) in results.iter().enumerate() {
            prop_assert_eq!(recv.len(), np);
            for (src, items) in recv.iter().enumerate() {
                prop_assert_eq!(items.len(), lens[src][me]);
                for (i, &v) in items.iter().enumerate() {
                    prop_assert_eq!(v, pack(src, me, i));
                }
            }
        }
    }

    /// Any interleaving of tagged sends is fully received per tag.
    #[test]
    fn tagged_traffic_fully_delivered(
        n_msgs in 1usize..40,
    ) {
        let results = Universe::new(3).run(move |comm| {
            match comm.rank() {
                0 | 1 => {
                    for i in 0..n_msgs {
                        comm.send(2, (i % 3) as u32, vec![comm.rank() as u8, i as u8]);
                    }
                    (0, 0, 0)
                }
                _ => {
                    let mut counts = [0usize; 3];
                    for _ in 0..2 * n_msgs {
                        let m = comm.recv(Source::Any, TagSel::Any);
                        counts[m.tag as usize] += 1;
                    }
                    (counts[0], counts[1], counts[2])
                }
            }
        });
        let (a, b, c) = results[2];
        prop_assert_eq!(a + b + c, 2 * n_msgs);
        // per-tag counts follow i % 3 pattern from both senders
        let per_tag = |t: usize| 2 * ((n_msgs + 2 - t) / 3);
        prop_assert_eq!(a, per_tag(0));
        prop_assert_eq!(b, per_tag(1));
        prop_assert_eq!(c, per_tag(2));
    }

    /// allreduce(max) equals the sequential max regardless of np.
    #[test]
    fn allreduce_max_matches_sequential(values in prop::collection::vec(any::<u64>(), 1..12)) {
        let np = values.len();
        let vals = &values;
        let results = Universe::new(np).run(move |comm| {
            comm.allreduce_max_u64(vals[comm.rank()])
        });
        let expect = *values.iter().max().unwrap();
        for r in results {
            prop_assert_eq!(r, expect);
        }
    }
}

fn pack(src: usize, dst: usize, i: usize) -> u64 {
    (src as u64) << 32 | (dst as u64) << 16 | i as u64
}

/// Local copy of a 64-bit mixer (avoid a dev-dependency cycle on dnaseq).
fn dnaseq_mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}
