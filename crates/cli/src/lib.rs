//! Command-line front end for the Reptile reproduction.
//!
//! Two binaries:
//!
//! * `reptile-preprocess` — the dataset-preparation step the paper
//!   performs before running Reptile: FASTQ → numbered FASTA + decimal
//!   quality file pair (§III step I / §IV);
//! * `reptile-correct` — run a correction job from a Reptile-style
//!   config file on either engine (threaded ranks or the virtual
//!   cluster), with every heuristic switchable from flags.
//!
//! Argument parsing is hand-rolled (no external CLI dependency): the
//! grammar is tiny and [`ArgParser`] keeps it testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use reptile::ReptileParams;
use reptile_dist::{HeuristicConfig, RecoveryPolicy};

/// A minimal argument cursor: positionals in order, `--key value` and
/// `--flag` options anywhere.
pub struct ArgParser {
    positionals: Vec<String>,
    options: Vec<(String, Option<String>)>,
}

/// Errors from CLI parsing, with the message to print.
#[derive(Debug, PartialEq, Eq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// Option names that take a value; everything else `--x` is a flag.
const VALUED: &[&str] = &[
    "np",
    "engine",
    "partial-group",
    "hot-shards",
    "chunk-size",
    "replicate",
    "scale",
    "build-threads",
    "memory-budget",
    "fault-plan",
    "lookup-deadline",
    "retry-budget",
    "spectrum-out",
    "spectrum-in",
    "parity",
    "repair-policy",
    "serve",
    "open-loop",
    "queue-depth",
    "serve-batch",
];

impl ArgParser {
    /// Parse raw arguments (without the program name).
    pub fn parse(args: &[String]) -> Result<ArgParser, UsageError> {
        let mut positionals = Vec::new();
        let mut options = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if let Some((k, v)) = name.split_once('=') {
                    options.push((k.to_string(), Some(v.to_string())));
                } else if VALUED.contains(&name) {
                    let v = it
                        .next()
                        .ok_or_else(|| UsageError(format!("--{name} requires a value")))?;
                    options.push((name.to_string(), Some(v.clone())));
                } else {
                    options.push((name.to_string(), None));
                }
            } else {
                positionals.push(a.clone());
            }
        }
        Ok(ArgParser { positionals, options })
    }

    /// Positional argument by index.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(|s| s.as_str())
    }

    /// Number of positionals.
    pub fn n_positionals(&self) -> usize {
        self.positionals.len()
    }

    /// Whether `--name` was given (as a flag or with a value).
    pub fn has(&self, name: &str) -> bool {
        self.options.iter().any(|(k, _)| k == name)
    }

    /// The value of `--name`, if given with one.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(k, v)| k == name && v.is_some())
            .and_then(|(_, v)| v.as_deref())
    }

    /// Parse `--name N` as an integer, with a default.
    pub fn int(&self, name: &str, default: usize) -> Result<usize, UsageError> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| UsageError(format!("--{name}: '{v}' is not an integer")))
            }
        }
    }
}

/// Build the heuristic configuration from parsed flags.
pub fn heuristics_from_args(args: &ArgParser) -> Result<HeuristicConfig, UsageError> {
    let mut heur = HeuristicConfig {
        universal: args.has("universal"),
        batch_reads: args.has("batch-reads"),
        keep_read_tables: args.has("read-tables"),
        cache_remote: args.has("cache-remote"),
        aggregate_lookups: args.has("aggregate"),
        load_balance: !args.has("no-load-balance"),
        steal_chunks: args.has("steal"),
        ..HeuristicConfig::default()
    };
    match args.value("replicate") {
        None => {}
        Some("kmers") => heur.replicate_kmers = true,
        Some("tiles") => heur.replicate_tiles = true,
        Some("both") => {
            heur.replicate_kmers = true;
            heur.replicate_tiles = true;
        }
        Some(other) => {
            return Err(UsageError(format!(
                "--replicate: expected kmers|tiles|both, got '{other}'"
            )))
        }
    }
    heur.partial_group = args.int("partial-group", 1)?;
    heur.hot_shard_k = args.int("hot-shards", 0)?;
    heur.validate().map_err(UsageError)?;
    Ok(heur)
}

/// Parse `--repair-policy strict|repair[:MAX[:rewrite]]` into a
/// [`RecoveryPolicy`]. Absent flag means [`RecoveryPolicy::Strict`]:
/// any damaged shard aborts the load. `repair` alone allows one lost
/// shard per group; `repair:2` allows two; `repair:2:rewrite` also
/// writes the reconstructed shards back to the snapshot directory.
pub fn recovery_from_args(args: &ArgParser) -> Result<RecoveryPolicy, UsageError> {
    let Some(v) = args.value("repair-policy") else {
        return Ok(RecoveryPolicy::Strict);
    };
    if v == "strict" {
        return Ok(RecoveryPolicy::Strict);
    }
    let mut parts = v.split(':');
    if parts.next() != Some("repair") {
        return Err(UsageError(format!(
            "--repair-policy: expected strict|repair[:MAX[:rewrite]], got '{v}'"
        )));
    }
    let max_lost = match parts.next() {
        None => 1,
        Some(n) => n.parse::<usize>().map_err(|_| {
            UsageError(format!("--repair-policy: '{n}' is not a shard count in '{v}'"))
        })?,
    };
    let rewrite = match parts.next() {
        None => false,
        Some("rewrite") => true,
        Some(other) => {
            return Err(UsageError(format!(
                "--repair-policy: expected 'rewrite' after the count, got '{other}' in '{v}'"
            )))
        }
    };
    if parts.next().is_some() {
        return Err(UsageError(format!(
            "--repair-policy: trailing fields after 'rewrite' in '{v}'"
        )));
    }
    Ok(RecoveryPolicy::Repair { max_lost, rewrite })
}

/// One job of a `--serve` batch file: an input (fasta, qual) pair and the
/// corrected-output path.
#[derive(Debug, PartialEq, Eq)]
pub struct ServeBatch {
    /// Input FASTA.
    pub fasta: std::path::PathBuf,
    /// Input quality file.
    pub qual: std::path::PathBuf,
    /// Corrected-output FASTA path.
    pub output: std::path::PathBuf,
}

/// Parse a serve-mode batch file: one `<fasta> <qual> <output>` triple
/// per line; blank lines and `#` comments are skipped. Two jobs naming
/// the same output path are rejected — the later one would silently
/// clobber the earlier one's corrections.
pub fn parse_serve_batches(text: &str) -> Result<Vec<ServeBatch>, UsageError> {
    let mut batches = Vec::new();
    let mut seen_outputs: std::collections::HashMap<std::path::PathBuf, usize> =
        std::collections::HashMap::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        match (fields.next(), fields.next(), fields.next(), fields.next()) {
            (Some(fa), Some(q), Some(o), None) => {
                let output = std::path::PathBuf::from(o);
                if let Some(&first) = seen_outputs.get(&output) {
                    return Err(UsageError(format!(
                        "serve batch line {}: output '{o}' already produced by line {first} — \
                         the later job would clobber it",
                        i + 1
                    )));
                }
                seen_outputs.insert(output.clone(), i + 1);
                batches.push(ServeBatch { fasta: fa.into(), qual: q.into(), output })
            }
            _ => {
                return Err(UsageError(format!(
                    "serve batch line {}: expected '<fasta> <qual> <output>', got '{line}'",
                    i + 1
                )))
            }
        }
    }
    if batches.is_empty() {
        return Err(UsageError("serve batch file lists no jobs".into()));
    }
    Ok(batches)
}

/// Convert a loaded run config into corrector parameters.
pub fn params_from_config(cfg: &genio::RunConfig) -> ReptileParams {
    ReptileParams {
        k: cfg.k,
        tile_overlap: cfg.tile_overlap,
        kmer_threshold: cfg.kmer_threshold,
        tile_threshold: cfg.tile_threshold,
        q_threshold: cfg.q_threshold,
        max_errors_per_tile: cfg.max_errors_per_tile,
        max_positions_per_tile: cfg.max_positions_per_tile,
        max_candidates: cfg.max_candidates,
        canonical: cfg.canonical,
        ..ReptileParams::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ArgParser {
        ArgParser::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn positionals_and_flags() {
        let a = parse(&["run.config", "--universal", "--np", "16", "--engine=virtual"]);
        assert_eq!(a.positional(0), Some("run.config"));
        assert_eq!(a.n_positionals(), 1);
        assert!(a.has("universal"));
        assert_eq!(a.value("np"), Some("16"));
        assert_eq!(a.value("engine"), Some("virtual"));
        assert_eq!(a.int("np", 4).unwrap(), 16);
        assert_eq!(a.int("chunk-size", 2000).unwrap(), 2000);
    }

    #[test]
    fn fault_flags_take_values() {
        let a = parse(&[
            "run.config",
            "--build-threads",
            "4",
            "--fault-plan",
            "seed=7,drop=0.1",
            "--lookup-deadline",
            "25ms",
            "--retry-budget",
            "5",
        ]);
        assert_eq!(a.n_positionals(), 1);
        assert_eq!(a.value("build-threads"), Some("4"));
        assert_eq!(a.value("fault-plan"), Some("seed=7,drop=0.1"));
        assert_eq!(a.value("lookup-deadline"), Some("25ms"));
        assert_eq!(a.int("retry-budget", 0).unwrap(), 5);
    }

    #[test]
    fn missing_value_is_error() {
        let err =
            ArgParser::parse(&["--np".to_string()]).err().expect("np without value must fail");
        assert!(err.0.contains("--np"));
    }

    #[test]
    fn heuristics_mapping() {
        let a = parse(&["c", "--universal", "--batch-reads"]);
        let h = heuristics_from_args(&a).unwrap();
        assert!(h.universal && h.batch_reads && h.load_balance);
        assert!(!h.aggregate_lookups);
        let a = parse(&["c", "--aggregate"]);
        assert!(heuristics_from_args(&a).unwrap().aggregate_lookups);
        let a = parse(&["c", "--replicate", "both", "--no-load-balance"]);
        let h = heuristics_from_args(&a).unwrap();
        assert!(h.replicate_kmers && h.replicate_tiles && !h.load_balance);
        let a = parse(&["c", "--partial-group", "8"]);
        assert_eq!(heuristics_from_args(&a).unwrap().partial_group, 8);
        let a = parse(&["c", "--hot-shards", "2", "--steal"]);
        let h = heuristics_from_args(&a).unwrap();
        assert_eq!(h.hot_shard_k, 2);
        assert!(h.steal_chunks);
    }

    #[test]
    fn invalid_heuristics_rejected() {
        // cache-remote without read-tables
        let a = parse(&["c", "--cache-remote"]);
        assert!(heuristics_from_args(&a).is_err());
        // bad replicate value
        let a = parse(&["c", "--replicate", "everything"]);
        assert!(heuristics_from_args(&a).is_err());
        // partial replication + full replication
        let a = parse(&["c", "--replicate", "tiles", "--partial-group", "4"]);
        assert!(heuristics_from_args(&a).is_err());
    }

    #[test]
    fn snapshot_flags_take_values() {
        let a = parse(&["c", "--spectrum-out", "snap/", "--spectrum-in", "old/", "--serve", "b"]);
        assert_eq!(a.value("spectrum-out"), Some("snap/"));
        assert_eq!(a.value("spectrum-in"), Some("old/"));
        assert_eq!(a.value("serve"), Some("b"));
    }

    #[test]
    fn repair_policy_parses_every_form() {
        let a = parse(&["c"]);
        assert_eq!(recovery_from_args(&a).unwrap(), RecoveryPolicy::Strict);
        let a = parse(&["c", "--repair-policy", "strict"]);
        assert_eq!(recovery_from_args(&a).unwrap(), RecoveryPolicy::Strict);
        let a = parse(&["c", "--repair-policy", "repair"]);
        assert_eq!(
            recovery_from_args(&a).unwrap(),
            RecoveryPolicy::Repair { max_lost: 1, rewrite: false }
        );
        let a = parse(&["c", "--repair-policy", "repair:2"]);
        assert_eq!(
            recovery_from_args(&a).unwrap(),
            RecoveryPolicy::Repair { max_lost: 2, rewrite: false }
        );
        let a = parse(&["c", "--repair-policy=repair:2:rewrite"]);
        assert_eq!(
            recovery_from_args(&a).unwrap(),
            RecoveryPolicy::Repair { max_lost: 2, rewrite: true }
        );
    }

    #[test]
    fn repair_policy_rejects_malformed_values() {
        for bad in ["fix", "repair:x", "repair:1:readonly", "repair:1:rewrite:more", "strict:1", ""]
        {
            let a = parse(&["c", &format!("--repair-policy={bad}")]);
            let err = recovery_from_args(&a);
            assert!(err.is_err(), "'{bad}' must be rejected");
            assert!(err.unwrap_err().0.contains("--repair-policy"));
        }
        // parity flag is valued
        let a = parse(&["c", "--parity", "2"]);
        assert_eq!(a.int("parity", 0).unwrap(), 2);
    }

    #[test]
    fn serve_batches_parse_and_reject() {
        let text = "# corrections to run\n\na.fa a.q out1.fa\n  b.fa b.q out2.fa  \n";
        let batches = parse_serve_batches(text).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].fasta, std::path::PathBuf::from("a.fa"));
        assert_eq!(batches[1].output, std::path::PathBuf::from("out2.fa"));
        assert!(parse_serve_batches("a.fa a.q\n").is_err());
        assert!(parse_serve_batches("a b c d\n").is_err());
        assert!(parse_serve_batches("# nothing\n").is_err());
    }

    #[test]
    fn serve_batches_reject_duplicate_outputs() {
        let text = "# jobs\na.fa a.q out.fa\nb.fa b.q other.fa\n\nc.fa c.q out.fa\n";
        let err = parse_serve_batches(text).expect_err("duplicate output must be rejected");
        // the message names both the clobbering line and the original
        assert!(err.0.contains("line 5"), "missing duplicate line: {err}");
        assert!(err.0.contains("line 2"), "missing original line: {err}");
        assert!(err.0.contains("out.fa"), "missing the path: {err}");
        // distinct outputs stay fine
        assert!(parse_serve_batches("a.fa a.q o1.fa\nb.fa b.q o2.fa\n").is_ok());
    }

    #[test]
    fn serve_tuning_flags_take_values() {
        let a = parse(&[
            "c",
            "--serve",
            "b.txt",
            "--open-loop",
            "50000",
            "--queue-depth",
            "1024",
            "--serve-batch",
            "128",
        ]);
        assert_eq!(a.value("open-loop"), Some("50000"));
        assert_eq!(a.int("queue-depth", 4096).unwrap(), 1024);
        assert_eq!(a.int("serve-batch", 256).unwrap(), 128);
    }

    #[test]
    fn params_from_config_copies_fields() {
        let cfg =
            genio::RunConfig { k: 14, tile_overlap: 7, canonical: true, ..Default::default() };
        let p = params_from_config(&cfg);
        assert_eq!(p.k, 14);
        assert_eq!(p.tile_overlap, 7);
        assert!(p.canonical);
        p.assert_valid();
    }
}
