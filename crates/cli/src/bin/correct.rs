//! `reptile-correct` — run a distributed correction job.
//!
//! ```text
//! reptile-correct <run.config> [options]
//!
//! options:
//!   --np N               number of ranks (default 8)
//!   --engine mt|virtual  threaded ranks (default) or the virtual cluster
//!   --universal          self-describing request messages (§III-B)
//!   --batch-reads        per-chunk spectrum exchange (§III-B)
//!   --read-tables        keep readsKmer/readsTile with global counts
//!   --cache-remote       cache remote answers (needs --read-tables)
//!   --aggregate          batch per-owner lookup aggregation (prefetch)
//!   --replicate X        kmers | tiles | both (allgather heuristics)
//!   --partial-group G    §V partial replication group size
//!   --no-load-balance    disable the static shuffle (§III-A)
//!   --hot-shards K       replicate the K hottest spectrum owners when
//!                        skew detection trips (DESIGN.md §12)
//!   --steal              read-chunk stealing between ranks (gated on
//!                        chunk-load imbalance; bit-identical output)
//!   --chunk-size N       override the config file's chunk size
//!   --build-threads N    extraction workers per rank for the pipelined
//!                        spectrum build (default: all host cores; the
//!                        virtual engine models N workers per rank)
//!   --memory-budget B    out-of-core spectrum build: cap the per-rank
//!                        accounted build footprint (count tables +
//!                        accumulators + spill buffers) at B bytes;
//!                        overflow spills sorted run files to disk and a
//!                        k-way merge streams them back into the tables,
//!                        bit-identical to the in-memory build (requires
//!                        --batch-reads; B must be at or above the
//!                        geometry floor for the configured k)
//!   --scale X            dataset scale multiplier (virtual engine)
//!   --fault-plan SPEC    inject deterministic faults into the message
//!                        plane, e.g. "seed=7,drop=0.1,dup=0.05,kill=2"
//!                        (see mpisim::FaultPlan::parse for the grammar)
//!   --lookup-deadline D  base per-request deadline for Step IV lookups
//!                        (e.g. 25ms); required for lossy fault plans
//!   --retry-budget N     retries before a lookup degrades to "absent
//!                        everywhere" (exponential backoff per attempt)
//!   --spectrum-out DIR   after Step III, persist the pruned spectra as a
//!                        sharded snapshot under DIR (one shard pair per
//!                        rank plus a manifest)
//!   --spectrum-in DIR    load the spectra from a snapshot instead of
//!                        rebuilding them: Steps II-III are skipped
//!                        (zero-copy at matching --np, re-owned through
//!                        the count exchange otherwise)
//!   --parity M           (with --spectrum-out) also write M
//!                        Reed-Solomon parity shards per spectrum kind,
//!                        so a later load can survive up to M lost or
//!                        corrupt shards per group (format v2)
//!   --repair-policy P    (with --spectrum-in) what a damaged shard does
//!                        to the load: "strict" (default) aborts;
//!                        "repair[:MAX[:rewrite]]" reconstructs up to
//!                        MAX lost shards per group from the survivors
//!                        + parity (MAX defaults to 1; ":rewrite" also
//!                        writes the rebuilt shards back in place)
//!   --serve FILE         build-once / correct-many: correct every job
//!                        listed in FILE ("<fasta> <qual> <output>" per
//!                        line) against one snapshot; requires
//!                        --spectrum-in. On the threaded engine the
//!                        jobs stream through one persistent
//!                        ServeEngine (snapshot loaded once, comm
//!                        threads kept warm, requests micro-batched);
//!                        the virtual engine falls back to one run per
//!                        job
//!   --open-loop RATE     (with --serve, mt engine) pace submissions as
//!                        a Poisson arrival process at RATE requests/s
//!                        instead of submitting as fast as backpressure
//!                        allows, and print queue/service latency
//!                        percentiles per job
//!   --queue-depth N      (with --serve) admission-queue high-water
//!                        mark: submissions past it are rejected with
//!                        retry-after backpressure (default 4096)
//!   --serve-batch N      (with --serve) micro-batch cap: most requests
//!                        a rank coalesces into one owner-batched
//!                        lookup round trip (default 256)
//!   --report             print the per-rank report table
//! ```
//!
//! The config file supplies the input/output paths and the algorithm
//! parameters (see `genio::config`). Both engines are dispatched through
//! the [`reptile_dist::Engine`] trait — there is no per-engine plumbing
//! here beyond the name lookup.

use dnaseq::Read;
use genio::{fasta, RunConfig};
use reptile_cli::{
    heuristics_from_args, params_from_config, parse_serve_batches, recovery_from_args, ArgParser,
    ServeBatch,
};
use reptile_dist::{
    engine_by_name, EngineConfig, RunReport, ServeConfig, ServeEngine, ServeResponse, SubmitError,
};
use std::io::Write;
use std::path::Path;
use std::time::{Duration, Instant};

fn main() {
    if let Err(e) = run() {
        eprintln!("reptile-correct: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = ArgParser::parse(&raw)?;
    let config_path = args
        .positional(0)
        .ok_or("usage: reptile-correct <run.config> [options] (see --help in the docs)")?;
    let config = RunConfig::load(std::path::Path::new(config_path))?;
    let params = params_from_config(&config);
    let heuristics = heuristics_from_args(&args)?;
    let np = args.int("np", 8)?;

    let engine_name = args.value("engine").unwrap_or("mt");
    let engine = engine_by_name(engine_name)
        .ok_or_else(|| format!("--engine: expected mt|virtual, got '{engine_name}'"))?;

    let mut builder = EngineConfig::builder(np, params);
    if engine.name() == "virtual" {
        builder = builder.virtual_cluster();
    }
    builder = builder
        .chunk_size(args.int("chunk-size", config.chunk_size)?)
        .heuristics(heuristics)
        .scale(args.int("scale", 1)? as f64)
        .retry_budget(args.int("retry-budget", 0)? as u32);
    if let Some(threads) = args.value("build-threads") {
        let threads: usize = threads
            .parse()
            .map_err(|_| format!("--build-threads: '{threads}' is not an integer"))?;
        builder = builder.build_threads(threads.max(1));
    }
    if let Some(bytes) = args.value("memory-budget") {
        let bytes: u64 =
            bytes.parse().map_err(|_| format!("--memory-budget: '{bytes}' is not a byte count"))?;
        builder = builder.memory_budget(bytes);
    }
    if let Some(spec) = args.value("fault-plan") {
        let plan = mpisim::FaultPlan::parse(spec).map_err(|e| format!("--fault-plan: {e}"))?;
        builder = builder.fault(plan);
    }
    if let Some(spec) = args.value("lookup-deadline") {
        let deadline =
            mpisim::parse_duration(spec).map_err(|e| format!("--lookup-deadline: {e}"))?;
        builder = builder.lookup_deadline(deadline);
    }
    if let Some(dir) = args.value("spectrum-out") {
        builder = builder.save_spectrum(dir).parity(args.int("parity", 0)?);
    }
    if let Some(dir) = args.value("spectrum-in") {
        builder = builder.load_spectrum(dir).recovery(recovery_from_args(&args)?);
    }
    let cfg = builder.build()?;

    if let Some(batches_path) = args.value("serve") {
        if cfg.load_spectrum.is_none() {
            return Err("--serve requires --spectrum-in (build the snapshot first with \
                        --spectrum-out)"
                .into());
        }
        let text = std::fs::read_to_string(batches_path)
            .map_err(|e| format!("--serve: cannot read '{batches_path}': {e}"))?;
        let batches = parse_serve_batches(&text)?;
        if engine.name() == "mt" {
            return serve_jobs(&args, cfg, &batches);
        }
        // virtual engine: no real threads to keep warm — one modeled
        // run per job, as before
        let n = batches.len();
        for (i, batch) in batches.iter().enumerate() {
            let run = engine.try_run_files(&cfg, &batch.fasta, &batch.qual)?;
            write_corrected(&run.corrected, &batch.output)?;
            println!(
                "[{}/{}] {} -> {} ({} errors corrected, snapshot: {} B loaded)",
                i + 1,
                n,
                batch.fasta.display(),
                batch.output.display(),
                run.report.errors_corrected(),
                run.report.snapshot_bytes_read(),
            );
            if args.has("report") {
                print_report(&run.report);
            }
        }
        return Ok(());
    }

    let run = engine.try_run_files(&cfg, &config.fasta_file, &config.qual_file)?;
    write_corrected(&run.corrected, &config.output_file)?;
    println!(
        "{} reads -> {} ({} errors corrected, {} ranks, engine: {}, heuristics: {})",
        run.corrected.len(),
        config.output_file.display(),
        run.report.errors_corrected(),
        np,
        engine.name(),
        heuristics.label()
    );
    if cfg.save_spectrum.is_some() {
        println!(
            "spectrum snapshot: {} B written to {}",
            run.report.snapshot_bytes_written(),
            cfg.save_spectrum.as_deref().unwrap_or(Path::new("")).display()
        );
    }
    if cfg.load_spectrum.is_some() {
        println!(
            "spectrum snapshot: {} B loaded (build skipped)",
            run.report.snapshot_bytes_read()
        );
        if run.report.shards_repaired() > 0 {
            println!(
                "spectrum repair: {} shards reconstructed ({} B rebuilt) in {:.3}s",
                run.report.shards_repaired(),
                run.report.repair_bytes(),
                run.report.repair_secs()
            );
        }
    }
    if args.has("report") {
        print_report(&run.report);
    }
    Ok(())
}

/// Write the corrected reads as numbered FASTA records.
fn write_corrected(reads: &[Read], path: &Path) -> Result<(), Box<dyn std::error::Error>> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    for read in reads {
        fasta::write_record(&mut out, read.id, &read.seq)?;
    }
    out.flush()?;
    Ok(())
}

/// Stream every serve-batch job through one persistent [`ServeEngine`]:
/// the snapshot is loaded once, comm threads stay warm, and each job's
/// reads flow through the bounded admission queue (micro-batched per
/// rank). With `--open-loop RATE` the submissions are paced on a seeded
/// Poisson schedule instead of closed-loop, and per-job latency
/// percentiles are printed.
fn serve_jobs(
    args: &ArgParser,
    cfg: EngineConfig,
    batches: &[ServeBatch],
) -> Result<(), Box<dyn std::error::Error>> {
    let serve_cfg = ServeConfig {
        queue_depth: args.int("queue-depth", ServeConfig::default().queue_depth)?,
        max_batch: args.int("serve-batch", ServeConfig::default().max_batch)?,
    };
    let open_rate = match args.value("open-loop") {
        Some(v) => {
            let rate: f64 = v.parse().map_err(|_| format!("--open-loop: '{v}' is not a number"))?;
            if !(rate > 0.0 && rate.is_finite()) {
                return Err(format!("--open-loop: rate must be positive, got {v}").into());
            }
            Some(rate)
        }
        None => None,
    };
    let want_report = args.has("report");

    let t0 = Instant::now();
    let engine = ServeEngine::start(cfg, serve_cfg, Vec::new())?;
    println!(
        "serve: engine ready in {:.3}s (queue depth {}, micro-batch cap {})",
        t0.elapsed().as_secs_f64(),
        serve_cfg.queue_depth,
        serve_cfg.max_batch
    );

    let n = batches.len();
    for (i, batch) in batches.iter().enumerate() {
        let reads = genio::qual::load_dataset(&batch.fasta, &batch.qual)?;
        let total = reads.len();
        // Open-loop pacing: a deterministic Poisson schedule of arrival
        // offsets, one per read (the reads themselves come from the job
        // file, so only the schedule is drawn from the generator).
        let schedule: Option<Vec<f64>> = open_rate.map(|rate| {
            let mix = genio::RequestMix::uniform(vec![Read::new(0, vec![b'A'], vec![30])]);
            let mut gen = genio::OpenLoopGen::new(mix, rate, 0x5EED_0008 + i as u64);
            (0..total).map(|_| gen.next_arrival().at_secs).collect()
        });

        let job_start = Instant::now();
        let mut responses: Vec<ServeResponse> = Vec::with_capacity(total);
        let mut retries: u64 = 0;
        for (j, read) in reads.into_iter().enumerate() {
            if let Some(sched) = &schedule {
                // Pace against the wall clock; drain completions while
                // waiting so the response buffer never balloons.
                let target = job_start + Duration::from_secs_f64(sched[j]);
                loop {
                    let now = Instant::now();
                    if now >= target {
                        break;
                    }
                    responses.append(&mut engine.drain());
                    let left = target - Instant::now();
                    if left > Duration::from_micros(200) {
                        std::thread::sleep(left.min(Duration::from_millis(1)));
                    }
                }
            }
            let trace_id = read.id;
            let mut pending = read;
            loop {
                match engine.submit(trace_id, pending) {
                    Ok(()) => break,
                    Err(SubmitError::Backpressure { read, retry_after, .. }) => {
                        // Backpressure hands the read back: drain what
                        // has finished, honor retry-after, resubmit.
                        retries += 1;
                        responses.append(&mut engine.drain());
                        std::thread::sleep(retry_after);
                        pending = read;
                    }
                    Err(SubmitError::Closed(_)) => {
                        return Err("serve engine closed while jobs were pending".into());
                    }
                }
            }
            if j % 512 == 0 {
                responses.append(&mut engine.drain());
            }
        }
        while responses.len() < total {
            responses.append(&mut engine.drain());
            if responses.len() < total {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        let elapsed = job_start.elapsed().as_secs_f64();

        let mut total_ms: Vec<f64> =
            responses.iter().map(|r| (r.queue + r.service).as_secs_f64() * 1e3).collect();
        total_ms.sort_by(|a, b| a.total_cmp(b));
        responses.sort_unstable_by_key(|r| r.read.id);
        let corrected: Vec<Read> = responses.drain(..).map(|r| r.read).collect();
        write_corrected(&corrected, &batch.output)?;
        println!(
            "[{}/{}] {} -> {} ({} reads in {:.3}s, {:.0} req/s, {} backpressure retries)",
            i + 1,
            n,
            batch.fasta.display(),
            batch.output.display(),
            total,
            elapsed,
            total as f64 / elapsed.max(1e-9),
            retries,
        );
        if open_rate.is_some() {
            println!(
                "        queue+service latency: p50 {:.2}ms  p95 {:.2}ms  p99 {:.2}ms",
                percentile(&total_ms, 50.0),
                percentile(&total_ms, 95.0),
                percentile(&total_ms, 99.0),
            );
        }
    }

    let report = engine.shutdown()?;
    let mut latencies: Vec<f64> =
        report.responses.iter().map(|r| (r.queue + r.service).as_secs_f64() * 1e3).collect();
    println!(
        "serve: {} requests in {} micro-batches (mean {:.1}/batch), {} rejected, \
         {} errors corrected, snapshot {} B loaded once, uptime {:.3}s",
        report.completed,
        report.batches,
        report.mean_batch(),
        report.rejected,
        report.errors_corrected,
        report.snapshot_bytes_read,
        report.uptime_secs,
    );
    if report.repair.shards_repaired > 0 {
        println!(
            "serve: degraded start — {} shards reconstructed ({} B rebuilt)",
            report.repair.shards_repaired, report.repair.bytes_reconstructed,
        );
    }
    if !latencies.is_empty() {
        latencies.sort_by(|a, b| a.total_cmp(b));
        println!(
            "serve latency (undrained tail): p50 {:.2}ms  p95 {:.2}ms  p99 {:.2}ms",
            percentile(&latencies, 50.0),
            percentile(&latencies, 95.0),
            percentile(&latencies, 99.0),
        );
    }
    if report.lookups.keys_degraded > 0 {
        println!(
            "WARNING: {} lookups degraded to absent (fault plan active)",
            report.lookups.keys_degraded
        );
    }
    if want_report {
        println!(
            "lookups: {} remote, {} retried, {} deadline misses",
            report.lookups.remote_total(),
            report.lookups.requests_retried,
            report.lookups.deadline_misses,
        );
    }
    Ok(())
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn print_report(report: &RunReport) {
    println!(
        "{:>5} {:>8} {:>10} {:>10} {:>10} {:>12} {:>8} {:>8} {:>8} {:>10}",
        "rank",
        "reads",
        "errors",
        "constr_s",
        "correct_s",
        "remote_lkps",
        "retries",
        "misses",
        "degraded",
        "mem_MiB"
    );
    for r in &report.ranks {
        println!(
            "{:>5} {:>8} {:>10} {:>10.3} {:>10.3} {:>12} {:>8} {:>8} {:>8} {:>10.1}",
            r.rank,
            r.reads_processed,
            r.correction.errors_corrected,
            r.construct_secs,
            r.correct_secs,
            r.lookups.remote_total(),
            r.lookups.requests_retried,
            r.lookups.deadline_misses,
            r.lookups.keys_degraded,
            r.memory_bytes / (1024.0 * 1024.0),
        );
    }
    println!(
        "makespan {:.3}s  (construct {:.3}s + correct {:.3}s), imbalance ratio {:.2}",
        report.makespan_secs(),
        report.construct_secs(),
        report.correct_secs(),
        report.imbalance_ratio()
    );
    if report.ooc_peak_bytes() > 0 {
        println!(
            "out-of-core build: {} runs / {} B spilled, merge {:.3}s, peak accounted {} B",
            report.spill_runs(),
            report.spill_bytes(),
            report.merge_secs(),
            report.ooc_peak_bytes()
        );
    }
    let degraded: u64 = report.ranks.iter().map(|r| r.lookups.keys_degraded).sum();
    if degraded > 0 {
        println!("WARNING: {degraded} lookups degraded to absent (fault plan active)");
    }
}
