//! `reptile-correct` — run a distributed correction job.
//!
//! ```text
//! reptile-correct <run.config> [options]
//!
//! options:
//!   --np N               number of ranks (default 8)
//!   --engine mt|virtual  threaded ranks (default) or the virtual cluster
//!   --universal          self-describing request messages (§III-B)
//!   --batch-reads        per-chunk spectrum exchange (§III-B)
//!   --read-tables        keep readsKmer/readsTile with global counts
//!   --cache-remote       cache remote answers (needs --read-tables)
//!   --aggregate          batch per-owner lookup aggregation (prefetch)
//!   --replicate X        kmers | tiles | both (allgather heuristics)
//!   --partial-group G    §V partial replication group size
//!   --no-load-balance    disable the static shuffle (§III-A)
//!   --hot-shards K       replicate the K hottest spectrum owners when
//!                        skew detection trips (DESIGN.md §12)
//!   --steal              read-chunk stealing between ranks (gated on
//!                        chunk-load imbalance; bit-identical output)
//!   --chunk-size N       override the config file's chunk size
//!   --build-threads N    extraction workers per rank for the pipelined
//!                        spectrum build (default: all host cores; the
//!                        virtual engine models N workers per rank)
//!   --scale X            dataset scale multiplier (virtual engine)
//!   --fault-plan SPEC    inject deterministic faults into the message
//!                        plane, e.g. "seed=7,drop=0.1,dup=0.05,kill=2"
//!                        (see mpisim::FaultPlan::parse for the grammar)
//!   --lookup-deadline D  base per-request deadline for Step IV lookups
//!                        (e.g. 25ms); required for lossy fault plans
//!   --retry-budget N     retries before a lookup degrades to "absent
//!                        everywhere" (exponential backoff per attempt)
//!   --spectrum-out DIR   after Step III, persist the pruned spectra as a
//!                        sharded snapshot under DIR (one shard pair per
//!                        rank plus a manifest)
//!   --spectrum-in DIR    load the spectra from a snapshot instead of
//!                        rebuilding them: Steps II-III are skipped
//!                        (zero-copy at matching --np, re-owned through
//!                        the count exchange otherwise)
//!   --serve FILE         build-once / correct-many: correct every job
//!                        listed in FILE ("<fasta> <qual> <output>" per
//!                        line) against one snapshot; requires
//!                        --spectrum-in
//!   --report             print the per-rank report table
//! ```
//!
//! The config file supplies the input/output paths and the algorithm
//! parameters (see `genio::config`). Both engines are dispatched through
//! the [`reptile_dist::Engine`] trait — there is no per-engine plumbing
//! here beyond the name lookup.

use genio::{fasta, RunConfig};
use reptile_cli::{heuristics_from_args, params_from_config, parse_serve_batches, ArgParser};
use reptile_dist::{engine_by_name, EngineConfig, RunOutput, RunReport};
use std::io::Write;
use std::path::Path;

fn main() {
    if let Err(e) = run() {
        eprintln!("reptile-correct: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = ArgParser::parse(&raw)?;
    let config_path = args
        .positional(0)
        .ok_or("usage: reptile-correct <run.config> [options] (see --help in the docs)")?;
    let config = RunConfig::load(std::path::Path::new(config_path))?;
    let params = params_from_config(&config);
    let heuristics = heuristics_from_args(&args)?;
    let np = args.int("np", 8)?;

    let engine_name = args.value("engine").unwrap_or("mt");
    let engine = engine_by_name(engine_name)
        .ok_or_else(|| format!("--engine: expected mt|virtual, got '{engine_name}'"))?;

    let mut builder = EngineConfig::builder(np, params);
    if engine.name() == "virtual" {
        builder = builder.virtual_cluster();
    }
    builder = builder
        .chunk_size(args.int("chunk-size", config.chunk_size)?)
        .heuristics(heuristics)
        .scale(args.int("scale", 1)? as f64)
        .retry_budget(args.int("retry-budget", 0)? as u32);
    if let Some(threads) = args.value("build-threads") {
        let threads: usize = threads
            .parse()
            .map_err(|_| format!("--build-threads: '{threads}' is not an integer"))?;
        builder = builder.build_threads(threads.max(1));
    }
    if let Some(spec) = args.value("fault-plan") {
        let plan = mpisim::FaultPlan::parse(spec).map_err(|e| format!("--fault-plan: {e}"))?;
        builder = builder.fault(plan);
    }
    if let Some(spec) = args.value("lookup-deadline") {
        let deadline =
            mpisim::parse_duration(spec).map_err(|e| format!("--lookup-deadline: {e}"))?;
        builder = builder.lookup_deadline(deadline);
    }
    if let Some(dir) = args.value("spectrum-out") {
        builder = builder.save_spectrum(dir);
    }
    if let Some(dir) = args.value("spectrum-in") {
        builder = builder.load_spectrum(dir);
    }
    let cfg = builder.build()?;

    if let Some(batches_path) = args.value("serve") {
        if cfg.load_spectrum.is_none() {
            return Err("--serve requires --spectrum-in (build the snapshot first with \
                        --spectrum-out)"
                .into());
        }
        let text = std::fs::read_to_string(batches_path)
            .map_err(|e| format!("--serve: cannot read '{batches_path}': {e}"))?;
        let batches = parse_serve_batches(&text)?;
        let n = batches.len();
        for (i, batch) in batches.iter().enumerate() {
            let run = engine.try_run_files(&cfg, &batch.fasta, &batch.qual)?;
            write_corrected(&run, &batch.output)?;
            println!(
                "[{}/{}] {} -> {} ({} errors corrected, snapshot: {} B loaded)",
                i + 1,
                n,
                batch.fasta.display(),
                batch.output.display(),
                run.report.errors_corrected(),
                run.report.snapshot_bytes_read(),
            );
            if args.has("report") {
                print_report(&run.report);
            }
        }
        return Ok(());
    }

    let run = engine.try_run_files(&cfg, &config.fasta_file, &config.qual_file)?;
    write_corrected(&run, &config.output_file)?;
    println!(
        "{} reads -> {} ({} errors corrected, {} ranks, engine: {}, heuristics: {})",
        run.corrected.len(),
        config.output_file.display(),
        run.report.errors_corrected(),
        np,
        engine.name(),
        heuristics.label()
    );
    if cfg.save_spectrum.is_some() {
        println!(
            "spectrum snapshot: {} B written to {}",
            run.report.snapshot_bytes_written(),
            cfg.save_spectrum.as_deref().unwrap_or(Path::new("")).display()
        );
    }
    if cfg.load_spectrum.is_some() {
        println!(
            "spectrum snapshot: {} B loaded (build skipped)",
            run.report.snapshot_bytes_read()
        );
    }
    if args.has("report") {
        print_report(&run.report);
    }
    Ok(())
}

/// Write the corrected reads as numbered FASTA records.
fn write_corrected(run: &RunOutput, path: &Path) -> Result<(), Box<dyn std::error::Error>> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    for read in &run.corrected {
        fasta::write_record(&mut out, read.id, &read.seq)?;
    }
    out.flush()?;
    Ok(())
}

fn print_report(report: &RunReport) {
    println!(
        "{:>5} {:>8} {:>10} {:>10} {:>10} {:>12} {:>8} {:>8} {:>8} {:>10}",
        "rank",
        "reads",
        "errors",
        "constr_s",
        "correct_s",
        "remote_lkps",
        "retries",
        "misses",
        "degraded",
        "mem_MiB"
    );
    for r in &report.ranks {
        println!(
            "{:>5} {:>8} {:>10} {:>10.3} {:>10.3} {:>12} {:>8} {:>8} {:>8} {:>10.1}",
            r.rank,
            r.reads_processed,
            r.correction.errors_corrected,
            r.construct_secs,
            r.correct_secs,
            r.lookups.remote_total(),
            r.lookups.requests_retried,
            r.lookups.deadline_misses,
            r.lookups.keys_degraded,
            r.memory_bytes / (1024.0 * 1024.0),
        );
    }
    println!(
        "makespan {:.3}s  (construct {:.3}s + correct {:.3}s), imbalance ratio {:.2}",
        report.makespan_secs(),
        report.construct_secs(),
        report.correct_secs(),
        report.imbalance_ratio()
    );
    let degraded: u64 = report.ranks.iter().map(|r| r.lookups.keys_degraded).sum();
    if degraded > 0 {
        println!("WARNING: {degraded} lookups degraded to absent (fault plan active)");
    }
}
