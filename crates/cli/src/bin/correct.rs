//! `reptile-correct` — run a distributed correction job.
//!
//! ```text
//! reptile-correct <run.config> [options]
//!
//! options:
//!   --np N               number of ranks (default 8)
//!   --engine mt|virtual  threaded ranks (default) or the virtual cluster
//!   --universal          self-describing request messages (§III-B)
//!   --batch-reads        per-chunk spectrum exchange (§III-B)
//!   --read-tables        keep readsKmer/readsTile with global counts
//!   --cache-remote       cache remote answers (needs --read-tables)
//!   --aggregate          batch per-owner lookup aggregation (prefetch)
//!   --replicate X        kmers | tiles | both (allgather heuristics)
//!   --partial-group G    §V partial replication group size
//!   --no-load-balance    disable the static shuffle (§III-A)
//!   --chunk-size N       override the config file's chunk size
//!   --build-threads N    extraction workers per rank for the pipelined
//!                        spectrum build (default: all host cores; the
//!                        virtual engine models N workers per rank)
//!   --report             print the per-rank report table
//! ```
//!
//! The config file supplies the input/output paths and the algorithm
//! parameters (see `genio::config`).

use genio::{fasta, RunConfig};
use reptile_cli::{heuristics_from_args, params_from_config, ArgParser};
use reptile_dist::engine_virtual::{run_virtual, VirtualConfig};
use reptile_dist::{run_distributed_files, EngineConfig, RunReport};
use std::io::Write;

fn main() {
    if let Err(e) = run() {
        eprintln!("reptile-correct: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = ArgParser::parse(&raw)?;
    let config_path = args
        .positional(0)
        .ok_or("usage: reptile-correct <run.config> [options] (see --help in the docs)")?;
    let config = RunConfig::load(std::path::Path::new(config_path))?;
    let params = params_from_config(&config);
    let heuristics = heuristics_from_args(&args)?;
    let np = args.int("np", 8)?;
    let chunk_size = args.int("chunk-size", config.chunk_size)?;
    let build_threads = args.int("build-threads", reptile_dist::default_build_threads())?.max(1);
    let engine = args.value("engine").unwrap_or("mt");

    let (corrected, report) = match engine {
        "mt" => {
            let cfg = EngineConfig {
                np,
                chunk_size,
                params,
                heuristics,
                build_threads,
                ..EngineConfig::new(np, params)
            };
            let out = run_distributed_files(&cfg, &config.fasta_file, &config.qual_file)?;
            (out.corrected, out.report)
        }
        "virtual" => {
            let reads = genio::qual::load_dataset(&config.fasta_file, &config.qual_file)?;
            let mut cfg = VirtualConfig::new(np, params);
            cfg.chunk_size = chunk_size;
            cfg.heuristics = heuristics;
            cfg.build_threads = build_threads;
            cfg.scale = args.int("scale", 1)? as f64;
            let run = run_virtual(&cfg, &reads);
            (run.corrected, run.report)
        }
        other => return Err(format!("--engine: expected mt|virtual, got '{other}'").into()),
    };

    let mut out = std::io::BufWriter::new(std::fs::File::create(&config.output_file)?);
    for read in &corrected {
        fasta::write_record(&mut out, read.id, &read.seq)?;
    }
    out.flush()?;
    println!(
        "{} reads -> {} ({} errors corrected, {} ranks, heuristics: {})",
        corrected.len(),
        config.output_file.display(),
        report.errors_corrected(),
        np,
        heuristics.label()
    );
    if args.has("report") {
        print_report(&report);
    }
    Ok(())
}

fn print_report(report: &RunReport) {
    println!(
        "{:>5} {:>8} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "rank", "reads", "errors", "constr_s", "correct_s", "remote_lkps", "mem_MiB"
    );
    for r in &report.ranks {
        println!(
            "{:>5} {:>8} {:>10} {:>10.3} {:>10.3} {:>12} {:>10.1}",
            r.rank,
            r.reads_processed,
            r.correction.errors_corrected,
            r.construct_secs,
            r.correct_secs,
            r.lookups.remote_total(),
            r.memory_bytes / (1024.0 * 1024.0),
        );
    }
    println!(
        "makespan {:.3}s  (construct {:.3}s + correct {:.3}s), imbalance ratio {:.2}",
        report.makespan_secs(),
        report.construct_secs(),
        report.correct_secs(),
        report.imbalance_ratio()
    );
}
