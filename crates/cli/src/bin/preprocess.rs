//! `reptile-preprocess` — the dataset-preparation step.
//!
//! ```text
//! reptile-preprocess <input.fastq> <output.fa> <output.qual>
//! ```
//!
//! Converts a FASTQ file into the numbered FASTA + decimal-quality pair
//! Reptile consumes, renaming reads to ascending sequence numbers
//! (paper §III step I: "the names have been pre-processed to be sequence
//! numbers (in ascending order beginning with number 1)").

use genio::fastq::fastq_to_reptile_pair;
use reptile_cli::ArgParser;
use std::io::{BufReader, BufWriter, Write};

fn main() {
    if let Err(e) = run() {
        eprintln!("reptile-preprocess: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = ArgParser::parse(&raw)?;
    if args.n_positionals() != 3 {
        return Err("usage: reptile-preprocess <input.fastq> <output.fa> <output.qual>".into());
    }
    let fastq = std::fs::File::open(args.positional(0).unwrap())?;
    let mut fa = BufWriter::new(std::fs::File::create(args.positional(1).unwrap())?);
    let mut qu = BufWriter::new(std::fs::File::create(args.positional(2).unwrap())?);
    let n = fastq_to_reptile_pair(BufReader::new(fastq), &mut fa, &mut qu)?;
    fa.flush()?;
    qu.flush()?;
    println!("converted {n} reads");
    Ok(())
}
