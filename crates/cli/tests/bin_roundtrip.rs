//! End-to-end tests of the two binaries: preprocess a FASTQ, then run a
//! correction job from a config file, checking outputs on disk.

use std::process::Command;

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("reptile-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Build a small FASTQ with enough template repetition for correction.
fn write_fastq(path: &std::path::Path) {
    let template = b"ACGTACGGTTGCAACGTTAGCATGGACTTAG";
    let mut out = Vec::new();
    for i in 0..30 {
        let mut seq = template.to_vec();
        let mut qual = vec![b'I'; seq.len()]; // Phred 40
        if i == 0 {
            // one read with a low-quality error
            seq[10] = b'A';
            qual[10] = b'#'; // Phred 2
        }
        out.extend_from_slice(format!("@read{i}\n").as_bytes());
        out.extend_from_slice(&seq);
        out.extend_from_slice(b"\n+\n");
        out.extend_from_slice(&qual);
        out.push(b'\n');
    }
    std::fs::write(path, out).unwrap();
}

#[test]
fn preprocess_then_correct_pipeline() {
    let dir = tempdir("pipe");
    let fastq = dir.join("in.fastq");
    let fasta = dir.join("reads.fa");
    let qual = dir.join("reads.qual");
    let output = dir.join("corrected.fa");
    write_fastq(&fastq);

    // --- preprocess ---
    let status = Command::new(env!("CARGO_BIN_EXE_reptile-preprocess"))
        .args([&fastq, &fasta, &qual])
        .output()
        .expect("run preprocess");
    assert!(status.status.success(), "{}", String::from_utf8_lossy(&status.stderr));
    assert!(String::from_utf8_lossy(&status.stdout).contains("converted 30 reads"));
    let fa_text = std::fs::read_to_string(&fasta).unwrap();
    assert!(fa_text.starts_with(">1\n"), "numbered headers expected");

    // --- config + correct ---
    let config = dir.join("run.config");
    std::fs::write(
        &config,
        format!(
            "fasta_file = {}\nqual_file = {}\noutput_file = {}\n\
             k = 8\ntile_overlap = 4\nkmer_threshold = 3\ntile_threshold = 3\n\
             chunk_size = 10\n",
            fasta.display(),
            qual.display(),
            output.display()
        ),
    )
    .unwrap();
    let run = Command::new(env!("CARGO_BIN_EXE_reptile-correct"))
        .args([config.to_str().unwrap(), "--np", "3", "--universal", "--report"])
        .output()
        .expect("run correct");
    assert!(run.status.success(), "{}", String::from_utf8_lossy(&run.stderr));
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(stdout.contains("errors corrected"), "{stdout}");
    assert!(stdout.contains("universal"), "{stdout}");
    assert!(stdout.contains("makespan"), "--report table expected: {stdout}");

    // corrected output exists, read 1's error fixed
    let corrected = std::fs::read_to_string(&output).unwrap();
    assert!(corrected.starts_with(">1\n"));
    let first_seq = corrected.lines().nth(1).unwrap();
    assert_eq!(first_seq.as_bytes(), b"ACGTACGGTTGCAACGTTAGCATGGACTTAG", "error corrected");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn correct_with_virtual_engine() {
    let dir = tempdir("virt");
    let fastq = dir.join("in.fastq");
    let fasta = dir.join("reads.fa");
    let qual = dir.join("reads.qual");
    let output = dir.join("corrected.fa");
    write_fastq(&fastq);
    Command::new(env!("CARGO_BIN_EXE_reptile-preprocess"))
        .args([&fastq, &fasta, &qual])
        .status()
        .unwrap();
    let config = dir.join("run.config");
    std::fs::write(
        &config,
        format!(
            "fasta_file = {}\nqual_file = {}\noutput_file = {}\n\
             k = 8\ntile_overlap = 4\nkmer_threshold = 3\ntile_threshold = 3\n",
            fasta.display(),
            qual.display(),
            output.display()
        ),
    )
    .unwrap();
    let run = Command::new(env!("CARGO_BIN_EXE_reptile-correct"))
        .args([config.to_str().unwrap(), "--engine", "virtual", "--np", "64", "--batch-reads"])
        .output()
        .unwrap();
    assert!(run.status.success(), "{}", String::from_utf8_lossy(&run.stderr));
    assert!(output.exists());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = Command::new(env!("CARGO_BIN_EXE_reptile-correct")).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    let out = Command::new(env!("CARGO_BIN_EXE_reptile-preprocess"))
        .args(["only-one-arg"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    // nonexistent config file
    let out = Command::new(env!("CARGO_BIN_EXE_reptile-correct"))
        .args(["/nonexistent/run.config"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
