//! Bloom-filtered spectrum construction.
//!
//! "A memory-efficient alternative to this step is usage of a Bloom
//! filter" (paper §III step III). In error-rich short-read data most
//! *distinct* k-mers are sequencing-error singletons (every substitution
//! error mints up to `k` novel k-mers), yet the counting hash table pays
//! full price for each. The classic two-structure scheme keeps them out:
//!
//! * first occurrence of a code → set bits in a Bloom filter only;
//! * second and later occurrences → count in the hash table;
//! * reported count = table count + 1 (the filtered first sighting).
//!
//! Consequences, all covered by tests:
//!
//! * true singletons never enter the hash table — with a pruning
//!   threshold ≥ 2 (always, in practice) the final spectrum is
//!   *identical* to the exact build except for Bloom false positives;
//! * a false positive makes a code enter the table one occurrence early,
//!   inflating its reported count by exactly 1 — harmless for solidity
//!   decisions unless the code sits exactly at `threshold − 1`;
//! * memory: the table holds only non-singletons; the filter costs
//!   ~10 bits per distinct code at 1% FP.

use crate::params::ReptileParams;
use crate::spectrum::{KmerSpectrum, LocalSpectra, Normalized, TileSpectrum};
use dnaseq::hashing::mix128;
use dnaseq::{BloomFilter, Read};

/// Statistics from a Bloom-filtered build.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BloomBuildStats {
    /// K-mer occurrences absorbed by the filter alone (one first sighting
    /// per distinct code — i.e. every singleton, plus one occurrence of
    /// each repeated code).
    pub kmer_singletons_filtered: u64,
    /// Tile occurrences absorbed by the filter alone.
    pub tile_singletons_filtered: u64,
    /// Bytes of the two Bloom filters.
    pub filter_bytes: u64,
    /// Entries in the final (pruned) k-mer table.
    pub kmer_entries: u64,
    /// Entries in the final (pruned) tile table.
    pub tile_entries: u64,
}

/// Build both spectra with Bloom-filtered singleton suppression, then
/// prune by the parameter thresholds (which must be ≥ 2 — with a
/// threshold of 1 singletons matter and the exact build must be used).
///
/// `expected_kmers` sizes the filters (total k-mer *occurrences* is a
/// safe overestimate); `fp_rate` is the per-probe false-positive target.
pub fn build_with_bloom(
    reads: &[Read],
    params: &ReptileParams,
    expected_kmers: usize,
    fp_rate: f64,
) -> (LocalSpectra, BloomBuildStats) {
    params.assert_valid();
    assert!(
        params.kmer_threshold >= 2 && params.tile_threshold >= 2,
        "bloom-filtered construction requires thresholds >= 2 \
         (singletons are deliberately uncounted)"
    );
    let kcodec = params.kmer_codec();
    let tcodec = params.tile_codec();
    let mut kmer_filter = BloomFilter::for_items(expected_kmers.max(1), fp_rate);
    let mut tile_filter = BloomFilter::for_items(expected_kmers.max(1), fp_rate);
    let mut kmers = KmerSpectrum::new(kcodec, params.canonical);
    let mut tiles = TileSpectrum::new(tcodec, params.canonical);
    for read in reads {
        for (_, code) in kcodec.kmers_of(&read.seq) {
            let key = kmers.normalize(code);
            if kmer_filter.insert(key.key()) {
                kmers.add_count(key, 1);
            }
        }
        for (_, code) in tcodec.tiles_of(&read.seq) {
            let key = tiles.normalize(code);
            if tile_filter.insert(mix128(key.key())) {
                tiles.add_count(key, 1);
            }
        }
    }
    // occurrences that never reached a table = first sighting per code
    let kmer_filtered = kmer_filter.inserted() - count_occurrences(&kmers);
    let tile_filtered = tile_filter.inserted() - count_occurrences_t(&tiles);
    // reported count = stored + 1; prune at threshold - 1 on stored counts,
    // then shift so lookups see the true (reported) counts.
    let mut shifted_k = KmerSpectrum::new(kcodec, params.canonical);
    for (code, stored) in kmers.into_entries() {
        if stored + 1 >= params.kmer_threshold {
            shifted_k.add_count(Normalized::assume(code), stored + 1);
        }
    }
    let mut shifted_t = TileSpectrum::new(tcodec, params.canonical);
    for (code, stored) in tiles.into_entries() {
        if stored + 1 >= params.tile_threshold {
            shifted_t.add_count(Normalized::assume(code), stored + 1);
        }
    }
    let stats = BloomBuildStats {
        kmer_singletons_filtered: kmer_filtered,
        tile_singletons_filtered: tile_filtered,
        filter_bytes: (kmer_filter.memory_bytes() + tile_filter.memory_bytes()) as u64,
        kmer_entries: shifted_k.len() as u64,
        tile_entries: shifted_t.len() as u64,
    };
    (LocalSpectra { kmers: shifted_k, tiles: shifted_t }, stats)
}

fn count_occurrences(s: &KmerSpectrum) -> u64 {
    s.iter().map(|(_, c)| c as u64).sum()
}

fn count_occurrences_t(s: &TileSpectrum) -> u64 {
    s.iter().map(|(_, c)| c as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ReptileParams {
        ReptileParams {
            k: 8,
            tile_overlap: 4,
            kmer_threshold: 3,
            tile_threshold: 3,
            ..Default::default()
        }
    }

    fn reads_with_repeats() -> Vec<Read> {
        // 6 copies of a template + 30 unique reads (singleton factories)
        let mut reads = Vec::new();
        let template = b"ACGTACGTTGCATTGACCAGT".to_vec();
        for i in 0..6u64 {
            reads.push(Read::new(i + 1, template.clone(), vec![35; template.len()]));
        }
        for i in 0..30usize {
            // genuinely distinct reads: mix a per-read seed into each base
            let seed = dnaseq::mix64(i as u64 + 1);
            let seq: Vec<u8> = (0..21)
                .map(|j| [b'A', b'C', b'G', b'T'][(dnaseq::mix64(seed ^ j as u64) % 4) as usize])
                .collect();
            reads.push(Read::new(100 + i as u64, seq, vec![35; 21]));
        }
        reads
    }

    #[test]
    fn matches_exact_build_above_threshold() {
        let p = params();
        let reads = reads_with_repeats();
        let exact = LocalSpectra::build(&reads, &p);
        let (bloomed, stats) = build_with_bloom(&reads, &p, 20_000, 0.0001);
        // every exact surviving entry must survive with the same count
        // (tiny FP budget at this size means exact equality w.h.p.)
        let exact_k: std::collections::HashMap<_, _> = exact.kmers.iter().collect();
        let bloom_k: std::collections::HashMap<_, _> = bloomed.kmers.iter().collect();
        assert_eq!(exact_k, bloom_k, "k-mer spectra must agree");
        let exact_t: std::collections::HashMap<_, _> = exact.tiles.iter().collect();
        let bloom_t: std::collections::HashMap<_, _> = bloomed.tiles.iter().collect();
        assert_eq!(exact_t, bloom_t, "tile spectra must agree");
        assert!(stats.kmer_singletons_filtered > 0, "singletons must be filtered");
    }

    #[test]
    fn table_never_holds_singletons() {
        let p = params();
        let reads = reads_with_repeats();
        let unpruned_exact = LocalSpectra::build_unpruned(&reads, &p);
        let distinct_exact = unpruned_exact.kmers.len() as u64;
        let (bloomed, stats) = build_with_bloom(&reads, &p, 20_000, 0.0001);
        assert!(
            stats.kmer_entries < distinct_exact,
            "bloom build must store fewer entries ({} vs {distinct_exact})",
            stats.kmer_entries
        );
        assert!(bloomed.kmers.len() as u64 == stats.kmer_entries);
    }

    #[test]
    #[should_panic(expected = "thresholds >= 2")]
    fn rejects_threshold_one() {
        let p = ReptileParams { kmer_threshold: 1, ..params() };
        let _ = build_with_bloom(&[], &p, 10, 0.01);
    }

    #[test]
    fn corrector_agrees_on_bloom_spectra() {
        let p = params();
        let reads = reads_with_repeats();
        // introduce an erroneous read and correct it against both spectra
        let template = &reads[0].seq;
        let mut seq = template.clone();
        seq[10] = if seq[10] == b'A' { b'C' } else { b'A' };
        let mut qual = vec![35u8; seq.len()];
        qual[10] = 5;
        let bad = Read::new(999, seq, qual);

        let mut exact = LocalSpectra::build(&reads, &p);
        let (mut bloomed, _) = build_with_bloom(&reads, &p, 20_000, 0.0001);
        let mut r1 = bad.clone();
        let o1 = crate::corrector::correct_read(&mut r1, &mut exact, &p);
        let mut r2 = bad.clone();
        let o2 = crate::corrector::correct_read(&mut r2, &mut bloomed, &p);
        assert_eq!(r1, r2, "correction must agree across builds");
        assert_eq!(o1.fixes, o2.fixes);
        assert!(o1.corrected(), "the injected error is correctable");
    }
}
