//! K-mer count histograms and automatic threshold selection.
//!
//! Reptile's config file fixes the frequency thresholds by hand; picking
//! them well requires looking at the k-mer count histogram, which for
//! shotgun data is bimodal: an error peak at count 1–2 decaying
//! geometrically, and a coverage peak near `coverage × (L−k+1)/L`. The
//! classic recipe (used by Quake and most k-mer tools) places the
//! threshold at the *valley* between the two peaks. This module computes
//! the histogram from a spectrum and implements that recipe, so
//! `RunConfig` thresholds can be derived instead of guessed.

use crate::spectrum::{KmerSpectrum, TileSpectrum};

/// A k-mer (or tile) count histogram: `bins[c]` = number of distinct
/// codes with count exactly `c` (index 0 unused).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CountHistogram {
    bins: Vec<u64>,
}

impl CountHistogram {
    /// Histogram of an (unpruned) k-mer spectrum.
    pub fn of_kmers(spectrum: &KmerSpectrum) -> CountHistogram {
        Self::from_counts(spectrum.iter().map(|(_, c)| c))
    }

    /// Histogram of an (unpruned) tile spectrum.
    pub fn of_tiles(spectrum: &TileSpectrum) -> CountHistogram {
        Self::from_counts(spectrum.iter().map(|(_, c)| c))
    }

    /// Build from raw counts.
    pub fn from_counts(counts: impl Iterator<Item = u32>) -> CountHistogram {
        let mut bins = vec![0u64; 64];
        for c in counts {
            let c = c as usize;
            if c >= bins.len() {
                bins.resize(c + 1, 0);
            }
            bins[c] += 1;
        }
        CountHistogram { bins }
    }

    /// Distinct codes with count exactly `c`.
    pub fn bin(&self, c: usize) -> u64 {
        self.bins.get(c).copied().unwrap_or(0)
    }

    /// Largest count observed.
    pub fn max_count(&self) -> usize {
        self.bins.iter().rposition(|&b| b > 0).unwrap_or(0)
    }

    /// Total distinct codes.
    pub fn distinct(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Total occurrences (`Σ c · bins[c]`).
    pub fn occurrences(&self) -> u64 {
        self.bins.iter().enumerate().map(|(c, &b)| c as u64 * b).sum()
    }

    /// Smoothed bin value: moving average over `±(1 + c/10)` counts.
    /// High counts get wider windows because the coverage peak spreads
    /// (Poisson width grows with the mean) while its per-bin mass falls.
    pub fn smoothed(&self, c: usize) -> f64 {
        let w = 1 + c / 10;
        let lo = c.saturating_sub(w).max(1);
        let hi = c + w;
        let sum: u64 = (lo..=hi).map(|i| self.bin(i)).sum();
        sum as f64 / (hi - lo + 1) as f64
    }

    /// The valley: the first count `≥ 2` where the smoothed histogram
    /// stops decaying (the error tail has bottomed out). `None` for
    /// monotone histograms.
    pub fn valley(&self) -> Option<usize> {
        let max = self.max_count();
        (2..max).find(|&c| self.smoothed(c) < self.smoothed(c + 1))
    }

    /// The coverage peak: the count with the largest *smoothed* bin at or
    /// beyond `hint` (callers usually pass the valley, skipping the error
    /// tail whose raw bins dwarf everything).
    pub fn coverage_peak(&self, hint: usize) -> Option<usize> {
        let lo = hint.max(1);
        if lo > self.max_count() {
            return None;
        }
        (lo..=self.max_count()).max_by(|&a, &b| self.smoothed(a).total_cmp(&self.smoothed(b)))
    }

    /// Valley-based threshold: the first count where the error tail has
    /// decayed away, provided a genuine coverage peak exists beyond it
    /// (smoothed peak ≥ 2× smoothed valley). Returns `None` when the
    /// histogram is not bimodal.
    pub fn suggest_threshold(&self) -> Option<u32> {
        let valley = self.valley()?;
        let peak = self.coverage_peak(valley)?;
        if peak <= valley {
            return None;
        }
        if self.smoothed(peak) < 2.0 * self.smoothed(valley).max(1e-9) {
            return None;
        }
        Some(valley as u32)
    }

    /// Render as `count<TAB>distinct` lines, for plotting.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in 1..=self.max_count() {
            out.push_str(&format!("{c}\t{}\n", self.bin(c)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ReptileParams;
    use crate::spectrum::LocalSpectra;
    use dnaseq::Read;

    fn bimodal() -> CountHistogram {
        // error peak at 1-2, valley at 4, coverage peak at 20
        let mut counts = Vec::new();
        counts.extend(std::iter::repeat_n(1, 1000));
        counts.extend(std::iter::repeat_n(2, 300));
        counts.extend(std::iter::repeat_n(3, 60));
        counts.extend(std::iter::repeat_n(4, 10));
        for c in 15..=25u32 {
            for _ in 0..(200 - 10 * (20i32 - c as i32).abs()) {
                counts.push(c);
            }
        }
        CountHistogram::from_counts(counts.into_iter())
    }

    #[test]
    fn histogram_accounting() {
        let h = CountHistogram::from_counts([1, 1, 2, 5, 5, 5].into_iter());
        assert_eq!(h.bin(1), 2);
        assert_eq!(h.bin(2), 1);
        assert_eq!(h.bin(5), 3);
        assert_eq!(h.bin(3), 0);
        assert_eq!(h.distinct(), 6);
        assert_eq!(h.occurrences(), 2 + 2 + 15);
        assert_eq!(h.max_count(), 5);
    }

    #[test]
    fn valley_found_in_bimodal_histogram() {
        let h = bimodal();
        let peak = h.coverage_peak(3).expect("coverage peak exists");
        assert!((18..=22).contains(&peak), "smoothed peak near 20, got {peak}");
        let t = h.suggest_threshold().expect("bimodal histogram has a valley");
        assert!((4..=14).contains(&t), "threshold {t}");
    }

    #[test]
    fn unimodal_histogram_has_no_threshold() {
        // strictly decaying histogram: no coverage peak
        let mut counts = Vec::new();
        for c in 1..=30u32 {
            for _ in 0..(1000 / c) {
                counts.push(c);
            }
        }
        let h = CountHistogram::from_counts(counts.into_iter());
        assert_eq!(h.suggest_threshold(), None);
    }

    #[test]
    fn empty_histogram() {
        let h = CountHistogram::from_counts(std::iter::empty());
        assert_eq!(h.max_count(), 0);
        assert_eq!(h.distinct(), 0);
        assert_eq!(h.suggest_threshold(), None);
        assert_eq!(h.render(), "");
    }

    #[test]
    fn real_spectrum_histogram() {
        let p = ReptileParams { k: 5, tile_overlap: 2, ..ReptileParams::for_tests() };
        let template = b"ACGTACGGTTGCAACGTTAG";
        let reads: Vec<Read> = (0..10)
            .map(|i| Read::new(i + 1, template.to_vec(), vec![35; template.len()]))
            .collect();
        let spectra = LocalSpectra::build_unpruned(&reads, &p);
        let h = CountHistogram::of_kmers(&spectra.kmers);
        // every k-mer of the template occurs 10x (or 20x if repeated)
        assert!(h.bin(10) > 0);
        assert_eq!(h.bin(1), 0);
        assert_eq!(h.distinct(), spectra.kmers.len() as u64);
    }
}
