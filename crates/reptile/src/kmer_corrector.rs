//! K-mer-spectrum-only correction — the baseline Reptile improves on.
//!
//! "Spectrum-based methods often correct k-mers in a read with their
//! Hamming distance neighbors ... However, this reduces exactness when an
//! erroneous k-mer has to be corrected since there are multiple
//! candidates for the k-mer. To avoid this scenario, Reptile corrects
//! tiles instead of k-mers. Since a tile has almost twice the character
//! count as the k-mer, error correction at the tile level has far fewer
//! candidates" (paper §II-A).
//!
//! This module implements exactly that weaker baseline — same quality
//! steering, same thresholds and ambiguity rules, but windows are single
//! k-mers — so the accuracy advantage of tiles is *measurable* on our
//! ground-truth datasets (`figures -- baseline`). It is not used by the
//! distributed engines.

use crate::corrector::{BaseFix, ReadOutcome, SpectrumAccess};
use crate::params::ReptileParams;
use dnaseq::neighbors::visit_neighbors;
use dnaseq::quality::Phred;
use dnaseq::{Base, Read};

/// Correct one read using only the k-mer spectrum. Window walk mirrors
/// the tile corrector: stride `k − overlap`, plus a final window anchored
/// at the read end.
pub fn correct_read_kmers_only(
    read: &mut Read,
    access: &mut impl SpectrumAccess,
    params: &ReptileParams,
) -> ReadOutcome {
    params.assert_valid();
    let kcodec = params.kmer_codec();
    let k = kcodec.k();
    let stride = k - params.tile_overlap;
    let mut out = ReadOutcome::default();
    if read.len() < k {
        return out;
    }
    let last_start = read.len() - k;
    let mut positions: Vec<usize> = Vec::with_capacity(params.max_positions_per_tile);
    let mut start = 0usize;
    loop {
        step_kmer_window(read, start, access, params, &kcodec, &mut positions, &mut out);
        if start + stride > last_start {
            break;
        }
        start += stride;
    }
    if !last_start.is_multiple_of(stride) {
        step_kmer_window(read, last_start, access, params, &kcodec, &mut positions, &mut out);
    }
    out
}

fn step_kmer_window(
    read: &mut Read,
    start: usize,
    access: &mut impl SpectrumAccess,
    params: &ReptileParams,
    kcodec: &dnaseq::KmerCodec,
    positions: &mut Vec<usize>,
    out: &mut ReadOutcome,
) {
    let k = kcodec.k();
    let window = &read.seq[start..start + k];
    out.tiles_evaluated += 1;
    let code = match kcodec.encode(window) {
        Some(c) => c,
        None => {
            out.tiles_skipped += 1;
            return;
        }
    };
    let key = |c: u64| if params.canonical { kcodec.canonical(c) } else { c };
    if access.kmer_count(key(code)) >= params.kmer_threshold {
        out.tiles_solid += 1;
        return;
    }
    positions.clear();
    collect_positions(&read.qual[start..start + k], params, positions);
    if positions.is_empty() {
        out.tiles_uncorrectable += 1;
        return;
    }
    let mut candidates: Vec<(u64, u32, usize)> = Vec::new();
    visit_neighbors(code, k, positions, params.max_errors_per_tile, &mut |cand, d| {
        let count = access.kmer_count(key(cand));
        if count >= params.kmer_threshold {
            candidates.push((cand, count, d));
        }
    });
    if candidates.is_empty() {
        out.tiles_uncorrectable += 1;
        return;
    }
    if candidates.len() > params.max_candidates {
        out.tiles_ambiguous += 1;
        return;
    }
    candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.2.cmp(&b.2)).then(a.0.cmp(&b.0)));
    if candidates.len() > 1 && candidates[0].1 < params.dominance * candidates[1].1 {
        out.tiles_ambiguous += 1;
        return;
    }
    let winner = candidates[0].0;
    for p in 0..k {
        let newb = kcodec.base_at(winner, p);
        let oldb = kcodec.base_at(code, p);
        if newb != oldb {
            let pos = start + p;
            let fix = BaseFix {
                pos: pos as u32,
                from: read.seq[pos],
                to: Base::from_code(newb).to_ascii(),
            };
            read.seq[pos] = fix.to;
            out.fixes.push(fix);
        }
    }
    out.tiles_corrected += 1;
}

/// Same candidate-position policy as the tile corrector.
fn collect_positions(quals: &[Phred], params: &ReptileParams, positions: &mut Vec<usize>) {
    for (i, &q) in quals.iter().enumerate() {
        if q < params.q_threshold {
            positions.push(i);
        }
    }
    if positions.is_empty() && params.relax_quality {
        positions.extend(0..quals.len());
    }
    if positions.len() > params.max_positions_per_tile {
        positions.sort_by_key(|&p| (quals[p], p));
        positions.truncate(params.max_positions_per_tile);
        positions.sort_unstable();
    }
}

/// Correct a whole dataset with the k-mer-only baseline.
pub fn correct_dataset_kmers_only(
    reads: &[Read],
    params: &ReptileParams,
) -> (Vec<Read>, crate::corrector::CorrectionStats) {
    let mut spectra = crate::spectrum::LocalSpectra::build(reads, params);
    let mut stats = crate::corrector::CorrectionStats::default();
    let corrected = reads
        .iter()
        .map(|r| {
            let mut read = r.clone();
            let outcome = correct_read_kmers_only(&mut read, &mut spectra, params);
            stats.absorb(&outcome);
            read
        })
        .collect();
    (corrected, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectrum::LocalSpectra;

    fn params() -> ReptileParams {
        ReptileParams {
            k: 8,
            tile_overlap: 4,
            kmer_threshold: 2,
            tile_threshold: 2,
            ..ReptileParams::default()
        }
    }

    fn spectra_from(template: &[u8], copies: usize, p: &ReptileParams) -> LocalSpectra {
        let reads: Vec<Read> = (0..copies)
            .map(|i| Read::new(i as u64 + 1, template.to_vec(), vec![35; template.len()]))
            .collect();
        LocalSpectra::build(&reads, p)
    }

    #[test]
    fn fixes_simple_low_quality_error() {
        let p = params();
        let template = b"ACGTACGGTTGCAACGT";
        let mut spectra = spectra_from(template, 5, &p);
        let mut seq = template.to_vec();
        seq[6] = b'A';
        let mut qual = vec![35u8; seq.len()];
        qual[6] = 5;
        let mut read = Read::new(9, seq, qual);
        let out = correct_read_kmers_only(&mut read, &mut spectra, &p);
        assert_eq!(read.seq, template.to_vec());
        assert!(out.corrected());
    }

    #[test]
    fn clean_read_untouched() {
        let p = params();
        let template = b"ACGTACGGTTGCAACGT";
        let mut spectra = spectra_from(template, 5, &p);
        let mut read = Read::new(9, template.to_vec(), vec![35; template.len()]);
        let out = correct_read_kmers_only(&mut read, &mut spectra, &p);
        assert!(!out.corrected());
        assert_eq!(out.tiles_solid, out.tiles_evaluated);
    }

    #[test]
    fn kmer_windows_have_more_ambiguity_than_tiles() {
        // Two templates that agree on a k-length window's context but
        // diverge inside it: the k-mer corrector sees multiple solid
        // candidates where the tile corrector's longer window
        // disambiguates.
        let p = ReptileParams { dominance: 1, ..params() };
        // shared prefix/suffix, differing middles
        let t1 = b"ACGTACGGTTGCAACGTTAG";
        let t2 = b"TTGTACGGATGCAACGGCCA"; // same core "TACGG?TGCAACG" with one diff
        let mut reads = Vec::new();
        for i in 0..4u64 {
            reads.push(Read::new(2 * i + 1, t1.to_vec(), vec![35; t1.len()]));
            reads.push(Read::new(2 * i + 2, t2.to_vec(), vec![35; t2.len()]));
        }
        let mut spectra = LocalSpectra::build(&reads, &p);
        // an erroneous read from t1's context
        let mut seq = t1.to_vec();
        seq[8] = b'C'; // true base T -> C
        let mut qual = vec![35u8; seq.len()];
        qual[8] = 5;
        let mut kread = Read::new(99, seq.clone(), qual.clone());
        let k_out = correct_read_kmers_only(&mut kread, &mut spectra, &p);
        let mut tread = Read::new(99, seq, qual);
        let t_out = crate::corrector::correct_read(&mut tread, &mut spectra, &p);
        // The tile corrector must restore t1 exactly; the k-mer corrector
        // may or may not, but must never beat it here.
        assert_eq!(tread.seq, t1.to_vec(), "tile corrector disambiguates: {t_out:?}");
        let k_correct = kread.seq == t1.to_vec();
        assert!(
            !k_correct || k_out.fixes == t_out.fixes,
            "kmer-only cannot be strictly better in the ambiguous case"
        );
    }

    #[test]
    fn dataset_baseline_runs() {
        let p = params();
        let template = b"ACGTACGGTTGCAACGTTAGCATG";
        let mut reads: Vec<Read> =
            (0..6).map(|i| Read::new(i + 1, template.to_vec(), vec![35; template.len()])).collect();
        let mut seq = template.to_vec();
        seq[5] = b'T';
        let mut qual = vec![35u8; template.len()];
        qual[5] = 4;
        reads.push(Read::new(7, seq, qual));
        let (corrected, stats) = correct_dataset_kmers_only(&reads, &p);
        assert_eq!(stats.reads, 7);
        assert_eq!(corrected[6].seq, template.to_vec());
    }

    #[test]
    fn short_read_noop() {
        let p = params();
        let mut spectra = spectra_from(b"ACGTACGGTTGCAACGT", 3, &p);
        let mut read = Read::new(1, b"ACGT".to_vec(), vec![5; 4]);
        let out = correct_read_kmers_only(&mut read, &mut spectra, &p);
        assert_eq!(out, ReadOutcome::default());
    }
}
