//! The tile-by-tile Reptile corrector.
//!
//! Reptile "corrects tiles instead of k-mers. Since a tile has almost
//! twice the character count as the k-mer, error correction at the tile
//! level has far fewer candidates than at the k-mer level" (paper §II-A).
//! Per read, the corrector walks tile windows left to right (stride
//! `k − overlap`, so consecutive tiles share one k-mer):
//!
//! 1. a tile whose global count ≥ `tile_threshold` is *solid* — skip;
//! 2. otherwise collect candidate error positions: bases in the window
//!    with Phred < `q_threshold` (the paper's quality-score steering);
//!    if there are none and `relax_quality` is set, fall back to the
//!    lowest-quality positions in the window; cap at
//!    `max_positions_per_tile`, preferring lower quality;
//! 3. prescreen with the **k-mer spectrum**: if exactly one of the
//!    tile's two constituent k-mers is weak, restrict candidate positions
//!    to that k-mer's exclusive span (this is how Reptile uses both
//!    spectra);
//! 4. enumerate Hamming neighbours at those positions (≤
//!    `max_errors_per_tile` substitutions), keep those whose tile count
//!    ≥ `tile_threshold`;
//! 5. commit the winner if it is unambiguous: at most `max_candidates`
//!    survivors and the best count ≥ `dominance` × the runner-up
//!    (deterministic tie-breaks: count desc, distance asc, code asc);
//! 6. corrections are written into the read immediately so subsequent
//!    (overlapping) windows see them.
//!
//! All spectrum access goes through [`SpectrumAccess`], which the
//! distributed engine implements with the paper's
//! `hashKmer → readsKmer → remote request` chain.

use crate::params::ReptileParams;
use crate::spectrum::LocalSpectra;
use dnaseq::neighbors::visit_neighbors;
use dnaseq::quality::Phred;
use dnaseq::{Base, Read, TileCode};

/// Where the corrector gets k-mer/tile counts from.
///
/// Implementations must agree with the global spectrum: the same code
/// always yields the same count, no matter which rank asks — that is the
/// paper's correctness invariant for the distributed lookups ("If a k-mer
/// or tile does not exist at its owning rank, it can be inferred that the
/// k-mer or tile does not exist at all", §III step IV).
pub trait SpectrumAccess {
    /// Global count of a k-mer code (0 when absent from the spectrum).
    fn kmer_count(&mut self, code: u64) -> u32;
    /// Global count of a tile code (0 when absent from the spectrum).
    fn tile_count(&mut self, code: u128) -> u32;
}

impl SpectrumAccess for LocalSpectra {
    #[inline]
    fn kmer_count(&mut self, code: u64) -> u32 {
        self.kmers.count(code)
    }

    #[inline]
    fn tile_count(&mut self, code: u128) -> u32 {
        self.tiles.count(code)
    }
}

/// One committed base substitution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BaseFix {
    /// Position in the read.
    pub pos: u32,
    /// Original base (ASCII).
    pub from: u8,
    /// Corrected base (ASCII).
    pub to: u8,
}

/// Per-read correction outcome.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Substitutions committed, in commit order.
    pub fixes: Vec<BaseFix>,
    /// Tile windows evaluated.
    pub tiles_evaluated: u32,
    /// Windows already solid.
    pub tiles_solid: u32,
    /// Windows corrected.
    pub tiles_corrected: u32,
    /// Windows left alone: no solid neighbour.
    pub tiles_uncorrectable: u32,
    /// Windows left alone: too many / non-dominant candidates.
    pub tiles_ambiguous: u32,
    /// Windows skipped (contained `N`).
    pub tiles_skipped: u32,
}

impl ReadOutcome {
    /// Whether any substitution was committed.
    pub fn corrected(&self) -> bool {
        !self.fixes.is_empty()
    }
}

/// Aggregate statistics over a batch of reads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CorrectionStats {
    /// Reads processed.
    pub reads: u64,
    /// Reads with at least one fix.
    pub reads_corrected: u64,
    /// Total substitutions committed ("errors corrected" in Fig 4).
    pub errors_corrected: u64,
    /// Tile windows evaluated.
    pub tiles_evaluated: u64,
    /// Solid windows.
    pub tiles_solid: u64,
    /// Ambiguous windows.
    pub tiles_ambiguous: u64,
    /// Uncorrectable windows.
    pub tiles_uncorrectable: u64,
}

impl CorrectionStats {
    /// Fold one read's outcome into the aggregate.
    pub fn absorb(&mut self, o: &ReadOutcome) {
        self.reads += 1;
        if o.corrected() {
            self.reads_corrected += 1;
        }
        self.errors_corrected += o.fixes.len() as u64;
        self.tiles_evaluated += o.tiles_evaluated as u64;
        self.tiles_solid += o.tiles_solid as u64;
        self.tiles_ambiguous += o.tiles_ambiguous as u64;
        self.tiles_uncorrectable += o.tiles_uncorrectable as u64;
    }

    /// Merge another aggregate into this one.
    pub fn merge(&mut self, other: &CorrectionStats) {
        self.reads += other.reads;
        self.reads_corrected += other.reads_corrected;
        self.errors_corrected += other.errors_corrected;
        self.tiles_evaluated += other.tiles_evaluated;
        self.tiles_solid += other.tiles_solid;
        self.tiles_ambiguous += other.tiles_ambiguous;
        self.tiles_uncorrectable += other.tiles_uncorrectable;
    }
}

/// Correct one read in place. Deterministic: same read + same counts ⇒
/// same fixes, on any rank layout.
pub fn correct_read(
    read: &mut Read,
    access: &mut impl SpectrumAccess,
    params: &ReptileParams,
) -> ReadOutcome {
    let tcodec = params.tile_codec();
    let kcodec = params.kmer_codec();
    let tile_len = tcodec.len();
    let stride = tcodec.stride();
    let mut out = ReadOutcome::default();
    if read.len() < tile_len {
        return out;
    }
    let last_start = read.len() - tile_len;
    let mut start = 0usize;
    // reusable buffers (hot loop; see perf-book "reusing collections")
    let mut positions: Vec<usize> = Vec::with_capacity(params.max_positions_per_tile);
    while start <= last_start {
        step_window(read, start, access, params, &tcodec, &kcodec, &mut positions, &mut out);
        start += stride;
    }
    // Cover the final window when the stride does not land on it: Reptile
    // anchors the last tile at the read end so 3' bases are correctable.
    if !last_start.is_multiple_of(stride) {
        step_window(read, last_start, access, params, &tcodec, &kcodec, &mut positions, &mut out);
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn step_window(
    read: &mut Read,
    start: usize,
    access: &mut impl SpectrumAccess,
    params: &ReptileParams,
    tcodec: &dnaseq::TileCodec,
    kcodec: &dnaseq::KmerCodec,
    positions: &mut Vec<usize>,
    out: &mut ReadOutcome,
) {
    let tile_len = tcodec.len();
    let window = &read.seq[start..start + tile_len];
    out.tiles_evaluated += 1;
    let raw_tile = match tcodec.encode(window) {
        Some(t) => t,
        None => {
            out.tiles_skipped += 1;
            return;
        }
    };
    if access.tile_count(tile_key(tcodec, raw_tile, params.canonical)) >= params.tile_threshold {
        out.tiles_solid += 1;
        return;
    }
    // --- candidate positions ---
    positions.clear();
    collect_positions(&read.qual[start..start + tile_len], params, positions);
    if positions.is_empty() {
        out.tiles_uncorrectable += 1;
        return;
    }
    // --- k-mer prescreen: restrict to the weak half when unambiguous ---
    let (first_kmer, second_kmer) = tcodec.to_kmers(raw_tile);
    let first_solid =
        access.kmer_count(kmer_key(kcodec, first_kmer, params.canonical)) >= params.kmer_threshold;
    let second_solid =
        access.kmer_count(kmer_key(kcodec, second_kmer, params.canonical)) >= params.kmer_threshold;
    let stride = tcodec.stride();
    if first_solid && !second_solid {
        // error likely in the second k-mer's exclusive tail
        positions.retain(|&p| p >= kcodec.k());
    } else if !first_solid && second_solid {
        // error likely in the first k-mer's exclusive head
        positions.retain(|&p| p < stride);
    }
    if positions.is_empty() {
        out.tiles_uncorrectable += 1;
        return;
    }
    // --- neighbour search ---
    // (code, count, distance); kept sorted implicitly via final sort
    let mut candidates: Vec<(TileCode, u32, usize)> = Vec::new();
    visit_neighbors(raw_tile, tile_len, positions, params.max_errors_per_tile, &mut |cand, d| {
        let count = access.tile_count(tile_key(tcodec, cand, params.canonical));
        if count >= params.tile_threshold {
            candidates.push((cand, count, d));
        }
    });
    if candidates.is_empty() {
        out.tiles_uncorrectable += 1;
        return;
    }
    if candidates.len() > params.max_candidates {
        out.tiles_ambiguous += 1;
        return;
    }
    candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.2.cmp(&b.2)).then(a.0.cmp(&b.0)));
    if candidates.len() > 1 && candidates[0].1 < params.dominance * candidates[1].1 {
        out.tiles_ambiguous += 1;
        return;
    }
    // --- commit ---
    let winner = candidates[0].0;
    for p in 0..tile_len {
        let newb = tcodec.base_at(winner, p);
        let oldb = tcodec.base_at(raw_tile, p);
        if newb != oldb {
            let pos = start + p;
            let fix = BaseFix {
                pos: pos as u32,
                from: read.seq[pos],
                to: Base::from_code(newb).to_ascii(),
            };
            read.seq[pos] = fix.to;
            out.fixes.push(fix);
        }
    }
    out.tiles_corrected += 1;
}

/// Candidate positions within a window: strictly-below-threshold
/// qualities; optional relaxation to the lowest-quality bases; capped at
/// `max_positions_per_tile` keeping the lowest qualities (ties: leftmost).
///
/// Shared with the prefetch key enumeration (`crate::prefetch`), which
/// must see the *same* candidate positions to cover every tile
/// neighbour the corrector can probe. Depends only on qualities, which
/// corrections never change, so it is stable across commits.
pub(crate) fn collect_positions(
    quals: &[Phred],
    params: &ReptileParams,
    positions: &mut Vec<usize>,
) {
    for (i, &q) in quals.iter().enumerate() {
        if q < params.q_threshold {
            positions.push(i);
        }
    }
    if positions.is_empty() && params.relax_quality {
        // take every position; the cap below keeps the weakest ones
        positions.extend(0..quals.len());
    }
    if positions.len() > params.max_positions_per_tile {
        positions.sort_by_key(|&p| (quals[p], p));
        positions.truncate(params.max_positions_per_tile);
        positions.sort_unstable();
    }
}

#[inline]
pub(crate) fn tile_key(codec: &dnaseq::TileCodec, code: u128, canonical: bool) -> u128 {
    if canonical {
        codec.canonical(code)
    } else {
        code
    }
}

#[inline]
pub(crate) fn kmer_key(codec: &dnaseq::KmerCodec, code: u64, canonical: bool) -> u64 {
    if canonical {
        codec.canonical(code)
    } else {
        code
    }
}

/// Correct a whole dataset sequentially: build spectra, then correct each
/// read. Returns corrected reads (ids preserved) and aggregate stats.
///
/// ```
/// use dnaseq::Read;
/// use reptile::{correct_dataset, ReptileParams};
/// let params = ReptileParams { k: 4, tile_overlap: 2, kmer_threshold: 2,
///                              tile_threshold: 2, ..Default::default() };
/// let template = b"ACGTACGTTGCA";
/// let mut reads: Vec<Read> = (1..=5)
///     .map(|id| Read::new(id, template.to_vec(), vec![35; 12]))
///     .collect();
/// // read 6 has one low-quality error at position 5
/// let mut seq = template.to_vec();
/// seq[5] = b'A';
/// let mut qual = vec![35u8; 12];
/// qual[5] = 5;
/// reads.push(Read::new(6, seq, qual));
/// let (corrected, stats) = correct_dataset(&reads, &params);
/// assert_eq!(corrected[5].seq, template.to_vec());
/// assert_eq!(stats.errors_corrected, 1);
/// ```
pub fn correct_dataset(reads: &[Read], params: &ReptileParams) -> (Vec<Read>, CorrectionStats) {
    let mut spectra = LocalSpectra::build(reads, params);
    let mut stats = CorrectionStats::default();
    let corrected = reads
        .iter()
        .map(|r| {
            let mut read = r.clone();
            let outcome = correct_read(&mut read, &mut spectra, params);
            stats.absorb(&outcome);
            read
        })
        .collect();
    (corrected, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ReptileParams {
        ReptileParams {
            k: 4,
            tile_overlap: 2,
            kmer_threshold: 2,
            tile_threshold: 2,
            q_threshold: 20,
            max_errors_per_tile: 2,
            max_positions_per_tile: 6,
            max_candidates: 4,
            dominance: 2,
            relax_quality: true,
            canonical: false,
        }
    }

    /// Spectra from many copies of a template read.
    fn spectra_from_template(template: &[u8], copies: usize, p: &ReptileParams) -> LocalSpectra {
        let reads: Vec<Read> = (0..copies)
            .map(|i| Read::new(i as u64 + 1, template.to_vec(), vec![35; template.len()]))
            .collect();
        LocalSpectra::build(&reads, p)
    }

    #[test]
    fn clean_read_untouched() {
        let p = params();
        let template = b"ACGTACGTTGCA";
        let mut spectra = spectra_from_template(template, 5, &p);
        let mut read = Read::new(9, template.to_vec(), vec![35; template.len()]);
        let out = correct_read(&mut read, &mut spectra, &p);
        assert!(!out.corrected());
        assert_eq!(read.seq, template.to_vec());
        assert_eq!(out.tiles_solid, out.tiles_evaluated);
    }

    #[test]
    fn single_low_quality_error_fixed() {
        let p = params();
        let template = b"ACGTACGTTGCA";
        let mut spectra = spectra_from_template(template, 5, &p);
        // introduce an error at position 5 (true base C -> A), low quality
        let mut seq = template.to_vec();
        seq[5] = b'A';
        let mut qual = vec![35u8; seq.len()];
        qual[5] = 8;
        let mut read = Read::new(9, seq, qual);
        let out = correct_read(&mut read, &mut spectra, &p);
        assert_eq!(read.seq, template.to_vec(), "error corrected");
        assert_eq!(out.fixes, vec![BaseFix { pos: 5, from: b'A', to: b'C' }]);
    }

    #[test]
    fn error_at_read_end_fixed_by_anchored_window() {
        let p = params(); // tile_len 6, stride 2
        let template = b"ACGTACGTTGCAT"; // len 13: windows at 0,2,4,6 + anchored 7
        let mut spectra = spectra_from_template(template, 5, &p);
        let mut seq = template.to_vec();
        seq[12] = b'A'; // last base T -> A
        let mut qual = vec![35u8; seq.len()];
        qual[12] = 5;
        let mut read = Read::new(9, seq, qual);
        let out = correct_read(&mut read, &mut spectra, &p);
        assert_eq!(read.seq, template.to_vec());
        assert_eq!(out.fixes.len(), 1);
        assert_eq!(out.fixes[0].pos, 12);
    }

    #[test]
    fn high_quality_error_not_touched_when_strict() {
        let mut p = params();
        p.relax_quality = false;
        let template = b"ACGTACGTTGCA";
        let mut spectra = spectra_from_template(template, 5, &p);
        let mut seq = template.to_vec();
        seq[5] = b'A';
        let mut read = Read::new(9, seq.clone(), vec![35; seq.len()]); // high qual everywhere
        let out = correct_read(&mut read, &mut spectra, &p);
        assert!(!out.corrected(), "strict mode refuses high-quality positions");
        assert_eq!(read.seq, seq);
    }

    #[test]
    fn relax_quality_rescues_high_quality_error() {
        let p = params(); // relax_quality = true
        let template = b"ACGTACGTTGCA";
        let mut spectra = spectra_from_template(template, 5, &p);
        let mut seq = template.to_vec();
        seq[5] = b'A';
        let mut qual = vec![35u8; seq.len()];
        qual[5] = 30; // above threshold but the lowest in its windows
        qual[4] = 34;
        let mut read = Read::new(9, seq, qual);
        let out = correct_read(&mut read, &mut spectra, &p);
        assert_eq!(read.seq, template.to_vec());
        assert!(out.corrected());
    }

    #[test]
    fn ambiguous_candidates_left_alone() {
        let p = params();
        // two equally common templates differing at position 5
        let t1 = b"ACGTACGTTGCA";
        let t2 = b"ACGTAGGTTGCA";
        let mut reads = Vec::new();
        for i in 0..5u64 {
            reads.push(Read::new(2 * i + 1, t1.to_vec(), vec![35; 12]));
            reads.push(Read::new(2 * i + 2, t2.to_vec(), vec![35; 12]));
        }
        let mut spectra = LocalSpectra::build(&reads, &p);
        // a read with an error at position 5 could correct toward either
        let mut seq = t1.to_vec();
        seq[5] = b'T'; // neither C nor G
        let mut qual = vec![35u8; 12];
        qual[5] = 5;
        let mut read = Read::new(99, seq.clone(), qual);
        let out = correct_read(&mut read, &mut spectra, &p);
        assert!(!out.corrected(), "equal-count candidates must not be guessed");
        assert!(out.tiles_ambiguous > 0);
        assert_eq!(read.seq, seq);
    }

    #[test]
    fn dominant_candidate_wins_over_rare_one() {
        let p = params();
        let t1 = b"ACGTACGTTGCA"; // common
        let t2 = b"ACGTAGGTTGCA"; // rare (but above threshold)
        let mut reads = Vec::new();
        for i in 0..10u64 {
            reads.push(Read::new(i + 1, t1.to_vec(), vec![35; 12]));
        }
        for i in 0..2u64 {
            reads.push(Read::new(100 + i, t2.to_vec(), vec![35; 12]));
        }
        let mut spectra = LocalSpectra::build(&reads, &p);
        let mut seq = t1.to_vec();
        seq[5] = b'T';
        let mut qual = vec![35u8; 12];
        qual[5] = 5;
        let mut read = Read::new(99, seq, qual);
        let out = correct_read(&mut read, &mut spectra, &p);
        assert!(out.corrected());
        assert_eq!(read.seq, t1.to_vec(), "10:2 dominance picks the common template");
    }

    #[test]
    fn short_read_is_noop() {
        let p = params();
        let mut spectra = spectra_from_template(b"ACGTACGTTGCA", 5, &p);
        let mut read = Read::new(1, b"ACGT".to_vec(), vec![5; 4]);
        let out = correct_read(&mut read, &mut spectra, &p);
        assert_eq!(out, ReadOutcome::default());
    }

    #[test]
    fn n_windows_skipped() {
        let p = params();
        let template = b"ACGTACGTTGCA";
        let mut spectra = spectra_from_template(template, 5, &p);
        let mut seq = template.to_vec();
        seq[5] = b'N';
        let mut read = Read::new(1, seq.clone(), vec![5; 12]);
        let out = correct_read(&mut read, &mut spectra, &p);
        assert!(out.tiles_skipped > 0);
        assert_eq!(read.seq, Read::new(1, seq, vec![5; 12]).seq, "N windows untouched");
    }

    #[test]
    fn correction_is_idempotent() {
        let p = params();
        let template = b"ACGTACGTTGCA";
        let mut spectra = spectra_from_template(template, 5, &p);
        let mut seq = template.to_vec();
        seq[5] = b'A';
        let mut qual = vec![35u8; 12];
        qual[5] = 5;
        let mut read = Read::new(9, seq, qual);
        correct_read(&mut read, &mut spectra, &p);
        let after_first = read.clone();
        let out2 = correct_read(&mut read, &mut spectra, &p);
        assert!(!out2.corrected());
        assert_eq!(read, after_first);
    }

    #[test]
    fn two_errors_in_one_tile_fixed() {
        let p = params();
        let template = b"ACGTACGTTGCA";
        let mut spectra = spectra_from_template(template, 6, &p);
        let mut seq = template.to_vec();
        seq[4] = b'G'; // A -> G
        seq[5] = b'A'; // C -> A
        let mut qual = vec![35u8; 12];
        qual[4] = 6;
        qual[5] = 6;
        let mut read = Read::new(9, seq, qual);
        let out = correct_read(&mut read, &mut spectra, &p);
        assert_eq!(read.seq, template.to_vec());
        assert_eq!(out.fixes.len(), 2);
    }

    #[test]
    fn stats_absorb_and_merge() {
        let mut a = CorrectionStats::default();
        let mut o = ReadOutcome::default();
        o.fixes.push(BaseFix { pos: 0, from: b'A', to: b'C' });
        o.tiles_evaluated = 3;
        o.tiles_solid = 2;
        a.absorb(&o);
        assert_eq!(a.reads, 1);
        assert_eq!(a.reads_corrected, 1);
        assert_eq!(a.errors_corrected, 1);
        let mut b = CorrectionStats::default();
        b.absorb(&ReadOutcome::default());
        a.merge(&b);
        assert_eq!(a.reads, 2);
        assert_eq!(a.reads_corrected, 1);
    }

    #[test]
    fn correct_dataset_end_to_end() {
        let p = params();
        let template = b"ACGTACGTTGCATTGA";
        let mut reads: Vec<Read> =
            (0..8).map(|i| Read::new(i + 1, template.to_vec(), vec![35; template.len()])).collect();
        // read 9 has one low-quality error
        let mut seq = template.to_vec();
        seq[7] = b'C';
        let mut qual = vec![35u8; template.len()];
        qual[7] = 4;
        reads.push(Read::new(9, seq, qual));
        let (corrected, stats) = correct_dataset(&reads, &p);
        assert_eq!(corrected.len(), 9);
        assert_eq!(corrected[8].seq, template.to_vec());
        assert_eq!(stats.reads, 9);
        assert_eq!(stats.reads_corrected, 1);
        assert_eq!(stats.errors_corrected, 1);
    }
}
