//! Flat open-addressing key→count tables backing the spectra.
//!
//! The paper exists because spectra must fit in 512 MB/rank on
//! BlueGene/Q, yet a generic `HashMap<u64, u32>` spends most of its
//! footprint on layout overhead: the `(u64, u32)` pair pads to 16 bytes,
//! control bytes and a ≤7/8 load bound come on top, and `retain` (our
//! old `prune`) never returns capacity, so a pruned spectrum keeps the
//! peak-size allocation forever. Memory-frugal k-mer counters (KMC as
//! used by RECKONER, the distributed tables of the Extreme-Scale
//! Metagenome Assembly work) all converge on the same layout instead:
//! a flat power-of-two array of packed key+count slots with linear
//! probing. This module implements that layout twice:
//!
//! * [`FlatKmerTable`] — `u64` keys, parallel `keys`/`counts` arrays,
//!   12 bytes per slot;
//! * [`FlatTileTable`] — `u128` keys split into `lo`/`hi` halves so no
//!   slot needs 16-byte alignment, 20 bytes per slot (a `(u128, u32)`
//!   pair would pad to 32).
//!
//! Shared design:
//!
//! * capacity is always a power of two; the probe sequence starts at
//!   the top `log2(capacity)` bits of a Fibonacci multiply (every input
//!   bit influences them, and golden-ratio spacing scatters similar
//!   codes) and steps linearly — cache-friendly for the batch sweeps;
//! * the all-ones key (`u64::MAX` / `u128::MAX`) is the reserved empty
//!   sentinel. It is still a *legal* code (k=32 poly-T), so its count
//!   lives in a side field instead of a slot;
//! * growth doubles when an insert would push occupancy past the
//!   configurable max load factor (default 3/4), giving amortized O(1)
//!   inserts;
//! * `prune` is tombstone-free: survivors are rehashed into the
//!   smallest capacity that fits them, so — unlike `retain` on a hash
//!   map — pruning singletons actually returns their memory. This is
//!   the operating point Fig 5's peak-memory series measures;
//! * counts saturate at `u32::MAX` instead of wrapping;
//! * [`FlatKmerTable::memory_bytes`] is exact (slot arrays + header),
//!   and the static [`FlatKmerTable::bytes_for_entries`] geometry
//!   predicts it from an entry count alone, which is what lets the
//!   virtual engine model per-table bytes without building tables.

use std::sync::Arc;

/// Reserved empty-slot marker for 64-bit keys.
const EMPTY_U64: u64 = u64::MAX;
/// Smallest allocated capacity (power of two).
const MIN_CAPACITY: usize = 16;
/// Default max load factor numerator/denominator: 3/4. At 7/8 the
/// post-prune table can sit at 0.76+ occupancy where linear-probing
/// miss chains average ~9 slots; 3/4 keeps misses short while staying
/// well under the hash map's bytes/entry (measured in
/// `reptile-bench`'s `spectrum_bench`).
const DEFAULT_LOAD: (usize, usize) = (3, 4);

/// Batch width of the `insert_batch` software-prefetch pipeline: while
/// one group of keys inserts, the probe-start cache lines of the next
/// group are requested. Sized to keep roughly a memory-parallelism
/// window of outstanding lines without thrashing L1.
const PREFETCH_GROUP: usize = 16;

/// Above this capacity the bulk-load probe-start indices would overflow
/// the `u32` radix pairs; such tables fall back to pipelined inserts
/// (4 G slots = 48 GB — far past any rank budget this code targets).
const BULK_LOAD_MAX_CAPACITY: usize = u32::MAX as usize;

/// Probe-start slot: Fibonacci (multiplicative) hashing — one multiply
/// by 2^64/φ, keeping the top log2(capacity) bits, which every input
/// bit influences. Golden-ratio spacing scatters near-identical codes
/// maximally far apart, which is exactly what linear probing wants, at
/// a third of `mix64`'s latency on the correction hot path.
#[inline]
fn probe_start(h: u64, mask: usize) -> usize {
    debug_assert!((mask + 1).is_power_of_two());
    (h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> ((mask as u64 + 1).leading_zeros() + 1)) as usize
}

/// Fold a split 128-bit tile key to 64 bits for [`probe_start`]: one
/// multiply keeps the halves asymmetric (swapping `lo`/`hi` lands
/// elsewhere) without `mix128_parts`'s six-multiply chain.
#[inline]
fn fold_tile(lo: u64, hi: u64) -> u64 {
    lo ^ hi.wrapping_mul(0xA24B_AED4_963E_E407)
}

/// Fingerprint of the probe-function family: the Fibonacci multiplier of
/// [`probe_start`] folded with the tile-key mixing constant of
/// [`fold_tile`]. Slot arrays dumped to disk are only probe-ready again
/// if the loading build uses the *same* probe functions, so snapshot
/// headers record this value and reject a mismatch instead of returning
/// garbage lookups. Changing either constant changes the seed and
/// invalidates old snapshots, which is exactly the point.
pub const HASH_SEED: u64 = 0x9E37_79B9_7F4A_7C15 ^ 0xA24B_AED4_963E_E407;

/// Slot-array backing: owned and mutable, or a shared slab adopted from a
/// loaded snapshot. The mapped form is the borrowed half of the Cow-style
/// split — probes read it in place (no rehash, no per-slot copy into a
/// fresh allocation), and the first mutation copies it into owned storage.
#[derive(Clone, Debug)]
enum Slab<T: Copy> {
    /// Private, growable storage (every table built in memory).
    Owned(Vec<T>),
    /// Shared immutable slab (snapshot-loaded tables; possibly aliased by
    /// other tables of the same snapshot).
    Mapped(Arc<[T]>),
}

impl<T: Copy> Slab<T> {
    fn owned(v: Vec<T>) -> Slab<T> {
        Slab::Owned(v)
    }

    fn is_mapped(&self) -> bool {
        matches!(self, Slab::Mapped(_))
    }

    fn into_vec(self) -> Vec<T> {
        match self {
            Slab::Owned(v) => v,
            Slab::Mapped(a) => a.to_vec(),
        }
    }
}

impl<T: Copy> Default for Slab<T> {
    fn default() -> Slab<T> {
        Slab::Owned(Vec::new())
    }
}

impl<T: Copy> std::ops::Deref for Slab<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        match self {
            Slab::Owned(v) => v,
            Slab::Mapped(a) => a,
        }
    }
}

impl<T: Copy> std::ops::DerefMut for Slab<T> {
    /// Copy-on-write: mutable access to a mapped slab detaches it into
    /// owned storage first.
    fn deref_mut(&mut self) -> &mut [T] {
        if let Slab::Mapped(a) = self {
            *self = Slab::Owned(a.to_vec());
        }
        match self {
            Slab::Owned(v) => v,
            Slab::Mapped(_) => unreachable!("mapped slab detached above"),
        }
    }
}

/// Smallest power-of-two capacity holding `n` entries at load
/// `num/den`, or 0 for an empty table.
fn capacity_for(n: usize, num: usize, den: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let needed = (n * den).div_ceil(num);
    needed.next_power_of_two().max(MIN_CAPACITY)
}

/// Open-addressing `u64` → `u32` count table (k-mer spectra).
#[derive(Clone, Debug)]
pub struct FlatKmerTable {
    /// Slot keys; `EMPTY_U64` marks a vacant slot. Length is the
    /// capacity (a power of two) or 0 before the first insert.
    keys: Slab<u64>,
    /// Slot counts, parallel to `keys`.
    counts: Slab<u32>,
    /// Occupied slots (excludes the sentinel key).
    len: usize,
    /// `capacity - 1`; 0 when unallocated.
    mask: usize,
    /// Count stored for the reserved key `u64::MAX` itself.
    sentinel_count: Option<u32>,
    /// Max load factor numerator.
    load_num: usize,
    /// Max load factor denominator.
    load_den: usize,
}

impl Default for FlatKmerTable {
    fn default() -> FlatKmerTable {
        FlatKmerTable::new()
    }
}

impl FlatKmerTable {
    /// Empty table (no allocation until the first insert).
    pub fn new() -> FlatKmerTable {
        FlatKmerTable::with_max_load(DEFAULT_LOAD.0, DEFAULT_LOAD.1)
    }

    /// Empty table with max load factor `num/den` (e.g. 3, 4).
    pub fn with_max_load(num: usize, den: usize) -> FlatKmerTable {
        assert!(num > 0 && num < den, "load factor must be in (0, 1)");
        FlatKmerTable {
            keys: Slab::default(),
            counts: Slab::default(),
            len: 0,
            mask: 0,
            sentinel_count: None,
            load_num: num,
            load_den: den,
        }
    }

    /// Allocated slot count (a power of two, or 0 before first insert).
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Number of distinct keys stored (sentinel included).
    pub fn len(&self) -> usize {
        self.len + self.sentinel_count.is_some() as usize
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact resident bytes: slot arrays plus the table header.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<FlatKmerTable>() + self.keys.len() * 8 + self.counts.len() * 4
    }

    /// Bytes a table holding `n` entries occupies at the default max
    /// load — the same geometry (smallest fitting power-of-two capacity
    /// × 12 bytes/slot + header) `memory_bytes` reports after building
    /// or pruning to `n` entries. The virtual engine's memory model is
    /// built on this.
    pub fn bytes_for_entries(n: usize) -> usize {
        std::mem::size_of::<FlatKmerTable>() + capacity_for(n, DEFAULT_LOAD.0, DEFAULT_LOAD.1) * 12
    }

    /// Slot index where `key` lives, or the vacant slot where it would
    /// be inserted. Capacity must be nonzero.
    #[inline]
    fn probe(&self, key: u64) -> usize {
        debug_assert!(!self.keys.is_empty());
        debug_assert_ne!(key, EMPTY_U64);
        let mut idx = probe_start(key, self.mask);
        loop {
            let slot = self.keys[idx];
            if slot == key || slot == EMPTY_U64 {
                return idx;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Stored count for `key`, `None` when absent.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u32> {
        if key == EMPTY_U64 {
            return self.sentinel_count;
        }
        if self.len == 0 {
            return None;
        }
        // Fused probe: the counts array is only touched on a hit, so a
        // miss stays within the keys array (one cache stream).
        let mut idx = probe_start(key, self.mask);
        loop {
            let slot = self.keys[idx];
            if slot == key {
                return Some(self.counts[idx]);
            }
            if slot == EMPTY_U64 {
                return None;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Add `count` to `key`'s tally (saturating), inserting if absent.
    pub fn add_count(&mut self, key: u64, count: u32) {
        if key == EMPTY_U64 {
            let prev = self.sentinel_count.unwrap_or(0);
            self.sentinel_count = Some(prev.saturating_add(count));
            return;
        }
        if self.keys.is_empty() {
            self.rehash(MIN_CAPACITY);
        }
        let idx = self.probe(key);
        if self.keys[idx] == key {
            self.counts[idx] = self.counts[idx].saturating_add(count);
            return;
        }
        // Grow *before* inserting so occupancy never exceeds the bound.
        if (self.len + 1) * self.load_den > self.keys.len() * self.load_num {
            self.rehash(self.keys.len() * 2);
            let idx = self.probe(key);
            self.keys[idx] = key;
            self.counts[idx] = count;
        } else {
            self.keys[idx] = key;
            self.counts[idx] = count;
        }
        self.len += 1;
    }

    /// Pre-size for `additional` more distinct keys, so a bulk ingest of
    /// that many entries triggers no incremental growth rehash. The
    /// target is the capacity incremental growth to `len() + additional`
    /// entries would land on, so when the estimate is exact (e.g. the
    /// disjoint owner parts of an allgathered spectrum) the final
    /// geometry still matches [`FlatKmerTable::bytes_for_entries`].
    pub fn reserve(&mut self, additional: usize) {
        let want = capacity_for(self.len + additional, self.load_num, self.load_den);
        if want > self.keys.len() {
            self.rehash(want);
        }
    }

    /// Bulk-ingest a sorted run of **distinct** `(key, count)` pairs —
    /// the shape the pipelined spectrum build's pre-aggregated per-owner
    /// buckets arrive in. Equivalent to `add_count` per pair (saturating
    /// adds commute, so the result is order-independent); debug builds
    /// verify the run is strictly ascending.
    ///
    /// On an **empty** table the whole run is placed by
    /// [`FlatKmerTable::bulk_load`] — exact-capacity allocation and a
    /// single probe-start-ordered sweep, several times faster than
    /// per-key probing. Otherwise pair with [`FlatKmerTable::reserve`]
    /// when the number of *new* keys is known, to skip incremental
    /// growth.
    pub fn merge_sorted(&mut self, entries: &[(u64, u32)]) {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "merge_sorted requires strictly ascending keys"
        );
        if self.len == 0 && self.sentinel_count.is_none() {
            self.bulk_load(entries);
        } else {
            self.insert_batch(entries);
        }
    }

    /// Construct the contents of an empty table from distinct entries in
    /// one sweep. The entries are ordered by probe start (a 2-pass LSD
    /// radix sort of `(start, index)` pairs), after which linear-probing
    /// placement degenerates to a monotone cursor: each key lands at
    /// `max(start, cursor)` — no probe loop, no occupancy re-check, no
    /// growth, and the slot writes walk the table front to back instead
    /// of hopping the whole array per key. Keys whose run crosses the
    /// wrap-around boundary spill to a regular probe afterwards (a
    /// handful at most: only the final cluster can cross). Content,
    /// `len`, and capacity match an `add_count` loop exactly.
    fn bulk_load(&mut self, entries: &[(u64, u32)]) {
        debug_assert!(self.len == 0 && self.sentinel_count.is_none());
        // The sentinel key is the all-ones pattern, so a sorted run can
        // only carry it last; its count lives in the side field.
        let (entries, sentinel) = match entries.split_last() {
            Some((&(EMPTY_U64, c), rest)) => (rest, Some(c)),
            _ => (entries, None),
        };
        self.sentinel_count = sentinel;
        if entries.is_empty() {
            return;
        }
        self.reserve(entries.len());
        let cap = self.keys.len();
        if cap > BULK_LOAD_MAX_CAPACITY {
            self.insert_batch(entries);
            return;
        }
        // `(probe_start << 32) | index`, sorted on the high half only —
        // one packed u64 per entry keeps the two radix passes and the
        // placement loop on 8-byte elements.
        let mut order: Vec<u64> = entries
            .iter()
            .enumerate()
            .map(|(i, &(k, _))| ((probe_start(k, self.mask) as u64) << 32) | i as u64)
            .collect();
        let mut tmp: Vec<u64> = Vec::new();
        crate::radix::lsd_sort_by(&mut order, &mut tmp, cap.trailing_zeros(), |&p| {
            (p >> 32) as u32
        });
        let mut spill: Vec<u32> = Vec::new();
        let mut cursor = 0usize;
        {
            let keys = &mut self.keys[..];
            let counts = &mut self.counts[..];
            // The placement gather (`entries[i]`) is the only random
            // access left; its indices are known well ahead, so keep a
            // window of them prefetched.
            const AHEAD: usize = 16;
            for (j, &p) in order.iter().enumerate() {
                if let Some(&np) = order.get(j + AHEAD) {
                    dnaseq::simd::prefetch_read(entries, np as u32 as usize);
                }
                let (h, i) = ((p >> 32) as usize, p as u32);
                let slot = cursor.max(h);
                if slot >= cap {
                    spill.push(i);
                    continue;
                }
                let (key, count) = entries[i as usize];
                keys[slot] = key;
                counts[slot] = count;
                cursor = slot + 1;
            }
        }
        // Spilled keys probe from their start, wrapping into the front
        // of the array; every slot they skip is occupied, preserving the
        // probe-path invariant for lookups.
        for i in spill {
            let (key, count) = entries[i as usize];
            let idx = self.probe(key);
            debug_assert_eq!(self.keys[idx], EMPTY_U64);
            self.keys[idx] = key;
            self.counts[idx] = count;
        }
        self.len = entries.len();
    }

    /// Bulk add with a software-prefetch pipeline: entries are processed
    /// in probe groups of [`PREFETCH_GROUP`]; while one group inserts,
    /// the probe-start cache lines of the *next* group are prefetched, so
    /// the dependent random loads of up to a whole group are in flight at
    /// once instead of serializing one miss at a time. Insertion order
    /// and growth schedule are exactly those of `add_count` per pair.
    /// Unlike [`merge_sorted`] this accepts arbitrary (unsorted,
    /// duplicated) pairs.
    ///
    /// [`PREFETCH_GROUP`]: PREFETCH_GROUP
    /// [`merge_sorted`]: FlatKmerTable::merge_sorted
    pub fn insert_batch(&mut self, entries: &[(u64, u32)]) {
        self.insert_pipelined(entries);
    }

    /// Streaming counterpart of [`FlatKmerTable::merge_sorted`] for the
    /// out-of-core build: the distinct-survivor count is known up front
    /// (the run merge's counting pass) but the survivors arrive as a
    /// stream, never materialized whole. Reserves for `entries` exactly
    /// as the in-memory path's `reserve(n)` + `merge_sorted(&all)` call
    /// pair does — so the final capacity, `len`, counts, and
    /// `memory_bytes` all match it — then inserts `chunk`-sized sorted
    /// slices through the prefetch-pipelined batch path with no growth
    /// rehash. The table must be empty; `entries` counts the sentinel
    /// key if the stream carries one (strictly-ascending keys put it
    /// last).
    pub fn bulk_load_sorted_stream(
        &mut self,
        entries: usize,
        chunk: usize,
        iter: impl IntoIterator<Item = (u64, u32)>,
    ) {
        assert!(self.is_empty(), "bulk_load_sorted_stream requires an empty table");
        assert!(chunk > 0, "chunk must be nonzero");
        self.reserve(entries);
        let mut buf: Vec<(u64, u32)> = Vec::with_capacity(chunk.min(entries.max(1)));
        let mut last: Option<u64> = None;
        let mut seen = 0usize;
        for (key, count) in iter {
            debug_assert!(
                last.is_none_or(|p| p < key),
                "bulk_load_sorted_stream requires strictly ascending keys"
            );
            last = Some(key);
            seen += 1;
            if key == EMPTY_U64 {
                self.sentinel_count = Some(count);
                continue;
            }
            buf.push((key, count));
            if buf.len() == chunk {
                self.insert_batch(&buf);
                buf.clear();
            }
        }
        if !buf.is_empty() {
            self.insert_batch(&buf);
        }
        debug_assert_eq!(seen, entries, "stream length must match the declared count");
    }

    /// The prefetch-pipelined `insert_batch` loop.
    fn insert_pipelined(&mut self, entries: &[(u64, u32)]) {
        let mut at = 0;
        while at < entries.len() {
            let next = (at + PREFETCH_GROUP).min(entries.len());
            // Hints target the current geometry; a growth rehash while
            // the current group inserts merely wastes them.
            if !self.keys.is_empty() {
                for &(key, _) in &entries[next..(next + PREFETCH_GROUP).min(entries.len())] {
                    if key != EMPTY_U64 {
                        dnaseq::simd::prefetch_read(&self.keys, probe_start(key, self.mask));
                    }
                }
            }
            for &(key, count) in &entries[at..next] {
                self.add_count(key, count);
            }
            at = next;
        }
    }

    /// Rehash every occupied slot into a fresh array of `new_cap` slots.
    fn rehash(&mut self, new_cap: usize) {
        debug_assert!(
            new_cap.is_power_of_two() && new_cap * self.load_num >= self.len * self.load_den
        );
        let old_keys = std::mem::replace(&mut self.keys, Slab::owned(vec![EMPTY_U64; new_cap]));
        let old_counts = std::mem::take(&mut self.counts);
        self.counts = Slab::owned(vec![0; new_cap]);
        self.mask = new_cap - 1;
        for (key, count) in old_keys.into_vec().into_iter().zip(old_counts.into_vec()) {
            if key == EMPTY_U64 {
                continue;
            }
            let idx = self.probe(key);
            self.keys[idx] = key;
            self.counts[idx] = count;
        }
    }

    /// Drop entries with count < `threshold`, then rebuild into the
    /// smallest capacity that fits the survivors (tombstone-free; the
    /// freed slots are returned to the allocator, unlike `retain` on a
    /// hash map which pins the peak capacity).
    pub fn prune(&mut self, threshold: u32) {
        if self.sentinel_count.is_some_and(|c| c < threshold) {
            self.sentinel_count = None;
        }
        let survivors = self
            .keys
            .iter()
            .zip(self.counts.iter())
            .filter(|&(&k, &c)| k != EMPTY_U64 && c >= threshold)
            .count();
        let new_cap = capacity_for(survivors, self.load_num, self.load_den);
        let old_keys = std::mem::replace(&mut self.keys, Slab::owned(vec![EMPTY_U64; new_cap]));
        let old_counts = std::mem::take(&mut self.counts);
        self.counts = Slab::owned(vec![0; new_cap]);
        self.mask = new_cap.saturating_sub(1);
        self.len = survivors;
        for (key, count) in old_keys.into_vec().into_iter().zip(old_counts.into_vec()) {
            if key == EMPTY_U64 || count < threshold {
                continue;
            }
            let idx = self.probe(key);
            self.keys[idx] = key;
            self.counts[idx] = count;
        }
    }

    /// Iterate `(key, count)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.keys
            .iter()
            .zip(self.counts.iter())
            .filter(|&(&k, _)| k != EMPTY_U64)
            .map(|(&k, &c)| (k, c))
            .chain(self.sentinel_count.map(|c| (EMPTY_U64, c)))
    }

    /// Consume into `(key, count)` pairs.
    pub fn into_entries(self) -> impl Iterator<Item = (u64, u32)> {
        let sentinel = self.sentinel_count.map(|c| (EMPTY_U64, c));
        self.keys
            .into_vec()
            .into_iter()
            .zip(self.counts.into_vec())
            .filter(|&(k, _)| k != EMPTY_U64)
            .chain(sentinel)
    }

    /// True when the slot arrays are snapshot-mapped (shared, not yet
    /// detached by a mutation).
    pub fn is_mapped(&self) -> bool {
        self.keys.is_mapped() || self.counts.is_mapped()
    }

    /// Borrow the raw slot arrays and geometry — the exact bytes a
    /// snapshot shard persists. Probing a table rebuilt from these parts
    /// via [`FlatKmerTable::from_mapped_parts`] visits identical slots.
    pub fn raw_parts(&self) -> KmerTableParts<'_> {
        KmerTableParts {
            keys: &self.keys,
            counts: &self.counts,
            entries: self.len,
            sentinel_count: self.sentinel_count,
            load_num: self.load_num,
            load_den: self.load_den,
        }
    }

    /// Adopt snapshot-loaded slot arrays as a ready-to-probe table with
    /// no rehash: the arrays must be a verbatim dump of a table built by
    /// this module (same probe family — callers check [`HASH_SEED`]
    /// before trusting the layout). Validates geometry and recounts
    /// occupancy so a corrupted-but-checksummed dump cannot fabricate an
    /// out-of-bounds mask or an impossible load factor.
    pub fn from_mapped_parts(
        keys: Arc<[u64]>,
        counts: Arc<[u32]>,
        sentinel_count: Option<u32>,
        load_num: usize,
        load_den: usize,
    ) -> Result<FlatKmerTable, String> {
        if load_num == 0 || load_num >= load_den {
            return Err(format!("load factor {load_num}/{load_den} not in (0, 1)"));
        }
        if keys.len() != counts.len() {
            return Err(format!(
                "slot arrays disagree: {} keys vs {} counts",
                keys.len(),
                counts.len()
            ));
        }
        let cap = keys.len();
        if cap != 0 && (!cap.is_power_of_two() || cap < MIN_CAPACITY) {
            return Err(format!("capacity {cap} is not 0 or a power of two ≥ {MIN_CAPACITY}"));
        }
        let len = keys.iter().filter(|&&k| k != EMPTY_U64).count();
        if len * load_den > cap * load_num {
            return Err(format!("{len} entries exceed the {load_num}/{load_den} bound at {cap}"));
        }
        Ok(FlatKmerTable {
            mask: cap.saturating_sub(1),
            keys: Slab::Mapped(keys),
            counts: Slab::Mapped(counts),
            len,
            sentinel_count,
            load_num,
            load_den,
        })
    }
}

/// Borrowed view of a [`FlatKmerTable`]'s slot arrays and geometry — the
/// persistence boundary for snapshot shards.
#[derive(Clone, Copy, Debug)]
pub struct KmerTableParts<'a> {
    /// Slot keys, `EMPTY_U64` marking vacancies; length is the capacity.
    pub keys: &'a [u64],
    /// Slot counts, parallel to `keys`.
    pub counts: &'a [u32],
    /// Occupied slots (sentinel excluded).
    pub entries: usize,
    /// Side-field count for the reserved all-ones key.
    pub sentinel_count: Option<u32>,
    /// Max load factor numerator.
    pub load_num: usize,
    /// Max load factor denominator.
    pub load_den: usize,
}

/// Open-addressing `u128` → `u32` count table (tile spectra).
///
/// Keys are stored split into 64-bit halves in parallel arrays, so a
/// slot is 8 + 8 + 4 = 20 bytes with no 16-byte alignment padding
/// (a `(u128, u32)` pair is 32 bytes). The empty sentinel is
/// `u128::MAX` — both halves all-ones.
#[derive(Clone, Debug)]
pub struct FlatTileTable {
    /// Low 64 bits of each slot key.
    lo: Slab<u64>,
    /// High 64 bits of each slot key.
    hi: Slab<u64>,
    /// Slot counts, parallel to `lo`/`hi`.
    counts: Slab<u32>,
    /// Occupied slots (excludes the sentinel key).
    len: usize,
    /// `capacity - 1`; 0 when unallocated.
    mask: usize,
    /// Count stored for the reserved key `u128::MAX` itself.
    sentinel_count: Option<u32>,
    /// Max load factor numerator.
    load_num: usize,
    /// Max load factor denominator.
    load_den: usize,
}

impl Default for FlatTileTable {
    fn default() -> FlatTileTable {
        FlatTileTable::new()
    }
}

impl FlatTileTable {
    /// Empty table (no allocation until the first insert).
    pub fn new() -> FlatTileTable {
        FlatTileTable::with_max_load(DEFAULT_LOAD.0, DEFAULT_LOAD.1)
    }

    /// Empty table with max load factor `num/den`.
    pub fn with_max_load(num: usize, den: usize) -> FlatTileTable {
        assert!(num > 0 && num < den, "load factor must be in (0, 1)");
        FlatTileTable {
            lo: Slab::default(),
            hi: Slab::default(),
            counts: Slab::default(),
            len: 0,
            mask: 0,
            sentinel_count: None,
            load_num: num,
            load_den: den,
        }
    }

    /// Allocated slot count (a power of two, or 0 before first insert).
    pub fn capacity(&self) -> usize {
        self.lo.len()
    }

    /// Number of distinct keys stored (sentinel included).
    pub fn len(&self) -> usize {
        self.len + self.sentinel_count.is_some() as usize
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact resident bytes: slot arrays plus the table header.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<FlatTileTable>()
            + self.lo.len() * 8
            + self.hi.len() * 8
            + self.counts.len() * 4
    }

    /// Bytes a table holding `n` entries occupies at the default max
    /// load (see [`FlatKmerTable::bytes_for_entries`]).
    pub fn bytes_for_entries(n: usize) -> usize {
        std::mem::size_of::<FlatTileTable>() + capacity_for(n, DEFAULT_LOAD.0, DEFAULT_LOAD.1) * 20
    }

    /// True when slot `idx` holds the vacant marker.
    #[inline]
    fn vacant(&self, idx: usize) -> bool {
        self.lo[idx] == EMPTY_U64 && self.hi[idx] == EMPTY_U64
    }

    /// Slot index where `(lo, hi)` lives, or its insertion slot.
    #[inline]
    fn probe(&self, lo: u64, hi: u64) -> usize {
        debug_assert!(!self.lo.is_empty());
        debug_assert!(lo != EMPTY_U64 || hi != EMPTY_U64);
        let mut idx = probe_start(fold_tile(lo, hi), self.mask);
        loop {
            if (self.lo[idx] == lo && self.hi[idx] == hi) || self.vacant(idx) {
                return idx;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Stored count for `key`, `None` when absent.
    #[inline]
    pub fn get(&self, key: u128) -> Option<u32> {
        if key == u128::MAX {
            return self.sentinel_count;
        }
        if self.len == 0 {
            return None;
        }
        // Fused probe, as in [`FlatKmerTable::get`].
        let (lo, hi) = (key as u64, (key >> 64) as u64);
        let mut idx = probe_start(fold_tile(lo, hi), self.mask);
        loop {
            if self.lo[idx] == lo && self.hi[idx] == hi {
                return Some(self.counts[idx]);
            }
            if self.vacant(idx) {
                return None;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Add `count` to `key`'s tally (saturating), inserting if absent.
    pub fn add_count(&mut self, key: u128, count: u32) {
        if key == u128::MAX {
            let prev = self.sentinel_count.unwrap_or(0);
            self.sentinel_count = Some(prev.saturating_add(count));
            return;
        }
        if self.lo.is_empty() {
            self.rehash(MIN_CAPACITY);
        }
        let (lo, hi) = (key as u64, (key >> 64) as u64);
        let idx = self.probe(lo, hi);
        if self.lo[idx] == lo && self.hi[idx] == hi {
            self.counts[idx] = self.counts[idx].saturating_add(count);
            return;
        }
        if (self.len + 1) * self.load_den > self.lo.len() * self.load_num {
            self.rehash(self.lo.len() * 2);
            let idx = self.probe(lo, hi);
            self.set_slot(idx, lo, hi, count);
        } else {
            self.set_slot(idx, lo, hi, count);
        }
        self.len += 1;
    }

    #[inline]
    fn set_slot(&mut self, idx: usize, lo: u64, hi: u64, count: u32) {
        self.lo[idx] = lo;
        self.hi[idx] = hi;
        self.counts[idx] = count;
    }

    /// Pre-size for `additional` more distinct keys (see
    /// [`FlatKmerTable::reserve`]).
    pub fn reserve(&mut self, additional: usize) {
        let want = capacity_for(self.len + additional, self.load_num, self.load_den);
        if want > self.lo.len() {
            self.rehash(want);
        }
    }

    /// Bulk-ingest a sorted run of **distinct** `(key, count)` pairs
    /// (see [`FlatKmerTable::merge_sorted`]). On an empty table the run
    /// is placed by the one-sweep [`FlatTileTable::bulk_load`].
    pub fn merge_sorted(&mut self, entries: &[(u128, u32)]) {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "merge_sorted requires strictly ascending keys"
        );
        if self.len == 0 && self.sentinel_count.is_none() {
            self.bulk_load(entries);
        } else {
            self.insert_batch(entries);
        }
    }

    /// One-sweep construction of an empty table from distinct entries —
    /// probe-start-ordered monotone-cursor placement, exactly as
    /// [`FlatKmerTable::bulk_load`].
    fn bulk_load(&mut self, entries: &[(u128, u32)]) {
        debug_assert!(self.len == 0 && self.sentinel_count.is_none());
        let (entries, sentinel) = match entries.split_last() {
            Some((&(u128::MAX, c), rest)) => (rest, Some(c)),
            _ => (entries, None),
        };
        self.sentinel_count = sentinel;
        if entries.is_empty() {
            return;
        }
        self.reserve(entries.len());
        let cap = self.lo.len();
        if cap > BULK_LOAD_MAX_CAPACITY {
            self.insert_batch(entries);
            return;
        }
        let mut order: Vec<u64> = entries
            .iter()
            .enumerate()
            .map(|(i, &(k, _))| {
                ((probe_start(fold_tile(k as u64, (k >> 64) as u64), self.mask) as u64) << 32)
                    | i as u64
            })
            .collect();
        let mut tmp: Vec<u64> = Vec::new();
        crate::radix::lsd_sort_by(&mut order, &mut tmp, cap.trailing_zeros(), |&p| {
            (p >> 32) as u32
        });
        let mut spill: Vec<u32> = Vec::new();
        let mut cursor = 0usize;
        {
            let lo_slots = &mut self.lo[..];
            let hi_slots = &mut self.hi[..];
            let counts = &mut self.counts[..];
            const AHEAD: usize = 16;
            for (j, &p) in order.iter().enumerate() {
                if let Some(&np) = order.get(j + AHEAD) {
                    dnaseq::simd::prefetch_read(entries, np as u32 as usize);
                }
                let (h, i) = ((p >> 32) as usize, p as u32);
                let slot = cursor.max(h);
                if slot >= cap {
                    spill.push(i);
                    continue;
                }
                let (key, count) = entries[i as usize];
                lo_slots[slot] = key as u64;
                hi_slots[slot] = (key >> 64) as u64;
                counts[slot] = count;
                cursor = slot + 1;
            }
        }
        for i in spill {
            let (key, count) = entries[i as usize];
            let (lo, hi) = (key as u64, (key >> 64) as u64);
            let idx = self.probe(lo, hi);
            debug_assert!(self.vacant(idx));
            self.set_slot(idx, lo, hi, count);
        }
        self.len = entries.len();
    }

    /// Bulk add with a software-prefetch pipeline (see
    /// [`FlatKmerTable::insert_batch`]). Accepts arbitrary pairs.
    pub fn insert_batch(&mut self, entries: &[(u128, u32)]) {
        self.insert_pipelined(entries);
    }

    /// Streaming sorted bulk load for the out-of-core build (see
    /// [`FlatKmerTable::bulk_load_sorted_stream`]).
    pub fn bulk_load_sorted_stream(
        &mut self,
        entries: usize,
        chunk: usize,
        iter: impl IntoIterator<Item = (u128, u32)>,
    ) {
        assert!(self.is_empty(), "bulk_load_sorted_stream requires an empty table");
        assert!(chunk > 0, "chunk must be nonzero");
        self.reserve(entries);
        let mut buf: Vec<(u128, u32)> = Vec::with_capacity(chunk.min(entries.max(1)));
        let mut last: Option<u128> = None;
        let mut seen = 0usize;
        for (key, count) in iter {
            debug_assert!(
                last.is_none_or(|p| p < key),
                "bulk_load_sorted_stream requires strictly ascending keys"
            );
            last = Some(key);
            seen += 1;
            if key == u128::MAX {
                self.sentinel_count = Some(count);
                continue;
            }
            buf.push((key, count));
            if buf.len() == chunk {
                self.insert_batch(&buf);
                buf.clear();
            }
        }
        if !buf.is_empty() {
            self.insert_batch(&buf);
        }
        debug_assert_eq!(seen, entries, "stream length must match the declared count");
    }

    /// The prefetch-pipelined `insert_batch` loop.
    fn insert_pipelined(&mut self, entries: &[(u128, u32)]) {
        let mut at = 0;
        while at < entries.len() {
            let next = (at + PREFETCH_GROUP).min(entries.len());
            if !self.lo.is_empty() {
                for &(key, _) in &entries[next..(next + PREFETCH_GROUP).min(entries.len())] {
                    if key != u128::MAX {
                        let idx = probe_start(fold_tile(key as u64, (key >> 64) as u64), self.mask);
                        // The `lo` array is the probe stream; `hi` shares
                        // the index and usually the same line set.
                        dnaseq::simd::prefetch_read(&self.lo, idx);
                        dnaseq::simd::prefetch_read(&self.hi, idx);
                    }
                }
            }
            for &(key, count) in &entries[at..next] {
                self.add_count(key, count);
            }
            at = next;
        }
    }

    /// Rehash every occupied slot into fresh arrays of `new_cap` slots.
    fn rehash(&mut self, new_cap: usize) {
        debug_assert!(
            new_cap.is_power_of_two() && new_cap * self.load_num >= self.len * self.load_den
        );
        let old_lo = std::mem::replace(&mut self.lo, Slab::owned(vec![EMPTY_U64; new_cap]));
        let old_hi = std::mem::replace(&mut self.hi, Slab::owned(vec![EMPTY_U64; new_cap]));
        let old_counts = std::mem::take(&mut self.counts);
        self.counts = Slab::owned(vec![0; new_cap]);
        self.mask = new_cap - 1;
        for ((lo, hi), count) in
            old_lo.into_vec().into_iter().zip(old_hi.into_vec()).zip(old_counts.into_vec())
        {
            if lo == EMPTY_U64 && hi == EMPTY_U64 {
                continue;
            }
            let idx = self.probe(lo, hi);
            self.set_slot(idx, lo, hi, count);
        }
    }

    /// Drop entries with count < `threshold`, then rebuild into the
    /// smallest capacity that fits the survivors.
    pub fn prune(&mut self, threshold: u32) {
        if self.sentinel_count.is_some_and(|c| c < threshold) {
            self.sentinel_count = None;
        }
        let survivors =
            (0..self.lo.len()).filter(|&i| !self.vacant(i) && self.counts[i] >= threshold).count();
        let new_cap = capacity_for(survivors, self.load_num, self.load_den);
        let old_lo = std::mem::replace(&mut self.lo, Slab::owned(vec![EMPTY_U64; new_cap]));
        let old_hi = std::mem::replace(&mut self.hi, Slab::owned(vec![EMPTY_U64; new_cap]));
        let old_counts = std::mem::take(&mut self.counts);
        self.counts = Slab::owned(vec![0; new_cap]);
        self.mask = new_cap.saturating_sub(1);
        self.len = survivors;
        for ((lo, hi), count) in
            old_lo.into_vec().into_iter().zip(old_hi.into_vec()).zip(old_counts.into_vec())
        {
            if (lo == EMPTY_U64 && hi == EMPTY_U64) || count < threshold {
                continue;
            }
            let idx = self.probe(lo, hi);
            self.set_slot(idx, lo, hi, count);
        }
    }

    /// Iterate `(key, count)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (u128, u32)> + '_ {
        (0..self.lo.len())
            .filter(|&i| !self.vacant(i))
            .map(|i| (self.lo[i] as u128 | (self.hi[i] as u128) << 64, self.counts[i]))
            .chain(self.sentinel_count.map(|c| (u128::MAX, c)))
    }

    /// Consume into `(key, count)` pairs.
    pub fn into_entries(self) -> impl Iterator<Item = (u128, u32)> {
        let sentinel = self.sentinel_count.map(|c| (u128::MAX, c));
        self.lo
            .into_vec()
            .into_iter()
            .zip(self.hi.into_vec())
            .zip(self.counts.into_vec())
            .filter(|&((lo, hi), _)| lo != EMPTY_U64 || hi != EMPTY_U64)
            .map(|((lo, hi), c)| (lo as u128 | (hi as u128) << 64, c))
            .chain(sentinel)
    }

    /// True when the slot arrays are snapshot-mapped (see
    /// [`FlatKmerTable::is_mapped`]).
    pub fn is_mapped(&self) -> bool {
        self.lo.is_mapped() || self.hi.is_mapped() || self.counts.is_mapped()
    }

    /// Borrow the raw slot arrays and geometry (see
    /// [`FlatKmerTable::raw_parts`]).
    pub fn raw_parts(&self) -> TileTableParts<'_> {
        TileTableParts {
            lo: &self.lo,
            hi: &self.hi,
            counts: &self.counts,
            entries: self.len,
            sentinel_count: self.sentinel_count,
            load_num: self.load_num,
            load_den: self.load_den,
        }
    }

    /// Adopt snapshot-loaded slot arrays with no rehash (see
    /// [`FlatKmerTable::from_mapped_parts`]). A slot is vacant only when
    /// *both* halves are all-ones.
    pub fn from_mapped_parts(
        lo: Arc<[u64]>,
        hi: Arc<[u64]>,
        counts: Arc<[u32]>,
        sentinel_count: Option<u32>,
        load_num: usize,
        load_den: usize,
    ) -> Result<FlatTileTable, String> {
        if load_num == 0 || load_num >= load_den {
            return Err(format!("load factor {load_num}/{load_den} not in (0, 1)"));
        }
        if lo.len() != hi.len() || lo.len() != counts.len() {
            return Err(format!(
                "slot arrays disagree: {} lo vs {} hi vs {} counts",
                lo.len(),
                hi.len(),
                counts.len()
            ));
        }
        let cap = lo.len();
        if cap != 0 && (!cap.is_power_of_two() || cap < MIN_CAPACITY) {
            return Err(format!("capacity {cap} is not 0 or a power of two ≥ {MIN_CAPACITY}"));
        }
        let len =
            lo.iter().zip(hi.iter()).filter(|&(&l, &h)| l != EMPTY_U64 || h != EMPTY_U64).count();
        if len * load_den > cap * load_num {
            return Err(format!("{len} entries exceed the {load_num}/{load_den} bound at {cap}"));
        }
        Ok(FlatTileTable {
            mask: cap.saturating_sub(1),
            lo: Slab::Mapped(lo),
            hi: Slab::Mapped(hi),
            counts: Slab::Mapped(counts),
            len,
            sentinel_count,
            load_num,
            load_den,
        })
    }
}

/// Borrowed view of a [`FlatTileTable`]'s slot arrays and geometry — the
/// persistence boundary for snapshot shards.
#[derive(Clone, Copy, Debug)]
pub struct TileTableParts<'a> {
    /// Low halves of the slot keys; a slot is vacant when both halves
    /// are all-ones.
    pub lo: &'a [u64],
    /// High halves of the slot keys, parallel to `lo`.
    pub hi: &'a [u64],
    /// Slot counts, parallel to `lo`/`hi`.
    pub counts: &'a [u32],
    /// Occupied slots (sentinel excluded).
    pub entries: usize,
    /// Side-field count for the reserved all-ones key.
    pub sentinel_count: Option<u32>,
    /// Max load factor numerator.
    pub load_num: usize,
    /// Max load factor denominator.
    pub load_den: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip_across_growth() {
        let mut t = FlatKmerTable::new();
        assert_eq!(t.capacity(), 0);
        for key in 0..1000u64 {
            t.add_count(key * 7919, (key % 9 + 1) as u32);
        }
        assert_eq!(t.len(), 1000);
        for key in 0..1000u64 {
            assert_eq!(t.get(key * 7919), Some((key % 9 + 1) as u32));
        }
        assert_eq!(t.get(123_456_789), None);
        assert!(t.capacity().is_power_of_two());
        // occupancy bound holds after growth
        assert!(t.len() * 4 <= t.capacity() * 3);
    }

    #[test]
    fn sentinel_key_is_a_legal_entry() {
        let mut t = FlatKmerTable::new();
        t.add_count(u64::MAX, 3); // k=32 poly-T is a real code
        t.add_count(u64::MAX, 2);
        assert_eq!(t.get(u64::MAX), Some(5));
        assert_eq!(t.len(), 1);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(u64::MAX, 5)]);
        t.prune(6);
        assert_eq!(t.get(u64::MAX), None);
        assert!(t.is_empty());
    }

    #[test]
    fn counts_saturate_instead_of_wrapping() {
        let mut t = FlatKmerTable::new();
        t.add_count(42, u32::MAX - 1);
        t.add_count(42, 5);
        assert_eq!(t.get(42), Some(u32::MAX));
        let mut s = FlatTileTable::new();
        s.add_count(42, u32::MAX);
        s.add_count(42, u32::MAX);
        assert_eq!(s.get(42), Some(u32::MAX));
    }

    #[test]
    fn prune_rebuilds_to_smallest_capacity() {
        let mut t = FlatKmerTable::new();
        for key in 0..10_000u64 {
            t.add_count(key, if key < 50 { 3 } else { 1 });
        }
        let peak = t.memory_bytes();
        t.prune(2);
        assert_eq!(t.len(), 50);
        for key in 0..50u64 {
            assert_eq!(t.get(key), Some(3));
        }
        assert_eq!(t.get(51), None);
        assert!(t.memory_bytes() < peak / 8, "prune must return memory");
        assert_eq!(t.memory_bytes(), FlatKmerTable::bytes_for_entries(50));
    }

    #[test]
    fn geometry_predicts_measured_bytes() {
        // 12/13 and 768/769 straddle the 3/4-load growth boundaries
        for n in [0usize, 1, 12, 13, 15, 100, 768, 769, 5000] {
            let mut t = FlatKmerTable::new();
            for key in 0..n as u64 {
                t.add_count(key, 1);
            }
            assert_eq!(
                t.memory_bytes(),
                FlatKmerTable::bytes_for_entries(n),
                "kmer geometry diverges at n={n}"
            );
            let mut s = FlatTileTable::new();
            for key in 0..n as u128 {
                s.add_count(key, 1);
            }
            assert_eq!(
                s.memory_bytes(),
                FlatTileTable::bytes_for_entries(n),
                "tile geometry diverges at n={n}"
            );
        }
    }

    #[test]
    fn reserve_preserves_geometry_and_skips_growth() {
        for n in [1usize, 12, 13, 100, 769] {
            let mut t = FlatKmerTable::new();
            t.reserve(n);
            let cap = t.capacity();
            for key in 0..n as u64 {
                t.add_count(key, 1);
            }
            assert_eq!(t.capacity(), cap, "no growth after an exact reserve (n={n})");
            assert_eq!(t.memory_bytes(), FlatKmerTable::bytes_for_entries(n));
            let mut s = FlatTileTable::new();
            s.reserve(n);
            let cap = s.capacity();
            for key in 0..n as u128 {
                s.add_count(key, 1);
            }
            assert_eq!(s.capacity(), cap);
            assert_eq!(s.memory_bytes(), FlatTileTable::bytes_for_entries(n));
        }
        // reserve(0) on an empty table allocates nothing
        let mut t = FlatKmerTable::new();
        t.reserve(0);
        assert_eq!(t.capacity(), 0);
    }

    #[test]
    fn merge_sorted_equals_per_key_adds() {
        let run: Vec<(u64, u32)> = (0..500).map(|i| (i * 31, (i % 7 + 1) as u32)).collect();
        let mut bulk = FlatKmerTable::new();
        bulk.add_count(93, 5); // pre-existing overlap with the run
        bulk.reserve(run.len());
        bulk.merge_sorted(&run);
        let mut serial = FlatKmerTable::new();
        serial.add_count(93, 5);
        for &(k, c) in &run {
            serial.add_count(k, c);
        }
        let mut a: Vec<_> = bulk.iter().collect();
        let mut b: Vec<_> = serial.iter().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // sentinel key rides through the sorted path too (sorts last)
        let mut s = FlatTileTable::new();
        s.merge_sorted(&[(1, 2), (u128::MAX, 9)]);
        assert_eq!(s.get(u128::MAX), Some(9));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn insert_batch_equals_per_key_adds_on_unsorted_duplicated_input() {
        // Unsorted, duplicated, sentinel-laden input crossing several
        // growth rehashes mid-batch: content and geometry must match the
        // plain add_count loop exactly.
        let entries: Vec<(u64, u32)> = (0..2000u64)
            .map(|i| {
                let k = dnaseq::mix64(i % 700);
                let k = if i % 97 == 0 { EMPTY_U64 } else { k };
                (k, (i % 5 + 1) as u32)
            })
            .collect();
        let mut bulk = FlatKmerTable::new();
        bulk.insert_batch(&entries);
        let mut serial = FlatKmerTable::new();
        for &(k, c) in &entries {
            serial.add_count(k, c);
        }
        assert_eq!(bulk.capacity(), serial.capacity());
        assert_eq!(bulk.len(), serial.len());
        assert_eq!(bulk.get(EMPTY_U64), serial.get(EMPTY_U64));
        let mut a: Vec<_> = bulk.iter().collect();
        let mut b: Vec<_> = serial.iter().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);

        let tentries: Vec<(u128, u32)> = (0..2000u64)
            .map(|i| {
                let lo = dnaseq::mix64(i % 700);
                let k = ((dnaseq::mix64(lo) as u128) << 64) | lo as u128;
                let k = if i % 97 == 0 { u128::MAX } else { k };
                (k, (i % 5 + 1) as u32)
            })
            .collect();
        let mut bulk = FlatTileTable::new();
        bulk.insert_batch(&tentries);
        let mut serial = FlatTileTable::new();
        for &(k, c) in &tentries {
            serial.add_count(k, c);
        }
        assert_eq!(bulk.capacity(), serial.capacity());
        assert_eq!(bulk.len(), serial.len());
        assert_eq!(bulk.get(u128::MAX), serial.get(u128::MAX));
        let mut a: Vec<_> = bulk.iter().collect();
        let mut b: Vec<_> = serial.iter().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn bulk_load_matches_per_key_adds() {
        // merge_sorted on an *empty* table takes the one-sweep bulk-load
        // path; content, geometry, lookups, and the sentinel side field
        // must match the per-key loop. Enough random keys at full target
        // load that probe clusters cross the wrap-around boundary with
        // overwhelming probability, covering the spill path.
        for n in [1usize, 50, 6000, 50_000] {
            let mut entries: Vec<(u64, u32)> =
                (0..n as u64).map(|i| (dnaseq::mix64(i), (i % 5 + 1) as u32)).collect();
            entries.push((EMPTY_U64, 9)); // sentinel sorts last
            entries.sort_unstable_by_key(|e| e.0);
            entries.dedup_by_key(|e| e.0);
            let mut bulk = FlatKmerTable::new();
            bulk.merge_sorted(&entries);
            let mut serial = FlatKmerTable::new();
            serial.reserve(entries.len() - 1); // same pre-size, sentinel slotless
            for &(k, c) in &entries {
                serial.add_count(k, c);
            }
            assert_eq!(bulk.capacity(), serial.capacity(), "n={n}");
            assert_eq!(bulk.len(), serial.len());
            assert_eq!(bulk.get(EMPTY_U64), Some(9));
            for &(k, c) in &entries {
                assert_eq!(bulk.get(k), Some(c), "n={n} key={k}");
            }
            assert_eq!(bulk.get(dnaseq::mix64(n as u64 + 7)), None);
            let mut a: Vec<_> = bulk.iter().collect();
            let mut b: Vec<_> = serial.iter().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }

        let mut tentries: Vec<(u128, u32)> = (0..6000u64)
            .map(|i| {
                let lo = dnaseq::mix64(i);
                ((((dnaseq::mix64(lo) as u128) << 64) | lo as u128), (i % 5 + 1) as u32)
            })
            .collect();
        tentries.push((u128::MAX, 4));
        tentries.sort_unstable_by_key(|e| e.0);
        tentries.dedup_by_key(|e| e.0);
        let mut bulk = FlatTileTable::new();
        bulk.merge_sorted(&tentries);
        let mut serial = FlatTileTable::new();
        serial.reserve(tentries.len() - 1);
        for &(k, c) in &tentries {
            serial.add_count(k, c);
        }
        assert_eq!(bulk.capacity(), serial.capacity());
        assert_eq!(bulk.len(), serial.len());
        assert_eq!(bulk.get(u128::MAX), Some(4));
        for &(k, c) in &tentries {
            assert_eq!(bulk.get(k), Some(c));
        }
        let mut a: Vec<_> = bulk.iter().collect();
        let mut b: Vec<_> = serial.iter().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn streamed_bulk_load_matches_materialized_merge_sorted() {
        // The out-of-core merge feeds this entry; geometry and content
        // must match the in-memory reserve + merge_sorted pair for any
        // chunking, sentinel or not.
        for n in [0usize, 1, 12, 13, 700, 6001] {
            for chunk in [1usize, 7, 256, 1 << 16] {
                let mut entries: Vec<(u64, u32)> =
                    (0..n as u64).map(|i| (dnaseq::mix64(i), (i % 9 + 1) as u32)).collect();
                if n % 2 == 1 {
                    entries.push((EMPTY_U64, 6)); // sentinel rides along on odd sizes
                }
                entries.sort_unstable_by_key(|e| e.0);
                entries.dedup_by_key(|e| e.0);
                let mut mem = FlatKmerTable::new();
                mem.reserve(entries.len());
                mem.merge_sorted(&entries);
                let mut ooc = FlatKmerTable::new();
                ooc.bulk_load_sorted_stream(entries.len(), chunk, entries.iter().copied());
                assert_eq!(ooc.capacity(), mem.capacity(), "n={n} chunk={chunk}");
                assert_eq!(ooc.len(), mem.len());
                assert_eq!(ooc.memory_bytes(), mem.memory_bytes());
                assert_eq!(ooc.get(EMPTY_U64), mem.get(EMPTY_U64));
                for &(k, c) in &entries {
                    assert_eq!(ooc.get(k), Some(c), "n={n} chunk={chunk} key={k}");
                }
            }
        }
        let mut tentries: Vec<(u128, u32)> = (0..500u64)
            .map(|i| {
                let lo = dnaseq::mix64(i);
                ((((dnaseq::mix64(lo) as u128) << 64) | lo as u128), (i % 4 + 1) as u32)
            })
            .collect();
        tentries.push((u128::MAX, 2));
        tentries.sort_unstable_by_key(|e| e.0);
        tentries.dedup_by_key(|e| e.0);
        let mut mem = FlatTileTable::new();
        mem.reserve(tentries.len());
        mem.merge_sorted(&tentries);
        let mut ooc = FlatTileTable::new();
        ooc.bulk_load_sorted_stream(tentries.len(), 64, tentries.iter().copied());
        assert_eq!(ooc.capacity(), mem.capacity());
        assert_eq!(ooc.len(), mem.len());
        assert_eq!(ooc.memory_bytes(), mem.memory_bytes());
        assert_eq!(ooc.get(u128::MAX), Some(2));
        for &(k, c) in &tentries {
            assert_eq!(ooc.get(k), Some(c));
        }
    }

    #[test]
    #[ignore = "manual profiling probe"]
    fn profile_insert_batch_paths() {
        let n = 290_000usize;
        let mut entries: Vec<(u64, u32)> = (0..n as u64).map(|i| (dnaseq::mix64(i), 3)).collect();
        entries.sort_unstable();
        entries.dedup_by_key(|e| e.0);
        let time = |f: &mut dyn FnMut()| {
            let t = std::time::Instant::now();
            f();
            t.elapsed().as_nanos() as f64 / entries.len() as f64
        };
        for round in 0..3 {
            let bulk = time(&mut || {
                let mut t = FlatKmerTable::new();
                t.merge_sorted(&entries);
            });
            let in_order = time(&mut || {
                let mut t = FlatKmerTable::new();
                t.reserve(entries.len());
                t.insert_pipelined(&entries);
            });
            let growth = time(&mut || {
                let mut t = FlatKmerTable::new();
                for &(k, c) in &entries {
                    t.add_count(k, c);
                }
            });
            eprintln!(
                "round {round}: bulk={bulk:.1} in_order={in_order:.1} growth={growth:.1} ns/key ({} keys)",
                entries.len()
            );
        }
        // stage breakdown of the bulk path
        let cap = capacity_for(entries.len(), DEFAULT_LOAD.0, DEFAULT_LOAD.1);
        let mask = cap - 1;
        for round in 0..3 {
            let t0 = std::time::Instant::now();
            let mut order: Vec<u64> = entries
                .iter()
                .enumerate()
                .map(|(i, &(k, _))| ((probe_start(k, mask) as u64) << 32) | i as u64)
                .collect();
            let t_order = t0.elapsed().as_nanos() as f64;
            let t1 = std::time::Instant::now();
            let mut tmp: Vec<u64> = Vec::new();
            crate::radix::lsd_sort_by(&mut order, &mut tmp, cap.trailing_zeros(), |&p| {
                (p >> 32) as u32
            });
            let t_sort = t1.elapsed().as_nanos() as f64;
            let t2 = std::time::Instant::now();
            let mut keys = vec![EMPTY_U64; cap];
            let mut counts = vec![0u32; cap];
            let t_alloc = t2.elapsed().as_nanos() as f64;
            let t3 = std::time::Instant::now();
            let mut cursor = 0usize;
            const AHEAD: usize = 16;
            for (j, &p) in order.iter().enumerate() {
                if let Some(&np) = order.get(j + AHEAD) {
                    dnaseq::simd::prefetch_read(&entries, np as u32 as usize);
                }
                let (h, i) = ((p >> 32) as usize, p as u32);
                let slot = cursor.max(h);
                if slot >= cap {
                    continue;
                }
                let (key, count) = entries[i as usize];
                keys[slot] = key;
                counts[slot] = count;
                cursor = slot + 1;
            }
            let t_place = t3.elapsed().as_nanos() as f64;
            std::hint::black_box((&keys, &counts));
            let per = entries.len() as f64;
            eprintln!(
                "  stages {round}: order={:.1} sort={:.1} alloc={:.1} place={:.1} ns/key",
                t_order / per,
                t_sort / per,
                t_alloc / per,
                t_place / per
            );
        }
    }

    #[test]
    fn tile_table_distinguishes_halves() {
        let mut t = FlatTileTable::new();
        t.add_count(1u128, 1);
        t.add_count(1u128 << 64, 2);
        t.add_count((1u128 << 64) | 1, 3);
        assert_eq!(t.get(1u128), Some(1));
        assert_eq!(t.get(1u128 << 64), Some(2));
        assert_eq!(t.get((1u128 << 64) | 1), Some(3));
        assert_eq!(t.len(), 3);
        let mut entries: Vec<_> = t.into_entries().collect();
        entries.sort_unstable();
        assert_eq!(entries, vec![(1, 1), (1 << 64, 2), ((1 << 64) | 1, 3)]);
    }

    #[test]
    fn iter_matches_into_entries() {
        let mut t = FlatKmerTable::new();
        for key in [5u64, 9, u64::MAX, 1 << 60] {
            t.add_count(key, 2);
        }
        let mut a: Vec<_> = t.iter().collect();
        let mut b: Vec<_> = t.into_entries().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn custom_load_factor_bounds_occupancy() {
        let mut t = FlatKmerTable::with_max_load(1, 2);
        for key in 0..100u64 {
            t.add_count(key, 1);
        }
        assert!(t.len() * 2 <= t.capacity(), "load ≤ 1/2");
        assert_eq!(t.capacity(), 256);
    }

    /// Rebuild a table from its raw parts the way a snapshot load does:
    /// copy the slot arrays into shared slabs and adopt them.
    fn remap_kmer(t: &FlatKmerTable) -> FlatKmerTable {
        let p = t.raw_parts();
        FlatKmerTable::from_mapped_parts(
            Arc::from(p.keys),
            Arc::from(p.counts),
            p.sentinel_count,
            p.load_num,
            p.load_den,
        )
        .expect("valid parts")
    }

    fn remap_tile(t: &FlatTileTable) -> FlatTileTable {
        let p = t.raw_parts();
        FlatTileTable::from_mapped_parts(
            Arc::from(p.lo),
            Arc::from(p.hi),
            Arc::from(p.counts),
            p.sentinel_count,
            p.load_num,
            p.load_den,
        )
        .expect("valid parts")
    }

    #[test]
    fn mapped_parts_roundtrip_probes_identically() {
        let mut t = FlatKmerTable::new();
        for key in 0..777u64 {
            t.add_count(key * 31, (key % 5 + 1) as u32);
        }
        t.add_count(u64::MAX, 9);
        let m = remap_kmer(&t);
        assert!(m.is_mapped());
        assert_eq!(m.len(), t.len());
        assert_eq!(m.capacity(), t.capacity());
        for key in 0..777u64 {
            assert_eq!(m.get(key * 31), t.get(key * 31));
        }
        assert_eq!(m.get(u64::MAX), Some(9));
        assert_eq!(m.get(123_456_789), None);

        let mut s = FlatTileTable::new();
        for key in 0..777u128 {
            s.add_count(key << 40, (key % 5 + 1) as u32);
        }
        s.add_count(u128::MAX, 4);
        let m = remap_tile(&s);
        assert!(m.is_mapped());
        for key in 0..777u128 {
            assert_eq!(m.get(key << 40), s.get(key << 40));
        }
        assert_eq!(m.get(u128::MAX), Some(4));
    }

    #[test]
    fn mapped_table_detaches_on_first_mutation() {
        let mut t = FlatKmerTable::new();
        for key in 0..100u64 {
            t.add_count(key, 1);
        }
        let mut m = remap_kmer(&t);
        assert!(m.is_mapped());
        m.add_count(7, 1); // existing key: count bump detaches counts
        assert_eq!(m.get(7), Some(2));
        m.add_count(5000, 3); // new key: detaches keys too
        assert!(!m.is_mapped());
        assert_eq!(m.get(5000), Some(3));
        assert_eq!(t.get(7), Some(1), "source table unaffected by CoW");

        let mut s = FlatTileTable::new();
        s.add_count(11, 2);
        let mut m = remap_tile(&s);
        m.prune(3);
        assert!(!m.is_mapped());
        assert!(m.is_empty());
        assert_eq!(s.get(11), Some(2));
    }

    #[test]
    fn mapped_memory_bytes_stays_exact() {
        let mut t = FlatKmerTable::new();
        for key in 0..200u64 {
            t.add_count(key, 1);
        }
        assert_eq!(remap_kmer(&t).memory_bytes(), t.memory_bytes());
        let mut s = FlatTileTable::new();
        for key in 0..200u128 {
            s.add_count(key, 1);
        }
        assert_eq!(remap_tile(&s).memory_bytes(), s.memory_bytes());
    }

    #[test]
    fn invalid_mapped_parts_are_rejected() {
        let keys: Arc<[u64]> = Arc::from(vec![EMPTY_U64; 16].as_slice());
        let counts16: Arc<[u32]> = Arc::from(vec![0u32; 16].as_slice());
        // mismatched lengths
        let counts8: Arc<[u32]> = Arc::from(vec![0u32; 8].as_slice());
        assert!(FlatKmerTable::from_mapped_parts(keys.clone(), counts8, None, 3, 4).is_err());
        // non-power-of-two capacity
        let keys24: Arc<[u64]> = Arc::from(vec![EMPTY_U64; 24].as_slice());
        let counts24: Arc<[u32]> = Arc::from(vec![0u32; 24].as_slice());
        assert!(FlatKmerTable::from_mapped_parts(keys24, counts24, None, 3, 4).is_err());
        // capacity below the minimum
        let keys8: Arc<[u64]> = Arc::from(vec![EMPTY_U64; 8].as_slice());
        let counts8: Arc<[u32]> = Arc::from(vec![0u32; 8].as_slice());
        assert!(FlatKmerTable::from_mapped_parts(keys8, counts8, None, 3, 4).is_err());
        // bad load factor
        assert!(
            FlatKmerTable::from_mapped_parts(keys.clone(), counts16.clone(), None, 4, 4).is_err()
        );
        assert!(
            FlatKmerTable::from_mapped_parts(keys.clone(), counts16.clone(), None, 0, 4).is_err()
        );
        // occupancy above the load bound: 16 slots all full at 3/4
        let full: Arc<[u64]> = Arc::from((0..16u64).collect::<Vec<_>>().as_slice());
        assert!(FlatKmerTable::from_mapped_parts(full, counts16.clone(), None, 3, 4).is_err());
        // the valid baseline does adopt
        assert!(
            FlatKmerTable::from_mapped_parts(keys.clone(), counts16.clone(), None, 3, 4).is_ok()
        );
        // tile variant shares the validation
        let lo: Arc<[u64]> = Arc::from(vec![EMPTY_U64; 16].as_slice());
        let hi: Arc<[u64]> = Arc::from(vec![EMPTY_U64; 8].as_slice());
        assert!(
            FlatTileTable::from_mapped_parts(lo, hi, counts16.clone(), None, 3, 4).is_err(),
            "mismatched tile halves must be rejected"
        );
    }

    #[test]
    fn empty_prune_and_get_are_safe() {
        let mut t = FlatKmerTable::new();
        t.prune(2);
        assert_eq!(t.get(7), None);
        assert_eq!(t.len(), 0);
        assert_eq!(t.capacity(), 0);
        let mut s = FlatTileTable::new();
        s.prune(2);
        assert_eq!(s.get(7), None);
        // pruning everything returns the allocation entirely
        s.add_count(9, 1);
        assert!(s.capacity() > 0);
        s.prune(2);
        assert_eq!(s.capacity(), 0);
        assert_eq!(s.memory_bytes(), FlatTileTable::bytes_for_entries(0));
    }
}
