//! Alternative spectrum layouts: sorted arrays and the cache-aware order.
//!
//! The prior Reptile parallelizations stored the spectra as *sorted
//! lists* "with look-up operations involving repeated binary searches
//! over the spectrum", and Jammula et al. added "a cache-aware layout of
//! k-mer spectrum ... which lowered the search time from the original
//! O(log2 N) to O(log(B+1) N) where B represents the number of elements
//! that can fit into a cache line" (paper §II-B). This paper's
//! implementation replaces both with hash tables.
//!
//! To make that design choice measurable we implement all three:
//!
//! * [`SortedKmerSpectrum`] — the classic sorted array + binary search
//!   (the Shah et al. layout);
//! * [`EytzingerKmerSpectrum`] — the cache-aware BFS (Eytzinger) order,
//!   which keeps the first levels of the implicit search tree hot in
//!   cache (the spirit of Jammula et al.'s B-element-per-node layout);
//! * the hash table ([`crate::KmerSpectrum`]) used everywhere else.
//!
//! `benches/pipeline.rs`'s `spectrum_layouts` group races them.

use crate::spectrum::KmerSpectrum;

/// Immutable k-mer spectrum as a sorted `(code, count)` array; lookups
/// binary-search. Build once from a hash spectrum.
#[derive(Clone, Debug)]
pub struct SortedKmerSpectrum {
    codes: Vec<u64>,
    counts: Vec<u32>,
}

impl SortedKmerSpectrum {
    /// Freeze a hash spectrum into sorted-array form.
    pub fn from_spectrum(spectrum: &KmerSpectrum) -> SortedKmerSpectrum {
        let mut entries: Vec<(u64, u32)> = spectrum.iter().collect();
        entries.sort_unstable_by_key(|&(code, _)| code);
        SortedKmerSpectrum {
            codes: entries.iter().map(|&(c, _)| c).collect(),
            counts: entries.iter().map(|&(_, n)| n).collect(),
        }
    }

    /// Count of a code (0 when absent). `O(log2 N)` probes.
    #[inline]
    pub fn count(&self, code: u64) -> u32 {
        match self.codes.binary_search(&code) {
            Ok(i) => self.counts[i],
            Err(_) => 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Resident bytes (the prior art's selling point: no hash overhead).
    pub fn memory_bytes(&self) -> usize {
        self.codes.len() * (8 + 4)
    }
}

/// Immutable k-mer spectrum in Eytzinger (BFS) order: element `i`'s
/// children live at `2i+1` and `2i+2`, so the top of the implicit search
/// tree is contiguous and stays cached — the cache-aware idea of the
/// prior art, realized with 1 element per node.
#[derive(Clone, Debug)]
pub struct EytzingerKmerSpectrum {
    codes: Vec<u64>,
    counts: Vec<u32>,
}

impl EytzingerKmerSpectrum {
    /// Freeze a hash spectrum into Eytzinger order.
    pub fn from_spectrum(spectrum: &KmerSpectrum) -> EytzingerKmerSpectrum {
        let sorted = SortedKmerSpectrum::from_spectrum(spectrum);
        let n = sorted.codes.len();
        let mut codes = vec![0u64; n];
        let mut counts = vec![0u32; n];
        // recursively place the sorted sequence into BFS positions
        fn place(
            sorted_codes: &[u64],
            sorted_counts: &[u32],
            next_sorted: &mut usize,
            codes: &mut [u64],
            counts: &mut [u32],
            node: usize,
        ) {
            if node >= codes.len() {
                return;
            }
            place(sorted_codes, sorted_counts, next_sorted, codes, counts, 2 * node + 1);
            codes[node] = sorted_codes[*next_sorted];
            counts[node] = sorted_counts[*next_sorted];
            *next_sorted += 1;
            place(sorted_codes, sorted_counts, next_sorted, codes, counts, 2 * node + 2);
        }
        let mut cursor = 0usize;
        if n > 0 {
            place(&sorted.codes, &sorted.counts, &mut cursor, &mut codes, &mut counts, 0);
        }
        EytzingerKmerSpectrum { codes, counts }
    }

    /// Count of a code (0 when absent). Same probe count as binary
    /// search, but probes walk a cache-friendly implicit tree.
    #[inline]
    pub fn count(&self, code: u64) -> u32 {
        let n = self.codes.len();
        let mut i = 0usize;
        while i < n {
            let probe = self.codes[i];
            if probe == code {
                return self.counts[i];
            }
            i = 2 * i + 1 + usize::from(code > probe);
        }
        0
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Resident bytes.
    pub fn memory_bytes(&self) -> usize {
        self.codes.len() * (8 + 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ReptileParams;
    use crate::spectrum::LocalSpectra;
    use dnaseq::Read;

    fn spectrum() -> KmerSpectrum {
        let p = ReptileParams { k: 6, tile_overlap: 3, kmer_threshold: 1, ..Default::default() };
        let mut reads = Vec::new();
        for i in 0..50u64 {
            let seed = dnaseq::mix64(i);
            let seq: Vec<u8> = (0..30)
                .map(|j| [b'A', b'C', b'G', b'T'][(dnaseq::mix64(seed ^ j) % 4) as usize])
                .collect();
            reads.push(Read::new(i + 1, seq, vec![30; 30]));
        }
        LocalSpectra::build(&reads, &p).kmers
    }

    #[test]
    fn sorted_matches_hash() {
        let hash = spectrum();
        let sorted = SortedKmerSpectrum::from_spectrum(&hash);
        assert_eq!(sorted.len(), hash.len());
        for (code, count) in hash.iter() {
            assert_eq!(sorted.count(code), count);
        }
        // absent codes
        for probe in [0u64, 1, 999_999_999] {
            assert_eq!(sorted.count(probe), hash.count(probe));
        }
    }

    #[test]
    fn eytzinger_matches_hash() {
        let hash = spectrum();
        let eytz = EytzingerKmerSpectrum::from_spectrum(&hash);
        assert_eq!(eytz.len(), hash.len());
        for (code, count) in hash.iter() {
            assert_eq!(eytz.count(code), count, "code {code}");
        }
        for probe in [0u64, 7, u64::MAX >> 40] {
            assert_eq!(eytz.count(probe), hash.count(probe));
        }
    }

    #[test]
    fn empty_layouts() {
        let p = ReptileParams::for_tests();
        let empty = LocalSpectra::build(&[], &p).kmers;
        let sorted = SortedKmerSpectrum::from_spectrum(&empty);
        let eytz = EytzingerKmerSpectrum::from_spectrum(&empty);
        assert!(sorted.is_empty());
        assert!(eytz.is_empty());
        assert_eq!(sorted.count(42), 0);
        assert_eq!(eytz.count(42), 0);
    }

    #[test]
    fn single_entry_layouts() {
        let p = ReptileParams { k: 4, tile_overlap: 2, kmer_threshold: 1, ..Default::default() };
        let reads = vec![Read::new(1, b"AAAA".to_vec(), vec![30; 4])];
        let hash = LocalSpectra::build(&reads, &p).kmers;
        let sorted = SortedKmerSpectrum::from_spectrum(&hash);
        let eytz = EytzingerKmerSpectrum::from_spectrum(&hash);
        assert_eq!(sorted.len(), 1);
        assert_eq!(eytz.count(0), 1, "AAAA encodes to 0");
        assert_eq!(sorted.count(0), 1);
    }

    #[test]
    fn memory_is_tighter_than_hash_entry_estimate() {
        let hash = spectrum();
        let sorted = SortedKmerSpectrum::from_spectrum(&hash);
        // 12 bytes/entry flat vs the hash model's ~26 bytes/entry
        assert_eq!(sorted.memory_bytes(), hash.len() * 12);
    }
}
