//! Sequential Reptile: spectrum-based substitution error correction.
//!
//! This crate is a clean-room reimplementation of the Reptile algorithm
//! (Yang, Dorman, Aluru, *Bioinformatics* 2010) that the IPDPSW'16 paper
//! parallelizes. It serves two roles in the reproduction:
//!
//! 1. the **baseline**: the distributed engine's output must match this
//!    corrector bit for bit on every dataset (integration-tested);
//! 2. the **shared core**: the per-read correction logic is written
//!    against the [`SpectrumAccess`] trait, so the distributed engine
//!    runs *the same corrector code* with lookups that may leave the
//!    rank — exactly the structure of the paper's step IV.
//!
//! Modules: [`params`] (thresholds and knobs), [`spectrum`] (k-mer and
//! tile spectra in hash tables, as in the paper §II-B), [`corrector`]
//! (tile-by-tile correction with quality-restricted Hamming-neighbour
//! search), [`eval`] (accuracy metrics against known ground truth).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom_build;
pub mod corrector;
pub mod eval;
pub mod flat;
pub mod histogram;
pub mod kmer_corrector;
pub mod layouts;
pub mod params;
pub mod pipeline;
pub mod prefetch;
pub mod radix;
pub mod spectrum;

pub use bloom_build::{build_with_bloom, BloomBuildStats};
pub use corrector::{correct_dataset, correct_read, CorrectionStats, ReadOutcome, SpectrumAccess};
pub use eval::AccuracyReport;
pub use flat::{FlatKmerTable, FlatTileTable, KmerTableParts, TileTableParts, HASH_SEED};
pub use histogram::CountHistogram;
pub use kmer_corrector::{correct_dataset_kmers_only, correct_read_kmers_only};
pub use params::ReptileParams;
pub use pipeline::{Pipeline, PipelineResult};
pub use prefetch::{enumerate_read_keys, prefetch_keys, PrefetchKeys};
pub use spectrum::{KmerSpectrum, LocalSpectra, Normalized, TileSpectrum};
