//! Lookup-key enumeration for batched (aggregated) remote lookups.
//!
//! The distributed engine's base mode resolves every non-local spectrum
//! count with a synchronous one-key round trip, so a read with `m`
//! missing keys pays `m` network latencies. Systems that scale past
//! this (diBELLA, the Extreme-Scale Metagenome Assembly work) aggregate
//! requests per destination rank into vectorized messages. This module
//! provides the enumeration half of that optimisation: *before*
//! correcting a read (or a whole chunk of reads), list every k-mer and
//! tile key the corrector **can** touch, so the counts can be fetched
//! in one batch per owning rank and served from a local prefetch cache.
//!
//! The enumeration mirrors [`correct_read`](crate::correct_read)'s tile
//! walk exactly — same windows (stride `k − overlap` plus the anchored
//! final window), same candidate positions
//! ([`collect_positions`](crate::corrector::collect_positions) depends
//! only on qualities, which corrections never change), same Hamming
//! neighbour generation — but **over-approximates** on purpose:
//!
//! - it includes both constituent k-mers and all neighbours even for
//!   windows the corrector will find solid (counts are unknown at
//!   enumeration time);
//! - it ignores the k-mer prescreen, which can only *shrink* the
//!   corrector's position set.
//!
//! The result is a superset guarantee **for the read as it currently
//! reads**: until the corrector commits a fix, every key it requests is
//! in the enumeration. Once a fix rewrites bases, later overlapping
//! windows may probe novel keys; those simply miss the prefetch cache
//! and fall back to the engine's single-key path, preserving
//! bit-identical output. Corrections are rare relative to lookups, so
//! the bulk of the traffic still collapses into batches.

use crate::corrector::{collect_positions, kmer_key, tile_key};
use crate::params::ReptileParams;
use dnaseq::neighbors::visit_neighbors;
use dnaseq::Read;

/// Every spectrum key a correction pass over some reads can request,
/// deduplicated and sorted, normalized exactly like the corrector's own
/// lookups (canonical when `params.canonical`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PrefetchKeys {
    /// Normalized k-mer keys.
    pub kmers: Vec<u64>,
    /// Normalized tile keys.
    pub tiles: Vec<u128>,
}

impl PrefetchKeys {
    /// Total number of keys across both spectra.
    pub fn len(&self) -> usize {
        self.kmers.len() + self.tiles.len()
    }

    /// Whether no keys were enumerated.
    pub fn is_empty(&self) -> bool {
        self.kmers.is_empty() && self.tiles.is_empty()
    }

    /// Sort and deduplicate both key lists.
    pub fn finish(&mut self) {
        self.kmers.sort_unstable();
        self.kmers.dedup();
        self.tiles.sort_unstable();
        self.tiles.dedup();
    }
}

/// Append every key [`correct_read`](crate::correct_read) can request
/// for `read` (as currently written) to `out`. Keys are appended raw —
/// call [`PrefetchKeys::finish`] afterwards to dedup.
pub fn enumerate_read_keys(read: &Read, params: &ReptileParams, out: &mut PrefetchKeys) {
    let tcodec = params.tile_codec();
    let kcodec = params.kmer_codec();
    let tile_len = tcodec.len();
    let stride = tcodec.stride();
    if read.len() < tile_len {
        return;
    }
    let last_start = read.len() - tile_len;
    let mut positions: Vec<usize> = Vec::with_capacity(params.max_positions_per_tile);
    let mut window = |start: usize, out: &mut PrefetchKeys| {
        let raw_tile = match tcodec.encode(&read.seq[start..start + tile_len]) {
            Some(t) => t,
            None => return, // corrector skips N windows without lookups
        };
        out.tiles.push(tile_key(&tcodec, raw_tile, params.canonical));
        let (first_kmer, second_kmer) = tcodec.to_kmers(raw_tile);
        out.kmers.push(kmer_key(&kcodec, first_kmer, params.canonical));
        out.kmers.push(kmer_key(&kcodec, second_kmer, params.canonical));
        positions.clear();
        collect_positions(&read.qual[start..start + tile_len], params, &mut positions);
        if positions.is_empty() {
            return;
        }
        visit_neighbors(
            raw_tile,
            tile_len,
            &positions,
            params.max_errors_per_tile,
            &mut |cand, _| {
                out.tiles.push(tile_key(&tcodec, cand, params.canonical));
            },
        );
    };
    let mut start = 0usize;
    while start <= last_start {
        window(start, out);
        start += stride;
    }
    if !last_start.is_multiple_of(stride) {
        window(last_start, out);
    }
}

/// Enumerate, deduplicate, and sort the keys for a chunk of reads.
pub fn prefetch_keys(reads: &[Read], params: &ReptileParams) -> PrefetchKeys {
    let mut out = PrefetchKeys::default();
    for read in reads {
        enumerate_read_keys(read, params, &mut out);
    }
    out.finish();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corrector::correct_read;
    use crate::spectrum::LocalSpectra;
    use crate::SpectrumAccess;
    use dnaseq::{FxHashSet, Read};

    fn params() -> ReptileParams {
        ReptileParams {
            k: 6,
            tile_overlap: 3,
            kmer_threshold: 2,
            tile_threshold: 2,
            ..ReptileParams::for_tests()
        }
    }

    /// Records every key the corrector requests from the wrapped spectra.
    struct Recording<'a> {
        inner: &'a mut LocalSpectra,
        kmers: FxHashSet<u64>,
        tiles: FxHashSet<u128>,
    }

    impl SpectrumAccess for Recording<'_> {
        fn kmer_count(&mut self, code: u64) -> u32 {
            self.kmers.insert(code);
            self.inner.kmer_count(code)
        }

        fn tile_count(&mut self, code: u128) -> u32 {
            self.tiles.insert(code);
            self.inner.tile_count(code)
        }
    }

    fn dataset() -> Vec<Read> {
        let genome: Vec<u8> =
            (0..240).map(|i| [b'A', b'C', b'G', b'T'][(i * 7 + i / 3) % 4]).collect();
        (0..40u64)
            .map(|i| {
                let start = (i as usize * 13) % (genome.len() - 30);
                let mut seq = genome[start..start + 30].to_vec();
                let mut qual = vec![35u8; 30];
                if i % 3 == 0 {
                    let pos = 5 + (i as usize % 20);
                    seq[pos] = match seq[pos] {
                        b'A' => b'C',
                        b'C' => b'G',
                        b'G' => b'T',
                        _ => b'A',
                    };
                    qual[pos] = 6;
                }
                Read::new(i + 1, seq, qual)
            })
            .collect()
    }

    /// Until a fix is committed, the corrector only requests enumerated
    /// keys. Reads the corrector leaves untouched exercise the full walk
    /// (solid, uncorrectable, and ambiguous windows), so checking the
    /// superset on unmodified reads covers every lookup site.
    #[test]
    fn enumeration_covers_all_lookups_of_unmodified_reads() {
        for canonical in [false, true] {
            let p = ReptileParams { canonical, ..params() };
            let reads = dataset();
            let mut spectra = LocalSpectra::build(&reads, &p);
            let mut covered = 0;
            for r in &reads {
                let keys = prefetch_keys(std::slice::from_ref(r), &p);
                let mut rec = Recording {
                    inner: &mut spectra,
                    kmers: FxHashSet::default(),
                    tiles: FxHashSet::default(),
                };
                let mut read = r.clone();
                let out = correct_read(&mut read, &mut rec, &p);
                if out.corrected() {
                    continue; // post-commit windows may probe novel keys
                }
                covered += 1;
                for k in &rec.kmers {
                    assert!(keys.kmers.binary_search(k).is_ok(), "kmer {k:#x} not enumerated");
                }
                for t in &rec.tiles {
                    assert!(keys.tiles.binary_search(t).is_ok(), "tile {t:#x} not enumerated");
                }
            }
            assert!(covered > 10, "expected mostly-clean reads, got {covered}");
        }
    }

    #[test]
    fn keys_are_sorted_and_deduplicated() {
        let p = params();
        let reads = dataset();
        let keys = prefetch_keys(&reads, &p);
        assert!(!keys.is_empty());
        assert_eq!(keys.len(), keys.kmers.len() + keys.tiles.len());
        assert!(keys.kmers.windows(2).all(|w| w[0] < w[1]));
        assert!(keys.tiles.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn short_and_empty_reads_enumerate_nothing() {
        let p = params();
        let keys = prefetch_keys(
            &[Read::new(1, b"ACGT".to_vec(), vec![35; 4]), Read::new(2, Vec::new(), Vec::new())],
            &p,
        );
        assert!(keys.is_empty());
    }

    /// A read length that is not a multiple of the stride still covers
    /// the anchored final window.
    #[test]
    fn anchored_final_window_is_enumerated() {
        let p = params(); // tile_len 9, stride 3
        let reads = dataset();
        let r = &reads[0];
        let truncated = Read::new(1, r.seq[..28].to_vec(), r.qual[..28].to_vec());
        let keys = prefetch_keys(std::slice::from_ref(&truncated), &p);
        let tcodec = p.tile_codec();
        let last = tcodec.encode(&truncated.seq[28 - tcodec.len()..]).unwrap();
        let key = crate::corrector::tile_key(&tcodec, last, p.canonical);
        assert!(keys.tiles.binary_search(&key).is_ok());
    }

    /// Neighbour keys of low-quality windows are part of the enumeration.
    #[test]
    fn neighbours_of_weak_windows_are_enumerated() {
        // relax_quality off so an all-high-quality read has no candidate
        // positions and therefore no neighbour keys
        let p = ReptileParams { relax_quality: false, ..params() };
        let seq = b"ACGTACGTACGTACGTACGT".to_vec();
        let mut qual = vec![35u8; seq.len()];
        qual[4] = 5; // below q_threshold: a candidate position
        let read = Read::new(1, seq.clone(), qual.clone());
        let clean = prefetch_keys(&[Read::new(1, seq, vec![35; 20])], &p);
        let weak = prefetch_keys(std::slice::from_ref(&read), &p);
        assert!(
            weak.tiles.len() > clean.tiles.len(),
            "Hamming neighbours must add tile keys ({} vs {})",
            weak.tiles.len(),
            clean.tiles.len()
        );
    }
}
