//! High-level correction pipeline: the one-stop API.
//!
//! [`Pipeline`] bundles the decisions a user otherwise makes by hand —
//! exact vs Bloom-filtered construction, hand-set vs histogram-derived
//! thresholds — behind a builder, and returns the corrected reads with
//! every intermediate statistic:
//!
//! ```
//! use dnaseq::Read;
//! use reptile::{Pipeline, ReptileParams};
//! let params = ReptileParams { k: 4, tile_overlap: 2, kmer_threshold: 2,
//!                              tile_threshold: 2, ..Default::default() };
//! let template = b"ACGTACGTTGCA";
//! let reads: Vec<Read> = (1..=6)
//!     .map(|id| Read::new(id, template.to_vec(), vec![35; 12]))
//!     .collect();
//! let result = Pipeline::new(params).correct(&reads);
//! assert_eq!(result.corrected.len(), 6);
//! assert_eq!(result.stats.reads, 6);
//! ```

use crate::bloom_build::{build_with_bloom, BloomBuildStats};
use crate::corrector::{correct_read, CorrectionStats};
use crate::histogram::CountHistogram;
use crate::params::ReptileParams;
use crate::spectrum::LocalSpectra;
use dnaseq::Read;

/// Builder for a sequential correction run.
#[derive(Clone, Debug)]
pub struct Pipeline {
    params: ReptileParams,
    bloom_fp_rate: Option<f64>,
    auto_threshold: bool,
}

/// Everything a pipeline run produces.
pub struct PipelineResult {
    /// Corrected reads, ids preserved.
    pub corrected: Vec<Read>,
    /// Correction counters.
    pub stats: CorrectionStats,
    /// The parameters actually used (thresholds may have been derived).
    pub params: ReptileParams,
    /// Bloom construction counters, when that path ran.
    pub bloom: Option<BloomBuildStats>,
    /// The k-mer count histogram, when auto-thresholding ran.
    pub histogram: Option<CountHistogram>,
}

impl Pipeline {
    /// Start from explicit parameters.
    pub fn new(params: ReptileParams) -> Pipeline {
        params.assert_valid();
        Pipeline { params, bloom_fp_rate: None, auto_threshold: false }
    }

    /// Use Bloom-filtered construction (paper §III step III) with the
    /// given false-positive rate. Requires thresholds ≥ 2 at run time.
    pub fn with_bloom(mut self, fp_rate: f64) -> Pipeline {
        assert!(fp_rate > 0.0 && fp_rate < 1.0);
        self.bloom_fp_rate = Some(fp_rate);
        self
    }

    /// Derive the k-mer threshold from the count histogram's valley
    /// (tile threshold set to half of it, per the stride-count scaling
    /// documented on [`ReptileParams::tile_threshold`]); falls back to
    /// the configured thresholds when the histogram is not bimodal.
    pub fn with_auto_threshold(mut self) -> Pipeline {
        self.auto_threshold = true;
        self
    }

    /// Run: build spectra, correct every read.
    pub fn correct(&self, reads: &[Read]) -> PipelineResult {
        let mut params = self.params;
        let mut histogram = None;
        if self.auto_threshold {
            let unpruned = LocalSpectra::build_unpruned(reads, &params);
            let hist = CountHistogram::of_kmers(&unpruned.kmers);
            if let Some(t) = hist.suggest_threshold() {
                params.kmer_threshold = t;
                params.tile_threshold = (t / 2).max(2);
            }
            histogram = Some(hist);
        }
        let (mut spectra, bloom) = match self.bloom_fp_rate {
            Some(fp) => {
                let occurrences: usize =
                    reads.iter().map(|r| r.len().saturating_sub(params.k - 1)).sum();
                let (s, b) = build_with_bloom(reads, &params, occurrences.max(1), fp);
                (s, Some(b))
            }
            None => (LocalSpectra::build(reads, &params), None),
        };
        let mut stats = CorrectionStats::default();
        let corrected = reads
            .iter()
            .map(|r| {
                let mut read = r.clone();
                let outcome = correct_read(&mut read, &mut spectra, &params);
                stats.absorb(&outcome);
                read
            })
            .collect();
        PipelineResult { corrected, stats, params, bloom, histogram }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ReptileParams {
        ReptileParams {
            k: 8,
            tile_overlap: 4,
            kmer_threshold: 3,
            tile_threshold: 2,
            ..ReptileParams::default()
        }
    }

    fn reads_with_error() -> Vec<Read> {
        let template = b"ACGTACGGTTGCAACGTTAGC";
        let mut reads: Vec<Read> =
            (1..=8).map(|id| Read::new(id, template.to_vec(), vec![35; template.len()])).collect();
        let mut seq = template.to_vec();
        seq[9] = b'A';
        let mut qual = vec![35u8; template.len()];
        qual[9] = 5;
        reads.push(Read::new(9, seq, qual));
        reads
    }

    #[test]
    fn plain_pipeline_matches_correct_dataset() {
        let reads = reads_with_error();
        let p = params();
        let result = Pipeline::new(p).correct(&reads);
        let (expect, expect_stats) = crate::correct_dataset(&reads, &p);
        assert_eq!(result.corrected, expect);
        assert_eq!(result.stats, expect_stats);
        assert!(result.bloom.is_none());
        assert!(result.histogram.is_none());
    }

    #[test]
    fn bloom_pipeline_matches_exact() {
        let reads = reads_with_error();
        let result = Pipeline::new(params()).with_bloom(0.0001).correct(&reads);
        let (expect, _) = crate::correct_dataset(&reads, &params());
        assert_eq!(result.corrected, expect);
        let bloom = result.bloom.expect("bloom stats present");
        assert!(bloom.filter_bytes > 0);
    }

    #[test]
    fn auto_threshold_reports_histogram() {
        let reads = reads_with_error();
        let result = Pipeline::new(params()).with_auto_threshold().correct(&reads);
        let hist = result.histogram.expect("histogram present");
        assert!(hist.distinct() > 0);
        // this dataset is bimodal (8x template vs 1x error kmers): a
        // derived threshold must separate the two modes — above the error
        // counts, at or below the template counts (8)
        if let Some(t) = hist.suggest_threshold() {
            assert_eq!(result.params.kmer_threshold, t);
            assert!((2..=8).contains(&t), "derived threshold {t}");
        } else {
            assert_eq!(result.params.kmer_threshold, params().kmer_threshold);
        }
        // either way the injected error is still corrected
        assert!(result.stats.errors_corrected >= 1);
    }

    #[test]
    #[should_panic]
    fn invalid_fp_rate_rejected() {
        let _ = Pipeline::new(params()).with_bloom(1.5);
    }
}
