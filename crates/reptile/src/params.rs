//! Algorithm parameters.

use dnaseq::{KmerCodec, TileCodec};

/// Thresholds and search knobs of the Reptile corrector.
///
/// Defaults follow the original Reptile's published configuration spirit:
/// small k (genome-size dependent), low count thresholds, Phred-20 quality
/// cutoff, at most two substitutions per tile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReptileParams {
    /// K-mer length (`1..=32`).
    pub k: usize,
    /// Overlap between a tile's two k-mers (`1..k`).
    pub tile_overlap: usize,
    /// Minimum global count for a k-mer to be considered solid.
    pub kmer_threshold: u32,
    /// Minimum global count for a tile to be considered solid.
    ///
    /// Note the count scales: a read contributes a k-mer at *every*
    /// position but a tile only once per `k − tile_overlap` positions
    /// (the tiling stride), so at equal coverage tile counts run ~stride
    /// times lower than k-mer counts — size this threshold accordingly
    /// (original Reptile likewise configures the two independently).
    pub tile_threshold: u32,
    /// Phred score below which a base is a candidate error position.
    pub q_threshold: u8,
    /// Maximum substitutions attempted per tile.
    pub max_errors_per_tile: usize,
    /// Cap on candidate positions per tile (candidate-explosion guard;
    /// the lowest-quality positions win).
    pub max_positions_per_tile: usize,
    /// Reject the correction when more than this many solid alternatives
    /// survive (ambiguity cutoff, Reptile's cardinality test).
    pub max_candidates: usize,
    /// Require the best candidate's count to be at least `dominance`
    /// times the runner-up's before committing a correction.
    pub dominance: u32,
    /// If no base in a weak tile is below `q_threshold`, widen the search
    /// to the lowest-quality positions anyway (`false` = strict: skip).
    pub relax_quality: bool,
    /// Fold k-mers/tiles with their reverse complements in the spectrum
    /// (use when reads come from both strands).
    pub canonical: bool,
}

impl Default for ReptileParams {
    fn default() -> ReptileParams {
        ReptileParams {
            k: 12,
            tile_overlap: 6,
            kmer_threshold: 3,
            tile_threshold: 3,
            q_threshold: 20,
            max_errors_per_tile: 2,
            max_positions_per_tile: 8,
            max_candidates: 4,
            dominance: 2,
            relax_quality: true,
            canonical: false,
        }
    }
}

impl ReptileParams {
    /// Validate invariants; panics with a description on violation.
    pub fn assert_valid(&self) {
        assert!((1..=32).contains(&self.k), "k out of range: {}", self.k);
        assert!(
            self.tile_overlap >= 1 && self.tile_overlap < self.k,
            "tile_overlap out of range: {} (k={})",
            self.tile_overlap,
            self.k
        );
        assert!(2 * self.k - self.tile_overlap <= 64, "tile too long");
        assert!(self.max_errors_per_tile >= 1);
        assert!(self.max_candidates >= 1);
        assert!(self.dominance >= 1);
    }

    /// The k-mer codec these parameters imply.
    pub fn kmer_codec(&self) -> KmerCodec {
        KmerCodec::new(self.k)
    }

    /// The tile codec these parameters imply.
    pub fn tile_codec(&self) -> TileCodec {
        TileCodec::new(self.k, self.tile_overlap)
    }

    /// Tile length in bases.
    pub fn tile_len(&self) -> usize {
        2 * self.k - self.tile_overlap
    }

    /// Parameters scaled for small test genomes (short k so k-mers repeat
    /// at low coverage).
    pub fn for_tests() -> ReptileParams {
        ReptileParams {
            k: 8,
            tile_overlap: 4,
            kmer_threshold: 2,
            tile_threshold: 2,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_valid() {
        ReptileParams::default().assert_valid();
        ReptileParams::for_tests().assert_valid();
    }

    #[test]
    fn codecs_consistent() {
        let p = ReptileParams::default();
        assert_eq!(p.kmer_codec().k(), p.k);
        assert_eq!(p.tile_codec().len(), p.tile_len());
        assert_eq!(p.tile_codec().stride(), p.k - p.tile_overlap);
    }

    #[test]
    #[should_panic(expected = "tile_overlap")]
    fn invalid_overlap_panics() {
        ReptileParams { tile_overlap: 12, k: 12, ..Default::default() }.assert_valid();
    }
}
