//! Accuracy evaluation against known ground truth.
//!
//! The paper inherits Reptile's accuracy (its contribution is
//! parallelization), but our synthetic datasets come with ground truth, so
//! we report the standard error-correction metrics (Yang et al. 2013
//! survey): true positives (errors removed), false positives (errors
//! introduced), false negatives (errors remaining), and the *gain*
//! `(TP − FP) / (TP + FN)` — the net fraction of errors eliminated.

use dnaseq::Read;

/// Confusion counts and derived metrics for a corrected read set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccuracyReport {
    /// Erroneous bases restored to the true base.
    pub true_positives: u64,
    /// Correct bases changed to something wrong, plus erroneous bases
    /// changed to a *different* wrong base.
    pub false_positives: u64,
    /// Erroneous bases left uncorrected.
    pub false_negatives: u64,
    /// Bases that were and remain correct.
    pub true_negatives: u64,
    /// Bases excluded from scoring (`N` in the input or output).
    pub masked: u64,
}

impl AccuracyReport {
    /// Score one read against its truth; `original` is the uncorrected
    /// input read.
    pub fn score_read(original: &Read, corrected: &Read, truth: &[u8]) -> AccuracyReport {
        assert_eq!(original.len(), corrected.len(), "length-changing correction");
        assert_eq!(original.len(), truth.len());
        let mut r = AccuracyReport::default();
        for ((&orig, &corr), &tru) in original.seq.iter().zip(&corrected.seq).zip(truth) {
            if orig == b'N' || corr == b'N' || tru == b'N' {
                r.masked += 1;
                continue;
            }
            let was_error = orig != tru;
            let is_error = corr != tru;
            match (was_error, is_error) {
                (true, false) => r.true_positives += 1,
                (false, true) => r.false_positives += 1,
                (true, true) => {
                    if corr != orig {
                        // rewrote an error into a different error: both a
                        // failed fix and a new mistake
                        r.false_positives += 1;
                    }
                    r.false_negatives += 1;
                }
                (false, false) => r.true_negatives += 1,
            }
        }
        r
    }

    /// Score a whole dataset.
    pub fn score_dataset(
        originals: &[Read],
        corrected: &[Read],
        truth: &[Vec<u8>],
    ) -> AccuracyReport {
        assert_eq!(originals.len(), corrected.len());
        assert_eq!(originals.len(), truth.len());
        let mut total = AccuracyReport::default();
        for i in 0..originals.len() {
            total.merge(&AccuracyReport::score_read(&originals[i], &corrected[i], &truth[i]));
        }
        total
    }

    /// Accumulate another report.
    pub fn merge(&mut self, other: &AccuracyReport) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
        self.true_negatives += other.true_negatives;
        self.masked += other.masked;
    }

    /// Net error-removal fraction `(TP − FP) / (TP + FN)`; 1.0 is perfect.
    pub fn gain(&self) -> f64 {
        let denom = (self.true_positives + self.false_negatives) as f64;
        if denom == 0.0 {
            return 0.0;
        }
        (self.true_positives as f64 - self.false_positives as f64) / denom
    }

    /// Fraction of true errors fixed `TP / (TP + FN)`.
    pub fn sensitivity(&self) -> f64 {
        let denom = (self.true_positives + self.false_negatives) as f64;
        if denom == 0.0 {
            return 0.0;
        }
        self.true_positives as f64 / denom
    }

    /// Fraction of correct bases preserved `TN / (TN + FP)`.
    pub fn specificity(&self) -> f64 {
        let denom = (self.true_negatives + self.false_positives) as f64;
        if denom == 0.0 {
            return 0.0;
        }
        self.true_negatives as f64 / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(seq: &[u8]) -> Read {
        Read::new(1, seq.to_vec(), vec![30; seq.len()])
    }

    #[test]
    fn perfect_correction() {
        let truth = b"ACGT";
        let r = AccuracyReport::score_read(&read(b"AGGT"), &read(b"ACGT"), truth);
        assert_eq!(r.true_positives, 1);
        assert_eq!(r.false_positives, 0);
        assert_eq!(r.false_negatives, 0);
        assert_eq!(r.true_negatives, 3);
        assert_eq!(r.gain(), 1.0);
        assert_eq!(r.sensitivity(), 1.0);
        assert_eq!(r.specificity(), 1.0);
    }

    #[test]
    fn missed_error_is_false_negative() {
        let r = AccuracyReport::score_read(&read(b"AGGT"), &read(b"AGGT"), b"ACGT");
        assert_eq!(r.false_negatives, 1);
        assert_eq!(r.gain(), 0.0);
    }

    #[test]
    fn introduced_error_is_false_positive() {
        let r = AccuracyReport::score_read(&read(b"ACGT"), &read(b"ACTT"), b"ACGT");
        assert_eq!(r.false_positives, 1);
        assert_eq!(r.true_negatives, 3);
        assert!(r.specificity() < 1.0);
    }

    #[test]
    fn error_rewritten_to_other_error_counts_both() {
        let r = AccuracyReport::score_read(&read(b"AGGT"), &read(b"ATGT"), b"ACGT");
        assert_eq!(r.false_positives, 1);
        assert_eq!(r.false_negatives, 1);
        assert_eq!(r.gain(), -1.0);
    }

    #[test]
    fn n_bases_masked() {
        let r = AccuracyReport::score_read(&read(b"ANGT"), &read(b"ANGT"), b"ACGT");
        assert_eq!(r.masked, 1);
        assert_eq!(r.true_negatives, 3);
    }

    #[test]
    fn dataset_scoring_merges() {
        let originals = vec![read(b"AGGT"), read(b"ACGT")];
        let corrected = vec![read(b"ACGT"), read(b"ACGT")];
        let truth = vec![b"ACGT".to_vec(), b"ACGT".to_vec()];
        let r = AccuracyReport::score_dataset(&originals, &corrected, &truth);
        assert_eq!(r.true_positives, 1);
        assert_eq!(r.true_negatives, 7);
    }

    #[test]
    fn empty_report_metrics_defined() {
        let r = AccuracyReport::default();
        assert_eq!(r.gain(), 0.0);
        assert_eq!(r.sensitivity(), 0.0);
        assert_eq!(r.specificity(), 0.0);
    }
}
