//! Least-significant-digit radix sort for the spectrum hot paths.
//!
//! Spectrum keys are *narrow*: a k-mer occupies `2k ≤ 64` bits and a
//! tile `2·tile_len ≤ 128`, and the operating points the paper measures
//! (k ≈ 10–25) use a fraction of that. A comparison sort pays
//! `O(n log n)` unpredictable branches regardless; an LSD radix sort
//! pays exactly `⌈bits / 11⌉` sequential counting-and-scatter passes,
//! which is 2–3 passes at the real key widths. Every pass streams the
//! input once, so the cost is bandwidth, not branch mispredictions —
//! the property that makes the pipelined build's pre-aggregation and
//! bulk table loads cheap.
//!
//! One histogram sweep computes the digit counts of *all* passes up
//! front, and passes whose digit is constant across the input (common
//! when `bits` is a conservative bound) are skipped without a scatter.

/// Digit width per pass. 11 bits = 2048 bins: the per-pass counter
/// array stays L1-resident (8 KB) while 64-bit keys need at most six
/// passes and the 20–30-bit keys of real workloads need two or three.
const DIGIT_BITS: u32 = 11;
/// Bins per pass (`2^DIGIT_BITS`).
const BINS: usize = 1 << DIGIT_BITS;

/// An unsigned sort-key width the radix passes can extract digits from.
/// Monomorphizing over the width keeps 128-bit arithmetic out of the
/// hist/scatter loops when keys fit in 32 or 64 bits — the common case
/// (k-mers are `2k ≤ 64` bits, hash probe starts are table-index wide).
pub trait RadixWord: Copy {
    /// `DIGIT_BITS` bits of `self` starting at bit `shift`.
    fn digit(self, shift: u32) -> usize;
    /// True when `self` fits the low `bits` bits (debug assertion only).
    fn fits(self, bits: u32) -> bool;
}

macro_rules! radix_word {
    ($($t:ty),*) => {$(
        impl RadixWord for $t {
            #[inline(always)]
            fn digit(self, shift: u32) -> usize {
                (self >> shift) as usize & (BINS - 1)
            }
            #[inline(always)]
            fn fits(self, bits: u32) -> bool {
                bits as usize >= <$t>::BITS as usize || self >> bits == 0
            }
        }
    )*};
}
radix_word!(u32, u64, u128);

/// Sort `v` ascending by `key`, which must fit in the low `bits` bits.
///
/// `tmp` is the scatter buffer, resized to `v.len()` and reusable across
/// calls (its contents afterwards are unspecified). The sort is stable,
/// runs `⌈bits / 11⌉` counting passes (minus any whose digit never
/// varies), and compares nothing — ties keep their input order.
///
/// Keys wider than `bits` sort incorrectly; debug builds assert the
/// bound.
pub fn lsd_sort_by<T: Copy, W: RadixWord, F: Fn(&T) -> W>(
    v: &mut Vec<T>,
    tmp: &mut Vec<T>,
    bits: u32,
    key: F,
) {
    let n = v.len();
    if n < 2 {
        return;
    }
    debug_assert!((1..=128).contains(&bits));
    debug_assert!(v.iter().all(|x| key(x).fits(bits)), "key wider than the declared {bits} bits");
    assert!(n <= u32::MAX as usize, "radix counters are u32");
    let passes = bits.div_ceil(DIGIT_BITS) as usize;

    // One read sweep histograms every pass's digit at once.
    let mut hists = vec![0u32; passes * BINS];
    for x in v.iter() {
        let k = key(x);
        for (p, hist) in hists.chunks_exact_mut(BINS).enumerate() {
            hist[k.digit(p as u32 * DIGIT_BITS)] += 1;
        }
    }

    tmp.clear();
    tmp.resize(n, v[0]);
    for (p, hist) in hists.chunks_exact(BINS).enumerate() {
        // A constant digit scatters every element in place: skip it.
        if hist.iter().any(|&h| h as usize == n) {
            continue;
        }
        let mut cursors = [0u32; BINS];
        let mut acc = 0u32;
        for (c, &h) in cursors.iter_mut().zip(hist) {
            *c = acc;
            acc += h;
        }
        let shift = p as u32 * DIGIT_BITS;
        for x in v.iter() {
            let d = key(x).digit(shift);
            tmp[cursors[d] as usize] = *x;
            cursors[d] += 1;
        }
        std::mem::swap(v, tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(x: u64) -> u64 {
        // splitmix64-style scramble, self-contained for the tests
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn sorts_u64_keys_at_every_width() {
        for bits in [1u32, 8, 11, 12, 20, 22, 30, 33, 48, 64] {
            let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
            let mut v: Vec<u64> = (0..7000u64).map(|i| mix(i % 1999) & mask).collect();
            let mut want = v.clone();
            want.sort_unstable();
            let mut tmp = Vec::new();
            lsd_sort_by(&mut v, &mut tmp, bits, |&k| k);
            assert_eq!(v, want, "bits={bits}");
        }
    }

    #[test]
    fn sorts_u128_keys_past_64_bits() {
        for bits in [70u32, 100, 128] {
            let mask = if bits == 128 { u128::MAX } else { (1u128 << bits) - 1 };
            let mut v: Vec<u128> = (0..3000u64)
                .map(|i| (((mix(i) as u128) << 64) | mix(i ^ 0xABCD) as u128) & mask)
                .collect();
            let mut want = v.clone();
            want.sort_unstable();
            let mut tmp = Vec::new();
            lsd_sort_by(&mut v, &mut tmp, bits, |&k| k);
            assert_eq!(v, want, "bits={bits}");
        }
    }

    #[test]
    fn stable_on_ties_and_sorts_by_extracted_key() {
        // Pairs sharing a key must keep their input order (stability is
        // what lets callers sort (hash, index) pairs and rely on a
        // deterministic placement order).
        let mut v: Vec<(u64, u32)> =
            (0..5000u32).map(|i| ((mix(i as u64) % 97) as u64, i)).collect();
        let want = {
            let mut w = v.clone();
            w.sort_by_key(|&(k, _)| k);
            w
        };
        let mut tmp = Vec::new();
        lsd_sort_by(&mut v, &mut tmp, 7, |e| e.0);
        assert_eq!(v, want);
    }

    /// Not a correctness test: prints per-element cost of the two
    /// aggregation primitives this crate contributes (LSD radix sort +
    /// RLE sweep vs prefetched direct counting) on workload-sized
    /// inputs — the numbers behind `reptile_dist::counts`' strategy
    /// cutover. Run with
    /// `cargo test --release -p reptile radix::tests::profile -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn profile_aggregation_strategies() {
        for &(n, bits, distinct) in
            &[(1_020_000usize, 20u32, 290_000u64), (920_000, 30, 66_700), (1_020_000, 48, 290_000)]
        {
            let make = || -> Vec<u64> {
                (0..n as u64).map(|i| mix(i % distinct) & ((1u64 << bits) - 1)).collect()
            };
            for round in 0..3 {
                // (a) lsd sort + RLE sweep
                let mut v = make();
                let t0 = std::time::Instant::now();
                let mut tmp = Vec::new();
                lsd_sort_by(&mut v, &mut tmp, bits, |&k| k);
                let t_sort = t0.elapsed().as_nanos() as f64;
                let t1 = std::time::Instant::now();
                let mut runs: Vec<(u64, u32)> = Vec::with_capacity(n / 2);
                for &k in &v {
                    match runs.last_mut() {
                        Some(r) if r.0 == k => r.1 = r.1.saturating_add(1),
                        _ => runs.push((k, 1)),
                    }
                }
                let t_rle = t1.elapsed().as_nanos() as f64;
                std::hint::black_box(&runs);

                // (b) prefetched direct counting array (the Direct
                // strategy; only sane when the key space is small)
                let mut t_count = f64::NAN;
                if bits <= 22 {
                    let v = make();
                    let t2 = std::time::Instant::now();
                    let mut counts = vec![0u32; 1usize << bits];
                    const AHEAD: usize = 16;
                    for (i, &k) in v.iter().enumerate() {
                        if let Some(&nk) = v.get(i + AHEAD) {
                            dnaseq::simd::prefetch_read(&counts, nk as usize);
                        }
                        counts[k as usize] = counts[k as usize].saturating_add(1);
                    }
                    t_count = t2.elapsed().as_nanos() as f64;
                    std::hint::black_box(&counts);
                }

                let per = n as f64;
                eprintln!(
                    "n={n} bits={bits} round {round}: sort={:.1}+rle={:.1} | direct_count={:.1} ns/elem",
                    t_sort / per,
                    t_rle / per,
                    t_count / per,
                );
            }
        }
    }

    #[test]
    fn trivial_inputs_untouched() {
        let mut tmp = Vec::new();
        let mut empty: Vec<u64> = Vec::new();
        lsd_sort_by(&mut empty, &mut tmp, 20, |&k| k);
        assert!(empty.is_empty());
        let mut one = vec![42u64];
        lsd_sort_by(&mut one, &mut tmp, 20, |&k| k);
        assert_eq!(one, vec![42]);
    }
}
