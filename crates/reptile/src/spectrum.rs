//! K-mer and tile spectra.
//!
//! "The k-mer spectrum is represented by key-value pairs with k-mer ID as
//! the key and the count of the k-mer as the value. ... The k-mer and
//! tile spectrum are stored in separate hash tables" (paper §III step II
//! and §II-B — hash tables instead of the sorted arrays of the earlier
//! parallelizations). Both spectra sit on the flat open-addressing
//! tables of [`crate::flat`], which pack key+count slots and report
//! exact resident bytes (`memory_bytes`).

use crate::flat::{FlatKmerTable, FlatTileTable};
use crate::params::ReptileParams;
use dnaseq::{KmerCodec, Read, TileCodec};

/// A spectrum key that has already been strand-normalized.
///
/// Owner-side paths (wire lookups, batch service, exchange ingestion)
/// must operate on canonicalized keys — the sender normalized before
/// hashing, and re-normalizing is wasted work while *forgetting* to
/// normalize silently misses entries. This newtype moves that invariant
/// from a `debug_assert!` into the type system: [`KmerSpectrum::count_at`],
/// [`TileSpectrum::get_at`] and the `OwnerMap` raw-owner functions only
/// accept `Normalized<K>`, so handing them an unnormalized code is a
/// compile error rather than a release-mode wrong answer.
///
/// Obtain one from [`KmerSpectrum::normalize`] / [`TileSpectrum::normalize`]
/// (or the `OwnerMap` key functions), or — for keys that arrive over the
/// wire or out of a spectrum iterator, which are normalized by
/// construction — via the explicit escape hatch [`Normalized::assume`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Normalized<K>(K);

impl<K: Copy> Normalized<K> {
    /// Wrap a key that is known to be normalized already (wire-decoded
    /// requests, spectrum-iterator output, prefetch key lists). The call
    /// site is the audit point: use it only where normalization is
    /// guaranteed by construction.
    #[inline]
    pub fn assume(key: K) -> Normalized<K> {
        Normalized(key)
    }

    /// The underlying packed code.
    #[inline]
    pub fn key(self) -> K {
        self.0
    }
}

/// The k-mer spectrum: count per packed k-mer code.
#[derive(Clone, Debug)]
pub struct KmerSpectrum {
    codec: KmerCodec,
    canonical: bool,
    counts: FlatKmerTable,
}

impl KmerSpectrum {
    /// Empty spectrum for `k`-mers.
    pub fn new(codec: KmerCodec, canonical: bool) -> KmerSpectrum {
        KmerSpectrum { codec, canonical, counts: FlatKmerTable::new() }
    }

    /// The codec in use.
    pub fn codec(&self) -> KmerCodec {
        self.codec
    }

    /// Canonicalize a code per the spectrum's strand policy.
    #[inline]
    pub fn normalize(&self, code: u64) -> Normalized<u64> {
        Normalized(if self.canonical { self.codec.canonical(code) } else { code })
    }

    /// Add every k-mer of a read.
    pub fn add_read(&mut self, read: &Read) {
        for (_, code) in self.codec.kmers_of(&read.seq) {
            let key = self.normalize(code);
            self.counts.add_count(key.0, 1);
        }
    }

    /// Add a count for a normalized key (saturating).
    pub fn add_count(&mut self, key: Normalized<u64>, count: u32) {
        self.counts.add_count(key.0, count);
    }

    /// Pre-size for `additional` more distinct codes
    /// ([`FlatKmerTable::reserve`](crate::flat::FlatKmerTable::reserve)):
    /// an exact estimate keeps the geometry `bytes_for_entries`-exact
    /// while skipping every incremental growth rehash.
    pub fn reserve(&mut self, additional: usize) {
        self.counts.reserve(additional);
    }

    /// Bulk-ingest a sorted run of distinct (normalized) `(code, count)`
    /// pairs — the pre-aggregated per-owner buckets of the pipelined
    /// distributed build
    /// ([`FlatKmerTable::merge_sorted`](crate::flat::FlatKmerTable::merge_sorted)).
    pub fn merge_sorted(&mut self, entries: &[(u64, u32)]) {
        self.counts.merge_sorted(entries);
    }

    /// Bulk add of arbitrary (normalized) `(code, count)` pairs through
    /// the prefetch-pipelined batch path
    /// ([`FlatKmerTable::insert_batch`](crate::flat::FlatKmerTable::insert_batch)).
    pub fn insert_batch(&mut self, entries: &[(u64, u32)]) {
        self.counts.insert_batch(entries);
    }

    /// Count of a code (0 if absent). Normalizes internally.
    #[inline]
    pub fn count(&self, code: u64) -> u32 {
        self.counts.get(self.normalize(code).0).unwrap_or(0)
    }

    /// [`count`](KmerSpectrum::count) for a key that is already
    /// normalized (owner-side paths: keys arriving over the wire or out
    /// of an `OwnerMap`-keyed batch were canonicalized at the sender).
    /// Skips the revcomp/min canonicalization, which is idempotent, so
    /// the answer is identical.
    #[inline]
    pub fn count_at(&self, key: Normalized<u64>) -> u32 {
        self.counts.get(key.0).unwrap_or(0)
    }

    /// Stored count of a code, `None` when absent — distinguishes "known
    /// count 0" entries (resolved reads tables) from missing entries.
    /// Normalizes internally.
    #[inline]
    pub fn get(&self, code: u64) -> Option<u32> {
        self.counts.get(self.normalize(code).0)
    }

    /// [`get`](KmerSpectrum::get) for an already normalized key.
    #[inline]
    pub fn get_at(&self, key: Normalized<u64>) -> Option<u32> {
        self.counts.get(key.0)
    }

    /// Remove entries below `threshold` (paper §III step III: "k-mers and
    /// tiles below a threshold are subsequently removed").
    pub fn prune(&mut self, threshold: u32) {
        self.counts.prune(threshold);
    }

    /// Number of distinct k-mers stored.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when no k-mers are stored.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterate `(code, count)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.counts.iter()
    }

    /// Drain into `(code, count)` pairs.
    pub fn into_entries(self) -> impl Iterator<Item = (u64, u32)> {
        self.counts.into_entries()
    }

    /// Exact resident bytes of the backing table (slots + header).
    pub fn memory_bytes(&self) -> usize {
        self.counts.memory_bytes()
    }

    /// Bytes a k-mer spectrum holding `n` entries occupies (flat-table
    /// geometry at default max load) — the virtual engine's memory model.
    pub fn bytes_for_entries(n: usize) -> usize {
        FlatKmerTable::bytes_for_entries(n)
    }

    /// Whether this spectrum folds reverse complements.
    pub fn canonical(&self) -> bool {
        self.canonical
    }

    /// Borrow the backing table (snapshot save path).
    pub fn table(&self) -> &FlatKmerTable {
        &self.counts
    }

    /// Wrap an existing table (snapshot load path): the table's entries
    /// must already be normalized under the same codec/strand policy.
    pub fn from_table(codec: KmerCodec, canonical: bool, counts: FlatKmerTable) -> KmerSpectrum {
        KmerSpectrum { codec, canonical, counts }
    }
}

/// The tile spectrum: count per packed tile code (`u128` keys — "the tile
/// ID is a long integer", §III step II).
#[derive(Clone, Debug)]
pub struct TileSpectrum {
    codec: TileCodec,
    canonical: bool,
    counts: FlatTileTable,
}

impl TileSpectrum {
    /// Empty spectrum for the given tile shape.
    pub fn new(codec: TileCodec, canonical: bool) -> TileSpectrum {
        TileSpectrum { codec, canonical, counts: FlatTileTable::new() }
    }

    /// The codec in use.
    pub fn codec(&self) -> TileCodec {
        self.codec
    }

    /// Canonicalize a code per the spectrum's strand policy.
    #[inline]
    pub fn normalize(&self, code: u128) -> Normalized<u128> {
        Normalized(if self.canonical { self.codec.canonical(code) } else { code })
    }

    /// Add every tile of a read.
    pub fn add_read(&mut self, read: &Read) {
        for (_, code) in self.codec.tiles_of(&read.seq) {
            let key = self.normalize(code);
            self.counts.add_count(key.0, 1);
        }
    }

    /// Add a count for a normalized key (saturating).
    pub fn add_count(&mut self, key: Normalized<u128>, count: u32) {
        self.counts.add_count(key.0, count);
    }

    /// Pre-size for `additional` more distinct codes (see
    /// [`KmerSpectrum::reserve`]).
    pub fn reserve(&mut self, additional: usize) {
        self.counts.reserve(additional);
    }

    /// Bulk-ingest a sorted run of distinct (normalized) `(code, count)`
    /// pairs (see [`KmerSpectrum::merge_sorted`]).
    pub fn merge_sorted(&mut self, entries: &[(u128, u32)]) {
        self.counts.merge_sorted(entries);
    }

    /// Bulk add of arbitrary (normalized) `(code, count)` pairs (see
    /// [`KmerSpectrum::insert_batch`]).
    pub fn insert_batch(&mut self, entries: &[(u128, u32)]) {
        self.counts.insert_batch(entries);
    }

    /// Count of a code (0 if absent). Normalizes internally.
    #[inline]
    pub fn count(&self, code: u128) -> u32 {
        self.counts.get(self.normalize(code).0).unwrap_or(0)
    }

    /// [`count`](TileSpectrum::count) for an already normalized key
    /// (see [`KmerSpectrum::count_at`]).
    #[inline]
    pub fn count_at(&self, key: Normalized<u128>) -> u32 {
        self.counts.get(key.0).unwrap_or(0)
    }

    /// Stored count of a code, `None` when absent — distinguishes "known
    /// count 0" entries (resolved reads tables) from missing entries.
    /// Normalizes internally.
    #[inline]
    pub fn get(&self, code: u128) -> Option<u32> {
        self.counts.get(self.normalize(code).0)
    }

    /// [`get`](TileSpectrum::get) for an already normalized key.
    #[inline]
    pub fn get_at(&self, key: Normalized<u128>) -> Option<u32> {
        self.counts.get(key.0)
    }

    /// Remove entries below `threshold`.
    pub fn prune(&mut self, threshold: u32) {
        self.counts.prune(threshold);
    }

    /// Number of distinct tiles stored.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when no tiles are stored.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterate `(code, count)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (u128, u32)> + '_ {
        self.counts.iter()
    }

    /// Drain into `(code, count)` pairs.
    pub fn into_entries(self) -> impl Iterator<Item = (u128, u32)> {
        self.counts.into_entries()
    }

    /// Exact resident bytes of the backing table (slots + header).
    pub fn memory_bytes(&self) -> usize {
        self.counts.memory_bytes()
    }

    /// Bytes a tile spectrum holding `n` entries occupies (flat-table
    /// geometry at default max load) — the virtual engine's memory model.
    pub fn bytes_for_entries(n: usize) -> usize {
        FlatTileTable::bytes_for_entries(n)
    }

    /// Whether this spectrum folds reverse complements.
    pub fn canonical(&self) -> bool {
        self.canonical
    }

    /// Borrow the backing table (snapshot save path).
    pub fn table(&self) -> &FlatTileTable {
        &self.counts
    }

    /// Wrap an existing table (snapshot load path): the table's entries
    /// must already be normalized under the same codec/strand policy.
    pub fn from_table(codec: TileCodec, canonical: bool, counts: FlatTileTable) -> TileSpectrum {
        TileSpectrum { codec, canonical, counts }
    }
}

/// Both spectra together, with the local (sequential) [`SpectrumAccess`]
/// implementation used by the baseline corrector.
///
/// [`SpectrumAccess`]: crate::corrector::SpectrumAccess
#[derive(Clone, Debug)]
pub struct LocalSpectra {
    /// The k-mer spectrum.
    pub kmers: KmerSpectrum,
    /// The tile spectrum.
    pub tiles: TileSpectrum,
}

impl LocalSpectra {
    /// Build both spectra from a full read set, then prune by the
    /// parameter thresholds.
    pub fn build(reads: &[Read], params: &ReptileParams) -> LocalSpectra {
        params.assert_valid();
        let mut kmers = KmerSpectrum::new(params.kmer_codec(), params.canonical);
        let mut tiles = TileSpectrum::new(params.tile_codec(), params.canonical);
        for read in reads {
            kmers.add_read(read);
            tiles.add_read(read);
        }
        kmers.prune(params.kmer_threshold);
        tiles.prune(params.tile_threshold);
        LocalSpectra { kmers, tiles }
    }

    /// Build without pruning (the distributed construction prunes only
    /// after the global count merge).
    pub fn build_unpruned(reads: &[Read], params: &ReptileParams) -> LocalSpectra {
        params.assert_valid();
        let mut kmers = KmerSpectrum::new(params.kmer_codec(), params.canonical);
        let mut tiles = TileSpectrum::new(params.tile_codec(), params.canonical);
        for read in reads {
            kmers.add_read(read);
            tiles.add_read(read);
        }
        LocalSpectra { kmers, tiles }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(id: u64, seq: &[u8]) -> Read {
        Read::new(id, seq.to_vec(), vec![30; seq.len()])
    }

    fn params() -> ReptileParams {
        ReptileParams { k: 4, tile_overlap: 2, ..ReptileParams::for_tests() }
    }

    #[test]
    fn kmer_counts_accumulate() {
        let p = params();
        let mut s = KmerSpectrum::new(p.kmer_codec(), false);
        s.add_read(&read(1, b"AAAAA")); // AAAA twice
        s.add_read(&read(2, b"AAAA")); // once more
        let code = p.kmer_codec().encode(b"AAAA").unwrap();
        assert_eq!(s.count(code), 3);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn ambiguous_bases_skipped() {
        let p = params();
        let mut s = KmerSpectrum::new(p.kmer_codec(), false);
        s.add_read(&read(1, b"AANTTTT"));
        // only TTTT windows (positions 3) — windows crossing N are dropped
        assert_eq!(s.len(), 1);
        assert_eq!(s.count(p.kmer_codec().encode(b"TTTT").unwrap()), 1);
    }

    #[test]
    fn prune_removes_rare() {
        let p = params();
        let mut s = KmerSpectrum::new(p.kmer_codec(), false);
        s.add_read(&read(1, b"AAAA"));
        s.add_read(&read(2, b"AAAA"));
        s.add_read(&read(3, b"CCCC"));
        s.prune(2);
        assert_eq!(s.count(p.kmer_codec().encode(b"AAAA").unwrap()), 2);
        assert_eq!(s.count(p.kmer_codec().encode(b"CCCC").unwrap()), 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn canonical_folds_strands() {
        let p = params();
        let mut s = KmerSpectrum::new(p.kmer_codec(), true);
        s.add_read(&read(1, b"ACGG"));
        s.add_read(&read(2, b"CCGT")); // revcomp of ACGG
        let code = p.kmer_codec().encode(b"ACGG").unwrap();
        assert_eq!(s.count(code), 2);
        assert_eq!(
            s.count(p.kmer_codec().encode(b"CCGT").unwrap()),
            2,
            "lookup from either strand"
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn tile_counts_and_prune() {
        let p = params(); // tile len 6, stride 2
        let mut s = TileSpectrum::new(p.tile_codec(), false);
        s.add_read(&read(1, b"ACGTAC"));
        s.add_read(&read(2, b"ACGTAC"));
        let code = p.tile_codec().encode(b"ACGTAC").unwrap();
        assert_eq!(s.count(code), 2);
        s.prune(3);
        assert_eq!(s.count(code), 0);
    }

    #[test]
    fn local_spectra_build_prunes_by_thresholds() {
        let p = params();
        // 3 copies of one read, 1 copy of a read whose k-mers all occur once
        let mut reads = vec![read(1, b"ACGTACGT"), read(2, b"ACGTACGT"), read(3, b"ACGTACGT")];
        reads.push(read(4, b"TACGGTCA"));
        let spectra = LocalSpectra::build(&reads, &p);
        let kc = p.kmer_codec();
        assert_eq!(spectra.kmers.count(kc.encode(b"ACGT").unwrap()), 6); // 2 windows x 3 reads
        assert_eq!(
            spectra.kmers.count(kc.encode(b"GGTC").unwrap()),
            0,
            "singleton pruned at threshold 2"
        );
    }

    #[test]
    fn normalized_keys_round_trip() {
        let p = params();
        let mut s = KmerSpectrum::new(p.kmer_codec(), true);
        let code = p.kmer_codec().encode(b"ACGG").unwrap();
        let key = s.normalize(code);
        s.add_count(key, 2);
        assert_eq!(s.count_at(key), 2);
        assert_eq!(s.get_at(key), Some(2));
        // both strands normalize to the same key
        let rc = p.kmer_codec().encode(b"CCGT").unwrap();
        assert_eq!(s.normalize(rc), key);
        // iterator output is normalized by construction
        for (c, n) in s.iter() {
            assert_eq!(s.count_at(Normalized::assume(c)), n);
        }
    }

    #[test]
    fn unpruned_build_keeps_everything() {
        let p = params();
        let reads = vec![read(1, b"ACGTACGT")];
        let s = LocalSpectra::build_unpruned(&reads, &p);
        assert!(!s.kmers.is_empty());
        assert!(!s.tiles.is_empty());
        let pruned = LocalSpectra::build(&reads, &p);
        assert!(pruned.kmers.len() <= s.kmers.len());
    }
}
