//! Property tests for the Reptile corrector and spectra.

use proptest::prelude::*;
use reptile::spectrum::LocalSpectra;
use reptile::{correct_read, ReptileParams};

fn params() -> ReptileParams {
    ReptileParams {
        k: 6,
        tile_overlap: 3,
        kmer_threshold: 2,
        tile_threshold: 2,
        ..ReptileParams::default()
    }
}

fn dna(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T', b'N']), len)
}

fn dna_clean(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), len)
}

fn reads_strategy() -> impl Strategy<Value = Vec<dnaseq::Read>> {
    // a pool of up to 8 templates, each repeated up to 6 times
    prop::collection::vec((dna(9..40), 1usize..6), 1..8).prop_map(|templates| {
        let mut reads = Vec::new();
        let mut id = 1u64;
        for (seq, copies) in templates {
            for _ in 0..copies {
                let qual: Vec<u8> =
                    seq.iter().enumerate().map(|(i, _)| 2 + ((i * 7) % 39) as u8).collect();
                reads.push(dnaseq::Read::new(id, seq.clone(), qual));
                id += 1;
            }
        }
        reads
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Correction never changes read length or identity, and every fix is
    /// a real substitution at a valid position.
    #[test]
    fn corrector_structural_invariants(reads in reads_strategy(), target in 0usize..40) {
        let p = params();
        let mut spectra = LocalSpectra::build(&reads, &p);
        let idx = target % reads.len();
        let original = reads[idx].clone();
        let mut read = original.clone();
        let outcome = correct_read(&mut read, &mut spectra, &p);
        prop_assert_eq!(read.len(), original.len());
        prop_assert_eq!(read.id, original.id);
        prop_assert_eq!(&read.qual, &original.qual);
        prop_assert_eq!(read.hamming_distance(&original), outcome.fixes.len());
        for fix in &outcome.fixes {
            prop_assert!((fix.pos as usize) < read.len());
            prop_assert_ne!(fix.from, fix.to);
            prop_assert_eq!(read.seq[fix.pos as usize], fix.to);
            prop_assert!(matches!(fix.to, b'A' | b'C' | b'G' | b'T'));
        }
        // N positions are never "corrected"
        for (i, &b) in original.seq.iter().enumerate() {
            if b == b'N' {
                prop_assert_eq!(read.seq[i], b'N');
            }
        }
    }

    /// A read whose tiles are all solid is never modified.
    #[test]
    fn solid_reads_untouched(seq in dna_clean(12..40), copies in 3usize..8) {
        let p = params();
        let reads: Vec<dnaseq::Read> = (0..copies)
            .map(|i| dnaseq::Read::new(i as u64 + 1, seq.clone(), vec![35; seq.len()]))
            .collect();
        let mut spectra = LocalSpectra::build(&reads, &p);
        let mut read = reads[0].clone();
        let outcome = correct_read(&mut read, &mut spectra, &p);
        prop_assert!(!outcome.corrected());
        prop_assert_eq!(read.seq, seq);
    }

    /// Spectrum construction distributes over dataset partition: building
    /// from all reads equals merging per-part unpruned builds, then
    /// pruning — the algebra behind the distributed Step III.
    #[test]
    fn spectrum_merge_associativity(reads in reads_strategy(), split in 1usize..10) {
        let p = params();
        let cut = (split * reads.len() / 10).min(reads.len());
        let whole = LocalSpectra::build(&reads, &p);
        let left = LocalSpectra::build_unpruned(&reads[..cut], &p);
        let right = LocalSpectra::build_unpruned(&reads[cut..], &p);
        let mut merged = left;
        for (code, count) in right.kmers.iter() {
            merged.kmers.add_count(reptile::Normalized::assume(code), count);
        }
        for (code, count) in right.tiles.iter() {
            merged.tiles.add_count(reptile::Normalized::assume(code), count);
        }
        merged.kmers.prune(p.kmer_threshold);
        merged.tiles.prune(p.tile_threshold);
        let a: std::collections::HashMap<_, _> = whole.kmers.iter().collect();
        let b: std::collections::HashMap<_, _> = merged.kmers.iter().collect();
        prop_assert_eq!(a, b);
        let at: std::collections::HashMap<_, _> = whole.tiles.iter().collect();
        let bt: std::collections::HashMap<_, _> = merged.tiles.iter().collect();
        prop_assert_eq!(at, bt);
    }

    /// Canonical spectra are strand-symmetric: looking up a code and its
    /// reverse complement gives the same count.
    #[test]
    fn canonical_spectra_strand_symmetric(reads in reads_strategy()) {
        let p = ReptileParams { canonical: true, ..params() };
        let spectra = LocalSpectra::build(&reads, &p);
        let kcodec = p.kmer_codec();
        for (code, count) in spectra.kmers.iter().take(50) {
            let rc = kcodec.reverse_complement(code);
            prop_assert_eq!(spectra.kmers.count(rc), count);
        }
    }
}
