//! Model-based property tests: the flat open-addressing tables must
//! behave exactly like a `FxHashMap` with saturating counts under any
//! interleaving of `add_count` / `prune` / `get`, including growth
//! boundaries (small key pools force collisions and rehashes), count
//! saturation at `u32::MAX`, and the reserved empty-sentinel key
//! (`u64::MAX` / `u128::MAX`), which is itself a legal code.

use dnaseq::FxHashMap;
use proptest::prelude::*;
use reptile::{FlatKmerTable, FlatTileTable};

/// One step of the interleaving, generic over the key width.
#[derive(Clone, Debug)]
enum Op<K> {
    Add(K, u32),
    Prune(u32),
    Get(K),
}

/// Keys biased toward collisions (tiny pool), the sentinel neighborhood,
/// and arbitrary values.
fn kmer_key() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..24, Just(u64::MAX), Just(u64::MAX - 1), any::<u64>(),]
}

fn tile_key() -> impl Strategy<Value = u128> {
    prop_oneof![
        0u128..24,
        Just(u128::MAX),
        Just(u128::MAX - 1),
        // keys differing only in the high half
        (0u128..24).prop_map(|k| k << 64),
        any::<u128>(),
    ]
}

/// Counts biased toward the saturation boundary.
fn count() -> impl Strategy<Value = u32> {
    prop_oneof![1u32..5, Just(u32::MAX), Just(u32::MAX - 1)]
}

fn kmer_ops() -> impl Strategy<Value = Vec<Op<u64>>> {
    prop::collection::vec(
        prop_oneof![
            (kmer_key(), count()).prop_map(|(k, c)| Op::Add(k, c)),
            (0u32..6).prop_map(Op::Prune),
            kmer_key().prop_map(Op::Get),
        ],
        1..120,
    )
}

fn tile_ops() -> impl Strategy<Value = Vec<Op<u128>>> {
    prop::collection::vec(
        prop_oneof![
            (tile_key(), count()).prop_map(|(k, c)| Op::Add(k, c)),
            (0u32..6).prop_map(Op::Prune),
            tile_key().prop_map(Op::Get),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any interleaving of add/prune/get agrees with the hash-map model,
    /// and the surviving entry sets match exactly at the end.
    #[test]
    fn kmer_table_matches_hashmap_model(ops in kmer_ops()) {
        let mut table = FlatKmerTable::new();
        let mut model: FxHashMap<u64, u32> = FxHashMap::default();
        for op in ops {
            match op {
                Op::Add(key, count) => {
                    table.add_count(key, count);
                    let e = model.entry(key).or_insert(0);
                    *e = e.saturating_add(count);
                }
                Op::Prune(threshold) => {
                    table.prune(threshold);
                    model.retain(|_, c| *c >= threshold);
                }
                Op::Get(key) => {
                    prop_assert_eq!(table.get(key), model.get(&key).copied());
                }
            }
            prop_assert_eq!(table.len(), model.len());
        }
        let mut got: Vec<(u64, u32)> = table.iter().collect();
        got.sort_unstable();
        let mut via_into: Vec<(u64, u32)> = table.into_entries().collect();
        via_into.sort_unstable();
        let mut want: Vec<(u64, u32)> = model.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(&got, &want, "iter diverges from model");
        prop_assert_eq!(&via_into, &want, "into_entries diverges from model");
    }

    /// Split-u128 variant of the same model equivalence.
    #[test]
    fn tile_table_matches_hashmap_model(ops in tile_ops()) {
        let mut table = FlatTileTable::new();
        let mut model: FxHashMap<u128, u32> = FxHashMap::default();
        for op in ops {
            match op {
                Op::Add(key, count) => {
                    table.add_count(key, count);
                    let e = model.entry(key).or_insert(0);
                    *e = e.saturating_add(count);
                }
                Op::Prune(threshold) => {
                    table.prune(threshold);
                    model.retain(|_, c| *c >= threshold);
                }
                Op::Get(key) => {
                    prop_assert_eq!(table.get(key), model.get(&key).copied());
                }
            }
            prop_assert_eq!(table.len(), model.len());
        }
        let mut got: Vec<(u128, u32)> = table.iter().collect();
        got.sort_unstable();
        let mut want: Vec<(u128, u32)> = model.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want, "iter diverges from model");
    }

    /// The measured footprint always equals the static geometry at the
    /// table's entry count after a prune (the invariant the virtual
    /// engine's memory model depends on), and occupancy never exceeds
    /// the default 3/4 load bound.
    #[test]
    fn kmer_geometry_invariants(ops in kmer_ops()) {
        let mut table = FlatKmerTable::new();
        for op in ops {
            match op {
                Op::Add(key, count) => table.add_count(key, count),
                Op::Prune(threshold) => {
                    table.prune(threshold);
                    // sentinel lives in the header, not a slot
                    let slot_entries = table.iter().filter(|&(k, _)| k != u64::MAX).count();
                    prop_assert_eq!(
                        table.memory_bytes(),
                        FlatKmerTable::bytes_for_entries(slot_entries)
                    );
                }
                Op::Get(_) => {}
            }
            let slots = table.iter().filter(|&(k, _)| k != u64::MAX).count();
            prop_assert!(slots * 4 <= table.capacity().max(1) * 3, "load bound violated");
        }
    }
}
