//! Property tests for the GF(2^8) Reed-Solomon codec: encode → erase
//! any ≤ m shards → reconstruct bit-identical, and > m erasures fail
//! with the typed `TooManyLost` — across geometries, stripe lengths,
//! and erasure patterns.

use proptest::prelude::*;
use specstore::{RsCode, RsError};

/// Deterministic bytes from a seed (xorshift), so the strategy space
/// stays scalar-only while the data still varies per case.
fn shard_bytes(seed: u64, shard: usize, len: usize) -> Vec<u8> {
    let mut x = (seed ^ (shard as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 24) as u8
        })
        .collect()
}

/// Pick `count` distinct erasure positions out of `total` from the
/// random word `bits`.
fn erasures(bits: u64, total: usize, count: usize) -> Vec<usize> {
    let mut picked = Vec::with_capacity(count);
    let mut i = 0usize;
    while picked.len() < count {
        let cand = ((bits >> ((i * 7) % 57)) as usize + i) % total;
        if !picked.contains(&cand) {
            picked.push(cand);
        }
        i += 1;
    }
    picked
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn erase_up_to_m_reconstructs_bit_identical(
        k in 2usize..9,
        m in 1usize..4,
        stripe in 1usize..200,
        seed in any::<u64>(),
        pick in any::<u64>(),
    ) {
        let code = RsCode::new(k, m).unwrap();
        let data: Vec<Vec<u8>> = (0..k).map(|j| shard_bytes(seed, j, stripe)).collect();
        let parity = code.encode(&data);
        let lose = (pick as usize % m) + 1; // 1..=m erasures
        let mut shards: Vec<Option<Vec<u8>>> =
            data.iter().chain(parity.iter()).map(|s| Some(s.clone())).collect();
        for e in erasures(pick, k + m, lose) {
            shards[e] = None;
        }
        code.reconstruct(&mut shards, stripe).unwrap();
        for (j, d) in data.iter().enumerate() {
            prop_assert_eq!(shards[j].as_ref().unwrap(), d, "data shard {}", j);
        }
        for (i, p) in parity.iter().enumerate() {
            prop_assert_eq!(shards[k + i].as_ref().unwrap(), p, "parity shard {}", i);
        }
    }

    #[test]
    fn erase_more_than_m_is_too_many_lost(
        k in 2usize..9,
        m in 1usize..4,
        stripe in 1usize..100,
        seed in any::<u64>(),
        pick in any::<u64>(),
    ) {
        let code = RsCode::new(k, m).unwrap();
        let data: Vec<Vec<u8>> = (0..k).map(|j| shard_bytes(seed, j, stripe)).collect();
        let parity = code.encode(&data);
        let lose = m + 1 + (pick as usize % (k.min(3)));
        let lose = lose.min(k + m);
        let mut shards: Vec<Option<Vec<u8>>> =
            data.iter().chain(parity.iter()).map(|s| Some(s.clone())).collect();
        for e in erasures(pick, k + m, lose) {
            shards[e] = None;
        }
        match code.reconstruct(&mut shards, stripe) {
            Err(RsError::TooManyLost { lost, parity }) => {
                prop_assert_eq!(lost, lose);
                prop_assert_eq!(parity, m);
            }
            other => prop_assert!(false, "expected TooManyLost, got {:?}", other.map(|_| ())),
        }
    }
}
