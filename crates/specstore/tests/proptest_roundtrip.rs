//! Property tests for the shard format, through the store API.
//!
//! 1. `save → load → probe` is bit-identical for both flat-table
//!    variants across entry counts, load factors, and the all-ones
//!    sentinel edge case (the reserved empty marker that is still a
//!    legal k-mer/tile code).
//! 2. Every single-byte flip anywhere in a shard file — header or body —
//!    is rejected with a typed error under `Strict`, never silently
//!    loaded. FNV-1a guarantees this analytically (each absorption is a
//!    bijection of the state), and the exhaustive flip loop proves the
//!    wiring.
//! 3. With a parity shard and `Repair`, every one of those same flips
//!    is *repaired*: the load returns bit-identical tables instead of
//!    an error.

use proptest::prelude::*;
use reptile::{FlatKmerTable, FlatTileTable, ReptileParams};
use specstore::{
    ConfigFingerprint, Manifest, RecoveryPolicy, ShardKind, SnapshotReader, SnapshotWriter,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "specstore-prop-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fingerprint() -> ConfigFingerprint {
    ConfigFingerprint::for_params(&ReptileParams::for_tests())
}

/// Write a single-rank snapshot holding both tables; returns its dir.
fn snapshot_of(kmer: &FlatKmerTable, tile: &FlatTileTable, parity: usize) -> PathBuf {
    let dir = tmpdir();
    let mut w = SnapshotWriter::create(&dir, &fingerprint(), 1, parity).unwrap();
    w.write_kmer(0, kmer).unwrap();
    w.write_tile(0, tile).unwrap();
    w.finish().unwrap();
    dir
}

/// Entry sets: arbitrary keys and counts, sized to cross several growth
/// boundaries; `sentinel` adds the all-ones key through its side-field
/// path.
fn entries_strategy() -> impl Strategy<Value = (Vec<(u64, u32)>, bool)> {
    (
        prop::collection::vec((any::<u64>(), 1u32..1000), 0..400),
        prop::sample::select(vec![false, true]),
    )
}

/// Load factors straddling the default: 1/2, 3/4, 5/8.
fn load_strategy() -> impl Strategy<Value = (usize, usize)> {
    prop::sample::select(vec![(1usize, 2usize), (3, 4), (5, 8)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kmer_shard_roundtrip_bit_identical(
        spec in entries_strategy(),
        load in load_strategy(),
    ) {
        let ((entries, sentinel), (num, den)) = (spec, load);
        let mut table = FlatKmerTable::with_max_load(num, den);
        for &(k, c) in &entries {
            table.add_count(k, c);
        }
        if sentinel {
            table.add_count(u64::MAX, 7);
        }
        let dir = snapshot_of(&table, &FlatTileTable::new(), 0);
        let mut r = SnapshotReader::open(&dir, &fingerprint(), RecoveryPolicy::Strict).unwrap();
        let loaded = r.load_kmer(0).unwrap().table;
        prop_assert!(loaded.is_mapped() || loaded.capacity() == 0);
        prop_assert_eq!(loaded.len(), table.len());
        prop_assert_eq!(loaded.capacity(), table.capacity());
        prop_assert_eq!(loaded.memory_bytes(), table.memory_bytes());
        for &(k, _) in &entries {
            prop_assert_eq!(loaded.get(k), table.get(k));
        }
        prop_assert_eq!(loaded.get(u64::MAX), table.get(u64::MAX));
        // entry sets identical, not just probed keys
        let mut a: Vec<_> = loaded.iter().collect();
        let mut b: Vec<_> = table.iter().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tile_shard_roundtrip_bit_identical(
        spec in entries_strategy(),
        load in load_strategy(),
    ) {
        let ((entries, sentinel), (num, den)) = (spec, load);
        let mut table = FlatTileTable::with_max_load(num, den);
        for &(k, c) in &entries {
            // spread keys across both halves
            let key = (k as u128) << 64 | (k.rotate_left(17) as u128);
            table.add_count(key, c);
        }
        if sentinel {
            table.add_count(u128::MAX, 3);
        }
        let dir = snapshot_of(&FlatKmerTable::new(), &table, 0);
        let mut r = SnapshotReader::open(&dir, &fingerprint(), RecoveryPolicy::Strict).unwrap();
        let loaded = r.load_tile(0).unwrap().table;
        prop_assert_eq!(loaded.len(), table.len());
        prop_assert_eq!(loaded.capacity(), table.capacity());
        prop_assert_eq!(loaded.memory_bytes(), table.memory_bytes());
        for &(k, _) in &entries {
            let key = (k as u128) << 64 | (k.rotate_left(17) as u128);
            prop_assert_eq!(loaded.get(key), table.get(key));
        }
        prop_assert_eq!(loaded.get(u128::MAX), table.get(u128::MAX));
        let mut a: Vec<_> = loaded.iter().collect();
        let mut b: Vec<_> = table.iter().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).ok();
    }
}

fn sample_kmer() -> FlatKmerTable {
    let mut table = FlatKmerTable::new();
    for k in 0..40u64 {
        table.add_count(k * 2654435761, (k % 7 + 1) as u32);
    }
    table.add_count(u64::MAX, 2);
    table
}

/// Exhaustive corruption sweep: flip one byte at every offset of a shard
/// file (two patterns per byte) and require a typed rejection each time.
/// Different offsets trip different guards — magic, version, fingerprint,
/// geometry, checksum — but none may load under `Strict`.
#[test]
fn every_single_byte_flip_is_rejected() {
    let table = sample_kmer();
    let dir = snapshot_of(&table, &FlatTileTable::new(), 0);
    let path = {
        let manifest = Manifest::read(&dir).unwrap();
        dir.join(&manifest.shard(0, ShardKind::Kmer).unwrap().file_name)
    };
    let pristine = std::fs::read(&path).unwrap();
    // sanity: the pristine file loads
    let mut r = SnapshotReader::open(&dir, &fingerprint(), RecoveryPolicy::Strict).unwrap();
    assert!(r.load_kmer(0).is_ok());
    for offset in 0..pristine.len() {
        for pattern in [0x01u8, 0xFF] {
            let mut corrupt = pristine.clone();
            corrupt[offset] ^= pattern;
            std::fs::write(&path, &corrupt).unwrap();
            let mut r = SnapshotReader::open(&dir, &fingerprint(), RecoveryPolicy::Strict).unwrap();
            assert!(
                r.load_kmer(0).is_err(),
                "flip {pattern:#04x} at byte {offset} (of {}) loaded successfully",
                pristine.len()
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The same sweep with one parity shard and a `Repair` policy: every
/// flip is now *repaired* — the load succeeds and the table is
/// bit-identical to the original.
#[test]
fn every_single_byte_flip_is_repaired_with_parity() {
    let table = sample_kmer();
    let dir = snapshot_of(&table, &FlatTileTable::new(), 1);
    let path = {
        let manifest = Manifest::read(&dir).unwrap();
        dir.join(&manifest.shard(0, ShardKind::Kmer).unwrap().file_name)
    };
    let pristine = std::fs::read(&path).unwrap();
    let policy = RecoveryPolicy::Repair { max_lost: 1, rewrite: false };
    for offset in 0..pristine.len() {
        let mut corrupt = pristine.clone();
        corrupt[offset] ^= 0x55;
        std::fs::write(&path, &corrupt).unwrap();
        let mut r = SnapshotReader::open(&dir, &fingerprint(), policy).unwrap();
        let loaded = r.load_kmer(0).unwrap_or_else(|e| {
            panic!("flip at byte {offset} (of {}) not repaired: {e}", pristine.len())
        });
        assert_eq!(r.stats().shards_repaired, 1, "flip at byte {offset}");
        assert_eq!(loaded.table.len(), table.len());
        let mut a: Vec<_> = loaded.table.iter().collect();
        let mut b: Vec<_> = table.iter().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "flip at byte {offset}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The tile layout gets the same sweep over its header and body (the
/// three-array body shares the kmer path's checksum plumbing; the full
/// sweep above already proves the streaming hash covers every offset
/// pattern).
#[test]
fn tile_flips_in_header_and_body_are_rejected() {
    let mut table = FlatTileTable::new();
    for k in 0..40u128 {
        table.add_count(k << 21 | 5, (k % 5 + 1) as u32);
    }
    let dir = snapshot_of(&FlatKmerTable::new(), &table, 0);
    let path = {
        let manifest = Manifest::read(&dir).unwrap();
        dir.join(&manifest.shard(0, ShardKind::Tile).unwrap().file_name)
    };
    let pristine = std::fs::read(&path).unwrap();
    {
        let mut r = SnapshotReader::open(&dir, &fingerprint(), RecoveryPolicy::Strict).unwrap();
        assert!(r.load_tile(0).is_ok());
    }
    for offset in 0..pristine.len() {
        let mut corrupt = pristine.clone();
        corrupt[offset] ^= 0x10;
        std::fs::write(&path, &corrupt).unwrap();
        let mut r = SnapshotReader::open(&dir, &fingerprint(), RecoveryPolicy::Strict).unwrap();
        assert!(r.load_tile(0).is_err(), "flip at byte {offset} loaded successfully");
    }
    std::fs::remove_dir_all(&dir).ok();
}
