//! Sorted spill-run files and the k-way merger behind the out-of-core
//! spectrum build.
//!
//! RECKONER-style external-memory counting splits construction into two
//! IO-friendly phases: *spill* pre-aggregated sorted runs to disk when
//! the in-memory accumulator trips a budget, then *merge* the runs back
//! in one streaming pass. This module is the disk half of that story:
//!
//! * a **run file** is one strictly-ascending RLE sequence of
//!   `(key, count)` pairs — exactly the shape `CountAcc::finalize`
//!   drains — behind a checksummed fixed-size header;
//! * a [`RunWriter`] streams entries through a bounded [`SpillBuffer`]
//!   (never materializing the encoded run), hashing as it goes and
//!   patching the header checksum on `finish`, mirroring the snapshot
//!   shard writer;
//! * a [`RunReader`] *verifies before it serves*: `open` checks magic,
//!   version, key width, exact length, and the full-body FNV-1a
//!   checksum in one bounded streaming pass, then rewinds. A chopped or
//!   bit-flipped run is a typed [`SpillError`] before the merge adopts a
//!   single entry — corrupt spills can fail a build, never corrupt its
//!   counts;
//! * a [`RunMerger`] runs a loser-tree k-way merge over open readers,
//!   folding equal keys with the same saturating add the tables use and
//!   pruning below-threshold keys *during* the merge, so the survivor
//!   stream can feed `flat` bulk loads directly.
//!
//! Saturating addition of non-negative counts is associative and
//! commutative (`min(min(a,M)+min(b,M), M) == min(a+b, M)` for
//! `a,b ≤ M`), so per-run saturated counts merged here equal the counts
//! the all-in-memory accumulator would have produced — the keystone of
//! the out-of-core build's bit-identity guarantee.

use std::fmt;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::checksum::Fnv1a;

/// Run-file magic ("ReptiLe RUN v1" — distinct from the snapshot shard
/// magic so a run can never be mistaken for a shard).
pub const RUN_MAGIC: [u8; 8] = *b"RPTLRUN1";
/// Run format version.
pub const RUN_VERSION: u16 = 1;
/// Fixed header size: magic(8) + version(2) + key_bytes(1) + pad(5) +
/// entries(8) + checksum(8).
pub const RUN_HEADER_BYTES: usize = 32;
/// Default bounded staging-buffer size for run IO. Matches the snapshot
/// layer's `IO_CHUNK`: big enough to amortize syscalls, small enough
/// that two in-flight buffers are noise next to any realistic memory
/// budget.
pub const DEFAULT_SPILL_BUF_BYTES: usize = 64 * 1024;
/// Smallest accepted staging buffer — one 16-byte key + count plus
/// header room, rounded well up so even adversarial configs stream.
/// Public because budget-driven callers scale per-reader merge buffers
/// down toward this floor when many runs must open at once.
pub const MIN_SPILL_BUF_BYTES: usize = 4 * 1024;

/// Spill-run key: the two spectrum key widths. Sealed by construction —
/// the run header records the width so a reader opened at the wrong
/// type is a typed error, not garbage keys.
pub trait SpillKey: Copy + Ord {
    /// Encoded key width in bytes (8 or 16).
    const KEY_BYTES: usize;
    /// Encode into `buf[..KEY_BYTES]`, little-endian.
    fn write_le(self, buf: &mut [u8]);
    /// Decode from `buf[..KEY_BYTES]`, little-endian.
    fn read_le(buf: &[u8]) -> Self;
}

impl SpillKey for u64 {
    const KEY_BYTES: usize = 8;
    fn write_le(self, buf: &mut [u8]) {
        buf[..8].copy_from_slice(&self.to_le_bytes());
    }
    fn read_le(buf: &[u8]) -> u64 {
        u64::from_le_bytes(buf[..8].try_into().unwrap())
    }
}

impl SpillKey for u128 {
    const KEY_BYTES: usize = 16;
    fn write_le(self, buf: &mut [u8]) {
        buf[..16].copy_from_slice(&self.to_le_bytes());
    }
    fn read_le(buf: &[u8]) -> u128 {
        u128::from_le_bytes(buf[..16].try_into().unwrap())
    }
}

/// Typed failures of the spill plane. Mirrors the snapshot layer's
/// `SnapshotError` taxonomy: IO is separated from format violations so
/// callers (and the fault matrix) can assert *which* way a corrupt run
/// failed — and that it failed before any count was adopted.
#[derive(Debug)]
pub enum SpillError {
    /// Underlying filesystem error.
    Io {
        /// The run file involved.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// The file does not start with [`RUN_MAGIC`] — not a run file.
    BadMagic {
        /// The offending file.
        path: PathBuf,
    },
    /// Run format version this build does not speak.
    VersionSkew {
        /// The offending file.
        path: PathBuf,
        /// Version found in the header.
        found: u16,
    },
    /// Header key width disagrees with the reader's key type.
    KeyWidth {
        /// The offending file.
        path: PathBuf,
        /// Width recorded in the header.
        found: u8,
        /// Width the reader expects.
        expected: u8,
    },
    /// File length disagrees with the header's entry count — an
    /// interrupted write or a `chop=` injection.
    Truncated {
        /// The offending file.
        path: PathBuf,
        /// Bytes the header promises.
        expected_bytes: u64,
        /// Bytes actually on disk.
        actual_bytes: u64,
    },
    /// Stored checksum disagrees with the recomputed one — bit rot or a
    /// flipped byte.
    Checksum {
        /// The offending file.
        path: PathBuf,
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum recomputed over the bytes on disk.
        actual: u64,
    },
    /// Body keys are not strictly ascending — a writer bug or a
    /// checksum collision; either way the run cannot be merged.
    OutOfOrder {
        /// The offending file.
        path: PathBuf,
        /// Zero-based index of the offending entry.
        entry: u64,
    },
    /// This participant's spill plane is healthy, but peers' are not —
    /// a distributed build aborts all ranks together (the failing ranks
    /// carry the real error; everyone else carries this sentinel).
    PeerFailure {
        /// How many peers reported a spill failure.
        failed_ranks: u64,
    },
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillError::Io { path, source } => {
                write!(f, "spill io error on {}: {source}", path.display())
            }
            SpillError::BadMagic { path } => {
                write!(f, "{} is not a spill run (bad magic)", path.display())
            }
            SpillError::VersionSkew { path, found } => {
                write!(
                    f,
                    "{} is run format v{found}, this build speaks v{RUN_VERSION}",
                    path.display()
                )
            }
            SpillError::KeyWidth { path, found, expected } => {
                write!(
                    f,
                    "{} holds {found}-byte keys, reader expects {expected}-byte keys",
                    path.display()
                )
            }
            SpillError::Truncated { path, expected_bytes, actual_bytes } => {
                write!(
                    f,
                    "{} truncated: header promises {expected_bytes} bytes, file has {actual_bytes}",
                    path.display()
                )
            }
            SpillError::Checksum { path, expected, actual } => {
                write!(
                    f,
                    "{} checksum mismatch: header {expected:#018x}, recomputed {actual:#018x}",
                    path.display()
                )
            }
            SpillError::OutOfOrder { path, entry } => {
                write!(f, "{} keys not strictly ascending at entry {entry}", path.display())
            }
            SpillError::PeerFailure { failed_ranks } => {
                write!(f, "{failed_ranks} peer rank(s) failed in their spill plane")
            }
        }
    }
}

impl std::error::Error for SpillError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpillError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Wrap an IO error with the path it struck.
fn io_err(path: &Path, source: std::io::Error) -> SpillError {
    SpillError::Io { path: path.to_path_buf(), source }
}

/// A bounded byte staging buffer: the only transient memory the spill
/// plane owns. Writers encode entries into it and flush when full;
/// readers refill it from disk. Its capacity is fixed at construction,
/// so `capacity_bytes` is an exact accounting input for the build's
/// memory budget.
#[derive(Debug)]
pub struct SpillBuffer {
    data: Vec<u8>,
    cap: usize,
}

impl SpillBuffer {
    /// Buffer bounded at `cap` bytes (clamped up to a streamable
    /// minimum).
    pub fn new(cap: usize) -> SpillBuffer {
        let cap = cap.max(MIN_SPILL_BUF_BYTES);
        SpillBuffer { data: Vec::with_capacity(cap), cap }
    }

    /// The fixed bound — what a budget should charge for this buffer.
    pub fn capacity_bytes(&self) -> usize {
        self.cap
    }
}

/// Summary of a finished run file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunMeta {
    /// Distinct keys in the run.
    pub entries: u64,
    /// Total file size (header + body).
    pub file_bytes: u64,
    /// Header checksum (header-with-zeroed-field FNV xor body FNV).
    pub checksum: u64,
}

/// Encoded size of one `(key, count)` entry for key type `K`.
fn entry_bytes<K: SpillKey>() -> usize {
    K::KEY_BYTES + 4
}

/// Compose the stored checksum from the two streamed digests. FNV-1a is
/// strictly sequential, but the header is only final *after* the body
/// has streamed, so the header and body are hashed separately and
/// xor-combined; a single flipped byte in either region still changes
/// the composite.
fn compose_checksum(header_zeroed: &[u8], body_fnv: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.update(header_zeroed);
    h.finish() ^ body_fnv
}

/// Render the 32-byte header with the checksum field zeroed.
fn header_bytes_zeroed(key_bytes: u8, entries: u64) -> [u8; RUN_HEADER_BYTES] {
    let mut h = [0u8; RUN_HEADER_BYTES];
    h[0..8].copy_from_slice(&RUN_MAGIC);
    h[8..10].copy_from_slice(&RUN_VERSION.to_le_bytes());
    h[10] = key_bytes;
    // bytes 11..16 stay zero (reserved)
    h[16..24].copy_from_slice(&entries.to_le_bytes());
    // bytes 24..32: checksum, zeroed here
    h
}

/// Streaming writer of one sorted run. Entries must arrive strictly
/// ascending (the producer is `CountAcc::finalize`, which guarantees
/// it); violations panic rather than writing an unmergeable file.
#[derive(Debug)]
pub struct RunWriter<K: SpillKey> {
    file: File,
    path: PathBuf,
    buf: SpillBuffer,
    body_hash: Fnv1a,
    entries: u64,
    bytes_written: u64,
    last: Option<K>,
}

impl<K: SpillKey> RunWriter<K> {
    /// Create `path` and write the placeholder header. `buf_cap` bounds
    /// the staging buffer.
    pub fn create(path: &Path, buf_cap: usize) -> Result<RunWriter<K>, SpillError> {
        let mut file = File::create(path).map_err(|e| io_err(path, e))?;
        // Placeholder header; entry count and checksum are patched by
        // `finish` once they are known.
        let header = header_bytes_zeroed(K::KEY_BYTES as u8, 0);
        file.write_all(&header).map_err(|e| io_err(path, e))?;
        Ok(RunWriter {
            file,
            path: path.to_path_buf(),
            buf: SpillBuffer::new(buf_cap),
            body_hash: Fnv1a::new(),
            entries: 0,
            bytes_written: 0,
            last: None,
        })
    }

    /// Append one `(key, count)` entry; keys must strictly ascend.
    pub fn push(&mut self, key: K, count: u32) -> Result<(), SpillError> {
        assert!(self.last.is_none_or(|prev| prev < key), "run entries must be strictly ascending");
        self.last = Some(key);
        if self.buf.data.len() + entry_bytes::<K>() > self.buf.cap {
            self.flush()?;
        }
        let at = self.buf.data.len();
        self.buf.data.resize(at + entry_bytes::<K>(), 0);
        key.write_le(&mut self.buf.data[at..]);
        self.buf.data[at + K::KEY_BYTES..at + K::KEY_BYTES + 4]
            .copy_from_slice(&count.to_le_bytes());
        self.entries += 1;
        Ok(())
    }

    /// Flush the staging buffer, hashing the bytes on the way out.
    fn flush(&mut self) -> Result<(), SpillError> {
        if self.buf.data.is_empty() {
            return Ok(());
        }
        self.body_hash.update(&self.buf.data);
        self.file.write_all(&self.buf.data).map_err(|e| io_err(&self.path, e))?;
        self.bytes_written += self.buf.data.len() as u64;
        self.buf.data.clear();
        Ok(())
    }

    /// Flush the tail, patch the real header (entry count + composite
    /// checksum), and return the run's metadata.
    pub fn finish(mut self) -> Result<RunMeta, SpillError> {
        self.flush()?;
        let mut header = header_bytes_zeroed(K::KEY_BYTES as u8, self.entries);
        let checksum = compose_checksum(&header, self.body_hash.finish());
        header[24..32].copy_from_slice(&checksum.to_le_bytes());
        self.file.seek(SeekFrom::Start(0)).map_err(|e| io_err(&self.path, e))?;
        self.file.write_all(&header).map_err(|e| io_err(&self.path, e))?;
        self.file.flush().map_err(|e| io_err(&self.path, e))?;
        Ok(RunMeta {
            entries: self.entries,
            file_bytes: RUN_HEADER_BYTES as u64 + self.bytes_written,
            checksum,
        })
    }
}

/// Write `entries` (strictly ascending, as `CountAcc::finalize`
/// produces) to `path` as one run file.
pub fn write_run<K: SpillKey>(
    path: &Path,
    entries: &[(K, u32)],
    buf_cap: usize,
) -> Result<RunMeta, SpillError> {
    let mut w = RunWriter::create(path, buf_cap)?;
    for &(k, c) in entries {
        w.push(k, c)?;
    }
    w.finish()
}

/// Streaming reader of one run file. `open` fully verifies the file —
/// header fields, exact length, and the composite checksum via one
/// bounded streaming pass — before the first entry is served, so a
/// merge over open readers can never adopt corrupt counts.
#[derive(Debug)]
pub struct RunReader<K: SpillKey> {
    file: File,
    path: PathBuf,
    buf: SpillBuffer,
    /// Consumed prefix of `buf.data`.
    pos: usize,
    entries: u64,
    served: u64,
    last: Option<K>,
}

impl<K: SpillKey> RunReader<K> {
    /// Open and verify `path`. Every corruption mode is a typed error
    /// here, before any entry is visible.
    pub fn open(path: &Path, buf_cap: usize) -> Result<RunReader<K>, SpillError> {
        let mut file = File::open(path).map_err(|e| io_err(path, e))?;
        let file_len = file.metadata().map_err(|e| io_err(path, e))?.len();
        let mut header = [0u8; RUN_HEADER_BYTES];
        if file_len < RUN_HEADER_BYTES as u64 {
            return Err(SpillError::Truncated {
                path: path.to_path_buf(),
                expected_bytes: RUN_HEADER_BYTES as u64,
                actual_bytes: file_len,
            });
        }
        file.read_exact(&mut header).map_err(|e| io_err(path, e))?;
        if header[0..8] != RUN_MAGIC {
            return Err(SpillError::BadMagic { path: path.to_path_buf() });
        }
        let version = u16::from_le_bytes(header[8..10].try_into().unwrap());
        if version != RUN_VERSION {
            return Err(SpillError::VersionSkew { path: path.to_path_buf(), found: version });
        }
        let key_bytes = header[10];
        if key_bytes as usize != K::KEY_BYTES {
            return Err(SpillError::KeyWidth {
                path: path.to_path_buf(),
                found: key_bytes,
                expected: K::KEY_BYTES as u8,
            });
        }
        let entries = u64::from_le_bytes(header[16..24].try_into().unwrap());
        let stored = u64::from_le_bytes(header[24..32].try_into().unwrap());
        // A corrupted count can be astronomically large; checked math
        // turns that into the same typed truncation a short file gets.
        let expected_len = entries
            .checked_mul(entry_bytes::<K>() as u64)
            .and_then(|b| b.checked_add(RUN_HEADER_BYTES as u64))
            .unwrap_or(u64::MAX);
        if file_len != expected_len {
            return Err(SpillError::Truncated {
                path: path.to_path_buf(),
                expected_bytes: expected_len,
                actual_bytes: file_len,
            });
        }
        let body_bytes = expected_len - RUN_HEADER_BYTES as u64;
        // Full-body verification pass through the bounded buffer, then
        // rewind to the body start for streaming decode.
        let mut buf = SpillBuffer::new(buf_cap);
        buf.data.resize(buf.cap, 0);
        let mut body_hash = Fnv1a::new();
        let mut remaining = body_bytes;
        while remaining > 0 {
            let want = (buf.cap as u64).min(remaining) as usize;
            file.read_exact(&mut buf.data[..want]).map_err(|e| io_err(path, e))?;
            body_hash.update(&buf.data[..want]);
            remaining -= want as u64;
        }
        let mut zeroed = header;
        zeroed[24..32].fill(0);
        let actual = compose_checksum(&zeroed, body_hash.finish());
        if actual != stored {
            return Err(SpillError::Checksum {
                path: path.to_path_buf(),
                expected: stored,
                actual,
            });
        }
        file.seek(SeekFrom::Start(RUN_HEADER_BYTES as u64)).map_err(|e| io_err(path, e))?;
        buf.data.clear();
        Ok(RunReader {
            file,
            path: path.to_path_buf(),
            buf,
            pos: 0,
            entries,
            served: 0,
            last: None,
        })
    }

    /// Distinct keys in the run.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Next `(key, count)` pair, `Ok(None)` at the end. Deliberately
    /// not `Iterator`: every pull can fail typed, and `Result<Option>`
    /// keeps `?` at the call sites instead of `Option<Result>` unwraps.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<(K, u32)>, SpillError> {
        if self.served == self.entries {
            return Ok(None);
        }
        let need = entry_bytes::<K>();
        if self.buf.data.len() - self.pos < need {
            // Refill: keep the undecoded tail, then read up to capacity.
            self.buf.data.drain(..self.pos);
            self.pos = 0;
            let have = self.buf.data.len();
            let want_total = ((self.entries - self.served) as usize)
                .saturating_mul(need)
                .min(self.buf.cap)
                .max(need);
            self.buf.data.resize(want_total, 0);
            self.file
                .read_exact(&mut self.buf.data[have..want_total])
                .map_err(|e| io_err(&self.path, e))?;
        }
        let at = self.pos;
        let key = K::read_le(&self.buf.data[at..]);
        let count =
            u32::from_le_bytes(self.buf.data[at + K::KEY_BYTES..at + need].try_into().unwrap());
        self.pos += need;
        self.served += 1;
        if self.last.is_some_and(|prev| prev >= key) {
            return Err(SpillError::OutOfOrder { path: self.path.clone(), entry: self.served - 1 });
        }
        self.last = Some(key);
        Ok(Some((key, count)))
    }
}

/// Loser-tree k-way merge over open [`RunReader`]s with streaming
/// saturating-count folding of equal keys and prune-on-merge: only keys
/// whose folded count reaches `threshold` are emitted. The output is a
/// strictly-ascending survivor stream — exactly what `flat` bulk loads
/// want.
///
/// The loser tree keeps each non-winner comparison cached: replacing
/// the winner's leaf replays one root path (`⌈log2 k⌉` comparisons)
/// instead of re-scanning all k heads, the textbook structure for
/// external merge sort.
pub struct RunMerger<K: SpillKey> {
    readers: Vec<RunReader<K>>,
    /// Current head entry per run; `None` = exhausted.
    heads: Vec<Option<(K, u32)>>,
    /// `tree[0]` is the overall winner leaf; `tree[1..k]` hold the
    /// losers of each internal match. `usize::MAX` marks an unplayed
    /// slot during construction.
    tree: Vec<usize>,
    threshold: u32,
    /// Keys folded (pre-prune) — diagnostics for the build report.
    pub keys_merged: u64,
    /// Keys emitted (post-prune).
    pub keys_emitted: u64,
}

impl<K: SpillKey> RunMerger<K> {
    /// Build the tree over `readers` (already open, hence already
    /// verified); `threshold` is the Step-III prune bound applied
    /// during the merge.
    pub fn new(mut readers: Vec<RunReader<K>>, threshold: u32) -> Result<RunMerger<K>, SpillError> {
        let k = readers.len();
        let mut heads = Vec::with_capacity(k);
        for r in readers.iter_mut() {
            heads.push(r.next()?);
        }
        let mut m = RunMerger {
            readers,
            heads,
            tree: vec![usize::MAX; k.max(1)],
            threshold,
            keys_merged: 0,
            keys_emitted: 0,
        };
        for leaf in 0..k {
            m.seed(leaf);
        }
        Ok(m)
    }

    /// True when leaf `a`'s head orders before leaf `b`'s (exhausted
    /// runs order last; ties break on leaf index for determinism).
    fn beats(&self, a: usize, b: usize) -> bool {
        match (&self.heads[a], &self.heads[b]) {
            (Some((ka, _)), Some((kb, _))) => (ka, a) < (kb, b),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => a < b,
        }
    }

    /// Initial placement of `leaf`: climb toward the root, parking at
    /// the first unplayed slot, playing (and swapping with) occupants
    /// on the way. After all k leaves seed, the k−1 internal slots hold
    /// the losers and `tree[0]` the winner.
    fn seed(&mut self, leaf: usize) {
        let k = self.heads.len();
        let mut winner = leaf;
        let mut node = (leaf + k) / 2;
        loop {
            if node == 0 {
                self.tree[0] = winner;
                return;
            }
            if self.tree[node] == usize::MAX {
                self.tree[node] = winner;
                return;
            }
            if self.beats(self.tree[node], winner) {
                std::mem::swap(&mut self.tree[node], &mut winner);
            }
            node /= 2;
        }
    }

    /// Replace the winner's head (after consuming it) and replay its
    /// root path.
    fn replay(&mut self, leaf: usize) {
        let k = self.heads.len();
        let mut winner = leaf;
        let mut node = (leaf + k) / 2;
        while node > 0 {
            if self.beats(self.tree[node], winner) {
                std::mem::swap(&mut self.tree[node], &mut winner);
            }
            node /= 2;
        }
        self.tree[0] = winner;
    }

    /// Pop the globally smallest head, advancing its reader.
    fn pop_min(&mut self) -> Result<Option<(K, u32)>, SpillError> {
        if self.heads.is_empty() {
            return Ok(None);
        }
        let w = self.tree[0];
        let Some(entry) = self.heads[w] else {
            return Ok(None);
        };
        self.heads[w] = self.readers[w].next()?;
        self.replay(w);
        Ok(Some(entry))
    }

    /// Next merged `(key, count)` *before* pruning: equal keys across
    /// runs folded with a saturating add.
    fn next_raw(&mut self) -> Result<Option<(K, u32)>, SpillError> {
        let Some((key, mut count)) = self.pop_min()? else {
            return Ok(None);
        };
        while self.heads.get(self.tree[0]).and_then(|h| *h).is_some_and(|(k2, _)| k2 == key) {
            let (_, c2) = self.pop_min()?.expect("peeked head exists");
            count = count.saturating_add(c2);
        }
        self.keys_merged += 1;
        Ok(Some((key, count)))
    }

    /// Next surviving `(key, count)` pair — folded, then pruned at the
    /// threshold — or `Ok(None)` when every run is drained. Same
    /// fallible-pull shape as [`RunReader::next`], same reason it is
    /// not `Iterator`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<(K, u32)>, SpillError> {
        while let Some((key, count)) = self.next_raw()? {
            if count >= self.threshold {
                self.keys_emitted += 1;
                return Ok(Some((key, count)));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("specstore-spill-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn merge_all<K: SpillKey>(
        dir: &Path,
        names: &[&str],
        threshold: u32,
    ) -> Result<Vec<(K, u32)>, SpillError> {
        let readers = names
            .iter()
            .map(|n| RunReader::open(&dir.join(n), DEFAULT_SPILL_BUF_BYTES))
            .collect::<Result<Vec<_>, _>>()?;
        let mut m = RunMerger::new(readers, threshold)?;
        let mut out = Vec::new();
        while let Some(e) = m.next()? {
            out.push(e);
        }
        Ok(out)
    }

    #[test]
    fn roundtrip_both_key_widths() {
        let dir = tmpdir("roundtrip");
        // enough entries to cross several staging-buffer refills
        let entries: Vec<(u64, u32)> = (0..5000u64).map(|i| (i * 3, (i % 7 + 1) as u32)).collect();
        let meta = write_run(&dir.join("a.run"), &entries, MIN_SPILL_BUF_BYTES).unwrap();
        assert_eq!(meta.entries, 5000);
        assert_eq!(meta.file_bytes, RUN_HEADER_BYTES as u64 + 5000 * 12);
        let mut r: RunReader<u64> =
            RunReader::open(&dir.join("a.run"), MIN_SPILL_BUF_BYTES).unwrap();
        let mut got = Vec::new();
        while let Some(e) = r.next().unwrap() {
            got.push(e);
        }
        assert_eq!(got, entries);

        let wide: Vec<(u128, u32)> =
            (0..300u128).map(|i| (i << 70 | i, (i % 5 + 1) as u32)).collect();
        write_run(&dir.join("w.run"), &wide, DEFAULT_SPILL_BUF_BYTES).unwrap();
        let mut r: RunReader<u128> =
            RunReader::open(&dir.join("w.run"), DEFAULT_SPILL_BUF_BYTES).unwrap();
        let mut got = Vec::new();
        while let Some(e) = r.next().unwrap() {
            got.push(e);
        }
        assert_eq!(got, wide);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_width_mismatch_is_typed() {
        let dir = tmpdir("width");
        write_run::<u64>(&dir.join("a.run"), &[(1, 1)], MIN_SPILL_BUF_BYTES).unwrap();
        let err = RunReader::<u128>::open(&dir.join("a.run"), MIN_SPILL_BUF_BYTES).unwrap_err();
        assert!(matches!(err, SpillError::KeyWidth { found: 8, expected: 16, .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_folds_duplicates_saturates_and_prunes_exactly() {
        let dir = tmpdir("merge");
        // Key 10 appears in all three runs (2+1+1 = 4 ≥ 3 survives);
        // key 20 in two runs (1+1 < 3 pruned); key 30 folds to exactly
        // the threshold (2+1 = 3 survives — the boundary case); key 40
        // saturates at the cap instead of wrapping.
        write_run::<u64>(
            &dir.join("r0.run"),
            &[(10, 2), (20, 1), (30, 2), (40, u32::MAX - 1)],
            MIN_SPILL_BUF_BYTES,
        )
        .unwrap();
        write_run::<u64>(&dir.join("r1.run"), &[(10, 1), (20, 1), (40, 5)], MIN_SPILL_BUF_BYTES)
            .unwrap();
        write_run::<u64>(&dir.join("r2.run"), &[(10, 1), (30, 1), (50, 3)], MIN_SPILL_BUF_BYTES)
            .unwrap();
        let got = merge_all::<u64>(&dir, &["r0.run", "r1.run", "r2.run"], 3).unwrap();
        assert_eq!(got, vec![(10, 4), (30, 3), (40, u32::MAX), (50, 3)]);
        // threshold 1 keeps everything, folded
        let all = merge_all::<u64>(&dir, &["r0.run", "r1.run", "r2.run"], 1).unwrap();
        assert_eq!(all, vec![(10, 4), (20, 2), (30, 3), (40, u32::MAX), (50, 3)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_handles_empty_runs_and_single_run() {
        let dir = tmpdir("empty");
        write_run::<u64>(&dir.join("e.run"), &[], MIN_SPILL_BUF_BYTES).unwrap();
        write_run::<u64>(&dir.join("a.run"), &[(5, 2), (6, 1)], MIN_SPILL_BUF_BYTES).unwrap();
        assert_eq!(merge_all::<u64>(&dir, &["e.run"], 1).unwrap(), vec![]);
        assert_eq!(merge_all::<u64>(&dir, &["e.run", "a.run"], 2).unwrap(), vec![(5, 2)]);
        assert_eq!(merge_all::<u64>(&dir, &["a.run"], 1).unwrap(), vec![(5, 2), (6, 1)]);
        // zero runs: an empty merger is legal and immediately dry
        let mut m = RunMerger::<u64>::new(Vec::new(), 1).unwrap();
        assert!(m.next().unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_is_deterministic_across_many_runs() {
        // 9 runs with heavy cross-run overlap: folded output must equal
        // a reference two-pointer fold of the concatenated entries.
        let dir = tmpdir("many");
        let mut reference = std::collections::BTreeMap::<u64, u32>::new();
        let mut names = Vec::new();
        for r in 0..9u64 {
            let entries: Vec<(u64, u32)> = (0..200u64)
                .filter(|i| (i + r) % 3 != 0)
                .map(|i| (i * 2, ((i + r) % 4 + 1) as u32))
                .collect();
            for &(k, c) in &entries {
                let e = reference.entry(k).or_insert(0);
                *e = e.saturating_add(c);
            }
            let name = format!("m{r}.run");
            write_run(&dir.join(&name), &entries, MIN_SPILL_BUF_BYTES).unwrap();
            names.push(name);
        }
        let names: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let got = merge_all::<u64>(&dir, &names, 4).unwrap();
        let want: Vec<(u64, u32)> = reference.into_iter().filter(|&(_, c)| c >= 4).collect();
        assert_eq!(got, want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chop_is_typed_truncation() {
        let dir = tmpdir("chop");
        let entries: Vec<(u64, u32)> = (0..100u64).map(|i| (i, 1)).collect();
        let meta = write_run(&dir.join("a.run"), &entries, MIN_SPILL_BUF_BYTES).unwrap();
        for keep in
            [0u64, RUN_HEADER_BYTES as u64 / 2, RUN_HEADER_BYTES as u64, meta.file_bytes - 1]
        {
            let path = dir.join(format!("chop{keep}.run"));
            std::fs::copy(dir.join("a.run"), &path).unwrap();
            let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(keep).unwrap();
            let err = RunReader::<u64>::open(&path, MIN_SPILL_BUF_BYTES).unwrap_err();
            assert!(matches!(err, SpillError::Truncated { .. }), "keep={keep}: {err}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let dir = tmpdir("flip");
        let entries: Vec<(u64, u32)> = (0..40u64).map(|i| (i * 7, (i % 3 + 1) as u32)).collect();
        write_run(&dir.join("a.run"), &entries, MIN_SPILL_BUF_BYTES).unwrap();
        let clean = std::fs::read(dir.join("a.run")).unwrap();
        for at in 0..clean.len() {
            // every byte is covered: magic/version/width/pad/count via
            // the header checksum or their own typed checks, body via
            // the body checksum
            let mut bad = clean.clone();
            bad[at] ^= 0x40;
            let path = dir.join("bad.run");
            std::fs::write(&path, &bad).unwrap();
            let err = RunReader::<u64>::open(&path, MIN_SPILL_BUF_BYTES);
            assert!(err.is_err(), "flip at byte {at} accepted");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
