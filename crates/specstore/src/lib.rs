//! `specstore`: a versioned, sharded on-disk snapshot format for pruned
//! Reptile spectrums.
//!
//! The k-mer/tile spectrum is the expensive, memory-dominant artifact of
//! the whole pipeline — the paper's Steps II–III exist to build it — yet
//! it depends only on the input read set and the build configuration,
//! not on the reads being corrected. This crate persists a built
//! spectrum so later runs skip construction entirely: build once,
//! correct many (the same shape as RECKONER serving corrections out of a
//! prebuilt KMC database).
//!
//! A snapshot directory holds one shard file per `(rank, table-kind)`
//! plus a [`Manifest`]. A shard is a verbatim little-endian dump of the
//! flat table's slot arrays behind a fixed-size checksummed header (see
//! [`format`] for the byte layout), so loading at the same rank count is
//! zero-copy in the only sense that matters for a hash table: the slot
//! arrays are decoded once and adopted *probe-ready* — no rehash, no
//! re-insertion — via `FlatKmerTable::from_mapped_parts`. Loading at a
//! different rank count re-owns entries through the caller's exchange
//! path (`reptile-dist` wires this up).
//!
//! Corruption is first-class: truncation, bad magic, version skew,
//! checksum mismatch, and config-fingerprint mismatch each surface as a
//! distinct [`SnapshotError`] variant, and the checksum is verified
//! before any table is adopted — a damaged snapshot can never produce
//! garbage corrections.
//!
//! Since format v2 a snapshot can also carry `m` Reed-Solomon parity
//! shards per table kind ([`rs`]), and corruption stops being fatal:
//! under [`RecoveryPolicy::Repair`] a [`SnapshotReader`] reconstructs
//! up to `m` lost/truncated/bit-rotted shards per group at load time,
//! re-verifies the rebuilt bytes against the manifest checksum, and can
//! heal the snapshot in place. All snapshot I/O goes through the
//! [`SnapshotWriter`] / [`SnapshotReader`] handles in [`store`]; the
//! per-file read/write functions are crate-internal.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod format;
pub mod manifest;
pub mod rs;
pub(crate) mod shard;
pub mod spill;
pub mod store;

pub use checksum::{fnv1a, Fnv1a};
pub use format::{
    ConfigFingerprint, ShardHeader, ShardKind, SnapshotError, FORMAT_VERSION, HEADER_BYTES, MAGIC,
    MIN_FORMAT_VERSION,
};
pub use manifest::{Manifest, ParityRecord, ShardRecord, MANIFEST_NAME};
pub use rs::{RsCode, RsError};
pub use shard::{LoadedShard, IO_CHUNK};
pub use spill::{
    write_run, RunMerger, RunMeta, RunReader, RunWriter, SpillBuffer, SpillError, SpillKey,
    DEFAULT_SPILL_BUF_BYTES,
};
pub use store::{RecoveryPolicy, RepairStats, SnapshotReader, SnapshotWriter};
