//! The manifest file tying a shard set together.
//!
//! A snapshot directory holds one `MANIFEST.txt` plus one shard file per
//! `(rank, table-kind)`. The manifest is deliberately line-based text —
//! inspectable with `cat`, diffable in CI artifacts — and records the
//! same config fingerprint as every shard header, so a loader can reject
//! a mismatched snapshot before opening a single shard:
//!
//! ```text
//! reptile-specstore v1
//! np=4
//! k=12
//! tile_overlap=6
//! canonical=0
//! kmer_threshold=3
//! tile_threshold=3
//! hash_seed=3c92c522e975bab2
//! shard=0 kmer rank00000.kmer.shard 16484 9f3a...
//! shard=0 tile rank00000.tile.shard 27204 11bc...
//! ...
//! ```

use std::path::{Path, PathBuf};

use crate::format::{ConfigFingerprint, ShardKind, SnapshotError, FORMAT_VERSION};

/// Manifest file name inside a snapshot directory.
pub const MANIFEST_NAME: &str = "MANIFEST.txt";

/// One shard's entry in the manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardRecord {
    /// Producing rank.
    pub rank: usize,
    /// Table variant.
    pub kind: ShardKind,
    /// File name relative to the snapshot directory.
    pub file_name: String,
    /// Total file size (header + body).
    pub bytes: u64,
    /// The shard's header checksum, duplicated for quick inventory
    /// checks without opening the shard.
    pub checksum: u64,
}

/// The parsed (or to-be-written) manifest of a snapshot directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Rank count the snapshot was built at.
    pub np: usize,
    /// Build configuration shared by every shard.
    pub fingerprint: ConfigFingerprint,
    /// All shards, in `(rank, kind)` order.
    pub shards: Vec<ShardRecord>,
}

impl Manifest {
    /// Path of the manifest inside `dir`.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_NAME)
    }

    /// Serialize to the line format.
    pub fn render(&self) -> String {
        let fp = &self.fingerprint;
        let mut out = format!(
            "reptile-specstore v{FORMAT_VERSION}\n\
             np={}\n\
             k={}\n\
             tile_overlap={}\n\
             canonical={}\n\
             kmer_threshold={}\n\
             tile_threshold={}\n\
             hash_seed={:016x}\n",
            self.np,
            fp.k,
            fp.tile_overlap,
            fp.canonical as u32,
            fp.kmer_threshold,
            fp.tile_threshold,
            fp.hash_seed,
        );
        for s in &self.shards {
            out.push_str(&format!(
                "shard={} {} {} {} {:016x}\n",
                s.rank, s.kind, s.file_name, s.bytes, s.checksum
            ));
        }
        out
    }

    /// Write `MANIFEST.txt` into `dir`; returns the bytes written.
    pub fn write(&self, dir: &Path) -> Result<u64, SnapshotError> {
        let path = Manifest::path_in(dir);
        let text = self.render();
        std::fs::write(&path, &text).map_err(|e| SnapshotError::io(&path, e))?;
        Ok(text.len() as u64)
    }

    /// Read and parse `dir/MANIFEST.txt`.
    pub fn read(dir: &Path) -> Result<Manifest, SnapshotError> {
        let path = Manifest::path_in(dir);
        let text = std::fs::read_to_string(&path).map_err(|e| SnapshotError::io(&path, e))?;
        Manifest::parse(&text, &path)
    }

    /// Parse the line format (`path` only names errors).
    pub fn parse(text: &str, path: &Path) -> Result<Manifest, SnapshotError> {
        let err = |line: usize, reason: String| SnapshotError::Manifest {
            path: path.to_path_buf(),
            line,
            reason,
        };
        let mut lines = text.lines().enumerate();
        let (_, first) = lines.next().ok_or_else(|| err(0, "empty manifest".into()))?;
        let expected_banner = format!("reptile-specstore v{FORMAT_VERSION}");
        if first != expected_banner {
            // Distinguish "not a manifest" from "a manifest of another
            // version" for the same reasons the shard header does.
            if let Some(v) = first.strip_prefix("reptile-specstore v") {
                if let Ok(found) = v.parse::<u32>() {
                    return Err(SnapshotError::VersionSkew {
                        path: path.to_path_buf(),
                        found,
                        expected: FORMAT_VERSION,
                    });
                }
            }
            return Err(SnapshotError::BadMagic { path: path.to_path_buf() });
        }
        let mut np = None;
        let mut k = None;
        let mut tile_overlap = None;
        let mut canonical = None;
        let mut kmer_threshold = None;
        let mut tile_threshold = None;
        let mut hash_seed = None;
        let mut shards = Vec::new();
        for (idx, line) in lines {
            let lineno = idx + 1;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(lineno, format!("expected key=value, got {line:?}")))?;
            let parse_u64 = |v: &str| {
                v.parse::<u64>().map_err(|_| err(lineno, format!("bad number {v:?} for {key}")))
            };
            match key {
                "np" => np = Some(parse_u64(value)? as usize),
                "k" => k = Some(parse_u64(value)? as u32),
                "tile_overlap" => tile_overlap = Some(parse_u64(value)? as u32),
                "canonical" => canonical = Some(parse_u64(value)? != 0),
                "kmer_threshold" => kmer_threshold = Some(parse_u64(value)? as u32),
                "tile_threshold" => tile_threshold = Some(parse_u64(value)? as u32),
                "hash_seed" => {
                    hash_seed = Some(
                        u64::from_str_radix(value, 16)
                            .map_err(|_| err(lineno, format!("bad hex {value:?} for hash_seed")))?,
                    )
                }
                "shard" => {
                    let fields: Vec<&str> = value.split_whitespace().collect();
                    if fields.len() != 5 {
                        return Err(err(
                            lineno,
                            format!("shard line needs 5 fields, got {}", fields.len()),
                        ));
                    }
                    let rank = fields[0]
                        .parse::<usize>()
                        .map_err(|_| err(lineno, format!("bad shard rank {:?}", fields[0])))?;
                    let kind = match fields[1] {
                        "kmer" => ShardKind::Kmer,
                        "tile" => ShardKind::Tile,
                        other => return Err(err(lineno, format!("unknown shard kind {other:?}"))),
                    };
                    let bytes = fields[3]
                        .parse::<u64>()
                        .map_err(|_| err(lineno, format!("bad shard size {:?}", fields[3])))?;
                    let checksum = u64::from_str_radix(fields[4], 16)
                        .map_err(|_| err(lineno, format!("bad checksum {:?}", fields[4])))?;
                    shards.push(ShardRecord {
                        rank,
                        kind,
                        file_name: fields[2].to_string(),
                        bytes,
                        checksum,
                    });
                }
                other => return Err(err(lineno, format!("unknown key {other:?}"))),
            }
        }
        let missing = |name: &str| err(0, format!("missing {name}= line"));
        let manifest = Manifest {
            np: np.ok_or_else(|| missing("np"))?,
            fingerprint: ConfigFingerprint {
                k: k.ok_or_else(|| missing("k"))?,
                tile_overlap: tile_overlap.ok_or_else(|| missing("tile_overlap"))?,
                canonical: canonical.ok_or_else(|| missing("canonical"))?,
                kmer_threshold: kmer_threshold.ok_or_else(|| missing("kmer_threshold"))?,
                tile_threshold: tile_threshold.ok_or_else(|| missing("tile_threshold"))?,
                hash_seed: hash_seed.ok_or_else(|| missing("hash_seed"))?,
            },
            shards,
        };
        if manifest.np == 0 {
            return Err(err(0, "np must be positive".into()));
        }
        for kind in [ShardKind::Kmer, ShardKind::Tile] {
            for rank in 0..manifest.np {
                if !manifest.shards.iter().any(|s| s.rank == rank && s.kind == kind) {
                    return Err(err(0, format!("no {kind} shard listed for rank {rank}")));
                }
            }
        }
        Ok(manifest)
    }

    /// The shard record for `(rank, kind)` (the parser guarantees one
    /// exists for every rank below `np`).
    pub fn shard(&self, rank: usize, kind: ShardKind) -> Option<&ShardRecord> {
        self.shards.iter().find(|s| s.rank == rank && s.kind == kind)
    }

    /// Verify the fingerprint matches `expected`, naming the first
    /// differing field (same check a shard header performs, applied
    /// before any shard is opened).
    pub fn check_fingerprint(
        &self,
        expected: &ConfigFingerprint,
        dir: &Path,
    ) -> Result<(), SnapshotError> {
        let path = Manifest::path_in(dir);
        let stored = &self.fingerprint;
        let fields: [(&'static str, u64, u64); 6] = [
            ("k", stored.k as u64, expected.k as u64),
            ("tile_overlap", stored.tile_overlap as u64, expected.tile_overlap as u64),
            ("canonical", stored.canonical as u64, expected.canonical as u64),
            ("kmer_threshold", stored.kmer_threshold as u64, expected.kmer_threshold as u64),
            ("tile_threshold", stored.tile_threshold as u64, expected.tile_threshold as u64),
            ("hash_seed", stored.hash_seed, expected.hash_seed),
        ];
        for (field, got, want) in fields {
            if got != want {
                return Err(SnapshotError::FingerprintMismatch {
                    path,
                    field,
                    stored: got,
                    expected: want,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reptile::HASH_SEED;
    use std::path::Path;

    fn manifest() -> Manifest {
        Manifest {
            np: 2,
            fingerprint: ConfigFingerprint {
                k: 8,
                tile_overlap: 4,
                canonical: false,
                kmer_threshold: 2,
                tile_threshold: 2,
                hash_seed: HASH_SEED,
            },
            shards: vec![
                ShardRecord {
                    rank: 0,
                    kind: ShardKind::Kmer,
                    file_name: "rank00000.kmer.shard".into(),
                    bytes: 1234,
                    checksum: 0xabc,
                },
                ShardRecord {
                    rank: 0,
                    kind: ShardKind::Tile,
                    file_name: "rank00000.tile.shard".into(),
                    bytes: 2345,
                    checksum: 0xdef,
                },
                ShardRecord {
                    rank: 1,
                    kind: ShardKind::Kmer,
                    file_name: "rank00001.kmer.shard".into(),
                    bytes: 3456,
                    checksum: 0x123,
                },
                ShardRecord {
                    rank: 1,
                    kind: ShardKind::Tile,
                    file_name: "rank00001.tile.shard".into(),
                    bytes: 4567,
                    checksum: 0x456,
                },
            ],
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let m = manifest();
        let parsed = Manifest::parse(&m.render(), Path::new("M")).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.shard(1, ShardKind::Tile).unwrap().bytes, 4567);
        assert!(parsed.shard(2, ShardKind::Kmer).is_none());
    }

    #[test]
    fn malformed_lines_are_typed() {
        let m = manifest();
        // wrong banner
        assert!(matches!(
            Manifest::parse("not a manifest\n", Path::new("M")),
            Err(SnapshotError::BadMagic { .. })
        ));
        // future version
        assert!(matches!(
            Manifest::parse("reptile-specstore v9\n", Path::new("M")),
            Err(SnapshotError::VersionSkew { found: 9, .. })
        ));
        // missing shard for a rank
        let mut short = m.clone();
        short.shards.pop();
        assert!(matches!(
            Manifest::parse(&short.render(), Path::new("M")),
            Err(SnapshotError::Manifest { .. })
        ));
        // garbage value
        let bad = m.render().replace("np=2", "np=two");
        assert!(matches!(
            Manifest::parse(&bad, Path::new("M")),
            Err(SnapshotError::Manifest { .. })
        ));
    }

    #[test]
    fn fingerprint_check_names_field() {
        let m = manifest();
        let mut want = m.fingerprint;
        want.canonical = true;
        assert!(matches!(
            m.check_fingerprint(&want, Path::new(".")),
            Err(SnapshotError::FingerprintMismatch { field: "canonical", .. })
        ));
        assert!(m.check_fingerprint(&m.fingerprint, Path::new(".")).is_ok());
    }

    #[test]
    fn write_read_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join(format!("specstore-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m = manifest();
        let bytes = m.write(&dir).unwrap();
        assert!(bytes > 0);
        assert_eq!(Manifest::read(&dir).unwrap(), m);
        std::fs::remove_dir_all(&dir).ok();
    }
}
