//! The manifest file tying a shard set together.
//!
//! A snapshot directory holds one `MANIFEST.txt` plus one shard file per
//! `(rank, table-kind)`. The manifest is deliberately line-based text —
//! inspectable with `cat`, diffable in CI artifacts — and records the
//! same config fingerprint as every shard header, so a loader can reject
//! a mismatched snapshot before opening a single shard:
//!
//! ```text
//! reptile-specstore v2
//! np=4
//! k=12
//! tile_overlap=6
//! canonical=0
//! kmer_threshold=3
//! tile_threshold=3
//! hash_seed=3c92c522e975bab2
//! parity=2
//! shard=0 kmer rank00000.kmer.shard 16484 9f3a...
//! shard=0 tile rank00000.tile.shard 27204 11bc...
//! ...
//! pshard=kmer 0 kmer.p00.parity 16484 77d1...
//! pshard=tile 1 tile.p01.parity 27204 0b2e...
//! ```
//!
//! v2 added the `parity=` count and `pshard=` records (Reed-Solomon
//! parity over each table kind's shard group, see [`crate::rs`]); v1
//! manifests parse as `parity=0`. Data `shard=` checksums are the shard
//! header's FNV-1a digest; `pshard=` checksums are a plain FNV-1a over
//! the whole (headerless) parity file.

use std::path::{Path, PathBuf};

use crate::format::{
    ConfigFingerprint, ShardKind, SnapshotError, FORMAT_VERSION, MIN_FORMAT_VERSION,
};

/// Manifest file name inside a snapshot directory.
pub const MANIFEST_NAME: &str = "MANIFEST.txt";

/// One shard's entry in the manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardRecord {
    /// Producing rank.
    pub rank: usize,
    /// Table variant.
    pub kind: ShardKind,
    /// File name relative to the snapshot directory.
    pub file_name: String,
    /// Total file size (header + body).
    pub bytes: u64,
    /// The shard's header checksum, duplicated for quick inventory
    /// checks without opening the shard.
    pub checksum: u64,
}

impl ShardRecord {
    /// Build a record for `(rank, kind)` with the canonical shard file
    /// name — how a distributed save reconstitutes records gathered as
    /// plain `(rank, kind, bytes, checksum)` tuples without every rank
    /// having to know the layout's naming scheme.
    pub fn for_shard(rank: usize, kind: ShardKind, bytes: u64, checksum: u64) -> ShardRecord {
        ShardRecord {
            rank,
            kind,
            file_name: crate::shard::shard_file_name(rank, kind),
            bytes,
            checksum,
        }
    }
}

/// One parity shard's entry in the manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParityRecord {
    /// Table kind of the group this parity shard protects.
    pub kind: ShardKind,
    /// Parity row index, `0..parity`.
    pub index: usize,
    /// File name relative to the snapshot directory.
    pub file_name: String,
    /// File size: the group's stripe length (longest data shard).
    pub bytes: u64,
    /// FNV-1a over the whole parity file.
    pub checksum: u64,
}

/// The parsed (or to-be-written) manifest of a snapshot directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Rank count the snapshot was built at.
    pub np: usize,
    /// Build configuration shared by every shard.
    pub fingerprint: ConfigFingerprint,
    /// Parity shards per table kind (0 = no erasure coding).
    pub parity: usize,
    /// All data shards, in `(rank, kind)` order.
    pub shards: Vec<ShardRecord>,
    /// All parity shards, in `(kind, index)` order.
    pub parity_shards: Vec<ParityRecord>,
}

impl Manifest {
    /// Path of the manifest inside `dir`.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_NAME)
    }

    /// Serialize to the line format.
    pub fn render(&self) -> String {
        let fp = &self.fingerprint;
        let mut out = format!(
            "reptile-specstore v{FORMAT_VERSION}\n\
             np={}\n\
             k={}\n\
             tile_overlap={}\n\
             canonical={}\n\
             kmer_threshold={}\n\
             tile_threshold={}\n\
             hash_seed={:016x}\n",
            self.np,
            fp.k,
            fp.tile_overlap,
            fp.canonical as u32,
            fp.kmer_threshold,
            fp.tile_threshold,
            fp.hash_seed,
        );
        out.push_str(&format!("parity={}\n", self.parity));
        for s in &self.shards {
            out.push_str(&format!(
                "shard={} {} {} {} {:016x}\n",
                s.rank, s.kind, s.file_name, s.bytes, s.checksum
            ));
        }
        for p in &self.parity_shards {
            out.push_str(&format!(
                "pshard={} {} {} {} {:016x}\n",
                p.kind, p.index, p.file_name, p.bytes, p.checksum
            ));
        }
        out
    }

    /// Write `MANIFEST.txt` into `dir`; returns the bytes written.
    pub fn write(&self, dir: &Path) -> Result<u64, SnapshotError> {
        let path = Manifest::path_in(dir);
        let text = self.render();
        std::fs::write(&path, &text).map_err(|e| SnapshotError::io(&path, e))?;
        Ok(text.len() as u64)
    }

    /// Read and parse `dir/MANIFEST.txt`.
    pub fn read(dir: &Path) -> Result<Manifest, SnapshotError> {
        let path = Manifest::path_in(dir);
        let text = std::fs::read_to_string(&path).map_err(|e| SnapshotError::io(&path, e))?;
        Manifest::parse(&text, &path)
    }

    /// Parse the line format (`path` only names errors).
    pub fn parse(text: &str, path: &Path) -> Result<Manifest, SnapshotError> {
        let err = |line: usize, reason: String| SnapshotError::Manifest {
            path: path.to_path_buf(),
            line,
            reason,
        };
        let mut lines = text.lines().enumerate();
        let (_, first) = lines.next().ok_or_else(|| err(0, "empty manifest".into()))?;
        // Any banner version in the supported window parses; outside it
        // the manifest is distinguished from "not a manifest" for the
        // same reasons the shard header does.
        match first.strip_prefix("reptile-specstore v").and_then(|v| v.parse::<u32>().ok()) {
            Some(found) if (MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&found) => {}
            Some(found) => {
                return Err(SnapshotError::VersionSkew {
                    path: path.to_path_buf(),
                    found,
                    expected: FORMAT_VERSION,
                });
            }
            None => return Err(SnapshotError::BadMagic { path: path.to_path_buf() }),
        }
        let mut np = None;
        let mut k = None;
        let mut tile_overlap = None;
        let mut canonical = None;
        let mut kmer_threshold = None;
        let mut tile_threshold = None;
        let mut hash_seed = None;
        let mut parity = 0usize;
        let mut shards = Vec::new();
        let mut parity_shards: Vec<ParityRecord> = Vec::new();
        for (idx, line) in lines {
            let lineno = idx + 1;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(lineno, format!("expected key=value, got {line:?}")))?;
            let parse_u64 = |v: &str| {
                v.parse::<u64>().map_err(|_| err(lineno, format!("bad number {v:?} for {key}")))
            };
            match key {
                "np" => np = Some(parse_u64(value)? as usize),
                "k" => k = Some(parse_u64(value)? as u32),
                "tile_overlap" => tile_overlap = Some(parse_u64(value)? as u32),
                "canonical" => canonical = Some(parse_u64(value)? != 0),
                "kmer_threshold" => kmer_threshold = Some(parse_u64(value)? as u32),
                "tile_threshold" => tile_threshold = Some(parse_u64(value)? as u32),
                "hash_seed" => {
                    hash_seed = Some(
                        u64::from_str_radix(value, 16)
                            .map_err(|_| err(lineno, format!("bad hex {value:?} for hash_seed")))?,
                    )
                }
                "shard" => {
                    let fields: Vec<&str> = value.split_whitespace().collect();
                    if fields.len() != 5 {
                        return Err(err(
                            lineno,
                            format!("shard line needs 5 fields, got {}", fields.len()),
                        ));
                    }
                    let rank = fields[0]
                        .parse::<usize>()
                        .map_err(|_| err(lineno, format!("bad shard rank {:?}", fields[0])))?;
                    let kind = match fields[1] {
                        "kmer" => ShardKind::Kmer,
                        "tile" => ShardKind::Tile,
                        other => return Err(err(lineno, format!("unknown shard kind {other:?}"))),
                    };
                    let bytes = fields[3]
                        .parse::<u64>()
                        .map_err(|_| err(lineno, format!("bad shard size {:?}", fields[3])))?;
                    let checksum = u64::from_str_radix(fields[4], 16)
                        .map_err(|_| err(lineno, format!("bad checksum {:?}", fields[4])))?;
                    shards.push(ShardRecord {
                        rank,
                        kind,
                        file_name: fields[2].to_string(),
                        bytes,
                        checksum,
                    });
                }
                "parity" => parity = parse_u64(value)? as usize,
                "pshard" => {
                    let fields: Vec<&str> = value.split_whitespace().collect();
                    if fields.len() != 5 {
                        return Err(err(
                            lineno,
                            format!("pshard line needs 5 fields, got {}", fields.len()),
                        ));
                    }
                    let kind = match fields[0] {
                        "kmer" => ShardKind::Kmer,
                        "tile" => ShardKind::Tile,
                        other => return Err(err(lineno, format!("unknown shard kind {other:?}"))),
                    };
                    let index = fields[1]
                        .parse::<usize>()
                        .map_err(|_| err(lineno, format!("bad parity index {:?}", fields[1])))?;
                    let bytes = fields[3]
                        .parse::<u64>()
                        .map_err(|_| err(lineno, format!("bad parity size {:?}", fields[3])))?;
                    let checksum = u64::from_str_radix(fields[4], 16)
                        .map_err(|_| err(lineno, format!("bad checksum {:?}", fields[4])))?;
                    parity_shards.push(ParityRecord {
                        kind,
                        index,
                        file_name: fields[2].to_string(),
                        bytes,
                        checksum,
                    });
                }
                other => return Err(err(lineno, format!("unknown key {other:?}"))),
            }
        }
        let missing = |name: &str| err(0, format!("missing {name}= line"));
        let manifest = Manifest {
            np: np.ok_or_else(|| missing("np"))?,
            fingerprint: ConfigFingerprint {
                k: k.ok_or_else(|| missing("k"))?,
                tile_overlap: tile_overlap.ok_or_else(|| missing("tile_overlap"))?,
                canonical: canonical.ok_or_else(|| missing("canonical"))?,
                kmer_threshold: kmer_threshold.ok_or_else(|| missing("kmer_threshold"))?,
                tile_threshold: tile_threshold.ok_or_else(|| missing("tile_threshold"))?,
                hash_seed: hash_seed.ok_or_else(|| missing("hash_seed"))?,
            },
            parity,
            shards,
            parity_shards,
        };
        if manifest.np == 0 {
            return Err(err(0, "np must be positive".into()));
        }
        for kind in [ShardKind::Kmer, ShardKind::Tile] {
            for rank in 0..manifest.np {
                if !manifest.shards.iter().any(|s| s.rank == rank && s.kind == kind) {
                    return Err(err(0, format!("no {kind} shard listed for rank {rank}")));
                }
            }
            for index in 0..manifest.parity {
                if manifest.parity_shard(kind, index).is_none() {
                    return Err(err(0, format!("no {kind} parity shard listed for index {index}")));
                }
            }
        }
        if manifest.parity_shards.len() != 2 * manifest.parity {
            return Err(err(
                0,
                format!(
                    "parity={} implies {} pshard lines, found {}",
                    manifest.parity,
                    2 * manifest.parity,
                    manifest.parity_shards.len()
                ),
            ));
        }
        Ok(manifest)
    }

    /// The shard record for `(rank, kind)` (the parser guarantees one
    /// exists for every rank below `np`).
    pub fn shard(&self, rank: usize, kind: ShardKind) -> Option<&ShardRecord> {
        self.shards.iter().find(|s| s.rank == rank && s.kind == kind)
    }

    /// The parity record for `(kind, index)` (the parser guarantees one
    /// exists for every index below `parity`).
    pub fn parity_shard(&self, kind: ShardKind, index: usize) -> Option<&ParityRecord> {
        self.parity_shards.iter().find(|p| p.kind == kind && p.index == index)
    }

    /// Verify the fingerprint matches `expected`, naming the first
    /// differing field (same check a shard header performs, applied
    /// before any shard is opened).
    pub fn check_fingerprint(
        &self,
        expected: &ConfigFingerprint,
        dir: &Path,
    ) -> Result<(), SnapshotError> {
        let path = Manifest::path_in(dir);
        let stored = &self.fingerprint;
        let fields: [(&'static str, u64, u64); 6] = [
            ("k", stored.k as u64, expected.k as u64),
            ("tile_overlap", stored.tile_overlap as u64, expected.tile_overlap as u64),
            ("canonical", stored.canonical as u64, expected.canonical as u64),
            ("kmer_threshold", stored.kmer_threshold as u64, expected.kmer_threshold as u64),
            ("tile_threshold", stored.tile_threshold as u64, expected.tile_threshold as u64),
            ("hash_seed", stored.hash_seed, expected.hash_seed),
        ];
        for (field, got, want) in fields {
            if got != want {
                return Err(SnapshotError::FingerprintMismatch {
                    path,
                    field,
                    stored: got,
                    expected: want,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reptile::HASH_SEED;
    use std::path::Path;

    fn manifest() -> Manifest {
        Manifest {
            np: 2,
            fingerprint: ConfigFingerprint {
                k: 8,
                tile_overlap: 4,
                canonical: false,
                kmer_threshold: 2,
                tile_threshold: 2,
                hash_seed: HASH_SEED,
            },
            parity: 0,
            parity_shards: vec![],
            shards: vec![
                ShardRecord {
                    rank: 0,
                    kind: ShardKind::Kmer,
                    file_name: "rank00000.kmer.shard".into(),
                    bytes: 1234,
                    checksum: 0xabc,
                },
                ShardRecord {
                    rank: 0,
                    kind: ShardKind::Tile,
                    file_name: "rank00000.tile.shard".into(),
                    bytes: 2345,
                    checksum: 0xdef,
                },
                ShardRecord {
                    rank: 1,
                    kind: ShardKind::Kmer,
                    file_name: "rank00001.kmer.shard".into(),
                    bytes: 3456,
                    checksum: 0x123,
                },
                ShardRecord {
                    rank: 1,
                    kind: ShardKind::Tile,
                    file_name: "rank00001.tile.shard".into(),
                    bytes: 4567,
                    checksum: 0x456,
                },
            ],
        }
    }

    fn with_parity(mut m: Manifest, parity: usize) -> Manifest {
        m.parity = parity;
        for kind in [ShardKind::Kmer, ShardKind::Tile] {
            for index in 0..parity {
                m.parity_shards.push(ParityRecord {
                    kind,
                    index,
                    file_name: format!("{kind}.p{index:02}.parity"),
                    bytes: 4567,
                    checksum: 0x9a9a + index as u64,
                });
            }
        }
        m
    }

    #[test]
    fn render_parse_roundtrip() {
        let m = manifest();
        let parsed = Manifest::parse(&m.render(), Path::new("M")).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.shard(1, ShardKind::Tile).unwrap().bytes, 4567);
        assert!(parsed.shard(2, ShardKind::Kmer).is_none());
    }

    #[test]
    fn parity_records_roundtrip() {
        let m = with_parity(manifest(), 2);
        let parsed = Manifest::parse(&m.render(), Path::new("M")).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.parity_shard(ShardKind::Tile, 1).unwrap().checksum, 0x9a9b);
        assert!(parsed.parity_shard(ShardKind::Tile, 2).is_none());
    }

    #[test]
    fn v1_manifest_parses_as_parity_free() {
        // A v1 manifest: old banner, no parity= or pshard= lines.
        let m = manifest();
        let v1 = m
            .render()
            .replace("reptile-specstore v2", "reptile-specstore v1")
            .replace("parity=0\n", "");
        let parsed = Manifest::parse(&v1, Path::new("M")).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.parity, 0);
    }

    #[test]
    fn parity_count_and_coverage_must_agree() {
        // Missing pshard line for one kind.
        let mut m = with_parity(manifest(), 1);
        m.parity_shards.retain(|p| p.kind != ShardKind::Tile);
        assert!(matches!(
            Manifest::parse(&m.render(), Path::new("M")),
            Err(SnapshotError::Manifest { .. })
        ));
        // pshard lines present but parity=0.
        let mut m = with_parity(manifest(), 1);
        m.parity = 0;
        assert!(matches!(
            Manifest::parse(&m.render(), Path::new("M")),
            Err(SnapshotError::Manifest { .. })
        ));
    }

    #[test]
    fn malformed_lines_are_typed() {
        let m = manifest();
        // wrong banner
        assert!(matches!(
            Manifest::parse("not a manifest\n", Path::new("M")),
            Err(SnapshotError::BadMagic { .. })
        ));
        // future version
        assert!(matches!(
            Manifest::parse("reptile-specstore v9\n", Path::new("M")),
            Err(SnapshotError::VersionSkew { found: 9, .. })
        ));
        // missing shard for a rank
        let mut short = m.clone();
        short.shards.pop();
        assert!(matches!(
            Manifest::parse(&short.render(), Path::new("M")),
            Err(SnapshotError::Manifest { .. })
        ));
        // garbage value
        let bad = m.render().replace("np=2", "np=two");
        assert!(matches!(
            Manifest::parse(&bad, Path::new("M")),
            Err(SnapshotError::Manifest { .. })
        ));
    }

    #[test]
    fn fingerprint_check_names_field() {
        let m = manifest();
        let mut want = m.fingerprint;
        want.canonical = true;
        assert!(matches!(
            m.check_fingerprint(&want, Path::new(".")),
            Err(SnapshotError::FingerprintMismatch { field: "canonical", .. })
        ));
        assert!(m.check_fingerprint(&m.fingerprint, Path::new(".")).is_ok());
    }

    #[test]
    fn write_read_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join(format!("specstore-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m = manifest();
        let bytes = m.write(&dir).unwrap();
        assert!(bytes > 0);
        assert_eq!(Manifest::read(&dir).unwrap(), m);
        std::fs::remove_dir_all(&dir).ok();
    }
}
