//! Streaming FNV-1a 64 checksum.
//!
//! The shard writer hashes slot bytes as it streams them through its
//! reused buffer, so the checksum costs one pass over data that is being
//! written anyway. FNV-1a is not cryptographic — the threat model is
//! bit-rot and truncated writes, not an adversary — but it detects every
//! single-byte corruption (each input byte feeds a full 64-bit multiply),
//! which the proptest suite verifies flip by flip.

/// FNV-1a 64-bit offset basis.
const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64 hasher.
#[derive(Clone, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// Fresh hasher at the offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(OFFSET_BASIS)
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot digest of `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn any_single_byte_flip_changes_digest() {
        let data: Vec<u8> = (0..=255u8).collect();
        let base = fnv1a(&data);
        for i in 0..data.len() {
            let mut corrupt = data.clone();
            corrupt[i] ^= 0x01;
            assert_ne!(fnv1a(&corrupt), base, "flip at byte {i} undetected");
        }
    }
}
