//! Shard file I/O: stream a flat table's slot arrays to disk and adopt
//! them back as a ready-to-probe mapped table.
//!
//! The write path never materializes an intermediate full-table copy:
//! slot arrays stream through one reused `IO_CHUNK`-byte buffer (hashed
//! as they go), and the checksum is patched into the header afterwards
//! with a single seek. The read path decodes the body bytes into typed
//! slot vectors exactly once, verifies the checksum *before* adopting
//! anything, and then hands the arrays to `from_mapped_parts`, which
//! re-validates the geometry — a corrupted-but-checksummed file cannot
//! smuggle in an impossible table.
//!
//! Everything here is crate-internal: callers go through
//! [`crate::store::SnapshotWriter`] / [`crate::store::SnapshotReader`],
//! which own the directory layout, manifest, and repair pipeline. The
//! decode path is split file-vs-bytes so a Reed-Solomon-reconstructed
//! shard (which exists only in memory until an optional rewrite) adopts
//! through the same fully-verifying code as one read from disk.

use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write as _};
use std::path::Path;
use std::sync::Arc;

use reptile::{FlatKmerTable, FlatTileTable};

use crate::checksum::Fnv1a;
use crate::format::{
    ConfigFingerprint, ShardHeader, ShardKind, SnapshotError, CHECKSUM_OFFSET, FORMAT_VERSION,
    HEADER_BYTES,
};
use crate::manifest::ShardRecord;

/// Reused streaming-buffer size. Slot arrays are written and read in
/// chunks of at most this many bytes; the save-path assertion that the
/// buffer never grew past it is the "no intermediate full-table copy"
/// guarantee.
pub const IO_CHUNK: usize = 64 * 1024;

/// Canonical shard file name for `(rank, kind)`.
pub(crate) fn shard_file_name(rank: usize, kind: ShardKind) -> String {
    format!("rank{rank:05}.{kind}.shard")
}

/// Canonical parity file name for `(kind, parity index)`.
pub(crate) fn parity_file_name(kind: ShardKind, index: usize) -> String {
    format!("{kind}.p{index:02}.parity")
}

/// Streaming shard body writer: fills the reused buffer with
/// little-endian words, hashing and flushing whenever it reaches
/// `IO_CHUNK`.
struct BodyWriter<'a> {
    out: &'a mut BufWriter<File>,
    hash: &'a mut Fnv1a,
    buf: Vec<u8>,
    path: &'a Path,
}

impl<'a> BodyWriter<'a> {
    fn new(out: &'a mut BufWriter<File>, hash: &'a mut Fnv1a, path: &'a Path) -> BodyWriter<'a> {
        BodyWriter { out, hash, buf: Vec::with_capacity(IO_CHUNK), path }
    }

    fn flush_buf(&mut self) -> Result<(), SnapshotError> {
        self.hash.update(&self.buf);
        self.out.write_all(&self.buf).map_err(|e| SnapshotError::io(self.path, e))?;
        self.buf.clear();
        Ok(())
    }

    fn put_u64s(&mut self, words: &[u64]) -> Result<(), SnapshotError> {
        for &w in words {
            self.buf.extend_from_slice(&w.to_le_bytes());
            if self.buf.len() >= IO_CHUNK {
                self.flush_buf()?;
            }
        }
        Ok(())
    }

    fn put_u32s(&mut self, words: &[u32]) -> Result<(), SnapshotError> {
        for &w in words {
            self.buf.extend_from_slice(&w.to_le_bytes());
            if self.buf.len() >= IO_CHUNK {
                self.flush_buf()?;
            }
        }
        Ok(())
    }

    fn finish(mut self) -> Result<(), SnapshotError> {
        self.flush_buf()?;
        // No per-shard Vec allocations: the streaming buffer is the only
        // body-sized scratch space, and it never outgrows one chunk
        // (plus the ≤8-byte spill of the word that crossed the mark).
        debug_assert!(
            self.buf.capacity() <= IO_CHUNK + 8,
            "shard write must stream, not copy the table"
        );
        Ok(())
    }
}

/// Write the shard header (with the given checksum value) at the start
/// of the file.
fn write_header(
    out: &mut BufWriter<File>,
    header: &ShardHeader,
    path: &Path,
) -> Result<(), SnapshotError> {
    out.write_all(&header.encode()).map_err(|e| SnapshotError::io(path, e))
}

/// Finish a shard: compute the final digest, seek back, and patch the
/// checksum field.
fn patch_checksum(
    out: &mut BufWriter<File>,
    checksum: u64,
    path: &Path,
) -> Result<(), SnapshotError> {
    out.seek(SeekFrom::Start(CHECKSUM_OFFSET as u64)).map_err(|e| SnapshotError::io(path, e))?;
    out.write_all(&checksum.to_le_bytes()).map_err(|e| SnapshotError::io(path, e))?;
    out.flush().map_err(|e| SnapshotError::io(path, e))
}

/// Shared tail of both writers: given the checksum-zeroed header and a
/// body-streaming closure, produce the finished file and its record.
fn write_shard(
    path: &Path,
    mut header: ShardHeader,
    body: impl FnOnce(&mut BodyWriter<'_>) -> Result<(), SnapshotError>,
) -> Result<ShardRecord, SnapshotError> {
    header.checksum = 0;
    let file = File::create(path).map_err(|e| SnapshotError::io(path, e))?;
    let mut out = BufWriter::new(file);
    write_header(&mut out, &header, path)?;
    let mut hash = Fnv1a::new();
    hash.update(&header.encode());
    {
        let mut w = BodyWriter::new(&mut out, &mut hash, path);
        body(&mut w)?;
        w.finish()?;
    }
    let checksum = hash.finish();
    patch_checksum(&mut out, checksum, path)?;
    Ok(ShardRecord {
        rank: header.rank as usize,
        kind: header.kind,
        file_name: path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default(),
        bytes: HEADER_BYTES as u64 + header.body_bytes,
        checksum,
    })
}

/// Dump a k-mer table as a shard at `path`.
pub(crate) fn write_kmer_shard(
    path: &Path,
    fingerprint: &ConfigFingerprint,
    rank: usize,
    np: usize,
    table: &FlatKmerTable,
) -> Result<ShardRecord, SnapshotError> {
    let parts = table.raw_parts();
    let header = ShardHeader {
        version: FORMAT_VERSION,
        kind: ShardKind::Kmer,
        fingerprint: *fingerprint,
        rank: rank as u32,
        np: np as u32,
        load_num: parts.load_num as u32,
        load_den: parts.load_den as u32,
        sentinel_count: parts.sentinel_count,
        capacity: parts.keys.len() as u64,
        entries: parts.entries as u64,
        body_bytes: parts.keys.len() as u64 * ShardKind::Kmer.slot_bytes(),
        checksum: 0,
    };
    write_shard(path, header, |w| {
        w.put_u64s(parts.keys)?;
        w.put_u32s(parts.counts)
    })
}

/// Dump a tile table as a shard at `path`.
pub(crate) fn write_tile_shard(
    path: &Path,
    fingerprint: &ConfigFingerprint,
    rank: usize,
    np: usize,
    table: &FlatTileTable,
) -> Result<ShardRecord, SnapshotError> {
    let parts = table.raw_parts();
    let header = ShardHeader {
        version: FORMAT_VERSION,
        kind: ShardKind::Tile,
        fingerprint: *fingerprint,
        rank: rank as u32,
        np: np as u32,
        load_num: parts.load_num as u32,
        load_den: parts.load_den as u32,
        sentinel_count: parts.sentinel_count,
        capacity: parts.lo.len() as u64,
        entries: parts.entries as u64,
        body_bytes: parts.lo.len() as u64 * ShardKind::Tile.slot_bytes(),
        checksum: 0,
    };
    write_shard(path, header, |w| {
        w.put_u64s(parts.lo)?;
        w.put_u64s(parts.hi)?;
        w.put_u32s(parts.counts)
    })
}

/// A shard read back from disk (or rebuilt in memory), before table
/// adoption.
struct RawShard {
    header: ShardHeader,
    body: Vec<u8>,
}

/// Read a shard file fully into memory and verify it. A missing file is
/// the typed `MissingShard`, not a bare I/O error.
fn read_shard(
    path: &Path,
    expect_kind: ShardKind,
    expect: &ConfigFingerprint,
) -> Result<RawShard, SnapshotError> {
    let bytes = std::fs::read(path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            SnapshotError::MissingShard { path: path.to_path_buf() }
        } else {
            SnapshotError::io(path, e)
        }
    })?;
    decode_shard(&bytes, path, expect_kind, expect)
}

/// Fully verify a shard image: magic, version, fingerprint, kind,
/// declared sizes vs the actual length, and the checksum. Returns the
/// verified header and body bytes. `path` only names errors — the bytes
/// may have come from disk or from Reed-Solomon reconstruction.
fn decode_shard(
    bytes: &[u8],
    path: &Path,
    expect_kind: ShardKind,
    expect: &ConfigFingerprint,
) -> Result<RawShard, SnapshotError> {
    let file_len = bytes.len() as u64;
    if file_len < HEADER_BYTES as u64 {
        return Err(SnapshotError::Truncated {
            path: path.to_path_buf(),
            expected: HEADER_BYTES as u64,
            actual: file_len,
        });
    }
    let head: &[u8; HEADER_BYTES] = bytes[..HEADER_BYTES].try_into().unwrap();
    let header = ShardHeader::decode(head, path)?;
    header.check_fingerprint(expect, path)?;
    if header.kind != expect_kind {
        return Err(SnapshotError::InvalidTable {
            path: path.to_path_buf(),
            reason: format!("expected a {expect_kind} shard, found {}", header.kind),
        });
    }
    // checked: a corrupted capacity field can be astronomically large
    if Some(header.body_bytes) != header.capacity.checked_mul(header.kind.slot_bytes()) {
        return Err(SnapshotError::InvalidTable {
            path: path.to_path_buf(),
            reason: format!(
                "body_bytes {} inconsistent with capacity {} ({} bytes/slot)",
                header.body_bytes,
                header.capacity,
                header.kind.slot_bytes()
            ),
        });
    }
    let expected_len = (HEADER_BYTES as u64).saturating_add(header.body_bytes);
    if file_len < expected_len {
        return Err(SnapshotError::Truncated {
            path: path.to_path_buf(),
            expected: expected_len,
            actual: file_len,
        });
    }
    if file_len > expected_len {
        return Err(SnapshotError::InvalidTable {
            path: path.to_path_buf(),
            reason: format!("{} trailing bytes after the declared body", file_len - expected_len),
        });
    }
    // Hash the checksum-zeroed header, then the body.
    let mut hash = Fnv1a::new();
    let mut zeroed = *head;
    zeroed[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].fill(0);
    hash.update(&zeroed);
    hash.update(&bytes[HEADER_BYTES..]);
    let computed = hash.finish();
    if computed != header.checksum {
        return Err(SnapshotError::Checksum {
            path: path.to_path_buf(),
            stored: header.checksum,
            computed,
        });
    }
    Ok(RawShard { header, body: bytes[HEADER_BYTES..].to_vec() })
}

/// Decode `n` little-endian u64 words starting at `offset`.
fn decode_u64s(body: &[u8], offset: usize, n: usize) -> Arc<[u64]> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let at = offset + i * 8;
        out.push(u64::from_le_bytes(body[at..at + 8].try_into().unwrap()));
    }
    Arc::from(out)
}

/// Decode `n` little-endian u32 words starting at `offset`.
fn decode_u32s(body: &[u8], offset: usize, n: usize) -> Arc<[u32]> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let at = offset + i * 4;
        out.push(u32::from_le_bytes(body[at..at + 4].try_into().unwrap()));
    }
    Arc::from(out)
}

/// A verified, adopted shard.
pub struct LoadedShard<T> {
    /// The ready-to-probe table (mapped storage, no rehash performed).
    pub table: T,
    /// Rank that produced the shard.
    pub rank: usize,
    /// Rank count the snapshot was built at.
    pub np: usize,
    /// Total file bytes read (header + body).
    pub bytes_read: u64,
}

/// Load a k-mer shard from disk, verifying every corruption class
/// before adoption.
pub(crate) fn read_kmer_shard(
    path: &Path,
    expect: &ConfigFingerprint,
) -> Result<LoadedShard<FlatKmerTable>, SnapshotError> {
    adopt_kmer(read_shard(path, ShardKind::Kmer, expect)?, path)
}

/// Adopt an in-memory k-mer shard image (e.g. Reed-Solomon
/// reconstruction output) through the same verification as a file read.
pub(crate) fn decode_kmer_shard(
    bytes: &[u8],
    path: &Path,
    expect: &ConfigFingerprint,
) -> Result<LoadedShard<FlatKmerTable>, SnapshotError> {
    adopt_kmer(decode_shard(bytes, path, ShardKind::Kmer, expect)?, path)
}

fn adopt_kmer(raw: RawShard, path: &Path) -> Result<LoadedShard<FlatKmerTable>, SnapshotError> {
    let cap = raw.header.capacity as usize;
    let keys = decode_u64s(&raw.body, 0, cap);
    let counts = decode_u32s(&raw.body, cap * 8, cap);
    let table = FlatKmerTable::from_mapped_parts(
        keys,
        counts,
        raw.header.sentinel_count,
        raw.header.load_num as usize,
        raw.header.load_den as usize,
    )
    .map_err(|reason| SnapshotError::InvalidTable { path: path.to_path_buf(), reason })?;
    if table.len() != raw.header.entries as usize + raw.header.sentinel_count.is_some() as usize {
        return Err(SnapshotError::InvalidTable {
            path: path.to_path_buf(),
            reason: format!(
                "header claims {} entries, slots hold {}",
                raw.header.entries,
                table.len() - raw.header.sentinel_count.is_some() as usize
            ),
        });
    }
    Ok(LoadedShard {
        table,
        rank: raw.header.rank as usize,
        np: raw.header.np as usize,
        bytes_read: HEADER_BYTES as u64 + raw.header.body_bytes,
    })
}

/// Load a tile shard from disk, verifying every corruption class
/// before adoption.
pub(crate) fn read_tile_shard(
    path: &Path,
    expect: &ConfigFingerprint,
) -> Result<LoadedShard<FlatTileTable>, SnapshotError> {
    adopt_tile(read_shard(path, ShardKind::Tile, expect)?, path)
}

/// Adopt an in-memory tile shard image (e.g. Reed-Solomon
/// reconstruction output) through the same verification as a file read.
pub(crate) fn decode_tile_shard(
    bytes: &[u8],
    path: &Path,
    expect: &ConfigFingerprint,
) -> Result<LoadedShard<FlatTileTable>, SnapshotError> {
    adopt_tile(decode_shard(bytes, path, ShardKind::Tile, expect)?, path)
}

fn adopt_tile(raw: RawShard, path: &Path) -> Result<LoadedShard<FlatTileTable>, SnapshotError> {
    let cap = raw.header.capacity as usize;
    let lo = decode_u64s(&raw.body, 0, cap);
    let hi = decode_u64s(&raw.body, cap * 8, cap);
    let counts = decode_u32s(&raw.body, cap * 16, cap);
    let table = FlatTileTable::from_mapped_parts(
        lo,
        hi,
        counts,
        raw.header.sentinel_count,
        raw.header.load_num as usize,
        raw.header.load_den as usize,
    )
    .map_err(|reason| SnapshotError::InvalidTable { path: path.to_path_buf(), reason })?;
    if table.len() != raw.header.entries as usize + raw.header.sentinel_count.is_some() as usize {
        return Err(SnapshotError::InvalidTable {
            path: path.to_path_buf(),
            reason: format!(
                "header claims {} entries, slots hold {}",
                raw.header.entries,
                table.len() - raw.header.sentinel_count.is_some() as usize
            ),
        });
    }
    Ok(LoadedShard {
        table,
        rank: raw.header.rank as usize,
        np: raw.header.np as usize,
        bytes_read: HEADER_BYTES as u64 + raw.header.body_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reptile::ReptileParams;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("specstore-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn chop(path: &Path, keep: u64) {
        let f = std::fs::OpenOptions::new().write(true).open(path).unwrap();
        f.set_len(keep).unwrap();
    }

    fn fp() -> ConfigFingerprint {
        ConfigFingerprint::for_params(&ReptileParams::for_tests())
    }

    fn sample_kmer() -> FlatKmerTable {
        let mut t = FlatKmerTable::new();
        for key in 0..300u64 {
            t.add_count(key * 7919, (key % 9 + 1) as u32);
        }
        t.add_count(u64::MAX, 5);
        t
    }

    fn sample_tile() -> FlatTileTable {
        let mut t = FlatTileTable::new();
        for key in 0..300u128 {
            t.add_count(key << 33, (key % 9 + 1) as u32);
        }
        t
    }

    #[test]
    fn kmer_shard_roundtrip_probes_identically() {
        let dir = tmpdir("kmer-rt");
        let path = dir.join(shard_file_name(2, ShardKind::Kmer));
        let t = sample_kmer();
        let rec = write_kmer_shard(&path, &fp(), 2, 4, &t).unwrap();
        assert_eq!(rec.rank, 2);
        assert_eq!(rec.bytes, std::fs::metadata(&path).unwrap().len());
        let loaded = read_kmer_shard(&path, &fp()).unwrap();
        assert_eq!((loaded.rank, loaded.np), (2, 4));
        assert_eq!(loaded.bytes_read, rec.bytes);
        assert!(loaded.table.is_mapped());
        assert_eq!(loaded.table.len(), t.len());
        for key in 0..300u64 {
            assert_eq!(loaded.table.get(key * 7919), t.get(key * 7919));
        }
        assert_eq!(loaded.table.get(u64::MAX), Some(5));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tile_shard_roundtrip_probes_identically() {
        let dir = tmpdir("tile-rt");
        let path = dir.join(shard_file_name(0, ShardKind::Tile));
        let t = sample_tile();
        write_tile_shard(&path, &fp(), 0, 1, &t).unwrap();
        let loaded = read_tile_shard(&path, &fp()).unwrap();
        assert!(loaded.table.is_mapped());
        for key in 0..300u128 {
            assert_eq!(loaded.table.get(key << 33), t.get(key << 33));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_table_shard_roundtrips() {
        let dir = tmpdir("empty");
        let path = dir.join("empty.kmer.shard");
        write_kmer_shard(&path, &fp(), 0, 1, &FlatKmerTable::new()).unwrap();
        let loaded = read_kmer_shard(&path, &fp()).unwrap();
        assert!(loaded.table.is_empty());
        assert_eq!(loaded.table.get(42), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_is_typed() {
        let dir = tmpdir("trunc");
        let path = dir.join("t.kmer.shard");
        write_kmer_shard(&path, &fp(), 0, 1, &sample_kmer()).unwrap();
        let full = std::fs::metadata(&path).unwrap().len();
        chop(&path, full - 10);
        assert!(matches!(read_kmer_shard(&path, &fp()), Err(SnapshotError::Truncated { .. })));
        // chopped inside the header too
        chop(&path, 20);
        assert!(matches!(read_kmer_shard(&path, &fp()), Err(SnapshotError::Truncated { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn body_corruption_is_a_checksum_error() {
        let dir = tmpdir("corrupt");
        let path = dir.join("c.kmer.shard");
        write_kmer_shard(&path, &fp(), 0, 1, &sample_kmer()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = HEADER_BYTES + (bytes.len() - HEADER_BYTES) / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_kmer_shard(&path, &fp()), Err(SnapshotError::Checksum { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_config_is_a_fingerprint_error() {
        let dir = tmpdir("fp");
        let path = dir.join("f.tile.shard");
        write_tile_shard(&path, &fp(), 0, 1, &sample_tile()).unwrap();
        let mut other = fp();
        other.k += 1;
        assert!(matches!(
            read_tile_shard(&path, &other),
            Err(SnapshotError::FingerprintMismatch { field: "k", .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let dir = tmpdir("kind");
        let path = dir.join("k.shard");
        write_kmer_shard(&path, &fp(), 0, 1, &sample_kmer()).unwrap();
        assert!(matches!(read_tile_shard(&path, &fp()), Err(SnapshotError::InvalidTable { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }
}
