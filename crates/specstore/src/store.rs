//! The snapshot store API: [`SnapshotWriter`] / [`SnapshotReader`]
//! handles that own the directory layout, manifest, fingerprint checks,
//! parity encoding, and online shard repair.
//!
//! All snapshot I/O goes through these two types — the per-file
//! functions in [`crate::shard`] are crate-internal. A writer streams
//! each rank's tables into checksummed shard files, then `finish`
//! encodes `m` Reed-Solomon parity shards per table kind (reading the
//! just-written data files back in `IO_CHUNK` blocks, so parity never
//! needs the tables in memory) and records everything in `MANIFEST.txt`.
//!
//! A reader classifies every shard-read failure. Under
//! [`RecoveryPolicy::Strict`] any corruption is returned as the typed
//! [`SnapshotError`] it always was. Under [`RecoveryPolicy::Repair`] a
//! shard-local corruption (truncation, checksum mismatch, missing file,
//! stomped header) triggers the repair pipeline for that shard's group:
//!
//! 1. **classify** — every group member (data and parity) is re-read
//!    raw and verified against the manifest's recorded length and
//!    checksum, producing the surviving-shard set;
//! 2. **repair** — if the losses fit the budget
//!    (`min(manifest parity, policy max_lost)`), the missing data
//!    shards are reconstructed by matrix inversion over the survivors
//!    ([`crate::rs`]);
//! 3. **verify** — each rebuilt shard's checksum must match the
//!    manifest record before adoption, and the bytes then pass through
//!    the same full decode as a file read. With `rewrite` set, rebuilt
//!    shards this reader actually loads are also written back to disk
//!    (temp file + rename), healing the snapshot in place.
//!
//! Losses beyond the budget surface as [`SnapshotError::TooManyLost`];
//! requesting `Repair` on a parity-free (e.g. v1) snapshot is
//! [`SnapshotError::NoParity`].

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::time::Instant;

use reptile::{FlatKmerTable, FlatTileTable};

use crate::checksum::{fnv1a, Fnv1a};
use crate::format::{ConfigFingerprint, ShardKind, SnapshotError, CHECKSUM_OFFSET, HEADER_BYTES};
use crate::manifest::{Manifest, ParityRecord, ShardRecord};
use crate::rs::{RsCode, RsError};
use crate::shard::{
    decode_kmer_shard, decode_tile_shard, parity_file_name, read_kmer_shard, read_tile_shard,
    shard_file_name, write_kmer_shard, write_tile_shard, LoadedShard, IO_CHUNK,
};

/// What a loader does when a shard turns out to be corrupt.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Surface every corruption class as its typed error (the only
    /// behavior that exists for parity-free snapshots).
    #[default]
    Strict,
    /// Reconstruct up to `max_lost` lost data shards per (kind, group)
    /// from the parity shards instead of failing.
    Repair {
        /// Most lost data shards this loader will repair per group
        /// (clamped to the manifest's parity count).
        max_lost: usize,
        /// Also write rebuilt shards back to disk (temp file + rename),
        /// healing the snapshot for future loads.
        rewrite: bool,
    },
}

impl RecoveryPolicy {
    /// Does this policy attempt reconstruction at all?
    pub fn repairs(&self) -> bool {
        matches!(self, RecoveryPolicy::Repair { .. })
    }
}

/// Counters for the repair work a [`SnapshotReader`] performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Data shards reconstructed from parity.
    pub shards_repaired: u64,
    /// Bytes of reconstructed shard data (at recorded, unpadded sizes).
    pub bytes_reconstructed: u64,
    /// Bytes read from surviving shards to feed reconstruction.
    pub survivor_bytes_read: u64,
    /// Rebuilt shards written back to disk (`rewrite: true` only).
    pub shards_rewritten: u64,
    /// Wall-clock nanoseconds spent classifying + reconstructing.
    pub repair_ns: u64,
    /// Wall-clock nanoseconds of the classify pass alone: reading and
    /// verifying every group member. The members stream on scoped
    /// threads, so this is the slowest single read, not the sum — the
    /// gap between `classify_ns * members` and `classify_ns` is the
    /// parallel win.
    pub classify_ns: u64,
}

impl RepairStats {
    /// Component-wise difference against an earlier snapshot of the
    /// counters (for per-rank attribution in serial loads).
    pub fn since(&self, earlier: &RepairStats) -> RepairStats {
        RepairStats {
            shards_repaired: self.shards_repaired - earlier.shards_repaired,
            bytes_reconstructed: self.bytes_reconstructed - earlier.bytes_reconstructed,
            survivor_bytes_read: self.survivor_bytes_read - earlier.survivor_bytes_read,
            shards_rewritten: self.shards_rewritten - earlier.shards_rewritten,
            repair_ns: self.repair_ns - earlier.repair_ns,
            classify_ns: self.classify_ns - earlier.classify_ns,
        }
    }

    /// Component-wise accumulate.
    pub fn merge(&mut self, other: &RepairStats) {
        self.shards_repaired += other.shards_repaired;
        self.bytes_reconstructed += other.bytes_reconstructed;
        self.survivor_bytes_read += other.survivor_bytes_read;
        self.shards_rewritten += other.shards_rewritten;
        self.repair_ns += other.repair_ns;
        self.classify_ns += other.classify_ns;
    }
}

fn rs_err(dir: &Path, kind: ShardKind, e: RsError) -> SnapshotError {
    match e {
        RsError::TooManyLost { lost, parity } => {
            SnapshotError::TooManyLost { dir: dir.to_path_buf(), kind, lost, budget: parity }
        }
        RsError::BadGeometry { data, parity } => SnapshotError::InvalidTable {
            path: dir.to_path_buf(),
            reason: format!("unsupported erasure geometry: {data} data + {parity} parity shards"),
        },
    }
}

/// Writes one snapshot directory: shard files per rank, then parity +
/// manifest at `finish`.
pub struct SnapshotWriter {
    dir: PathBuf,
    fingerprint: ConfigFingerprint,
    np: usize,
    parity: usize,
    records: Vec<ShardRecord>,
}

impl SnapshotWriter {
    /// Create (or reuse) the snapshot directory `dir` for an `np`-rank
    /// snapshot with `parity` Reed-Solomon shards per table kind.
    pub fn create(
        dir: &Path,
        fingerprint: &ConfigFingerprint,
        np: usize,
        parity: usize,
    ) -> Result<SnapshotWriter, SnapshotError> {
        if np == 0 {
            return Err(SnapshotError::InvalidTable {
                path: dir.to_path_buf(),
                reason: "snapshot needs at least one rank".into(),
            });
        }
        if parity > 0 && np + parity > 256 {
            return Err(rs_err(dir, ShardKind::Kmer, RsError::BadGeometry { data: np, parity }));
        }
        std::fs::create_dir_all(dir).map_err(|e| SnapshotError::io(dir, e))?;
        Ok(SnapshotWriter {
            dir: dir.to_path_buf(),
            fingerprint: *fingerprint,
            np,
            parity,
            records: Vec::new(),
        })
    }

    /// Snapshot directory this writer targets.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Parity shards per table kind this writer will encode.
    pub fn parity(&self) -> usize {
        self.parity
    }

    /// Write `rank`'s k-mer table as a shard; returns its record (also
    /// retained for `finish`).
    pub fn write_kmer(
        &mut self,
        rank: usize,
        table: &FlatKmerTable,
    ) -> Result<ShardRecord, SnapshotError> {
        self.check_rank(rank)?;
        let path = self.dir.join(shard_file_name(rank, ShardKind::Kmer));
        let rec = write_kmer_shard(&path, &self.fingerprint, rank, self.np, table)?;
        self.records.push(rec.clone());
        Ok(rec)
    }

    /// Write `rank`'s tile table as a shard; returns its record.
    pub fn write_tile(
        &mut self,
        rank: usize,
        table: &FlatTileTable,
    ) -> Result<ShardRecord, SnapshotError> {
        self.check_rank(rank)?;
        let path = self.dir.join(shard_file_name(rank, ShardKind::Tile));
        let rec = write_tile_shard(&path, &self.fingerprint, rank, self.np, table)?;
        self.records.push(rec.clone());
        Ok(rec)
    }

    fn check_rank(&self, rank: usize) -> Result<(), SnapshotError> {
        if rank >= self.np {
            return Err(SnapshotError::InvalidTable {
                path: self.dir.clone(),
                reason: format!("rank {rank} out of range for np={}", self.np),
            });
        }
        Ok(())
    }

    /// Finish a snapshot this writer wrote alone: encode parity over
    /// its own records and write the manifest. Returns the extra bytes
    /// written (parity + manifest).
    pub fn finish(self) -> Result<u64, SnapshotError> {
        let records = self.records.clone();
        self.finish_with(records)
    }

    /// Finish a snapshot whose shards were written by many ranks: the
    /// caller gathers every rank's records (this writer's own are in
    /// `records()` already) and exactly one rank calls this. Encodes
    /// parity by streaming the data shard files back through
    /// `IO_CHUNK`-sized blocks and writes the manifest.
    pub fn finish_with(self, mut records: Vec<ShardRecord>) -> Result<u64, SnapshotError> {
        records.sort_by_key(|r| (r.rank, r.kind.code()));
        for kind in [ShardKind::Kmer, ShardKind::Tile] {
            for rank in 0..self.np {
                if !records.iter().any(|r| r.rank == rank && r.kind == kind) {
                    return Err(SnapshotError::Manifest {
                        path: Manifest::path_in(&self.dir),
                        line: 0,
                        reason: format!("no {kind} shard record for rank {rank}"),
                    });
                }
            }
        }
        let mut parity_shards = Vec::new();
        let mut extra = 0u64;
        if self.parity > 0 {
            for kind in [ShardKind::Kmer, ShardKind::Tile] {
                let (recs, bytes) = encode_parity(&self.dir, kind, &records, self.parity)?;
                parity_shards.extend(recs);
                extra += bytes;
            }
        }
        let manifest = Manifest {
            np: self.np,
            fingerprint: self.fingerprint,
            parity: self.parity,
            shards: records,
            parity_shards,
        };
        extra += manifest.write(&self.dir)?;
        Ok(extra)
    }

    /// Records of the shards this writer wrote (the per-rank wire
    /// payload for a distributed `finish_with`).
    pub fn records(&self) -> &[ShardRecord] {
        &self.records
    }
}

/// Encode `m` parity shards over `kind`'s data shards by streaming the
/// files back chunk-by-chunk (shorter shards are zero-padded to the
/// group's stripe length). Returns the parity records and bytes written.
fn encode_parity(
    dir: &Path,
    kind: ShardKind,
    records: &[ShardRecord],
    m: usize,
) -> Result<(Vec<ParityRecord>, u64), SnapshotError> {
    let data: Vec<&ShardRecord> = records.iter().filter(|r| r.kind == kind).collect();
    let k = data.len();
    let code = RsCode::new(k, m).map_err(|e| rs_err(dir, kind, e))?;
    let stripe = data.iter().map(|r| r.bytes).max().unwrap_or(0);

    let mut readers: Vec<(BufReader<File>, u64)> = Vec::with_capacity(k);
    for rec in &data {
        let path = dir.join(&rec.file_name);
        let file = File::open(&path).map_err(|e| SnapshotError::io(&path, e))?;
        readers.push((BufReader::new(file), rec.bytes));
    }
    let mut writers: Vec<(BufWriter<File>, Fnv1a, PathBuf)> = Vec::with_capacity(m);
    for index in 0..m {
        let path = dir.join(parity_file_name(kind, index));
        let file = File::create(&path).map_err(|e| SnapshotError::io(&path, e))?;
        writers.push((BufWriter::new(file), Fnv1a::new(), path));
    }

    let mut dbuf = vec![0u8; IO_CHUNK];
    let mut pbufs = vec![vec![0u8; IO_CHUNK]; m];
    let mut done = 0u64;
    while done < stripe {
        let len = IO_CHUNK.min((stripe - done) as usize);
        for p in pbufs.iter_mut() {
            p[..len].fill(0);
        }
        for (j, (reader, remaining)) in readers.iter_mut().enumerate() {
            let want = (*remaining).min(len as u64) as usize;
            if want > 0 {
                let path = dir.join(&data[j].file_name);
                reader.read_exact(&mut dbuf[..want]).map_err(|e| SnapshotError::io(&path, e))?;
                *remaining -= want as u64;
            }
            dbuf[want..len].fill(0);
            code.encode_acc(j, &dbuf[..len], &mut pbufs);
        }
        for ((out, hash, path), p) in writers.iter_mut().zip(&pbufs) {
            hash.update(&p[..len]);
            out.write_all(&p[..len]).map_err(|e| SnapshotError::io(&*path, e))?;
        }
        done += len as u64;
    }

    let mut recs = Vec::with_capacity(m);
    for (index, (mut out, hash, path)) in writers.into_iter().enumerate() {
        out.flush().map_err(|e| SnapshotError::io(&path, e))?;
        recs.push(ParityRecord {
            kind,
            index,
            file_name: parity_file_name(kind, index),
            bytes: stripe,
            checksum: hash.finish(),
        });
    }
    Ok((recs, stripe * m as u64))
}

/// Reads one snapshot directory, repairing lost shards on the way when
/// the policy allows it.
pub struct SnapshotReader {
    dir: PathBuf,
    expect: ConfigFingerprint,
    policy: RecoveryPolicy,
    manifest: Manifest,
    stats: RepairStats,
    /// Rebuilt shard images by `(rank, kind code)`, adopted on demand.
    rebuilt: HashMap<(usize, u32), Vec<u8>>,
}

impl SnapshotReader {
    /// Open a snapshot: read + fingerprint-check the manifest and
    /// validate the policy against it (a `Repair` policy on a
    /// parity-free snapshot is a typed error, surfaced before any shard
    /// is touched).
    pub fn open(
        dir: &Path,
        expect: &ConfigFingerprint,
        policy: RecoveryPolicy,
    ) -> Result<SnapshotReader, SnapshotError> {
        let manifest = Manifest::read(dir)?;
        manifest.check_fingerprint(expect, dir)?;
        if policy.repairs() && manifest.parity == 0 {
            return Err(SnapshotError::NoParity { dir: dir.to_path_buf() });
        }
        Ok(SnapshotReader {
            dir: dir.to_path_buf(),
            expect: *expect,
            policy,
            manifest,
            stats: RepairStats::default(),
            rebuilt: HashMap::new(),
        })
    }

    /// Rank count the snapshot was built at.
    pub fn np(&self) -> usize {
        self.manifest.np
    }

    /// The verified manifest (shard names, sizes, parity inventory).
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Repair-work counters accumulated so far.
    pub fn stats(&self) -> RepairStats {
        self.stats
    }

    /// Load producing-rank `rank`'s k-mer shard, repairing it from
    /// parity if it is corrupt and the policy allows.
    pub fn load_kmer(&mut self, rank: usize) -> Result<LoadedShard<FlatKmerTable>, SnapshotError> {
        self.load_shard(rank, ShardKind::Kmer, read_kmer_shard, decode_kmer_shard)
    }

    /// Load producing-rank `rank`'s tile shard, repairing it from
    /// parity if it is corrupt and the policy allows.
    pub fn load_tile(&mut self, rank: usize) -> Result<LoadedShard<FlatTileTable>, SnapshotError> {
        self.load_shard(rank, ShardKind::Tile, read_tile_shard, decode_tile_shard)
    }

    fn load_shard<T>(
        &mut self,
        rank: usize,
        kind: ShardKind,
        from_file: impl Fn(&Path, &ConfigFingerprint) -> Result<LoadedShard<T>, SnapshotError>,
        from_bytes: impl Fn(&[u8], &Path, &ConfigFingerprint) -> Result<LoadedShard<T>, SnapshotError>,
    ) -> Result<LoadedShard<T>, SnapshotError> {
        let rec = self
            .manifest
            .shard(rank, kind)
            .ok_or_else(|| SnapshotError::InvalidTable {
                path: Manifest::path_in(&self.dir),
                reason: format!("rank {rank} out of range for np={}", self.manifest.np),
            })?
            .clone();
        let path = self.dir.join(&rec.file_name);
        if self.rebuilt.contains_key(&(rank, kind.code())) {
            return self.adopt_rebuilt(rank, kind, &rec, &path, &from_bytes);
        }
        let attempt = from_file(&path, &self.expect)
            .and_then(|l| cross_check(l, &rec, rank, self.manifest.np, &path));
        match attempt {
            Ok(loaded) => Ok(loaded),
            Err(e) if is_shard_corruption(&e) && self.policy.repairs() => {
                self.repair_group(kind)?;
                if self.rebuilt.contains_key(&(rank, kind.code())) {
                    self.adopt_rebuilt(rank, kind, &rec, &path, &from_bytes)
                } else {
                    // The file verified raw against the manifest yet
                    // failed decode: the snapshot was *written*
                    // inconsistent, which no amount of parity fixes.
                    Err(e)
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Decode a cached rebuilt image through full verification, then
    /// heal the on-disk file if the policy asks for it.
    fn adopt_rebuilt<T>(
        &mut self,
        rank: usize,
        kind: ShardKind,
        rec: &ShardRecord,
        path: &Path,
        from_bytes: &impl Fn(&[u8], &Path, &ConfigFingerprint) -> Result<LoadedShard<T>, SnapshotError>,
    ) -> Result<LoadedShard<T>, SnapshotError> {
        let loaded = {
            let bytes = self.rebuilt.get(&(rank, kind.code())).expect("cached");
            from_bytes(bytes, path, &self.expect)?
        };
        let loaded = cross_check(loaded, rec, rank, self.manifest.np, path)?;
        self.rewrite_if_requested(rec, path)?;
        Ok(loaded)
    }

    /// Classify every member of `kind`'s group against the manifest,
    /// reconstruct the lost data shards if they fit the repair budget,
    /// and verify each rebuilt image's checksum before caching it.
    fn repair_group(&mut self, kind: ShardKind) -> Result<(), SnapshotError> {
        let t0 = Instant::now();
        let m = self.manifest.parity;
        let np = self.manifest.np;
        let budget = match self.policy {
            RecoveryPolicy::Repair { max_lost, .. } => max_lost.min(m),
            RecoveryPolicy::Strict => 0,
        };
        let code = RsCode::new(np, m).map_err(|e| rs_err(&self.dir, kind, e))?;

        let data_recs: Vec<ShardRecord> = (0..np)
            .map(|rank| self.manifest.shard(rank, kind).expect("parser-checked coverage").clone())
            .collect();
        let stripe = data_recs.iter().map(|r| r.bytes).max().unwrap_or(0);

        // classify: re-read every member raw and check it against the
        // manifest's recorded length + checksum. Each member is an
        // independent file scan + checksum, so the group streams on
        // scoped threads — one per member, bounded by np + m — and the
        // pass costs the slowest single read instead of the sum.
        let t_classify = Instant::now();
        let parity_recs: Vec<ParityRecord> = (0..m)
            .map(|i| self.manifest.parity_shard(kind, i).expect("parser-checked coverage").clone())
            .collect();
        let mut shards: Vec<Option<Vec<u8>>> = std::thread::scope(|s| {
            let data_readers: Vec<_> = data_recs
                .iter()
                .map(|rec| {
                    let path = self.dir.join(&rec.file_name);
                    s.spawn(move || read_raw_verified(&path, rec.bytes, rec.checksum, true))
                })
                .collect();
            let parity_readers: Vec<_> = parity_recs
                .iter()
                .map(|prec| {
                    let path = self.dir.join(&prec.file_name);
                    s.spawn(move || {
                        (prec.bytes == stripe)
                            .then(|| read_raw_verified(&path, prec.bytes, prec.checksum, false))
                            .flatten()
                    })
                })
                .collect();
            data_readers
                .into_iter()
                .chain(parity_readers)
                .map(|h| h.join().expect("survivor reader panicked"))
                .collect()
        });
        let mut survivor_bytes = 0u64;
        for (slot, got) in shards.iter_mut().enumerate() {
            if let Some(bytes) = got {
                survivor_bytes += bytes.len() as u64;
                if slot < np {
                    bytes.resize(stripe as usize, 0);
                }
            }
        }
        self.stats.classify_ns += t_classify.elapsed().as_nanos() as u64;

        let lost_total = shards.iter().filter(|s| s.is_none()).count();
        let lost_data: Vec<usize> = (0..np).filter(|&rank| shards[rank].is_none()).collect();
        if lost_data.is_empty() {
            // The caller's failure was not a manifest-level loss
            // (nothing to rebuild); let it surface unchanged.
            return Ok(());
        }
        if lost_total > m || lost_data.len() > budget {
            return Err(SnapshotError::TooManyLost {
                dir: self.dir.clone(),
                kind,
                lost: if lost_total > m { lost_total } else { lost_data.len() },
                budget,
            });
        }

        // repair: matrix inversion over the survivors.
        code.reconstruct(&mut shards, stripe as usize).map_err(|e| rs_err(&self.dir, kind, e))?;

        // verify: a rebuilt shard must reproduce the manifest checksum
        // exactly before anything adopts it.
        for &rank in &lost_data {
            let rec = &data_recs[rank];
            let mut bytes = shards[rank].take().expect("reconstructed");
            bytes.truncate(rec.bytes as usize);
            let computed = shard_image_checksum(&bytes);
            if computed != rec.checksum {
                return Err(SnapshotError::Checksum {
                    path: self.dir.join(&rec.file_name),
                    stored: rec.checksum,
                    computed,
                });
            }
            self.stats.shards_repaired += 1;
            self.stats.bytes_reconstructed += rec.bytes;
            self.rebuilt.insert((rank, kind.code()), bytes);
        }
        self.stats.survivor_bytes_read += survivor_bytes;
        self.stats.repair_ns += t0.elapsed().as_nanos() as u64;
        Ok(())
    }

    /// Write a rebuilt shard back to disk when the policy asks for it.
    /// Each shard is loaded by exactly one rank, so in-place healing
    /// never races across a fleet: a rank only rewrites what it loads.
    fn rewrite_if_requested(
        &mut self,
        rec: &ShardRecord,
        path: &Path,
    ) -> Result<(), SnapshotError> {
        let RecoveryPolicy::Repair { rewrite: true, .. } = self.policy else {
            return Ok(());
        };
        let bytes = self.rebuilt.get(&(rec.rank, rec.kind.code())).expect("cached");
        let tmp = path.with_extension("repair.tmp");
        std::fs::write(&tmp, bytes).map_err(|e| SnapshotError::io(&tmp, e))?;
        std::fs::rename(&tmp, path).map_err(|e| SnapshotError::io(path, e))?;
        self.stats.shards_rewritten += 1;
        Ok(())
    }
}

/// Failure classes that mean "this one shard is damaged" (as opposed to
/// manifest-level, configuration, or collective failures) — the set the
/// repair pipeline is allowed to mask.
fn is_shard_corruption(e: &SnapshotError) -> bool {
    matches!(
        e,
        SnapshotError::Truncated { .. }
            | SnapshotError::BadMagic { .. }
            | SnapshotError::VersionSkew { .. }
            | SnapshotError::Checksum { .. }
            | SnapshotError::FingerprintMismatch { .. }
            | SnapshotError::InvalidTable { .. }
            | SnapshotError::MissingShard { .. }
    )
}

/// The checksum a well-formed shard file carries: FNV-1a over the file
/// with the header's checksum field zeroed.
fn shard_image_checksum(bytes: &[u8]) -> u64 {
    let mut hash = Fnv1a::new();
    if bytes.len() >= HEADER_BYTES {
        let mut head = [0u8; HEADER_BYTES];
        head.copy_from_slice(&bytes[..HEADER_BYTES]);
        head[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].fill(0);
        hash.update(&head);
        hash.update(&bytes[HEADER_BYTES..]);
    } else {
        hash.update(bytes);
    }
    hash.finish()
}

/// Raw survivor check: the file must exist, have exactly the recorded
/// length, and reproduce the recorded checksum (`zeroed_field` selects
/// the data-shard digest, which zeroes the header's checksum slot, vs
/// the plain whole-file digest parity shards use). For data shards the
/// stored checksum field itself must match the manifest too — it is
/// the one header region the zeroed digest cannot see, and a survivor
/// feeds parity reconstruction byte-for-byte.
fn read_raw_verified(
    path: &Path,
    want_bytes: u64,
    want_checksum: u64,
    zeroed_field: bool,
) -> Option<Vec<u8>> {
    let bytes = std::fs::read(path).ok()?;
    if bytes.len() as u64 != want_bytes {
        return None;
    }
    let computed = if zeroed_field { shard_image_checksum(&bytes) } else { fnv1a(&bytes) };
    if computed != want_checksum {
        return None;
    }
    if zeroed_field && bytes.len() >= HEADER_BYTES {
        let stored =
            u64::from_le_bytes(bytes[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].try_into().unwrap());
        if stored != want_checksum {
            return None;
        }
    }
    Some(bytes)
}

fn cross_check<T>(
    loaded: LoadedShard<T>,
    rec: &ShardRecord,
    rank: usize,
    np: usize,
    path: &Path,
) -> Result<LoadedShard<T>, SnapshotError> {
    if loaded.rank != rank || loaded.np != np {
        return Err(SnapshotError::InvalidTable {
            path: path.to_path_buf(),
            reason: format!(
                "shard header says rank {}/np {}, manifest says rank {rank}/np {np}",
                loaded.rank, loaded.np
            ),
        });
    }
    if loaded.bytes_read != rec.bytes {
        return Err(SnapshotError::InvalidTable {
            path: path.to_path_buf(),
            reason: format!("shard is {} bytes, manifest records {}", loaded.bytes_read, rec.bytes),
        });
    }
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reptile::ReptileParams;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("specstore-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fp() -> ConfigFingerprint {
        ConfigFingerprint::for_params(&ReptileParams::for_tests())
    }

    fn kmer_table(seed: u64) -> FlatKmerTable {
        let mut t = FlatKmerTable::new();
        for key in 0..200u64 {
            t.add_count(key * 7919 + seed * 131, (key % 9 + 1) as u32);
        }
        t
    }

    fn tile_table(seed: u64) -> FlatTileTable {
        let mut t = FlatTileTable::new();
        for key in 0..150u128 {
            t.add_count((key << 33) ^ (seed as u128), (key % 7 + 1) as u32);
        }
        t
    }

    /// Write a 3-rank snapshot with `parity` parity shards.
    fn write_snapshot(dir: &Path, parity: usize) -> Vec<(FlatKmerTable, FlatTileTable)> {
        let mut w = SnapshotWriter::create(dir, &fp(), 3, parity).unwrap();
        let mut tables = Vec::new();
        for rank in 0..3 {
            let kt = kmer_table(rank as u64);
            let tt = tile_table(rank as u64);
            w.write_kmer(rank, &kt).unwrap();
            w.write_tile(rank, &tt).unwrap();
            tables.push((kt, tt));
        }
        assert!(w.finish().unwrap() > 0);
        tables
    }

    fn file_of(dir: &Path, rank: usize, kind: ShardKind) -> PathBuf {
        let manifest = Manifest::read(dir).unwrap();
        dir.join(&manifest.shard(rank, kind).unwrap().file_name)
    }

    fn assert_tables_match(
        loaded: &LoadedShard<FlatKmerTable>,
        original: &FlatKmerTable,
        seed: u64,
    ) {
        assert_eq!(loaded.table.len(), original.len());
        for key in 0..200u64 {
            let k = key * 7919 + seed * 131;
            assert_eq!(loaded.table.get(k), original.get(k), "key {k}");
        }
    }

    #[test]
    fn clean_roundtrip_with_parity() {
        let dir = tmpdir("clean");
        let tables = write_snapshot(&dir, 2);
        let manifest = Manifest::read(&dir).unwrap();
        assert_eq!(manifest.parity, 2);
        assert_eq!(manifest.parity_shards.len(), 4);
        let mut r = SnapshotReader::open(&dir, &fp(), RecoveryPolicy::Strict).unwrap();
        for rank in 0..3 {
            let loaded = r.load_kmer(rank).unwrap();
            assert_tables_match(&loaded, &tables[rank].0, rank as u64);
            r.load_tile(rank).unwrap();
        }
        assert_eq!(r.stats(), RepairStats::default());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deleted_shard_repairs_bit_identically() {
        let dir = tmpdir("delete");
        let tables = write_snapshot(&dir, 1);
        let victim = file_of(&dir, 1, ShardKind::Kmer);
        std::fs::remove_file(&victim).unwrap();
        let policy = RecoveryPolicy::Repair { max_lost: 1, rewrite: false };
        let mut r = SnapshotReader::open(&dir, &fp(), policy).unwrap();
        let loaded = r.load_kmer(1).unwrap();
        assert_tables_match(&loaded, &tables[1].0, 1);
        let stats = r.stats();
        assert_eq!(stats.shards_repaired, 1);
        assert_eq!(stats.shards_rewritten, 0);
        assert!(stats.bytes_reconstructed > 0);
        assert!(stats.survivor_bytes_read > 0);
        // the parallel classify pass is timed, and is a sub-phase of
        // the overall repair clock
        assert!(stats.classify_ns > 0);
        assert!(stats.classify_ns <= stats.repair_ns);
        // rewrite: false leaves the snapshot degraded on disk
        assert!(!victim.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rewrite_heals_the_snapshot_in_place() {
        let dir = tmpdir("heal");
        let tables = write_snapshot(&dir, 1);
        let victim = file_of(&dir, 2, ShardKind::Tile);
        let pristine = std::fs::read(&victim).unwrap();
        // truncate mid-body
        let f = std::fs::OpenOptions::new().write(true).open(&victim).unwrap();
        f.set_len(pristine.len() as u64 / 2).unwrap();
        drop(f);
        let policy = RecoveryPolicy::Repair { max_lost: 1, rewrite: true };
        let mut r = SnapshotReader::open(&dir, &fp(), policy).unwrap();
        r.load_tile(2).unwrap();
        assert_eq!(r.stats().shards_rewritten, 1);
        assert_eq!(std::fs::read(&victim).unwrap(), pristine, "healed file is bit-identical");
        // and a Strict re-open now succeeds
        let mut strict = SnapshotReader::open(&dir, &fp(), RecoveryPolicy::Strict).unwrap();
        let loaded = strict.load_tile(2).unwrap();
        assert_eq!(loaded.table.len(), tables[2].1.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_byte_repairs_via_checksum_classification() {
        let dir = tmpdir("flip");
        let tables = write_snapshot(&dir, 2);
        // flip one byte in each of two kmer shards: two losses, m = 2
        for rank in [0usize, 2] {
            let path = file_of(&dir, rank, ShardKind::Kmer);
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
        }
        let policy = RecoveryPolicy::Repair { max_lost: 2, rewrite: false };
        let mut r = SnapshotReader::open(&dir, &fp(), policy).unwrap();
        for rank in 0..3 {
            let loaded = r.load_kmer(rank).unwrap();
            assert_tables_match(&loaded, &tables[rank].0, rank as u64);
        }
        // one classification pass repaired both, first failing load
        assert_eq!(r.stats().shards_repaired, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn losses_beyond_parity_are_too_many_lost() {
        let dir = tmpdir("over");
        write_snapshot(&dir, 1);
        for rank in [0usize, 1] {
            std::fs::remove_file(file_of(&dir, rank, ShardKind::Kmer)).unwrap();
        }
        let policy = RecoveryPolicy::Repair { max_lost: 2, rewrite: false };
        let mut r = SnapshotReader::open(&dir, &fp(), policy).unwrap();
        let err = r.load_kmer(0).err().expect("two losses must exceed one parity shard");
        assert!(
            matches!(
                err,
                SnapshotError::TooManyLost { kind: ShardKind::Kmer, lost: 2, budget: 1, .. }
            ),
            "got {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn policy_budget_caps_repairs_below_parity() {
        let dir = tmpdir("budget");
        write_snapshot(&dir, 2);
        for rank in [0usize, 1] {
            std::fs::remove_file(file_of(&dir, rank, ShardKind::Kmer)).unwrap();
        }
        // 2 lost, 2 parity, but the policy only allows 1.
        let policy = RecoveryPolicy::Repair { max_lost: 1, rewrite: false };
        let mut r = SnapshotReader::open(&dir, &fp(), policy).unwrap();
        assert!(matches!(
            r.load_kmer(0),
            Err(SnapshotError::TooManyLost { lost: 2, budget: 1, .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lost_parity_shard_still_repairs_data_within_budget() {
        let dir = tmpdir("parity-loss");
        let tables = write_snapshot(&dir, 2);
        // lose one data shard AND one parity shard: 2 total <= m = 2
        std::fs::remove_file(file_of(&dir, 0, ShardKind::Kmer)).unwrap();
        let manifest = Manifest::read(&dir).unwrap();
        let pfile = dir.join(&manifest.parity_shard(ShardKind::Kmer, 0).unwrap().file_name);
        std::fs::remove_file(&pfile).unwrap();
        let policy = RecoveryPolicy::Repair { max_lost: 1, rewrite: false };
        let mut r = SnapshotReader::open(&dir, &fp(), policy).unwrap();
        let loaded = r.load_kmer(0).unwrap();
        assert_tables_match(&loaded, &tables[0].0, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repair_without_parity_is_typed() {
        let dir = tmpdir("noparity");
        write_snapshot(&dir, 0);
        let policy = RecoveryPolicy::Repair { max_lost: 1, rewrite: false };
        assert!(matches!(
            SnapshotReader::open(&dir, &fp(), policy),
            Err(SnapshotError::NoParity { .. })
        ));
        // Strict still loads it fine.
        let mut r = SnapshotReader::open(&dir, &fp(), RecoveryPolicy::Strict).unwrap();
        r.load_kmer(0).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strict_policy_still_fails_typed_on_corruption() {
        let dir = tmpdir("strict");
        write_snapshot(&dir, 1);
        std::fs::remove_file(file_of(&dir, 1, ShardKind::Kmer)).unwrap();
        let mut r = SnapshotReader::open(&dir, &fp(), RecoveryPolicy::Strict).unwrap();
        assert!(matches!(r.load_kmer(1), Err(SnapshotError::MissingShard { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn geometry_limit_is_enforced_at_create() {
        let dir = tmpdir("geom");
        assert!(matches!(
            SnapshotWriter::create(&dir, &fp(), 255, 2),
            Err(SnapshotError::InvalidTable { .. })
        ));
        assert!(SnapshotWriter::create(&dir, &fp(), 254, 2).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
