//! GF(2^8) Reed-Solomon erasure codec for shard groups.
//!
//! A shard group is the `k` data shards of one table kind plus `m`
//! parity shards. Encoding multiplies the data by an `m × k` Cauchy
//! matrix over GF(2^8); any `k` of the `k + m` shards suffice to
//! recover the rest, so up to `m` lost shards are repairable.
//!
//! Two properties drive the construction:
//!
//! - **MDS guarantee.** Every square submatrix of a Cauchy matrix is
//!   nonsingular, so stacking the identity over the parity rows yields
//!   a matrix whose every `k`-row subset is invertible. (A naive
//!   systematic Vandermonde `[I; V]` does *not* have this property for
//!   `m ≥ 3`.) Column scaling by nonzero constants preserves it, which
//!   lets us normalise row 0 to all ones: with `m = 1` the single
//!   parity shard is a plain XOR of the data shards.
//! - **Syndrome-free reconstruction.** Decoding picks any `k`
//!   surviving rows, inverts that `k × k` matrix by Gauss–Jordan
//!   elimination, and multiplies — no polynomial syndromes, no
//!   Berlekamp–Massey. Erasure positions are known from the shard
//!   classification pass, which is all a snapshot load ever sees.
//!
//! Shards in one group may have different lengths on disk; callers
//! zero-pad to a common stripe length before encoding and slice the
//! rebuilt shards back to their recorded lengths afterwards.

/// Field polynomial x^8 + x^4 + x^3 + x^2 + 1, the usual 0x11d.
const POLY: u16 = 0x11d;

/// EXP has 512 entries so `EXP[log a + log b]` never needs a mod 255.
static EXP: [u8; 512] = build_tables().0;
static LOG: [u8; 256] = build_tables().1;

const fn build_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    while i < 512 {
        exp[i] = exp[i - 255];
        i += 1;
    }
    (exp, log)
}

/// Multiply in GF(2^8).
#[inline]
pub fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Multiplicative inverse; `a` must be nonzero.
#[inline]
pub fn gf_inv(a: u8) -> u8 {
    debug_assert_ne!(a, 0, "zero has no inverse in GF(2^8)");
    EXP[255 - LOG[a as usize] as usize]
}

/// 256-entry multiplication table for one coefficient: the inner loops
/// of encode/reconstruct become one lookup + XOR per byte.
fn mul_table(c: u8) -> [u8; 256] {
    let mut t = [0u8; 256];
    if c == 0 {
        return t;
    }
    let lc = LOG[c as usize] as usize;
    for (b, slot) in t.iter_mut().enumerate().skip(1) {
        *slot = EXP[lc + LOG[b] as usize];
    }
    t
}

/// XOR `table[src[i]]` into `dst[i]`, with the `coef == 1` fast path.
#[inline]
fn mul_acc(dst: &mut [u8], src: &[u8], coef: u8, table: &[u8; 256]) {
    debug_assert_eq!(dst.len(), src.len());
    if coef == 0 {
        return;
    }
    if coef == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= *s;
        }
    } else {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= table[*s as usize];
        }
    }
}

/// Typed codec failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// More shards are missing than the parity budget can rebuild.
    TooManyLost {
        /// Number of missing shards (data + parity).
        lost: usize,
        /// Parity shards available to cover losses.
        parity: usize,
    },
    /// `data + parity` exceeds the GF(2^8) limit of 256 total shards,
    /// or one of the counts is zero.
    BadGeometry {
        /// Requested data shard count.
        data: usize,
        /// Requested parity shard count.
        parity: usize,
    },
}

impl std::fmt::Display for RsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsError::TooManyLost { lost, parity } => {
                write!(f, "{lost} shard(s) lost but only {parity} parity shard(s) available")
            }
            RsError::BadGeometry { data, parity } => write!(
                f,
                "unsupported geometry: {data} data + {parity} parity shards \
                 (need both >= 1 and sum <= 256)"
            ),
        }
    }
}

impl std::error::Error for RsError {}

/// A fixed `(k, m)` Reed-Solomon code with its encode matrix.
#[derive(Debug, Clone)]
pub struct RsCode {
    k: usize,
    m: usize,
    /// `m × k` parity rows of the systematic generator `[I; rows]`.
    rows: Vec<Vec<u8>>,
}

impl RsCode {
    /// Build the code for `k` data and `m` parity shards.
    pub fn new(k: usize, m: usize) -> Result<RsCode, RsError> {
        if k == 0 || m == 0 || k + m > 256 {
            return Err(RsError::BadGeometry { data: k, parity: m });
        }
        // Cauchy matrix C[i][j] = 1 / (x_i ^ y_j) with x_i = i (parity
        // rows) and y_j = m + j (data columns): the two index sets are
        // disjoint in GF(2^8) whenever k + m <= 256, so every entry is
        // defined and every square submatrix is invertible. Normalise
        // each column by its row-0 entry so row 0 is all ones.
        let mut rows = vec![vec![0u8; k]; m];
        for (i, row) in rows.iter_mut().enumerate() {
            for (j, e) in row.iter_mut().enumerate() {
                *e = gf_inv((i as u8) ^ ((m + j) as u8));
            }
        }
        for j in 0..k {
            let norm = gf_inv(rows[0][j]);
            for row in rows.iter_mut() {
                row[j] = gf_mul(row[j], norm);
            }
        }
        Ok(RsCode { k, m, rows })
    }

    /// Data shard count.
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Parity shard count.
    pub fn parity_shards(&self) -> usize {
        self.m
    }

    /// The encode coefficient for (parity row `i`, data shard `j`).
    pub fn coefficient(&self, i: usize, j: usize) -> u8 {
        self.rows[i][j]
    }

    /// Streaming encode step: XOR data shard `j`'s chunk into every
    /// parity accumulator. Call once per (data shard, chunk); parity
    /// buffers must be zeroed at the start of each chunk.
    pub fn encode_acc(&self, j: usize, data_chunk: &[u8], parity_chunks: &mut [Vec<u8>]) {
        assert_eq!(parity_chunks.len(), self.m, "parity buffer count");
        for (i, p) in parity_chunks.iter_mut().enumerate() {
            let c = self.rows[i][j];
            let t = mul_table(c);
            mul_acc(&mut p[..data_chunk.len()], data_chunk, c, &t);
        }
    }

    /// One-shot encode of equal-length data shards into `m` parity
    /// shards (convenience for tests and small groups).
    pub fn encode(&self, data: &[Vec<u8>]) -> Vec<Vec<u8>> {
        assert_eq!(data.len(), self.k, "data shard count");
        let len = data.first().map_or(0, |d| d.len());
        let mut parity = vec![vec![0u8; len]; self.m];
        for (j, d) in data.iter().enumerate() {
            assert_eq!(d.len(), len, "data shards must share a stripe length");
            self.encode_acc(j, d, &mut parity);
        }
        parity
    }

    /// Rebuild every missing shard in place. `shards` holds the
    /// `k + m` group members in order (data `0..k`, then parity);
    /// `None` marks a loss. Present shards must all be `stripe_len`
    /// bytes. On success every entry is `Some` and data entries are
    /// bit-identical to the originals.
    pub fn reconstruct(
        &self,
        shards: &mut [Option<Vec<u8>>],
        stripe_len: usize,
    ) -> Result<(), RsError> {
        assert_eq!(shards.len(), self.k + self.m, "group size");
        for s in shards.iter().flatten() {
            assert_eq!(s.len(), stripe_len, "present shards must be stripe-length");
        }
        let lost = shards.iter().filter(|s| s.is_none()).count();
        if lost == 0 {
            return Ok(());
        }
        if lost > self.m {
            return Err(RsError::TooManyLost { lost, parity: self.m });
        }

        let missing_data: Vec<usize> = (0..self.k).filter(|&j| shards[j].is_none()).collect();
        if !missing_data.is_empty() {
            // Pick k surviving rows of [I; rows]: every present data
            // shard contributes its identity row, then parity rows
            // fill the gap. Invert and multiply.
            let mut chosen_rows: Vec<Vec<u8>> = Vec::with_capacity(self.k);
            let mut chosen_src: Vec<usize> = Vec::with_capacity(self.k);
            for j in 0..self.k {
                if shards[j].is_some() {
                    let mut row = vec![0u8; self.k];
                    row[j] = 1;
                    chosen_rows.push(row);
                    chosen_src.push(j);
                }
            }
            for i in 0..self.m {
                if chosen_rows.len() == self.k {
                    break;
                }
                if shards[self.k + i].is_some() {
                    chosen_rows.push(self.rows[i].clone());
                    chosen_src.push(self.k + i);
                }
            }
            if chosen_rows.len() < self.k {
                return Err(RsError::TooManyLost { lost, parity: self.m });
            }
            let inv = invert(chosen_rows, self.k);
            for &d in &missing_data {
                let mut out = vec![0u8; stripe_len];
                for (s, &src) in chosen_src.iter().enumerate() {
                    let c = inv[d][s];
                    let t = mul_table(c);
                    mul_acc(&mut out, shards[src].as_ref().expect("chosen"), c, &t);
                }
                shards[d] = Some(out);
            }
        }
        // With all data present, missing parity is a plain re-encode.
        for i in 0..self.m {
            if shards[self.k + i].is_some() {
                continue;
            }
            let mut out = vec![0u8; stripe_len];
            for (j, &c) in self.rows[i].iter().enumerate().take(self.k) {
                let t = mul_table(c);
                mul_acc(&mut out, shards[j].as_ref().expect("data complete"), c, &t);
            }
            shards[self.k + i] = Some(out);
        }
        Ok(())
    }
}

/// Gauss–Jordan inversion of a `k × k` matrix over GF(2^8). The input
/// rows come from `[I; Cauchy]`, so the matrix is always invertible;
/// a missing pivot is a codec bug, not a recoverable condition.
fn invert(mut a: Vec<Vec<u8>>, k: usize) -> Vec<Vec<u8>> {
    let mut inv: Vec<Vec<u8>> = (0..k)
        .map(|i| {
            let mut row = vec![0u8; k];
            row[i] = 1;
            row
        })
        .collect();
    for col in 0..k {
        let pivot =
            (col..k).find(|&r| a[r][col] != 0).expect("RS decode matrix is singular (codec bug)");
        a.swap(col, pivot);
        inv.swap(col, pivot);
        let scale = gf_inv(a[col][col]);
        for x in a[col].iter_mut().chain(inv[col].iter_mut()) {
            *x = gf_mul(*x, scale);
        }
        let apiv = a[col].clone();
        let ipiv = inv[col].clone();
        for r in 0..k {
            if r == col || a[r][col] == 0 {
                continue;
            }
            let f = a[r][col];
            for (x, p) in a[r].iter_mut().zip(apiv.iter()) {
                *x ^= gf_mul(f, *p);
            }
            for (x, p) in inv[r].iter_mut().zip(ipiv.iter()) {
                *x ^= gf_mul(f, *p);
            }
        }
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_tables_are_consistent() {
        // 2 generates the multiplicative group under 0x11d.
        for a in 1u16..=255 {
            let a = a as u8;
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a={a}");
            assert_eq!(gf_mul(a, 1), a);
            assert_eq!(gf_mul(a, 0), 0);
        }
        // Distributivity spot check across a grid.
        for a in (0u16..=255).step_by(17) {
            for b in (0u16..=255).step_by(13) {
                for c in (0u16..=255).step_by(29) {
                    let (a, b, c) = (a as u8, b as u8, c as u8);
                    assert_eq!(gf_mul(a, b ^ c), gf_mul(a, b) ^ gf_mul(a, c));
                }
            }
        }
    }

    #[test]
    fn row_zero_is_all_ones() {
        let code = RsCode::new(7, 3).unwrap();
        for j in 0..7 {
            assert_eq!(code.coefficient(0, j), 1);
        }
    }

    #[test]
    fn single_parity_is_xor() {
        let code = RsCode::new(4, 1).unwrap();
        let data: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i * 3 + 1; 16]).collect();
        let parity = code.encode(&data);
        for t in 0..16 {
            let x = data.iter().fold(0u8, |acc, d| acc ^ d[t]);
            assert_eq!(parity[0][t], x);
        }
    }

    fn roundtrip(k: usize, m: usize, erase: &[usize]) {
        let code = RsCode::new(k, m).unwrap();
        let stripe = 64;
        let data: Vec<Vec<u8>> = (0..k)
            .map(|j| (0..stripe).map(|t| ((j * 37 + t * 11 + 5) % 251) as u8).collect())
            .collect();
        let parity = code.encode(&data);
        let mut shards: Vec<Option<Vec<u8>>> =
            data.iter().chain(parity.iter()).map(|s| Some(s.clone())).collect();
        for &e in erase {
            shards[e] = None;
        }
        code.reconstruct(&mut shards, stripe).unwrap();
        for (j, d) in data.iter().enumerate() {
            assert_eq!(shards[j].as_ref().unwrap(), d, "data shard {j}");
        }
        for (i, p) in parity.iter().enumerate() {
            assert_eq!(shards[k + i].as_ref().unwrap(), p, "parity shard {i}");
        }
    }

    #[test]
    fn every_single_and_double_erasure_recovers() {
        let (k, m) = (5, 2);
        for a in 0..k + m {
            roundtrip(k, m, &[a]);
            for b in a + 1..k + m {
                roundtrip(k, m, &[a, b]);
            }
        }
    }

    #[test]
    fn every_triple_erasure_recovers_with_three_parity() {
        let (k, m) = (4, 3);
        for a in 0..k + m {
            for b in a + 1..k + m {
                for c in b + 1..k + m {
                    roundtrip(k, m, &[a, b, c]);
                }
            }
        }
    }

    #[test]
    fn too_many_lost_is_typed() {
        let code = RsCode::new(4, 2).unwrap();
        let data: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 8]).collect();
        let parity = code.encode(&data);
        let mut shards: Vec<Option<Vec<u8>>> =
            data.iter().chain(parity.iter()).map(|s| Some(s.clone())).collect();
        shards[0] = None;
        shards[2] = None;
        shards[4] = None;
        let err = code.reconstruct(&mut shards, 8).unwrap_err();
        assert_eq!(err, RsError::TooManyLost { lost: 3, parity: 2 });
    }

    #[test]
    fn bad_geometry_is_typed() {
        assert_eq!(RsCode::new(0, 1).unwrap_err(), RsError::BadGeometry { data: 0, parity: 1 });
        assert_eq!(RsCode::new(250, 7).unwrap_err(), RsError::BadGeometry { data: 250, parity: 7 });
        assert!(RsCode::new(250, 6).is_ok());
    }

    #[test]
    fn streaming_encode_matches_one_shot() {
        let code = RsCode::new(6, 3).unwrap();
        let stripe = 100;
        let data: Vec<Vec<u8>> = (0..6)
            .map(|j| (0..stripe).map(|t| ((j * 91 + t * 7 + 3) % 256) as u8).collect())
            .collect();
        let whole = code.encode(&data);
        // Chunked: 100 bytes in chunks of 32.
        let mut parity = vec![Vec::new(); 3];
        let mut off = 0;
        while off < stripe {
            let len = 32.min(stripe - off);
            let mut chunks = vec![vec![0u8; len]; 3];
            for (j, d) in data.iter().enumerate() {
                code.encode_acc(j, &d[off..off + len], &mut chunks);
            }
            for (p, c) in parity.iter_mut().zip(chunks) {
                p.extend_from_slice(&c);
            }
            off += len;
        }
        assert_eq!(parity, whole);
    }
}
