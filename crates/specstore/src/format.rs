//! Shard header layout, config fingerprint, and the typed error set.
//!
//! A shard file is a fixed-size header followed by a raw little-endian
//! dump of the flat table's slot arrays:
//!
//! ```text
//! offset size field             notes
//!      0    8 magic             b"RPTLSPEC"
//!      8    4 version           FORMAT_VERSION
//!     12    4 kind              0 = kmer, 1 = tile
//!     16    4 k                 ┐
//!     20    4 tile_overlap      │
//!     24    4 canonical (0/1)   │ config fingerprint: a snapshot is
//!     28    4 kmer_threshold    │ only loadable under the exact build
//!     32    4 tile_threshold    ┘ configuration that produced it
//!     36    4 rank              producing rank
//!     40    4 np                producing rank count
//!     44    4 load_num          ┐ max load factor the slot geometry
//!     48    4 load_den          ┘ was built at
//!     52    4 sentinel_present  0/1: all-ones key side-field occupied
//!     56    4 sentinel_count    side-field count (0 when absent)
//!     60    8 hash_seed         probe-family fingerprint (HASH_SEED)
//!     68    8 capacity          slot count (0 or power of two ≥ 16)
//!     76    8 entries           occupied slots (sentinel excluded)
//!     84    8 body_bytes        capacity × 12 (kmer) or × 20 (tile)
//!     92    8 checksum          FNV-1a over header (this field zeroed)
//!                               then body, in file order
//!    100      body              kmer: keys[cap] u64, counts[cap] u32
//!                               tile: lo[cap] u64, hi[cap] u64,
//!                                     counts[cap] u32
//! ```
//!
//! The slot arrays are dumped verbatim, so a loaded shard is probe-ready
//! with no rehash — provided the loader's probe family matches, which is
//! what the `hash_seed` field enforces.

use std::fmt;
use std::path::PathBuf;

use reptile::{ReptileParams, HASH_SEED};

/// File magic: identifies a Reptile spectrum shard.
pub const MAGIC: [u8; 8] = *b"RPTLSPEC";
/// Current shard/manifest format version. v2 added Reed-Solomon parity
/// shards and their manifest records; shard bodies are unchanged.
pub const FORMAT_VERSION: u32 = 2;
/// Oldest format version this build still reads. v1 snapshots (no
/// parity) load under `RecoveryPolicy::Strict`.
pub const MIN_FORMAT_VERSION: u32 = 1;
/// Fixed header size in bytes.
pub const HEADER_BYTES: usize = 100;
/// Byte offset of the checksum field within the header.
pub const CHECKSUM_OFFSET: usize = 92;

/// Which flat-table variant a shard holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShardKind {
    /// `FlatKmerTable` dump: `u64` keys + `u32` counts, 12 bytes/slot.
    Kmer,
    /// `FlatTileTable` dump: split `u64` halves + `u32` counts,
    /// 20 bytes/slot.
    Tile,
}

impl ShardKind {
    /// Wire code stored in the header.
    pub fn code(self) -> u32 {
        match self {
            ShardKind::Kmer => 0,
            ShardKind::Tile => 1,
        }
    }

    /// Decode a wire code.
    pub fn from_code(code: u32) -> Option<ShardKind> {
        match code {
            0 => Some(ShardKind::Kmer),
            1 => Some(ShardKind::Tile),
            _ => None,
        }
    }

    /// Bytes per slot in the body.
    pub fn slot_bytes(self) -> u64 {
        match self {
            ShardKind::Kmer => 12,
            ShardKind::Tile => 20,
        }
    }

    /// Short name used in manifest lines and file names.
    pub fn name(self) -> &'static str {
        match self {
            ShardKind::Kmer => "kmer",
            ShardKind::Tile => "tile",
        }
    }
}

impl fmt::Display for ShardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The build configuration a snapshot is bound to. Loading under any
/// other configuration is a typed error, never a silent wrong answer:
/// slot positions depend on the probe family (`hash_seed`), and entry
/// semantics depend on `k`/`tile_overlap`/`canonical`/thresholds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConfigFingerprint {
    /// K-mer length.
    pub k: u32,
    /// Tile overlap.
    pub tile_overlap: u32,
    /// Strand canonicalization flag.
    pub canonical: bool,
    /// K-mer prune threshold the snapshot was built at.
    pub kmer_threshold: u32,
    /// Tile prune threshold the snapshot was built at.
    pub tile_threshold: u32,
    /// Probe-family fingerprint ([`reptile::HASH_SEED`]).
    pub hash_seed: u64,
}

impl ConfigFingerprint {
    /// Fingerprint for a parameter set under the current probe family.
    pub fn for_params(params: &ReptileParams) -> ConfigFingerprint {
        ConfigFingerprint {
            k: params.k as u32,
            tile_overlap: params.tile_overlap as u32,
            canonical: params.canonical,
            kmer_threshold: params.kmer_threshold,
            tile_threshold: params.tile_threshold,
            hash_seed: HASH_SEED,
        }
    }
}

/// Everything the fixed-size shard header records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardHeader {
    /// Format version of the file.
    pub version: u32,
    /// Table variant in the body.
    pub kind: ShardKind,
    /// Build configuration fingerprint.
    pub fingerprint: ConfigFingerprint,
    /// Producing rank.
    pub rank: u32,
    /// Producing rank count.
    pub np: u32,
    /// Max load factor numerator of the dumped geometry.
    pub load_num: u32,
    /// Max load factor denominator.
    pub load_den: u32,
    /// Side-field count for the all-ones sentinel key, if occupied.
    pub sentinel_count: Option<u32>,
    /// Slot count (0 or a power of two).
    pub capacity: u64,
    /// Occupied slots (sentinel excluded).
    pub entries: u64,
    /// Body length in bytes (`capacity × kind.slot_bytes()`).
    pub body_bytes: u64,
    /// FNV-1a over the checksum-zeroed header then the body.
    pub checksum: u64,
}

impl ShardHeader {
    /// Serialize to the fixed wire layout.
    pub fn encode(&self) -> [u8; HEADER_BYTES] {
        let mut buf = [0u8; HEADER_BYTES];
        buf[0..8].copy_from_slice(&MAGIC);
        let words32: [(usize, u32); 13] = [
            (8, self.version),
            (12, self.kind.code()),
            (16, self.fingerprint.k),
            (20, self.fingerprint.tile_overlap),
            (24, self.fingerprint.canonical as u32),
            (28, self.fingerprint.kmer_threshold),
            (32, self.fingerprint.tile_threshold),
            (36, self.rank),
            (40, self.np),
            (44, self.load_num),
            (48, self.load_den),
            (52, self.sentinel_count.is_some() as u32),
            (56, self.sentinel_count.unwrap_or(0)),
        ];
        for (off, v) in words32 {
            buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
        }
        let words64: [(usize, u64); 5] = [
            (60, self.fingerprint.hash_seed),
            (68, self.capacity),
            (76, self.entries),
            (84, self.body_bytes),
            (CHECKSUM_OFFSET, self.checksum),
        ];
        for (off, v) in words64 {
            buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
        }
        buf
    }

    /// Parse the wire layout. Only magic, version, and the kind code are
    /// validated here — everything else is the caller's job (fingerprint
    /// and geometry checks need context this function doesn't have).
    pub fn decode(
        buf: &[u8; HEADER_BYTES],
        path: &std::path::Path,
    ) -> Result<ShardHeader, SnapshotError> {
        let u32_at = |off: usize| u32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
        let u64_at = |off: usize| u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
        if buf[0..8] != MAGIC {
            return Err(SnapshotError::BadMagic { path: path.to_path_buf() });
        }
        let version = u32_at(8);
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(SnapshotError::VersionSkew {
                path: path.to_path_buf(),
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let kind = ShardKind::from_code(u32_at(12)).ok_or_else(|| SnapshotError::InvalidTable {
            path: path.to_path_buf(),
            reason: format!("unknown shard kind code {}", u32_at(12)),
        })?;
        Ok(ShardHeader {
            version,
            kind,
            fingerprint: ConfigFingerprint {
                k: u32_at(16),
                tile_overlap: u32_at(20),
                canonical: u32_at(24) != 0,
                kmer_threshold: u32_at(28),
                tile_threshold: u32_at(32),
                hash_seed: u64_at(60),
            },
            rank: u32_at(36),
            np: u32_at(40),
            load_num: u32_at(44),
            load_den: u32_at(48),
            sentinel_count: (u32_at(52) != 0).then(|| u32_at(56)),
            capacity: u64_at(68),
            entries: u64_at(76),
            body_bytes: u64_at(84),
            checksum: u64_at(CHECKSUM_OFFSET),
        })
    }

    /// Reject a fingerprint that differs from `expected`, naming the
    /// first differing field.
    pub fn check_fingerprint(
        &self,
        expected: &ConfigFingerprint,
        path: &std::path::Path,
    ) -> Result<(), SnapshotError> {
        let stored = &self.fingerprint;
        let fields: [(&'static str, u64, u64); 6] = [
            ("k", stored.k as u64, expected.k as u64),
            ("tile_overlap", stored.tile_overlap as u64, expected.tile_overlap as u64),
            ("canonical", stored.canonical as u64, expected.canonical as u64),
            ("kmer_threshold", stored.kmer_threshold as u64, expected.kmer_threshold as u64),
            ("tile_threshold", stored.tile_threshold as u64, expected.tile_threshold as u64),
            ("hash_seed", stored.hash_seed, expected.hash_seed),
        ];
        for (field, got, want) in fields {
            if got != want {
                return Err(SnapshotError::FingerprintMismatch {
                    path: path.to_path_buf(),
                    field,
                    stored: got,
                    expected: want,
                });
            }
        }
        Ok(())
    }
}

/// Every way a snapshot can fail to load or save. Corruption never
/// surfaces as garbage corrections — each class is a distinct variant so
/// callers (and tests) can tell truncation from bit-rot from a
/// configuration mismatch.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem error.
    Io {
        /// File being accessed.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// File shorter than its header claims (interrupted write, chopped
    /// transfer, or injected fault).
    Truncated {
        /// File being read.
        path: PathBuf,
        /// Bytes the header (or fixed layout) requires.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// Leading bytes are not the shard magic — not a shard file.
    BadMagic {
        /// File being read.
        path: PathBuf,
    },
    /// Shard written by an incompatible format version.
    VersionSkew {
        /// File being read.
        path: PathBuf,
        /// Version in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// Stored checksum does not match the recomputed digest (bit-rot or
    /// torn write inside an otherwise well-formed file).
    Checksum {
        /// File being read.
        path: PathBuf,
        /// Digest recorded in the header.
        stored: u64,
        /// Digest recomputed over the file.
        computed: u64,
    },
    /// Snapshot built under a different configuration (wrong k, strand
    /// policy, thresholds, or probe family).
    FingerprintMismatch {
        /// File being read.
        path: PathBuf,
        /// First differing fingerprint field.
        field: &'static str,
        /// Value in the file.
        stored: u64,
        /// Value this run requires.
        expected: u64,
    },
    /// Header passed its checksum yet describes an impossible table
    /// (bad geometry, occupancy above the load bound, kind mismatch).
    InvalidTable {
        /// File being read.
        path: PathBuf,
        /// What was wrong.
        reason: String,
    },
    /// Manifest file malformed.
    Manifest {
        /// Manifest path.
        path: PathBuf,
        /// 1-based line number, 0 for file-level problems.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// Manifest references a shard file that is absent.
    MissingShard {
        /// The missing shard's path.
        path: PathBuf,
    },
    /// A peer rank failed its snapshot I/O, so this rank aborted before
    /// entering the collective exchange (distributed load/save only).
    PeerFailure {
        /// Number of ranks that reported failure.
        failed_ranks: u64,
    },
    /// A `Repair` policy was requested but the manifest records no
    /// parity shards (v1 snapshot, or saved with `--parity 0`).
    NoParity {
        /// Snapshot directory.
        dir: PathBuf,
    },
    /// More shards of one group are lost than the repair budget covers
    /// (`min(manifest parity, policy max_lost)`).
    TooManyLost {
        /// Snapshot directory.
        dir: PathBuf,
        /// Table kind of the damaged group.
        kind: ShardKind,
        /// Unreadable shards in the group (data + parity).
        lost: usize,
        /// Shards the repair budget could have covered.
        budget: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { path, source } => {
                write!(f, "snapshot I/O error on {}: {source}", path.display())
            }
            SnapshotError::Truncated { path, expected, actual } => write!(
                f,
                "snapshot file {} truncated: need {expected} bytes, found {actual}",
                path.display()
            ),
            SnapshotError::BadMagic { path } => {
                write!(f, "{} is not a spectrum shard (bad magic)", path.display())
            }
            SnapshotError::VersionSkew { path, found, expected } => write!(
                f,
                "{} uses format version {found}, this build reads version {expected}",
                path.display()
            ),
            SnapshotError::Checksum { path, stored, computed } => write!(
                f,
                "checksum mismatch in {}: stored {stored:#018x}, computed {computed:#018x}",
                path.display()
            ),
            SnapshotError::FingerprintMismatch { path, field, stored, expected } => write!(
                f,
                "{} was built under a different configuration: {field} is {stored}, \
                 this run requires {expected}",
                path.display()
            ),
            SnapshotError::InvalidTable { path, reason } => {
                write!(f, "{} describes an invalid table: {reason}", path.display())
            }
            SnapshotError::Manifest { path, line, reason } => {
                write!(f, "malformed manifest {} (line {line}): {reason}", path.display())
            }
            SnapshotError::MissingShard { path } => {
                write!(f, "manifest references missing shard {}", path.display())
            }
            SnapshotError::PeerFailure { failed_ranks } => {
                write!(f, "{failed_ranks} peer rank(s) failed snapshot I/O; aborted")
            }
            SnapshotError::NoParity { dir } => write!(
                f,
                "repair policy requested but snapshot {} has no parity shards",
                dir.display()
            ),
            SnapshotError::TooManyLost { dir, kind, lost, budget } => write!(
                f,
                "{} {kind} group: {lost} shard(s) unreadable, repair budget is {budget}",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl SnapshotError {
    /// Wrap an OS error with the path it occurred on.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> SnapshotError {
        SnapshotError::Io { path: path.into(), source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn header() -> ShardHeader {
        ShardHeader {
            version: FORMAT_VERSION,
            kind: ShardKind::Tile,
            fingerprint: ConfigFingerprint {
                k: 12,
                tile_overlap: 6,
                canonical: true,
                kmer_threshold: 3,
                tile_threshold: 2,
                hash_seed: HASH_SEED,
            },
            rank: 3,
            np: 4,
            load_num: 3,
            load_den: 4,
            sentinel_count: Some(7),
            capacity: 64,
            entries: 40,
            body_bytes: 64 * 20,
            checksum: 0xdead_beef_cafe_f00d,
        }
    }

    #[test]
    fn header_encode_decode_roundtrip() {
        let h = header();
        let decoded = ShardHeader::decode(&h.encode(), Path::new("x")).unwrap();
        assert_eq!(decoded, h);
        // absent sentinel round-trips too
        let h2 = ShardHeader { sentinel_count: None, ..h };
        assert_eq!(ShardHeader::decode(&h2.encode(), Path::new("x")).unwrap(), h2);
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut buf = header().encode();
        buf[0] = b'X';
        assert!(matches!(
            ShardHeader::decode(&buf, Path::new("x")),
            Err(SnapshotError::BadMagic { .. })
        ));
        let mut buf = header().encode();
        buf[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            ShardHeader::decode(&buf, Path::new("x")),
            Err(SnapshotError::VersionSkew { found: 99, .. })
        ));
    }

    #[test]
    fn fingerprint_mismatch_names_the_field() {
        let h = header();
        let mut want = h.fingerprint;
        want.k = 13;
        let err = h.check_fingerprint(&want, Path::new("x")).unwrap_err();
        match err {
            SnapshotError::FingerprintMismatch { field, stored, expected, .. } => {
                assert_eq!(field, "k");
                assert_eq!((stored, expected), (12, 13));
            }
            other => panic!("wrong variant: {other}"),
        }
        let mut want = h.fingerprint;
        want.hash_seed ^= 1;
        assert!(matches!(
            h.check_fingerprint(&want, Path::new("x")),
            Err(SnapshotError::FingerprintMismatch { field: "hash_seed", .. })
        ));
        assert!(h.check_fingerprint(&h.fingerprint, Path::new("x")).is_ok());
    }
}
