//! Run configuration files.
//!
//! "The input to parallel Reptile consists of a configuration file, which
//! specifies the fasta file and the quality file to be used for the error
//! correction" (paper §III step I). The config also carries the chunk
//! size ("the chunk size is also defined in the configuration file") and
//! the algorithm parameters (k, thresholds, quality cutoff).
//!
//! Format: one `key = value` pair per line; `#` starts a comment; keys
//! are case-insensitive; unknown keys are rejected (catching typos beats
//! silently ignoring a threshold).

use crate::{IoError, Result};
use std::path::{Path, PathBuf};

/// All knobs of a (parallel) Reptile run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunConfig {
    /// Path of the FASTA input.
    pub fasta_file: PathBuf,
    /// Path of the quality-score input.
    pub qual_file: PathBuf,
    /// Path for corrected output (FASTA).
    pub output_file: PathBuf,
    /// K-mer length (`1..=32`).
    pub k: usize,
    /// Overlap between the two k-mers of a tile (`1..k`).
    pub tile_overlap: usize,
    /// Reads per chunk in Step I / batch mode.
    pub chunk_size: usize,
    /// Minimum global count for a k-mer to be kept in the spectrum.
    pub kmer_threshold: u32,
    /// Minimum global count for a tile to be kept in the spectrum.
    pub tile_threshold: u32,
    /// Phred score below which a base is a candidate error position.
    pub q_threshold: u8,
    /// Maximum substitutions attempted per tile.
    pub max_errors_per_tile: usize,
    /// Cap on low-quality positions considered per tile (explosion guard).
    pub max_positions_per_tile: usize,
    /// Reject a correction if more than this many candidate tiles survive.
    pub max_candidates: usize,
    /// Fold k-mers/tiles with their reverse complements in the spectrum.
    pub canonical: bool,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            fasta_file: PathBuf::from("reads.fa"),
            qual_file: PathBuf::from("reads.qual"),
            output_file: PathBuf::from("corrected.fa"),
            k: 12,
            tile_overlap: 6,
            chunk_size: 2000,
            kmer_threshold: 3,
            tile_threshold: 3,
            q_threshold: 20,
            max_errors_per_tile: 2,
            max_positions_per_tile: 8,
            max_candidates: 4,
            canonical: false,
        }
    }
}

impl RunConfig {
    /// Parse a config file's text.
    ///
    /// ```
    /// use genio::RunConfig;
    /// let cfg = RunConfig::parse("k = 10\ntile_overlap = 5\n# comment\n").unwrap();
    /// assert_eq!(cfg.k, 10);
    /// assert_eq!(cfg.tile_overlap, 5);
    /// ```
    pub fn parse(text: &str) -> Result<RunConfig> {
        let mut cfg = RunConfig::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                IoError::Malformed(format!("config line {}: expected key = value", lineno + 1))
            })?;
            let key = key.trim().to_ascii_lowercase();
            let value = value.trim();
            let bad = |what: &str| {
                IoError::Malformed(format!("config line {}: bad {what}: '{value}'", lineno + 1))
            };
            match key.as_str() {
                "fasta_file" => cfg.fasta_file = PathBuf::from(value),
                "qual_file" => cfg.qual_file = PathBuf::from(value),
                "output_file" => cfg.output_file = PathBuf::from(value),
                "k" => cfg.k = value.parse().map_err(|_| bad("integer"))?,
                "tile_overlap" => cfg.tile_overlap = value.parse().map_err(|_| bad("integer"))?,
                "chunk_size" => cfg.chunk_size = value.parse().map_err(|_| bad("integer"))?,
                "kmer_threshold" => {
                    cfg.kmer_threshold = value.parse().map_err(|_| bad("integer"))?
                }
                "tile_threshold" => {
                    cfg.tile_threshold = value.parse().map_err(|_| bad("integer"))?
                }
                "q_threshold" => cfg.q_threshold = value.parse().map_err(|_| bad("integer"))?,
                "max_errors_per_tile" => {
                    cfg.max_errors_per_tile = value.parse().map_err(|_| bad("integer"))?
                }
                "max_positions_per_tile" => {
                    cfg.max_positions_per_tile = value.parse().map_err(|_| bad("integer"))?
                }
                "max_candidates" => {
                    cfg.max_candidates = value.parse().map_err(|_| bad("integer"))?
                }
                "canonical" => {
                    cfg.canonical = match value.to_ascii_lowercase().as_str() {
                        "true" | "1" | "yes" => true,
                        "false" | "0" | "no" => false,
                        _ => return Err(bad("boolean")),
                    }
                }
                other => {
                    return Err(IoError::Malformed(format!(
                        "config line {}: unknown key '{other}'",
                        lineno + 1
                    )))
                }
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// Load and parse a config file.
    pub fn load(path: &Path) -> Result<RunConfig> {
        RunConfig::parse(&std::fs::read_to_string(path)?)
    }

    /// Check parameter invariants.
    pub fn validate(&self) -> Result<()> {
        let err = |m: String| Err(IoError::Malformed(m));
        if !(1..=32).contains(&self.k) {
            return err(format!("k must be in 1..=32, got {}", self.k));
        }
        if self.tile_overlap == 0 || self.tile_overlap >= self.k {
            return err(format!(
                "tile_overlap must be in 1..k={}, got {}",
                self.k, self.tile_overlap
            ));
        }
        if 2 * self.k - self.tile_overlap > 64 {
            return err(format!("tile length {} exceeds 64 bases", 2 * self.k - self.tile_overlap));
        }
        if self.chunk_size == 0 {
            return err("chunk_size must be positive".into());
        }
        if self.max_errors_per_tile == 0 {
            return err("max_errors_per_tile must be positive".into());
        }
        if self.max_candidates == 0 {
            return err("max_candidates must be positive".into());
        }
        Ok(())
    }

    /// Serialize back to the file format (round-trips through [`parse`]).
    ///
    /// [`parse`]: RunConfig::parse
    pub fn to_text(&self) -> String {
        format!(
            "fasta_file = {}\nqual_file = {}\noutput_file = {}\nk = {}\n\
             tile_overlap = {}\nchunk_size = {}\nkmer_threshold = {}\n\
             tile_threshold = {}\nq_threshold = {}\nmax_errors_per_tile = {}\n\
             max_positions_per_tile = {}\nmax_candidates = {}\ncanonical = {}\n",
            self.fasta_file.display(),
            self.qual_file.display(),
            self.output_file.display(),
            self.k,
            self.tile_overlap,
            self.chunk_size,
            self.kmer_threshold,
            self.tile_threshold,
            self.q_threshold,
            self.max_errors_per_tile,
            self.max_positions_per_tile,
            self.max_candidates,
            self.canonical,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        RunConfig::default().validate().unwrap();
    }

    #[test]
    fn parse_full_config() {
        let text = "\
            # Reptile run\n\
            fasta_file = /data/ecoli.fa\n\
            qual_file = /data/ecoli.qual   # inline comment\n\
            k = 10\n\
            tile_overlap = 5\n\
            chunk_size = 5000\n\
            kmer_threshold = 4\n\
            tile_threshold = 2\n\
            q_threshold = 25\n\
            max_errors_per_tile = 1\n\
            canonical = yes\n";
        let cfg = RunConfig::parse(text).unwrap();
        assert_eq!(cfg.fasta_file, PathBuf::from("/data/ecoli.fa"));
        assert_eq!(cfg.k, 10);
        assert_eq!(cfg.tile_overlap, 5);
        assert_eq!(cfg.chunk_size, 5000);
        assert_eq!(cfg.kmer_threshold, 4);
        assert_eq!(cfg.q_threshold, 25);
        assert!(cfg.canonical);
        // unset keys keep defaults
        assert_eq!(cfg.max_candidates, RunConfig::default().max_candidates);
    }

    #[test]
    fn text_round_trip() {
        let cfg = RunConfig { k: 14, tile_overlap: 7, canonical: true, ..RunConfig::default() };
        let reparsed = RunConfig::parse(&cfg.to_text()).unwrap();
        assert_eq!(reparsed, cfg);
    }

    #[test]
    fn rejects_unknown_key() {
        assert!(matches!(RunConfig::parse("kmer = 3\n"), Err(IoError::Malformed(_))));
    }

    #[test]
    fn rejects_bad_values() {
        assert!(RunConfig::parse("k = forty\n").is_err());
        assert!(RunConfig::parse("k = 0\n").is_err());
        assert!(RunConfig::parse("k = 33\n").is_err());
        assert!(RunConfig::parse("k = 8\ntile_overlap = 8\n").is_err());
        assert!(RunConfig::parse("chunk_size = 0\n").is_err());
        assert!(RunConfig::parse("canonical = maybe\n").is_err());
        assert!(RunConfig::parse("just a line\n").is_err());
    }

    #[test]
    fn tile_length_cap_enforced() {
        // k=32 requires overlap such that 64-overlap <= 64: any overlap>=1
        // passes the length check but boundary k/overlap combos must hold.
        assert!(RunConfig::parse("k = 32\ntile_overlap = 1\n").is_ok());
    }
}
