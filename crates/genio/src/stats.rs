//! Dataset inventory statistics (paper Table I).

use crate::dataset::DatasetProfile;
use dnaseq::Read;

/// The Table I row for a dataset: reads, read length, genome size and the
/// derived coverage `(length × reads) / genome`.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of reads.
    pub n_reads: u64,
    /// Read length in characters (the paper's datasets are fixed-length).
    pub read_len: usize,
    /// Genome size in bases.
    pub genome_size: u64,
}

impl DatasetStats {
    /// Stats straight from a profile (paper-scale or scaled).
    pub fn from_profile(p: &DatasetProfile) -> DatasetStats {
        DatasetStats {
            name: p.name.clone(),
            n_reads: p.n_reads as u64,
            read_len: p.read_len,
            genome_size: p.genome_len as u64,
        }
    }

    /// Measure stats from generated reads plus the known genome size.
    /// Uses the dominant (modal) read length, like the paper's table.
    pub fn from_reads(name: &str, reads: &[Read], genome_size: u64) -> DatasetStats {
        let mut len_counts = std::collections::HashMap::new();
        for r in reads {
            *len_counts.entry(r.len()).or_insert(0u64) += 1;
        }
        let read_len = len_counts.into_iter().max_by_key(|&(_, c)| c).map(|(l, _)| l).unwrap_or(0);
        DatasetStats { name: name.to_string(), n_reads: reads.len() as u64, read_len, genome_size }
    }

    /// Read coverage, as defined under Table I.
    pub fn coverage(&self) -> f64 {
        if self.genome_size == 0 {
            return 0.0;
        }
        self.read_len as f64 * self.n_reads as f64 / self.genome_size as f64
    }

    /// Format as a Table I row: `name  reads  length  genome  coverage`.
    pub fn table_row(&self) -> String {
        format!(
            "{:<18} {:>13} {:>8} {:>12.3e} {:>7.0}X",
            self.name,
            self.n_reads,
            self.read_len,
            self.genome_size as f64,
            self.coverage()
        )
    }

    /// The Table I header matching [`table_row`].
    ///
    /// [`table_row`]: DatasetStats::table_row
    pub fn table_header() -> String {
        format!(
            "{:<18} {:>13} {:>8} {:>12} {:>8}",
            "Genome", "Reads", "Length", "GenomeSize", "Coverage"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_profiles_reproduce_table_one() {
        // E.coli coverage is the *computed* value; the paper's printed 96X
        // contradicts its own formula (see dataset.rs tests).
        let rows = [
            (DatasetProfile::ecoli_like(), 8_874_761u64, 102, 4_600_000u64, 196.8),
            (DatasetProfile::drosophila_like(), 95_674_872, 96, 122_000_000, 75.0),
            (DatasetProfile::human_like(), 1_549_111_800, 102, 3_300_000_000, 47.0),
        ];
        for (prof, n, len, g, cov) in rows {
            let s = DatasetStats::from_profile(&prof);
            assert_eq!(s.n_reads, n);
            assert_eq!(s.read_len, len);
            assert_eq!(s.genome_size, g);
            assert!((s.coverage() - cov).abs() < 3.0, "{} -> {}", s.name, s.coverage());
        }
    }

    #[test]
    fn from_reads_measures_modal_length() {
        let reads = vec![
            Read::new(1, b"ACGT".to_vec(), vec![30; 4]),
            Read::new(2, b"ACGTA".to_vec(), vec![30; 5]),
            Read::new(3, b"TTTT".to_vec(), vec![30; 4]),
        ];
        let s = DatasetStats::from_reads("x", &reads, 100);
        assert_eq!(s.read_len, 4);
        assert_eq!(s.n_reads, 3);
        assert!((s.coverage() - 0.12).abs() < 1e-9);
    }

    #[test]
    fn coverage_handles_zero_genome() {
        let s = DatasetStats { name: "z".into(), n_reads: 5, read_len: 10, genome_size: 0 };
        assert_eq!(s.coverage(), 0.0);
    }

    #[test]
    fn table_row_formats() {
        let s = DatasetStats::from_profile(&DatasetProfile::ecoli_like());
        let row = s.table_row();
        assert!(row.contains("E.coli"));
        assert!(row.contains("8874761"));
        assert!(!DatasetStats::table_header().is_empty());
    }
}
