//! Input/output and dataset synthesis for the Reptile reproduction.
//!
//! * [`fasta`] — the FASTA dialect Reptile consumes: headers are ascending
//!   sequence numbers (`>1`, `>2`, …) produced by its input preprocessing
//!   (paper §III step I);
//! * [`qual`] — the companion quality-score files (same headers, one
//!   decimal Phred score per base);
//! * [`partition`] — offset-based parallel partitioning of both files, the
//!   paper's Step I ("each rank computes its subset of the reads whose
//!   size is simply the file size divided by the number of ranks");
//! * [`config`] — the run configuration file ("the input to parallel
//!   Reptile consists of a configuration file, which specifies the fasta
//!   file and the quality file");
//! * [`dataset`] — synthetic genome + Illumina-like read simulation
//!   standing in for the paper's E.coli / Drosophila / Human datasets
//!   (see DESIGN.md §2 for the substitution argument);
//! * [`stats`] — dataset inventory statistics (Table I).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod dataset;
pub mod fasta;
pub mod fastq;
pub mod openloop;
pub mod partition;
pub mod qual;
pub mod stats;

pub use config::RunConfig;
pub use dataset::{DatasetProfile, SyntheticDataset};
pub use openloop::{Arrival, MixComponent, OpenLoopGen, RequestMix};
pub use partition::{partition_range, PartitionedReader};
pub use stats::DatasetStats;

/// Errors produced by parsers and partitioned readers in this crate.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Structurally malformed record, with a human-readable explanation.
    Malformed(String),
    /// FASTA and quality files disagree (ids, lengths, counts).
    Mismatch(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Malformed(m) => write!(f, "malformed record: {m}"),
            IoError::Mismatch(m) => write!(f, "fasta/quality mismatch: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> IoError {
        IoError::Io(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, IoError>;
