//! FASTQ parsing and the Reptile preprocessing conversion.
//!
//! The paper's input pipeline predates FASTQ support: "At this point,
//! Reptile is not capable of reading the fastq format" — datasets were
//! prepared by converting the downloaded FASTQ into the numbered FASTA +
//! quality pair ("minor differences being introduced in the conversion of
//! the downloaded fastq file format to separate fasta and quality score
//! files which are needed by Reptile", §IV). This module implements both
//! the FASTQ reader/writer and that conversion, so the repository covers
//! the whole dataset-preparation path.

use crate::fasta::trim_eol;
use crate::{IoError, Result};
use dnaseq::quality::QualityEncoding;
use dnaseq::Read;
use std::io::{BufRead, Write};

/// A parsed FASTQ record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FastqRecord {
    /// Record name (everything after `@`, before any whitespace).
    pub name: Vec<u8>,
    /// Sequence line.
    pub seq: Vec<u8>,
    /// Phred scores (decoded from Sanger ASCII).
    pub qual: Vec<u8>,
}

/// Streaming FASTQ reader (4-line records; Sanger quality encoding by
/// default, Illumina-1.3 via [`FastqReader::with_encoding`]).
pub struct FastqReader<R: BufRead> {
    inner: R,
    line: Vec<u8>,
    records: u64,
    encoding: QualityEncoding,
}

impl<R: BufRead> FastqReader<R> {
    /// Wrap a buffered reader positioned at a record boundary.
    pub fn new(inner: R) -> FastqReader<R> {
        FastqReader::with_encoding(inner, QualityEncoding::SangerAscii)
    }

    /// Wrap a reader with an explicit quality encoding (the paper's
    /// datasets predate the Sanger-offset standardization; Illumina
    /// 1.3–1.7 files use offset 64).
    pub fn with_encoding(inner: R, encoding: QualityEncoding) -> FastqReader<R> {
        assert!(
            !matches!(encoding, QualityEncoding::DecimalText),
            "FASTQ qualities are per-character; DecimalText is for .qual files"
        );
        FastqReader { inner, line: Vec::with_capacity(512), records: 0, encoding }
    }

    fn read_line(&mut self) -> Result<bool> {
        self.line.clear();
        Ok(self.inner.read_until(b'\n', &mut self.line)? > 0)
    }

    /// Read the next record, or `Ok(None)` at EOF.
    pub fn next_record(&mut self) -> Result<Option<FastqRecord>> {
        let mut rec = FastqRecord { name: Vec::new(), seq: Vec::new(), qual: Vec::new() };
        Ok(self.next_record_into(&mut rec)?.then_some(rec))
    }

    /// Read the next record into `rec`, reusing its name/seq/qual
    /// buffers; returns `Ok(false)` at EOF. Streaming a whole FASTQ file
    /// through one record costs a fixed handful of buffers no matter how
    /// large the file — the ingestion-side counterpart of the
    /// out-of-core build's bounded-memory contract.
    pub fn next_record_into(&mut self, rec: &mut FastqRecord) -> Result<bool> {
        if !self.read_line()? {
            return Ok(false);
        }
        let n = self.records + 1;
        let header = trim_eol(&self.line);
        if header.first() != Some(&b'@') {
            return Err(IoError::Malformed(format!(
                "fastq record {n}: expected '@' header, got {:?}",
                String::from_utf8_lossy(&header[..header.len().min(20)])
            )));
        }
        rec.name.clear();
        rec.name.extend_from_slice(
            header[1..].split(|&c| c == b' ' || c == b'\t').next().unwrap_or(&[]),
        );
        rec.seq.clear();
        if self.inner.read_until(b'\n', &mut rec.seq)? == 0 {
            return Err(IoError::Malformed(format!("fastq record {n}: missing sequence")));
        }
        let keep = trim_eol(&rec.seq).len();
        rec.seq.truncate(keep);
        if !self.read_line()? {
            return Err(IoError::Malformed(format!("fastq record {n}: missing '+' line")));
        }
        if trim_eol(&self.line).first() != Some(&b'+') {
            return Err(IoError::Malformed(format!("fastq record {n}: expected '+' separator")));
        }
        if !self.read_line()? {
            return Err(IoError::Malformed(format!("fastq record {n}: missing qualities")));
        }
        let qual_ascii = trim_eol(&self.line);
        if qual_ascii.len() != rec.seq.len() {
            return Err(IoError::Mismatch(format!(
                "fastq record {n}: {} bases but {} quality characters",
                rec.seq.len(),
                qual_ascii.len()
            )));
        }
        if !self.encoding.decode_into(qual_ascii, &mut rec.qual) {
            return Err(IoError::Malformed(format!(
                "fastq record {n}: quality character out of range"
            )));
        }
        self.records += 1;
        Ok(true)
    }

    /// Collect all remaining records.
    pub fn read_all(&mut self) -> Result<Vec<FastqRecord>> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

/// Write one FASTQ record (Sanger qualities).
pub fn write_fastq_record(
    out: &mut impl Write,
    name: &[u8],
    seq: &[u8],
    qual: &[u8],
) -> std::io::Result<()> {
    debug_assert_eq!(seq.len(), qual.len());
    out.write_all(b"@")?;
    out.write_all(name)?;
    out.write_all(b"\n")?;
    out.write_all(seq)?;
    out.write_all(b"\n+\n")?;
    out.write_all(&QualityEncoding::SangerAscii.encode(qual))?;
    out.write_all(b"\n")
}

/// The Reptile preprocessing step: convert a FASTQ stream into the
/// numbered FASTA + decimal-quality file pair, renaming reads to
/// ascending sequence numbers starting at 1 (paper §III step I).
/// Returns the number of reads converted.
pub fn fastq_to_reptile_pair(
    fastq: impl BufRead,
    fasta_out: &mut impl Write,
    qual_out: &mut impl Write,
) -> Result<u64> {
    let mut reader = FastqReader::new(fastq);
    // One reusable record: the conversion streams a file of any size
    // through a fixed set of buffers.
    let mut rec = FastqRecord { name: Vec::new(), seq: Vec::new(), qual: Vec::new() };
    let mut id = 0u64;
    while reader.next_record_into(&mut rec)? {
        id += 1;
        crate::fasta::write_record(fasta_out, id, &rec.seq)?;
        crate::qual::write_qual_record(qual_out, id, &rec.qual)?;
    }
    Ok(id)
}

/// Load a FASTQ file directly into [`Read`]s (ids assigned 1..=n).
pub fn load_fastq(path: &std::path::Path) -> Result<Vec<Read>> {
    let file = std::fs::File::open(path)?;
    let mut reader = FastqReader::new(std::io::BufReader::new(file));
    let mut reads = Vec::new();
    let mut id = 0u64;
    while let Some(rec) = reader.next_record()? {
        id += 1;
        reads.push(Read::new(id, rec.seq, rec.qual));
    }
    Ok(reads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &[u8] = b"@r1 desc\nACGT\n+\nII5I\n@r2\nGGTTA\n+r2\nIIIII\n";

    #[test]
    fn parses_records() {
        let mut r = FastqReader::new(Cursor::new(SAMPLE.to_vec()));
        let recs = r.read_all().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, b"r1");
        assert_eq!(recs[0].seq, b"ACGT");
        assert_eq!(recs[0].qual, vec![40, 40, 20, 40]);
        assert_eq!(recs[1].name, b"r2");
        assert_eq!(recs[1].seq.len(), 5);
    }

    #[test]
    fn writer_round_trips() {
        let mut buf = Vec::new();
        write_fastq_record(&mut buf, b"x", b"ACGT", &[30, 31, 32, 33]).unwrap();
        let mut r = FastqReader::new(Cursor::new(buf));
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.name, b"x");
        assert_eq!(rec.seq, b"ACGT");
        assert_eq!(rec.qual, vec![30, 31, 32, 33]);
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            &b">r1\nACGT\n+\nIIII\n"[..],             // fasta header
            &b"@r1\nACGT\n+\nIII\n"[..],              // short quality
            &b"@r1\nACGT\nIIII\n"[..],                // missing +
            &b"@r1\nACGT\n+\n"[..],                   // truncated
            &b"@r1\nACGT\n+\n\x07\x07\x07\x07\n"[..], // qual out of range
        ] {
            let mut r = FastqReader::new(Cursor::new(bad.to_vec()));
            assert!(r.read_all().is_err(), "{:?}", String::from_utf8_lossy(bad));
        }
    }

    #[test]
    fn conversion_produces_numbered_pair() {
        let mut fa = Vec::new();
        let mut qu = Vec::new();
        let n = fastq_to_reptile_pair(Cursor::new(SAMPLE.to_vec()), &mut fa, &mut qu).unwrap();
        assert_eq!(n, 2);
        assert_eq!(fa, b">1\nACGT\n>2\nGGTTA\n".to_vec());
        assert!(qu.starts_with(b">1\n40 40 20 40\n>2\n"));
        // and the pair zips back into Reads
        use crate::fasta::RecordReader;
        use crate::qual::{zip_records, RecordIter};
        let reads: crate::Result<Vec<_>> = zip_records(
            RecordIter(RecordReader::new(Cursor::new(fa))),
            RecordIter(RecordReader::new(Cursor::new(qu))),
        )
        .collect();
        let reads = reads.unwrap();
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].id, 1);
        assert_eq!(reads[0].seq, b"ACGT");
    }

    #[test]
    fn illumina13_encoding_honoured() {
        // 'h' = 104 → Q40 in offset-64; would be Q71 in Sanger
        let data = b"@r\nACGT\n+\nhhhh\n".to_vec();
        let mut r =
            FastqReader::with_encoding(Cursor::new(data.clone()), QualityEncoding::Illumina13);
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.qual, vec![40; 4]);
        let mut sanger = FastqReader::new(Cursor::new(data));
        assert_eq!(sanger.next_record().unwrap().unwrap().qual, vec![71; 4]);
    }

    #[test]
    #[should_panic(expected = "DecimalText")]
    fn decimal_encoding_rejected_for_fastq() {
        let _ = FastqReader::with_encoding(Cursor::new(Vec::new()), QualityEncoding::DecimalText);
    }

    #[test]
    fn reusable_record_streams_without_regrowing() {
        // Stream many records through one record; after the first (largest)
        // record sizes the buffers, later records must not regrow them.
        let mut data = Vec::new();
        write_fastq_record(&mut data, b"widest-name", &[b'A'; 64], &[30; 64]).unwrap();
        for i in 0..50u8 {
            write_fastq_record(&mut data, b"r", &[b"ACGT"[i as usize % 4]; 16], &[30; 16]).unwrap();
        }
        let mut r = FastqReader::new(Cursor::new(data));
        let mut rec = FastqRecord { name: Vec::new(), seq: Vec::new(), qual: Vec::new() };
        assert!(r.next_record_into(&mut rec).unwrap());
        let caps = (rec.name.capacity(), rec.seq.capacity(), rec.qual.capacity());
        let mut n = 0;
        while r.next_record_into(&mut rec).unwrap() {
            n += 1;
            assert_eq!(rec.seq.len(), 16);
            assert_eq!(rec.qual, vec![30; 16]);
        }
        assert_eq!(n, 50);
        assert_eq!((rec.name.capacity(), rec.seq.capacity(), rec.qual.capacity()), caps);
    }

    #[test]
    fn empty_fastq_is_empty() {
        let mut r = FastqReader::new(Cursor::new(Vec::new()));
        assert!(r.next_record().unwrap().is_none());
    }
}
