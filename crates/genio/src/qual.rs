//! Quality-score files and joint (fasta, qual) dataset IO.
//!
//! The quality file mirrors the FASTA framing — `>NUMBER` header, then one
//! line of whitespace-separated decimal Phred scores, one per base — and
//! must stay in lockstep with the FASTA file: same sequence numbers, same
//! per-record base counts ("to ensure that the quality scores
//! corresponding to the same set of reads as the fasta file is processed",
//! paper §III step I).

use crate::fasta::{write_record, RawRecord, RecordReader};
use crate::{IoError, Result};
use dnaseq::quality::QualityEncoding;
use dnaseq::Read;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// Parse a raw quality record's payload into Phred scores.
pub fn parse_qual_line(rec: &RawRecord) -> Result<Vec<u8>> {
    QualityEncoding::DecimalText
        .decode(&rec.line)
        .ok_or_else(|| IoError::Malformed(format!("record {}: bad quality line", rec.id)))
}

/// Write a quality record.
pub fn write_qual_record(out: &mut impl Write, id: u64, quals: &[u8]) -> std::io::Result<()> {
    write_record(out, id, &QualityEncoding::DecimalText.encode(quals))
}

/// Zip a FASTA stream and a quality stream into [`Read`]s, validating
/// lockstep ids and matching lengths.
pub fn zip_records(
    fasta: impl Iterator<Item = Result<RawRecord>>,
    qual: impl Iterator<Item = Result<RawRecord>>,
) -> impl Iterator<Item = Result<Read>> {
    let mut fasta = fasta;
    let mut qual = qual;
    std::iter::from_fn(move || match (fasta.next(), qual.next()) {
        (None, None) => None,
        (Some(Ok(f)), Some(Ok(q))) => Some(build_read(f, q)),
        (Some(Err(e)), _) | (_, Some(Err(e))) => Some(Err(e)),
        (Some(f), None) => Some(Err(IoError::Mismatch(format!(
            "fasta record {} has no quality record",
            f.map(|r| r.id).unwrap_or(0)
        )))),
        (None, Some(q)) => Some(Err(IoError::Mismatch(format!(
            "quality record {} has no fasta record",
            q.map(|r| r.id).unwrap_or(0)
        )))),
    })
}

fn build_read(f: RawRecord, q: RawRecord) -> Result<Read> {
    if f.id != q.id {
        return Err(IoError::Mismatch(format!(
            "sequence number skew: fasta {} vs qual {}",
            f.id, q.id
        )));
    }
    let quals = parse_qual_line(&q)?;
    if quals.len() != f.line.len() {
        return Err(IoError::Mismatch(format!(
            "record {}: {} bases but {} quality scores",
            f.id,
            f.line.len(),
            quals.len()
        )));
    }
    Ok(Read::new(f.id, f.line, quals))
}

/// Iterator adapter over a [`RecordReader`].
pub struct RecordIter<R: BufRead>(pub RecordReader<R>);

impl<R: BufRead> Iterator for RecordIter<R> {
    type Item = Result<RawRecord>;

    fn next(&mut self) -> Option<Result<RawRecord>> {
        self.0.next_record().transpose()
    }
}

/// Load an entire (fasta, qual) file pair into memory. Small datasets and
/// tests only — the distributed code paths use [`crate::partition`].
pub fn load_dataset(fasta_path: &Path, qual_path: &Path) -> Result<Vec<Read>> {
    let f = RecordIter(RecordReader::new(BufReader::new(std::fs::File::open(fasta_path)?)));
    let q = RecordIter(RecordReader::new(BufReader::new(std::fs::File::open(qual_path)?)));
    zip_records(f, q).collect()
}

/// Write a full dataset as a (fasta, qual) file pair.
pub fn write_dataset(fasta_path: &Path, qual_path: &Path, reads: &[Read]) -> Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(fasta_path)?);
    let mut q = std::io::BufWriter::new(std::fs::File::create(qual_path)?);
    for r in reads {
        write_record(&mut f, r.id, &r.seq)?;
        write_qual_record(&mut q, r.id, &r.qual)?;
    }
    f.flush()?;
    q.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn reader(data: &[u8]) -> RecordIter<Cursor<Vec<u8>>> {
        RecordIter(RecordReader::new(Cursor::new(data.to_vec())))
    }

    #[test]
    fn zip_builds_reads() {
        let reads: Vec<_> =
            zip_records(reader(b">1\nACGT\n>2\nGGTT\n"), reader(b">1\n30 31 32 33\n>2\n2 2 2 2\n"))
                .collect::<Result<_>>()
                .unwrap();
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].seq, b"ACGT");
        assert_eq!(reads[0].qual, vec![30, 31, 32, 33]);
        assert_eq!(reads[1].id, 2);
    }

    #[test]
    fn id_skew_detected() {
        let got: Vec<_> =
            zip_records(reader(b">1\nACGT\n"), reader(b">2\n30 30 30 30\n")).collect();
        assert!(matches!(got[0], Err(IoError::Mismatch(_))));
    }

    #[test]
    fn length_mismatch_detected() {
        let got: Vec<_> = zip_records(reader(b">1\nACGT\n"), reader(b">1\n30 30 30\n")).collect();
        assert!(matches!(got[0], Err(IoError::Mismatch(_))));
    }

    #[test]
    fn count_mismatch_detected() {
        let got: Vec<_> =
            zip_records(reader(b">1\nACGT\n>2\nGGTT\n"), reader(b">1\n30 30 30 30\n")).collect();
        assert!(got[0].is_ok());
        assert!(matches!(got[1], Err(IoError::Mismatch(_))));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("genio-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fpath = dir.join("r.fa");
        let qpath = dir.join("r.qual");
        let reads = vec![
            Read::new(1, b"ACGTACGT".to_vec(), vec![30; 8]),
            Read::new(2, b"TTTTAAAN".to_vec(), vec![2; 8]),
        ];
        write_dataset(&fpath, &qpath, &reads).unwrap();
        let loaded = load_dataset(&fpath, &qpath).unwrap();
        assert_eq!(loaded, reads);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
