//! Synthetic datasets standing in for the paper's E.coli / Drosophila /
//! Human read sets.
//!
//! The paper evaluates on three Illumina datasets (Table I). We cannot
//! ship those, so this module synthesizes statistically similar inputs
//! with *known ground truth*:
//!
//! * a uniform-random genome of the profile's length;
//! * reads sampled at random positions (optionally from both strands),
//!   **ordered by genome position** so that, like real runs of a
//!   sequencing machine over flowcell tiles, error-dense regions are
//!   *localized in parts of the file* — the phenomenon driving the
//!   paper's load imbalance (§III-A);
//! * substitution errors drawn per base with probability
//!   `base_error_rate × position_ramp × hotspot_multiplier`, where the
//!   ramp grows linearly along the read (Illumina 3'-degradation) and a
//!   few genome intervals ("hotspots") multiply the rate;
//! * Phred qualities reported as `phred(p_base) + noise`, so qualities
//!   correlate with true error probability exactly as the corrector
//!   assumes.
//!
//! Profiles mirror Table I at full scale; [`DatasetProfile::scaled`]
//! shrinks genome and read count together, preserving coverage, read
//! length and error structure.

use dnaseq::quality::phred_from_probability;
use dnaseq::Read;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape parameters of a synthetic dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetProfile {
    /// Human-readable name ("E.coli", …).
    pub name: String,
    /// Genome length in bases.
    pub genome_len: usize,
    /// Read length in bases (fixed-length reads, like the paper's data).
    pub read_len: usize,
    /// Number of reads to sample.
    pub n_reads: usize,
    /// Baseline per-base substitution error rate.
    pub base_error_rate: f64,
    /// Number of error hotspot intervals on the genome.
    pub hotspot_count: usize,
    /// Error-rate multiplier inside hotspots.
    pub hotspot_multiplier: f64,
    /// Fraction of the genome covered by hotspots (total).
    pub hotspot_fraction: f64,
    /// Sample reads from both strands (reverse complement half of them).
    pub both_strands: bool,
    /// Fraction of bases reported as `N` (quality 2) regardless of truth.
    pub n_rate: f64,
    /// Fraction of the genome overwritten by a tandem repeat (0 = none).
    /// Reads sampled from the repeat share a handful of k-mers/tiles, so
    /// Step IV lookup volume funnels to those keys' owners — the skew
    /// workload the adaptive balancing layer exists for.
    pub repeat_fraction: f64,
    /// Length of the tandem repeat unit (0 disables repeats). Keep it
    /// near the k-mer size: the shorter the unit, the fewer distinct
    /// keys the repeat region produces and the sharper the skew.
    pub repeat_unit_len: usize,
}

impl DatasetProfile {
    /// E.coli profile: 4.6 Mbp genome, 8,874,761 reads × 102 bp ⇒ 96X
    /// (paper Table I).
    pub fn ecoli_like() -> DatasetProfile {
        DatasetProfile {
            name: "E.coli".into(),
            genome_len: 4_600_000,
            read_len: 102,
            n_reads: 8_874_761,
            ..DatasetProfile::base()
        }
    }

    /// Drosophila profile: 122 Mbp genome, 95,674,872 reads × 96 bp ⇒ 75X.
    pub fn drosophila_like() -> DatasetProfile {
        DatasetProfile {
            name: "Drosophila".into(),
            genome_len: 122_000_000,
            read_len: 96,
            n_reads: 95_674_872,
            ..DatasetProfile::base()
        }
    }

    /// Human profile: 3.3 Gbp genome, 1,549,111,800 reads × 102 bp ⇒ 47X.
    pub fn human_like() -> DatasetProfile {
        DatasetProfile {
            name: "Human".into(),
            genome_len: 3_300_000_000,
            read_len: 102,
            n_reads: 1_549_111_800,
            ..DatasetProfile::base()
        }
    }

    fn base() -> DatasetProfile {
        DatasetProfile {
            name: String::new(),
            genome_len: 0,
            read_len: 0,
            n_reads: 0,
            // GA-II era Illumina (the paper's datasets) ran ~1% substitution
            // error; this also sets the weak-tile fraction that drives the
            // paper's communication-dominance findings.
            base_error_rate: 0.01,
            hotspot_count: 12,
            hotspot_multiplier: 4.0,
            hotspot_fraction: 0.10,
            both_strands: false,
            n_rate: 0.0005,
            repeat_fraction: 0.0,
            repeat_unit_len: 0,
        }
    }

    /// Overwrite part of the genome with a tandem repeat — the
    /// repeat-heavy variant of any profile (see `repeat_fraction`).
    pub fn with_repeats(&self, fraction: f64, unit_len: usize) -> DatasetProfile {
        assert!((0.0..=1.0).contains(&fraction), "repeat fraction must be in [0, 1]");
        let mut p = self.clone();
        p.repeat_fraction = fraction;
        p.repeat_unit_len = unit_len;
        p.name = format!("{} +repeats", self.name);
        p
    }

    /// Shrink genome length and read count by `divisor`, preserving
    /// coverage, read length and error structure. Benches use divisors of
    /// 100–10000 to keep wall-clock reasonable; figure *shapes* are scale
    /// invariant because per-rank work and communication volume both
    /// scale linearly.
    pub fn scaled(&self, divisor: usize) -> DatasetProfile {
        assert!(divisor >= 1);
        let mut p = self.clone();
        p.genome_len = (self.genome_len / divisor).max(4 * self.read_len);
        p.n_reads = (self.n_reads / divisor).max(16);
        p.name = format!("{} (1/{divisor})", self.name);
        p
    }

    /// Read coverage `length × reads / genome`, as computed in Table I.
    pub fn coverage(&self) -> f64 {
        self.read_len as f64 * self.n_reads as f64 / self.genome_len as f64
    }

    /// Generate the dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> SyntheticDataset {
        assert!(self.genome_len >= self.read_len, "genome shorter than a read");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut genome: Vec<u8> =
            (0..self.genome_len).map(|_| [b'A', b'C', b'G', b'T'][rng.gen_range(0..4)]).collect();

        // Repeat-heavy genomes: tile a centered region with its own first
        // `repeat_unit_len` bases. Rewriting in place (after the genome
        // draw, before any read sampling) keeps every other random choice
        // identical to the repeat-free genome under the same seed.
        if self.repeat_fraction > 0.0 && self.repeat_unit_len > 0 {
            assert!((0.0..=1.0).contains(&self.repeat_fraction), "repeat fraction in [0, 1]");
            let span = ((self.genome_len as f64 * self.repeat_fraction) as usize)
                .max(self.repeat_unit_len)
                .min(self.genome_len);
            let start = (self.genome_len - span) / 2;
            let unit: Vec<u8> = genome[start..start + self.repeat_unit_len.min(span)].to_vec();
            for j in 0..span {
                genome[start + j] = unit[j % unit.len()];
            }
        }
        let genome = genome;

        // Hotspot intervals: evenly spread starts, jittered, each covering
        // hotspot_fraction/hotspot_count of the genome.
        let hotspots: Vec<(usize, usize)> = if self.hotspot_count == 0 {
            Vec::new()
        } else {
            let span = ((self.genome_len as f64 * self.hotspot_fraction)
                / self.hotspot_count as f64)
                .max(1.0) as usize;
            (0..self.hotspot_count)
                .map(|i| {
                    let center = (i * 2 + 1) * self.genome_len / (self.hotspot_count * 2);
                    let jitter = rng.gen_range(0..=span / 2 + 1);
                    let start = center.saturating_sub(span / 2 + jitter).min(self.genome_len - 1);
                    (start, (start + span).min(self.genome_len))
                })
                .collect()
        };
        let in_hotspot = |pos: usize| hotspots.iter().any(|&(s, e)| pos >= s && pos < e);

        // Sample read start positions, then sort so errors cluster in file
        // order (see module docs).
        let max_start = self.genome_len - self.read_len;
        let mut starts: Vec<usize> =
            (0..self.n_reads).map(|_| rng.gen_range(0..=max_start)).collect();
        starts.sort_unstable();

        let mut reads = Vec::with_capacity(self.n_reads);
        let mut truth = Vec::with_capacity(self.n_reads);
        let mut errors_injected = 0u64;
        for (i, &start) in starts.iter().enumerate() {
            let mut true_seq: Vec<u8> = genome[start..start + self.read_len].to_vec();
            let reverse = self.both_strands && rng.gen_bool(0.5);
            if reverse {
                dnaseq::base::reverse_complement_ascii(&mut true_seq);
            }
            let mut seq = true_seq.clone();
            let mut qual = vec![0u8; self.read_len];
            for j in 0..self.read_len {
                // genome coordinate of this base decides hotspot membership
                let gpos = if reverse { start + self.read_len - 1 - j } else { start + j };
                let ramp = 0.5 + 1.5 * j as f64 / self.read_len as f64;
                let mult = if in_hotspot(gpos) { self.hotspot_multiplier } else { 1.0 };
                let p = (self.base_error_rate * ramp * mult).min(0.4);
                if rng.gen_bool(self.n_rate) {
                    seq[j] = b'N';
                    qual[j] = 2;
                    continue;
                }
                if rng.gen_bool(p) {
                    // substitution: any of the three other bases
                    let orig = seq[j];
                    let mut newb = orig;
                    while newb == orig {
                        newb = [b'A', b'C', b'G', b'T'][rng.gen_range(0..4)];
                    }
                    seq[j] = newb;
                    errors_injected += 1;
                    // Miscalled bases concentrate at low reported quality
                    // on real instruments: report the quality of a much
                    // higher error probability.
                    qual[j] = noisy_phred((p * 12.0).clamp(0.03, 0.4), &mut rng);
                } else {
                    qual[j] = noisy_phred(p, &mut rng);
                }
            }
            reads.push(Read::new(i as u64 + 1, seq, qual));
            truth.push(true_seq);
        }
        SyntheticDataset { profile: self.clone(), genome, reads, truth, errors_injected, hotspots }
    }
}

/// Reported quality: Phred of the true per-base error probability plus
/// roughly Gaussian noise (Irwin–Hall with 3 uniforms, σ≈1.7), clamped to
/// the Illumina range `2..=41`.
fn noisy_phred(p: f64, rng: &mut StdRng) -> u8 {
    let q = phred_from_probability(p) as f64;
    let noise: f64 = (0..3).map(|_| rng.gen_range(-2.0..2.0)).sum::<f64>() / 1.5;
    (q + noise).clamp(2.0, 41.0) as u8
}

/// A generated dataset: reads with errors, plus the ground truth needed
/// for accuracy evaluation.
pub struct SyntheticDataset {
    /// The profile this dataset was generated from.
    pub profile: DatasetProfile,
    /// The reference genome.
    pub genome: Vec<u8>,
    /// The (erroneous) reads, ids `1..=n` in genome-position order.
    pub reads: Vec<Read>,
    /// `truth[i]` is the error-free sequence of `reads[i]`.
    pub truth: Vec<Vec<u8>>,
    /// Total substitution errors injected (excludes `N` maskings).
    pub errors_injected: u64,
    /// Hotspot intervals used, for inspection/tests.
    pub hotspots: Vec<(usize, usize)>,
}

impl SyntheticDataset {
    /// Write the dataset as a (fasta, qual) pair.
    pub fn write_files(
        &self,
        fasta: &std::path::Path,
        qual: &std::path::Path,
    ) -> crate::Result<()> {
        crate::qual::write_dataset(fasta, qual, &self.reads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DatasetProfile {
        DatasetProfile {
            name: "tiny".into(),
            genome_len: 5_000,
            read_len: 60,
            n_reads: 2_000,
            ..DatasetProfile::base()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny().generate(42);
        let b = tiny().generate(42);
        assert_eq!(a.reads, b.reads);
        assert_eq!(a.genome, b.genome);
        let c = tiny().generate(43);
        assert_ne!(a.reads, c.reads, "different seed, different data");
    }

    #[test]
    fn reads_have_expected_shape() {
        let ds = tiny().generate(1);
        assert_eq!(ds.reads.len(), 2_000);
        for (i, r) in ds.reads.iter().enumerate() {
            assert_eq!(r.id, i as u64 + 1, "ids ascending from 1");
            assert_eq!(r.len(), 60);
            assert_eq!(r.qual.len(), 60);
        }
    }

    #[test]
    fn truth_matches_genome_and_errors_counted() {
        let ds = tiny().generate(7);
        let mut observed_errors = 0u64;
        let mut n_bases = 0u64;
        for (r, t) in ds.reads.iter().zip(&ds.truth) {
            assert_eq!(t.len(), r.len());
            for (&got, &want) in r.seq.iter().zip(t) {
                if got == b'N' {
                    n_bases += 1;
                } else if got != want {
                    observed_errors += 1;
                }
            }
        }
        assert_eq!(observed_errors, ds.errors_injected);
        // error rate should be within a factor ~3 of base_error_rate
        // (ramp average 1.25, hotspot boost small)
        let total = (ds.reads.len() * 60) as f64;
        let rate = observed_errors as f64 / total;
        assert!(rate > 0.001 && rate < 0.03, "rate {rate}");
        assert!(n_bases > 0, "some Ns expected");
    }

    #[test]
    fn qualities_correlate_with_errors() {
        let ds = tiny().generate(3);
        let (mut err_q, mut ok_q) = (0f64, 0f64);
        let (mut n_err, mut n_ok) = (0u64, 0u64);
        for (r, t) in ds.reads.iter().zip(&ds.truth) {
            for (j, &tb) in t.iter().enumerate().take(r.len()) {
                if r.seq[j] == b'N' {
                    continue;
                }
                if r.seq[j] != tb {
                    err_q += r.qual[j] as f64;
                    n_err += 1;
                } else {
                    ok_q += r.qual[j] as f64;
                    n_ok += 1;
                }
            }
        }
        let err_mean = err_q / n_err as f64;
        let ok_mean = ok_q / n_ok as f64;
        assert!(
            err_mean + 4.0 < ok_mean,
            "erroneous bases should read lower quality: {err_mean:.1} vs {ok_mean:.1}"
        );
    }

    #[test]
    fn errors_cluster_in_file_order() {
        // Compare per-decile error counts: the max decile should exceed the
        // min decile substantially thanks to hotspots + position sorting.
        let mut prof = tiny();
        prof.n_reads = 4_000;
        prof.hotspot_count = 3;
        prof.hotspot_multiplier = 12.0;
        prof.hotspot_fraction = 0.15;
        let ds = prof.generate(11);
        let deciles = 10;
        let per = ds.reads.len() / deciles;
        let mut counts = vec![0u64; deciles];
        for (i, (r, t)) in ds.reads.iter().zip(&ds.truth).enumerate() {
            let d = (i / per).min(deciles - 1);
            counts[d] += r.seq.iter().zip(t).filter(|(a, b)| a != b && **a != b'N').count() as u64;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max as f64 > 1.5 * (min.max(1) as f64), "no clustering: {counts:?}");
    }

    #[test]
    fn repeat_knob_tiles_a_region_and_changes_nothing_else() {
        let plain = tiny().generate(42);
        let rep = tiny().with_repeats(0.4, 8).generate(42);
        // the repeat region really is a tandem tiling of one 8-base unit
        let span = (5_000f64 * 0.4) as usize;
        let start = (5_000 - span) / 2;
        let unit = &rep.genome[start..start + 8];
        for j in 0..span {
            assert_eq!(rep.genome[start + j], unit[j % 8], "offset {j}");
        }
        // outside the region the genome is untouched: same seed, same draw
        assert_eq!(rep.genome[..start], plain.genome[..start]);
        assert_eq!(rep.genome[start + span..], plain.genome[start + span..]);
        // read sampling positions are seed-identical too
        assert_eq!(rep.reads.len(), plain.reads.len());
        // k-mer diversity collapses inside the repeat: far fewer distinct
        // 8-mers than the uniform genome's
        let distinct = |g: &[u8]| {
            g[start..start + span].windows(8).collect::<std::collections::HashSet<_>>().len()
        };
        assert!(distinct(&rep.genome) <= 8);
        assert!(distinct(&plain.genome) > 500);
        // fraction 0 is byte-identical to the plain profile
        let off = tiny().with_repeats(0.0, 0).generate(42);
        assert_eq!(off.genome, plain.genome);
        assert_eq!(off.reads, plain.reads);
    }

    #[test]
    fn profiles_match_table_one() {
        // Note: the paper's Table I is internally inconsistent for E.coli —
        // its own formula (length × reads / genome) gives 102×8,874,761 /
        // 4.6e6 ≈ 197X, not the printed 96X. We keep the paper's raw
        // numbers (reads, length, genome size) and report the computed
        // coverage; Drosophila and Human check out against the table.
        let e = DatasetProfile::ecoli_like();
        assert!((e.coverage() - 196.8).abs() < 3.0, "{}", e.coverage());
        let d = DatasetProfile::drosophila_like();
        assert!((d.coverage() - 75.0).abs() < 3.0, "{}", d.coverage());
        let h = DatasetProfile::human_like();
        assert!((h.coverage() - 47.0).abs() < 3.0, "{}", h.coverage());
    }

    #[test]
    fn scaling_preserves_coverage() {
        let e = DatasetProfile::ecoli_like();
        let s = e.scaled(1000);
        assert!((s.coverage() - e.coverage()).abs() / e.coverage() < 0.1);
        assert_eq!(s.read_len, e.read_len);
    }

    #[test]
    fn both_strands_flag_reverses_some_reads() {
        let mut prof = tiny();
        prof.both_strands = true;
        prof.base_error_rate = 0.0;
        prof.n_rate = 0.0;
        let ds = prof.generate(5);
        // with no errors, a read matches the genome forward or reverse
        let genome = &ds.genome;
        let mut fwd = 0;
        let mut rev = 0;
        for t in &ds.truth {
            let is_fwd = genome.windows(t.len()).any(|w| w == &t[..]);
            if is_fwd {
                fwd += 1;
            } else {
                rev += 1;
            }
        }
        assert!(fwd > 100 && rev > 100, "fwd={fwd} rev={rev}");
    }
}
