//! Step I: offset-based parallel input partitioning.
//!
//! "Each rank computes its subset of the reads whose size is simply the
//! file size divided by the number of ranks. The subset of reads are
//! processed beginning with an offset from the start of the file. ...
//! Each rank starts reading the fasta file from this offset and records
//! the starting sequence number. It then looks up the same sequence
//! number in the quality score file as well" (paper §III step I).
//!
//! [`PartitionedReader`] implements exactly this: rank `r` of `np` owns
//! the records whose headers start in byte range
//! `[size·r/np, size·(r+1)/np)` of the FASTA file (resynchronized forward
//! to the next record boundary), and the quality file is positioned at the
//! matching sequence number by a proportional guess plus bounded
//! backward/forward scanning.

use crate::fasta::{parse_header, RawRecord, RecordReader};
use crate::qual::{parse_qual_line, RecordIter};
use crate::{IoError, Result};
use dnaseq::Read;
use std::fs::File;
use std::io::{BufRead, BufReader, Seek, SeekFrom};
use std::path::Path;

/// Byte range `[start, end)` of the file owned by `rank` out of `np`.
pub fn partition_range(file_size: u64, np: usize, rank: usize) -> (u64, u64) {
    assert!(rank < np, "rank {rank} out of range for np={np}");
    let np = np as u64;
    let r = rank as u64;
    (file_size * r / np, file_size * (r + 1) / np)
}

/// Find the first record header at or after `offset`.
///
/// Returns `(header_offset, sequence_number)` or `None` if no header
/// starts at or after `offset`.
pub fn next_header_at(path: &Path, offset: u64) -> Result<Option<(u64, u64)>> {
    let mut file = File::open(path)?;
    let size = file.metadata()?.len();
    if offset >= size {
        return Ok(None);
    }
    // Determine whether `offset` is a line start: it is if it's the file
    // start or the previous byte is a newline. Otherwise we landed mid-line
    // and must discard up to the next newline so we only ever treat line
    // *starts* as potential headers.
    let at_line_start = if offset == 0 {
        true
    } else {
        file.seek(SeekFrom::Start(offset - 1))?;
        let mut prev = [0u8; 1];
        use std::io::Read as _;
        file.read_exact(&mut prev)?;
        prev[0] == b'\n'
    };
    file.seek(SeekFrom::Start(offset))?;
    let mut reader = BufReader::new(file);
    let mut pos = offset;
    let mut line = Vec::with_capacity(512);
    if !at_line_start {
        let n = reader.read_until(b'\n', &mut line)? as u64;
        if n == 0 {
            return Ok(None);
        }
        pos += n;
    }
    loop {
        line.clear();
        let n = reader.read_until(b'\n', &mut line)? as u64;
        if n == 0 {
            return Ok(None);
        }
        if line.first() == Some(&b'>') {
            return Ok(Some((pos, parse_header(&line)?)));
        }
        pos += n;
    }
}

/// The per-rank slice of a (fasta, qual) dataset, per the paper's Step I.
///
/// Construction decides `[start_id, end_id)` from byte offsets in the
/// FASTA file and aligns the quality reader to `start_id`; reads are then
/// delivered in chunks (`chunk_size` reads at a time, as Reptile's config
/// prescribes).
pub struct PartitionedReader {
    fasta: RecordReader<BufReader<File>>,
    qual: RecordReader<BufReader<File>>,
    /// Reusable quality-record buffer: the decimal-text quality line is
    /// ~4 bytes per base and only lives until it is decoded into the
    /// `Read`'s Phred vector, so one buffer serves the whole stream.
    qrec: RawRecord,
    /// First sequence number owned by this rank.
    pub start_id: u64,
    /// One past the last sequence number owned by this rank (`u64::MAX`
    /// for the final rank).
    pub end_id: u64,
    exhausted: bool,
}

impl PartitionedReader {
    /// Open rank `rank`'s slice of the pair of files.
    pub fn open(
        fasta_path: &Path,
        qual_path: &Path,
        np: usize,
        rank: usize,
    ) -> Result<PartitionedReader> {
        let size = File::open(fasta_path)?.metadata()?.len();
        let (lo, hi) = partition_range(size, np, rank);
        let start = next_header_at(fasta_path, lo)?;
        let end = next_header_at(fasta_path, hi)?;
        let (start_offset, start_id) = match start {
            Some(s) => s,
            None => {
                // Rank owns a tail shorter than one record: empty slice.
                return PartitionedReader::empty(fasta_path, qual_path);
            }
        };
        let end_id = end.map(|(_, id)| id).unwrap_or(u64::MAX);
        if start_id >= end_id {
            return PartitionedReader::empty(fasta_path, qual_path);
        }
        let mut file = File::open(fasta_path)?;
        file.seek(SeekFrom::Start(start_offset))?;
        let fasta = RecordReader::new(BufReader::new(file));
        // Quality file: same sequence number, proportional offset guess.
        let qsize = File::open(qual_path)?.metadata()?.len();
        let hint = qsize * rank as u64 / np as u64;
        let qual = seek_to_id_scan(qual_path, start_id, hint)?;
        let qrec = RawRecord { id: 0, line: Vec::new() };
        Ok(PartitionedReader { fasta, qual, qrec, start_id, end_id, exhausted: false })
    }

    fn empty(fasta_path: &Path, qual_path: &Path) -> Result<PartitionedReader> {
        Ok(PartitionedReader {
            fasta: RecordReader::new(BufReader::new(File::open(fasta_path)?)),
            qual: RecordReader::new(BufReader::new(File::open(qual_path)?)),
            qrec: RawRecord { id: 0, line: Vec::new() },
            start_id: 0,
            end_id: 0,
            exhausted: true,
        })
    }

    /// Read up to `chunk_size` reads. Returns an empty vector once the
    /// rank's slice is exhausted.
    pub fn next_chunk(&mut self, chunk_size: usize) -> Result<Vec<Read>> {
        let mut out = Vec::with_capacity(chunk_size.min(1 << 14));
        while !self.exhausted && out.len() < chunk_size {
            let frec = match self.fasta.next_record()? {
                Some(r) => r,
                None => {
                    self.exhausted = true;
                    break;
                }
            };
            if frec.id >= self.end_id {
                self.exhausted = true;
                break;
            }
            if !self.qual.next_record_into(&mut self.qrec)? {
                return Err(IoError::Mismatch(format!(
                    "quality file ends before record {}",
                    frec.id
                )));
            }
            if self.qrec.id != frec.id {
                return Err(IoError::Mismatch(format!(
                    "sequence number skew: fasta {} vs qual {}",
                    frec.id, self.qrec.id
                )));
            }
            let quals = parse_qual_line(&self.qrec)?;
            if quals.len() != frec.line.len() {
                return Err(IoError::Mismatch(format!(
                    "record {}: {} bases but {} quality scores",
                    frec.id,
                    frec.line.len(),
                    quals.len()
                )));
            }
            out.push(Read::new(frec.id, frec.line, quals));
        }
        Ok(out)
    }

    /// Drain the remaining reads of this rank's slice.
    pub fn read_all(&mut self) -> Result<Vec<Read>> {
        let mut out = Vec::new();
        loop {
            let chunk = self.next_chunk(1 << 14)?;
            if chunk.is_empty() {
                return Ok(out);
            }
            out.extend(chunk);
        }
    }
}

/// Position a [`RecordReader`] at the record with id `target_id`,
/// starting from `hint_offset` and scanning (with exponential backward
/// steps if the hint overshoots).
pub fn seek_to_id_scan(
    path: &Path,
    target_id: u64,
    hint_offset: u64,
) -> Result<RecordReader<BufReader<File>>> {
    const BACKOFF_START: u64 = 1 << 16;
    let size = File::open(path)?.metadata()?.len();
    let mut offset = hint_offset.min(size);
    let mut backoff = BACKOFF_START;
    let start_offset = loop {
        match next_header_at(path, offset)? {
            Some((hdr, id)) if id <= target_id => break hdr,
            _ if offset == 0 => {
                return Err(IoError::Mismatch(format!(
                    "sequence number {target_id} not present in {}",
                    path.display()
                )))
            }
            _ => {
                offset = offset.saturating_sub(backoff);
                backoff = backoff.saturating_mul(2);
            }
        }
    };
    let mut file = File::open(path)?;
    file.seek(SeekFrom::Start(start_offset))?;
    let mut reader = RecordReader::new(BufReader::new(file));
    // Consume records until the next one is the target.
    loop {
        // Peek by reading and checking; RecordIter keeps this simple.
        let mut iter = RecordIter(reader);
        match iter.next() {
            Some(Ok(rec)) if rec.id == target_id => {
                // We consumed the target — reopen at its header instead.
                // Cheaper: remember offsets. Simplest correct approach:
                // re-scan from start_offset tracking byte positions.
                drop(iter);
                return open_at_record(path, start_offset, target_id);
            }
            Some(Ok(rec)) if rec.id < target_id => {
                reader = iter.0;
                continue;
            }
            Some(Ok(rec)) => {
                return Err(IoError::Mismatch(format!(
                    "sequence number {target_id} absent (file skips to {}) in {}",
                    rec.id,
                    path.display()
                )))
            }
            Some(Err(e)) => return Err(e),
            None => {
                return Err(IoError::Mismatch(format!(
                    "sequence number {target_id} not present in {}",
                    path.display()
                )))
            }
        }
    }
}

/// Open a reader positioned at the header of record `target_id`, which is
/// known to lie at or after `from_offset`.
fn open_at_record(
    path: &Path,
    from_offset: u64,
    target_id: u64,
) -> Result<RecordReader<BufReader<File>>> {
    let mut offset = from_offset;
    loop {
        match next_header_at(path, offset)? {
            Some((hdr, id)) if id == target_id => {
                let mut file = File::open(path)?;
                file.seek(SeekFrom::Start(hdr))?;
                return Ok(RecordReader::new(BufReader::new(file)));
            }
            Some((hdr, _)) => {
                // Advance past this header to find the next one.
                offset = hdr + 1;
            }
            None => {
                return Err(IoError::Mismatch(format!(
                    "sequence number {target_id} not present in {}",
                    path.display()
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qual::write_dataset;
    use dnaseq::Read;

    fn make_dataset(n: usize) -> (std::path::PathBuf, std::path::PathBuf, Vec<Read>) {
        let dir = std::env::temp_dir().join(format!("genio-part-{}-{}", std::process::id(), n));
        std::fs::create_dir_all(&dir).unwrap();
        let reads: Vec<Read> = (1..=n as u64)
            .map(|id| {
                let len = 20 + (id as usize % 7);
                let seq: Vec<u8> =
                    (0..len).map(|i| [b'A', b'C', b'G', b'T'][(id as usize + i) % 4]).collect();
                let qual: Vec<u8> = (0..len).map(|i| ((id as usize + i) % 40) as u8 + 2).collect();
                Read::new(id, seq, qual)
            })
            .collect();
        let fpath = dir.join("reads.fa");
        let qpath = dir.join("reads.qual");
        write_dataset(&fpath, &qpath, &reads).unwrap();
        (fpath, qpath, reads)
    }

    #[test]
    fn partition_range_covers_file_exactly() {
        for size in [0u64, 1, 999, 1 << 20] {
            for np in [1usize, 2, 7, 64] {
                let mut prev_end = 0;
                for rank in 0..np {
                    let (lo, hi) = partition_range(size, np, rank);
                    assert_eq!(lo, prev_end, "gap/overlap at rank {rank}");
                    assert!(hi >= lo);
                    prev_end = hi;
                }
                assert_eq!(prev_end, size);
            }
        }
    }

    #[test]
    fn ranks_cover_all_reads_exactly_once() {
        let (fpath, qpath, reads) = make_dataset(103);
        for np in [1usize, 2, 3, 8, 16, 50] {
            let mut seen: Vec<Read> = Vec::new();
            for rank in 0..np {
                let mut part = PartitionedReader::open(&fpath, &qpath, np, rank).unwrap();
                seen.extend(part.read_all().unwrap());
            }
            seen.sort_by_key(|r| r.id);
            assert_eq!(seen, reads, "np={np}");
        }
        std::fs::remove_dir_all(fpath.parent().unwrap()).unwrap();
    }

    #[test]
    fn more_ranks_than_reads_is_fine() {
        let (fpath, qpath, reads) = make_dataset(5);
        let np = 16;
        let mut seen: Vec<Read> = Vec::new();
        for rank in 0..np {
            let mut part = PartitionedReader::open(&fpath, &qpath, np, rank).unwrap();
            seen.extend(part.read_all().unwrap());
        }
        seen.sort_by_key(|r| r.id);
        assert_eq!(seen, reads);
        std::fs::remove_dir_all(fpath.parent().unwrap()).unwrap();
    }

    #[test]
    fn chunked_reading_matches_full_reading() {
        let (fpath, qpath, _) = make_dataset(50);
        let mut part = PartitionedReader::open(&fpath, &qpath, 2, 0).unwrap();
        let all = part.read_all().unwrap();
        let mut part2 = PartitionedReader::open(&fpath, &qpath, 2, 0).unwrap();
        let mut chunked = Vec::new();
        loop {
            let c = part2.next_chunk(7).unwrap();
            if c.is_empty() {
                break;
            }
            assert!(c.len() <= 7);
            chunked.extend(c);
        }
        assert_eq!(all, chunked);
        std::fs::remove_dir_all(fpath.parent().unwrap()).unwrap();
    }

    #[test]
    fn next_header_at_finds_boundaries() {
        let (fpath, _qpath, _) = make_dataset(10);
        let (off, id) = next_header_at(&fpath, 0).unwrap().unwrap();
        assert_eq!((off, id), (0, 1));
        // From offset 1 we must land on record 2, not record 1.
        let (_, id2) = next_header_at(&fpath, 1).unwrap().unwrap();
        assert_eq!(id2, 2);
        let size = std::fs::metadata(&fpath).unwrap().len();
        assert!(next_header_at(&fpath, size).unwrap().is_none());
        std::fs::remove_dir_all(fpath.parent().unwrap()).unwrap();
    }

    #[test]
    fn seek_to_id_scan_works_with_bad_hints() {
        let (fpath, _qpath, _) = make_dataset(40);
        let size = std::fs::metadata(&fpath).unwrap().len();
        for target in [1u64, 2, 20, 39, 40] {
            for hint in [0u64, size / 2, size, 3] {
                let mut rdr = seek_to_id_scan(&fpath, target, hint).unwrap();
                assert_eq!(rdr.next_record().unwrap().unwrap().id, target, "hint {hint}");
            }
        }
        assert!(seek_to_id_scan(&fpath, 41, 0).is_err());
        std::fs::remove_dir_all(fpath.parent().unwrap()).unwrap();
    }

    #[test]
    fn detects_skewed_quality_file() {
        let dir = std::env::temp_dir().join(format!("genio-skew-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fpath = dir.join("reads.fa");
        let qpath = dir.join("reads.qual");
        std::fs::write(&fpath, b">1\nACGT\n>2\nGGTT\n").unwrap();
        // quality file missing record 2, has record 3 instead
        std::fs::write(&qpath, b">1\n30 30 30 30\n>3\n30 30 30 30\n").unwrap();
        let mut part = PartitionedReader::open(&fpath, &qpath, 1, 0).unwrap();
        let err = part.read_all().unwrap_err();
        assert!(matches!(err, IoError::Mismatch(_)));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
