//! YCSB-style open-loop workload generation for the serve plane.
//!
//! Closed-loop drivers (submit, wait, submit) measure a system at the
//! throughput *it* chooses; an **open-loop** driver fixes the offered
//! load instead — requests arrive on a Poisson process at `rate`
//! requests/second whether or not the service keeps up — which is the
//! only way to see queueing latency grow toward saturation and
//! backpressure engage past it (the YCSB/"coordinated omission"
//! methodology).
//!
//! A [`RequestMix`] holds one or more weighted read pools (different
//! read lengths / error rates, typically generated from
//! [`DatasetProfile`](crate::DatasetProfile)s over the same genome so
//! one spectrum covers them all). [`OpenLoopGen`] then yields
//! deterministic, seeded [`Arrival`]s: a cumulative arrival offset plus
//! a read sampled from the mix. Timestamps are offsets, not wall-clock
//! — pacing against a clock is the driver's job, so the schedule is
//! reproducible byte-for-byte across runs and machines.

use dnaseq::Read;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One weighted component of a request mix.
#[derive(Clone, Debug)]
pub struct MixComponent {
    /// Relative weight (any positive scale; normalized internally).
    pub weight: f64,
    /// The reads this component samples from (with replacement).
    pub reads: Vec<Read>,
}

/// A weighted set of read pools to sample requests from.
#[derive(Clone, Debug)]
pub struct RequestMix {
    components: Vec<MixComponent>,
    /// Cumulative normalized weights, last = 1.0.
    cumulative: Vec<f64>,
}

impl RequestMix {
    /// Build a mix from weighted pools. Panics if no component has a
    /// positive weight and a non-empty pool.
    pub fn new(components: Vec<MixComponent>) -> RequestMix {
        let components: Vec<MixComponent> =
            components.into_iter().filter(|c| c.weight > 0.0 && !c.reads.is_empty()).collect();
        assert!(!components.is_empty(), "request mix needs a non-empty weighted component");
        let total: f64 = components.iter().map(|c| c.weight).sum();
        let mut acc = 0.0;
        let cumulative = components
            .iter()
            .map(|c| {
                acc += c.weight / total;
                acc
            })
            .collect();
        RequestMix { components, cumulative }
    }

    /// A single-pool mix.
    pub fn uniform(reads: Vec<Read>) -> RequestMix {
        RequestMix::new(vec![MixComponent { weight: 1.0, reads }])
    }

    /// Number of components that survived filtering.
    pub fn n_components(&self) -> usize {
        self.components.len()
    }
}

/// One generated request: when it arrives and what it asks to correct.
#[derive(Clone, Debug)]
pub struct Arrival {
    /// Monotonic trace id, `0..n_requests`.
    pub trace_id: u64,
    /// Arrival offset from the start of the run, seconds.
    pub at_secs: f64,
    /// Index of the mix component the read was drawn from.
    pub component: usize,
    /// The read to correct.
    pub read: Read,
}

/// Deterministic Poisson-arrival request generator over a [`RequestMix`].
///
/// Inter-arrival gaps are exponential with mean `1/rate`, so arrival
/// counts in any window are Poisson — the standard open-loop model.
/// Iteration is infinite; the driver decides how many to take.
pub struct OpenLoopGen {
    mix: RequestMix,
    rate: f64,
    rng: StdRng,
    clock_secs: f64,
    next_id: u64,
}

impl OpenLoopGen {
    /// Offered load `rate` (requests/second, > 0), seeded for
    /// determinism.
    pub fn new(mix: RequestMix, rate: f64, seed: u64) -> OpenLoopGen {
        assert!(rate > 0.0 && rate.is_finite(), "offered load must be positive");
        OpenLoopGen { mix, rate, rng: StdRng::seed_from_u64(seed), clock_secs: 0.0, next_id: 0 }
    }

    /// The next arrival in schedule order.
    pub fn next_arrival(&mut self) -> Arrival {
        // Inverse-transform exponential sampling; 1-u keeps ln() away
        // from zero.
        let u: f64 = self.rng.gen_range(0.0..1.0);
        self.clock_secs += -(1.0 - u).ln() / self.rate;
        let pick: f64 = self.rng.gen_range(0.0..1.0);
        let component = self
            .mix
            .cumulative
            .iter()
            .position(|&c| pick < c)
            .unwrap_or(self.mix.components.len() - 1);
        let pool = &self.mix.components[component].reads;
        let read = pool[self.rng.gen_range(0..pool.len())].clone();
        let trace_id = self.next_id;
        self.next_id += 1;
        Arrival { trace_id, at_secs: self.clock_secs, component, read }
    }

    /// Generate the next `n` arrivals.
    pub fn generate(&mut self, n: usize) -> Vec<Arrival> {
        (0..n).map(|_| self.next_arrival()).collect()
    }
}

impl Iterator for OpenLoopGen {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        Some(self.next_arrival())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize, len: usize, tag: u8) -> Vec<Read> {
        (0..n)
            .map(|i| {
                Read::new(
                    i as u64 + 1,
                    vec![[b'A', b'C', b'G', b'T'][tag as usize % 4]; len],
                    vec![30u8; len],
                )
            })
            .collect()
    }

    #[test]
    fn deterministic_given_seed() {
        let mix = || RequestMix::uniform(pool(50, 40, 0));
        let a: Vec<Arrival> = OpenLoopGen::new(mix(), 1000.0, 42).generate(200);
        let b: Vec<Arrival> = OpenLoopGen::new(mix(), 1000.0, 42).generate(200);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.trace_id, y.trace_id);
            assert_eq!(x.at_secs, y.at_secs);
            assert_eq!(x.read, y.read);
        }
        let c: Vec<Arrival> = OpenLoopGen::new(mix(), 1000.0, 43).generate(200);
        assert!(a.iter().zip(&c).any(|(x, y)| x.at_secs != y.at_secs), "seed must matter");
    }

    #[test]
    fn arrivals_are_monotone_at_the_offered_rate() {
        let mix = RequestMix::uniform(pool(10, 30, 1));
        let n = 20_000;
        let arrivals = OpenLoopGen::new(mix, 500.0, 7).generate(n);
        let mut last = 0.0;
        for a in &arrivals {
            assert!(a.at_secs >= last, "arrival times must be nondecreasing");
            last = a.at_secs;
        }
        // mean inter-arrival ≈ 1/rate: the whole schedule spans ≈ n/rate
        let span = arrivals.last().unwrap().at_secs;
        let expect = n as f64 / 500.0;
        assert!(
            (span / expect - 1.0).abs() < 0.05,
            "Poisson schedule span {span:.2}s far from expected {expect:.2}s"
        );
        assert!((0..n as u64).eq(arrivals.iter().map(|a| a.trace_id)));
    }

    #[test]
    fn mix_fractions_follow_weights() {
        let mix = RequestMix::new(vec![
            MixComponent { weight: 3.0, reads: pool(20, 60, 0) },
            MixComponent { weight: 1.0, reads: pool(20, 100, 1) },
        ]);
        assert_eq!(mix.n_components(), 2);
        let arrivals = OpenLoopGen::new(mix, 100.0, 11).generate(40_000);
        let short = arrivals.iter().filter(|a| a.component == 0).count() as f64;
        let frac = short / arrivals.len() as f64;
        assert!((frac - 0.75).abs() < 0.02, "75/25 mix drifted to {frac:.3}");
        // the component index matches the read actually drawn
        for a in arrivals.iter().take(500) {
            let want = if a.component == 0 { 60 } else { 100 };
            assert_eq!(a.read.seq.len(), want);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty weighted component")]
    fn empty_mix_panics() {
        RequestMix::new(vec![MixComponent { weight: 0.0, reads: pool(5, 10, 0) }]);
    }
}
