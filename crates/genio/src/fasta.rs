//! The numbered-FASTA dialect Reptile consumes.
//!
//! Reptile's preprocessing rewrites read names to "sequence numbers (in
//! ascending order beginning with number 1)" (paper §III step I). A record
//! is therefore:
//!
//! ```text
//! >17
//! ACGTTGCA...
//! ```
//!
//! One sequence line per record (short reads never wrap), `\n` line
//! endings. The same framing is used for the quality files (see
//! [`crate::qual`]), only the payload line differs.

use crate::{IoError, Result};
use std::io::{BufRead, Write};

/// A raw FASTA record: the numeric id and the payload line (unparsed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawRecord {
    /// Sequence number from the `>` header.
    pub id: u64,
    /// The payload line, without the trailing newline.
    pub line: Vec<u8>,
}

/// Write one record. `payload` must not contain newlines.
pub fn write_record(out: &mut impl Write, id: u64, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(!payload.contains(&b'\n'));
    writeln!(out, ">{id}")?;
    out.write_all(payload)?;
    out.write_all(b"\n")
}

/// Parse a header line (`>NUMBER`) into the sequence number.
pub fn parse_header(line: &[u8]) -> Result<u64> {
    let line = trim_eol(line);
    if line.first() != Some(&b'>') {
        return Err(IoError::Malformed(format!(
            "expected '>' header, got {:?}",
            String::from_utf8_lossy(&line[..line.len().min(20)])
        )));
    }
    let digits = &line[1..];
    let text =
        std::str::from_utf8(digits).map_err(|_| IoError::Malformed("non-UTF8 header".into()))?;
    text.trim()
        .parse::<u64>()
        .map_err(|_| IoError::Malformed(format!("header is not a sequence number: '>{text}'")))
}

/// Strip a trailing `\n` / `\r\n` from a line.
pub fn trim_eol(line: &[u8]) -> &[u8] {
    let mut end = line.len();
    while end > 0 && (line[end - 1] == b'\n' || line[end - 1] == b'\r') {
        end -= 1;
    }
    &line[..end]
}

/// Iterate raw records from a buffered reader until EOF.
pub struct RecordReader<R: BufRead> {
    inner: R,
    line: Vec<u8>,
    /// id of the previous record, for ascending-order validation.
    prev_id: Option<u64>,
}

impl<R: BufRead> RecordReader<R> {
    /// Wrap a buffered reader positioned at a record boundary.
    pub fn new(inner: R) -> RecordReader<R> {
        RecordReader { inner, line: Vec::with_capacity(512), prev_id: None }
    }

    fn read_line(&mut self) -> Result<bool> {
        self.line.clear();
        let n = self.inner.read_until(b'\n', &mut self.line)?;
        Ok(n > 0)
    }

    /// Read the next record, or `Ok(None)` at EOF.
    ///
    /// Enforces the dialect invariants: header then exactly one payload
    /// line, ids strictly ascending.
    pub fn next_record(&mut self) -> Result<Option<RawRecord>> {
        let mut rec = RawRecord { id: 0, line: Vec::new() };
        Ok(self.next_record_into(&mut rec)?.then_some(rec))
    }

    /// Read the next record into `rec`, reusing its payload buffer;
    /// returns `Ok(false)` at EOF. The allocation-free twin of
    /// [`RecordReader::next_record`]: a loop over an arbitrarily large
    /// file holds one payload buffer, not one Vec per record.
    pub fn next_record_into(&mut self, rec: &mut RawRecord) -> Result<bool> {
        if !self.read_line()? {
            return Ok(false);
        }
        let id = parse_header(&self.line)?;
        if let Some(prev) = self.prev_id {
            if id <= prev {
                return Err(IoError::Malformed(format!(
                    "sequence numbers not ascending: {id} after {prev}"
                )));
            }
        }
        self.prev_id = Some(id);
        rec.id = id;
        rec.line.clear();
        if self.inner.read_until(b'\n', &mut rec.line)? == 0 {
            return Err(IoError::Malformed(format!("record {id}: missing payload line")));
        }
        if rec.line.first() == Some(&b'>') {
            return Err(IoError::Malformed(format!("record {id}: empty payload")));
        }
        let keep = trim_eol(&rec.line).len();
        rec.line.truncate(keep);
        Ok(true)
    }

    /// Collect every remaining record.
    pub fn read_all(&mut self) -> Result<Vec<RawRecord>> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }
}

/// Write a whole sequence file (ids `1..=n` in order).
pub fn write_sequences(out: &mut impl Write, seqs: &[Vec<u8>]) -> std::io::Result<()> {
    for (i, s) in seqs.iter().enumerate() {
        write_record(out, i as u64 + 1, s)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn write_then_read_round_trip() {
        let mut buf = Vec::new();
        write_record(&mut buf, 1, b"ACGT").unwrap();
        write_record(&mut buf, 2, b"GGTT").unwrap();
        let mut rdr = RecordReader::new(Cursor::new(buf));
        assert_eq!(
            rdr.read_all().unwrap(),
            vec![
                RawRecord { id: 1, line: b"ACGT".to_vec() },
                RawRecord { id: 2, line: b"GGTT".to_vec() },
            ]
        );
    }

    #[test]
    fn parse_header_variants() {
        assert_eq!(parse_header(b">42\n").unwrap(), 42);
        assert_eq!(parse_header(b">1").unwrap(), 1);
        assert!(parse_header(b"ACGT").is_err());
        assert!(parse_header(b">read_7").is_err());
        assert!(parse_header(b">").is_err());
    }

    #[test]
    fn non_ascending_ids_rejected() {
        let data = b">2\nACGT\n>2\nGGGG\n".to_vec();
        let mut rdr = RecordReader::new(Cursor::new(data));
        assert!(rdr.next_record().unwrap().is_some());
        assert!(matches!(rdr.next_record(), Err(IoError::Malformed(_))));
    }

    #[test]
    fn truncated_record_rejected() {
        let data = b">1\nACGT\n>2\n".to_vec();
        let mut rdr = RecordReader::new(Cursor::new(data));
        assert!(rdr.next_record().unwrap().is_some());
        assert!(matches!(rdr.next_record(), Err(IoError::Malformed(_))));
    }

    #[test]
    fn empty_payload_rejected() {
        let data = b">1\n>2\nACGT\n".to_vec();
        let mut rdr = RecordReader::new(Cursor::new(data));
        assert!(matches!(rdr.next_record(), Err(IoError::Malformed(_))));
    }

    #[test]
    fn crlf_tolerated() {
        let data = b">1\r\nACGT\r\n".to_vec();
        let mut rdr = RecordReader::new(Cursor::new(data));
        let rec = rdr.next_record().unwrap().unwrap();
        assert_eq!(rec.id, 1);
        assert_eq!(rec.line, b"ACGT");
    }

    #[test]
    fn empty_file_is_empty() {
        let mut rdr = RecordReader::new(Cursor::new(Vec::new()));
        assert!(rdr.next_record().unwrap().is_none());
    }
}
