//! Persistent sharded spectrum snapshots — the build-once / correct-many
//! bridge between runs.
//!
//! Steps II–III dominate a correction run's wall time, yet their output —
//! the pruned, owner-partitioned k-mer and tile spectra — depends only on
//! the input dataset and the Reptile parameters. This module persists
//! that output as a [`specstore`] snapshot directory (one shard per
//! `(rank, table-kind)` plus a manifest) and loads it back:
//!
//! * **Same `np`** — each rank reads exactly its own two shards and
//!   adopts the slot arrays verbatim (mapped storage, no rehash): the
//!   tables probe identically to the freshly built ones.
//! * **Different `np`** — new rank `r` loads the shards of every old
//!   rank `o` with `o % np == r` and streams the entries through the
//!   build's own count exchange ([`exchange_counts`]), which re-owns
//!   every key under the new [`OwnerMap`]. Counts are already global and
//!   pruned, and shard key sets are disjoint, so the merged result is
//!   exactly what a fresh build at the new `np` owns.
//!
//! **Failure protocol.** All file I/O happens *before* any collective,
//! then every rank joins an allgather of its error flag. A rank that
//! failed returns its own typed [`SnapshotError`]; its peers return
//! [`SnapshotError::PeerFailure`]. No rank can be left behind in a
//! collective, and no rank ever sees garbage — every corruption class is
//! detected and typed before a table is adopted.

use crate::owner::OwnerMap;
use crate::spectrum::{exchange_counts, BuildStats};
use mpisim::Comm;
use reptile::spectrum::{KmerSpectrum, Normalized, TileSpectrum};
use reptile::{FlatKmerTable, FlatTileTable, ReptileParams};
use specstore::{
    read_kmer_shard, read_tile_shard, shard_file_name, truncate_file, write_kmer_shard,
    write_tile_shard, ConfigFingerprint, LoadedShard, Manifest, ShardKind, ShardRecord,
    SnapshotError,
};
use std::path::Path;

/// One rank's loaded owned spectra, plus the I/O accounting the reports
/// carry.
#[derive(Debug)]
pub struct LoadedSpectra {
    /// Owned k-mers with global counts (pruned) — mapped storage on a
    /// same-`np` load, rebuilt through the exchange on a re-shard.
    pub kmers: KmerSpectrum,
    /// Owned tiles, same provenance.
    pub tiles: TileSpectrum,
    /// Shard bytes (headers included) this rank read.
    pub bytes_read: u64,
    /// Whether the snapshot was built at a different `np` and went
    /// through the re-owning exchange.
    pub resharded: bool,
}

/// A whole snapshot loaded by one process (the virtual engine): the
/// merged global spectra plus the per-*new*-rank byte attribution the
/// cost model charges.
#[derive(Debug)]
pub struct SerialLoad {
    /// Union of every shard's entries (the global pruned spectra).
    pub kmers: KmerSpectrum,
    /// Tile twin.
    pub tiles: TileSpectrum,
    /// Bytes new rank `r` would read: its own shards at matching `np`,
    /// its `o % np == r` shard group otherwise. Indexed by new rank.
    pub per_rank_bytes: Vec<u64>,
    /// Whether the snapshot `np` differs from the requested one.
    pub resharded: bool,
}

/// Allgather everyone's error flag; returns how many ranks failed. This
/// is the first collective of every snapshot operation — it runs before
/// any rank acts on its local I/O result, so a failure anywhere aborts
/// all ranks together instead of deadlocking the survivors in a later
/// collective.
fn gather_failures(comm: &Comm, my_failure: bool) -> u64 {
    comm.allgatherv(vec![my_failure as u64])
        .iter()
        .map(|flags| flags.first().copied().unwrap_or(0))
        .sum()
}

/// Resolve one rank's outcome against the group's: propagate the local
/// error if there is one, blame the peers otherwise.
fn resolve<T>(local: Result<T, SnapshotError>, failed_ranks: u64) -> Result<T, SnapshotError> {
    match local {
        Err(e) => Err(e),
        Ok(_) if failed_ranks > 0 => Err(SnapshotError::PeerFailure { failed_ranks }),
        Ok(v) => Ok(v),
    }
}

/// Write one rank's two shards into `dir`; returns the records.
fn write_rank_shards(
    dir: &Path,
    fp: &ConfigFingerprint,
    rank: usize,
    np: usize,
    kmers: &KmerSpectrum,
    tiles: &TileSpectrum,
) -> Result<(ShardRecord, ShardRecord), SnapshotError> {
    std::fs::create_dir_all(dir).map_err(|e| SnapshotError::io(dir, e))?;
    let kr = write_kmer_shard(
        &dir.join(shard_file_name(rank, ShardKind::Kmer)),
        fp,
        rank,
        np,
        kmers.table(),
    )?;
    let tr = write_tile_shard(
        &dir.join(shard_file_name(rank, ShardKind::Tile)),
        fp,
        rank,
        np,
        tiles.table(),
    )?;
    Ok((kr, tr))
}

/// Save this rank's owned spectra into the snapshot directory; rank 0
/// additionally gathers every rank's shard records over the wire and
/// writes the manifest. Returns the bytes this rank wrote (rank 0's
/// total includes the manifest). Collective: every rank must call it
/// together.
pub fn save_snapshot(
    comm: &Comm,
    dir: &Path,
    params: &ReptileParams,
    kmers: &KmerSpectrum,
    tiles: &TileSpectrum,
) -> Result<u64, SnapshotError> {
    let me = comm.rank();
    let np = comm.size();
    let fp = ConfigFingerprint::for_params(params);
    let local = write_rank_shards(dir, &fp, me, np, kmers, tiles);
    let failed = gather_failures(comm, local.is_err());
    let (kr, tr) = resolve(local, failed)?;
    // Shard records cross the wire as fixed tuples (file names are
    // derivable from rank and kind), so the manifest lists every rank's
    // true byte counts and checksums, not recomputed guesses.
    let wire = vec![
        (me as u64, ShardKind::Kmer.code() as u64, kr.bytes, kr.checksum),
        (me as u64, ShardKind::Tile.code() as u64, tr.bytes, tr.checksum),
    ];
    let gathered = comm.allgatherv(wire);
    let manifest_result =
        if me == 0 { records_to_manifest(np, fp, gathered).write(dir) } else { Ok(0) };
    let failed = gather_failures(comm, manifest_result.is_err());
    let manifest_bytes = resolve(manifest_result, failed)?;
    Ok(kr.bytes + tr.bytes + manifest_bytes)
}

/// Turn the allgathered `(rank, kind, bytes, checksum)` tuples into a
/// manifest with shards in `(rank, kind)` order.
fn records_to_manifest(
    np: usize,
    fingerprint: ConfigFingerprint,
    gathered: Vec<Vec<(u64, u64, u64, u64)>>,
) -> Manifest {
    let mut shards: Vec<ShardRecord> = gathered
        .into_iter()
        .flatten()
        .map(|(rank, kind_code, bytes, checksum)| {
            let kind = ShardKind::from_code(kind_code as u32).expect("rank sent a valid kind");
            ShardRecord {
                rank: rank as usize,
                kind,
                file_name: shard_file_name(rank as usize, kind),
                bytes,
                checksum,
            }
        })
        .collect();
    shards.sort_by_key(|s| (s.rank, s.kind.code()));
    Manifest { np, fingerprint, shards }
}

/// The old ranks whose shards new rank `me` is responsible for: its own
/// at matching `np`, the `o % np == me` group otherwise. Every shard is
/// read exactly once across the new ranks, and the assignment needs no
/// communication to agree on.
fn shard_group(old_np: usize, np: usize, me: usize) -> Vec<usize> {
    if old_np == np {
        vec![me]
    } else {
        (0..old_np).filter(|o| o % np == me).collect()
    }
}

/// Read and fully validate one old rank's shard pair, cross-checking
/// the manifest's inventory (byte count, placement) against the shard
/// headers actually on disk.
fn read_shard_pair(
    dir: &Path,
    manifest: &Manifest,
    expect: &ConfigFingerprint,
    old_rank: usize,
    old_np: usize,
) -> Result<(LoadedShard<FlatKmerTable>, LoadedShard<FlatTileTable>), SnapshotError> {
    let krec = manifest.shard(old_rank, ShardKind::Kmer).expect("parser enforces coverage");
    let trec = manifest.shard(old_rank, ShardKind::Tile).expect("parser enforces coverage");
    let k = read_kmer_shard(&dir.join(&krec.file_name), expect)?;
    let t = read_tile_shard(&dir.join(&trec.file_name), expect)?;
    for (loaded_rank, loaded_np, rec, read_bytes) in
        [(k.rank, k.np, krec, k.bytes_read), (t.rank, t.np, trec, t.bytes_read)]
    {
        if loaded_rank != old_rank || loaded_np != old_np {
            return Err(SnapshotError::InvalidTable {
                path: dir.join(&rec.file_name),
                reason: format!(
                    "shard claims rank {loaded_rank} of {loaded_np}, manifest places it at \
                     rank {old_rank} of {old_np}"
                ),
            });
        }
        if read_bytes != rec.bytes {
            return Err(SnapshotError::InvalidTable {
                path: dir.join(&rec.file_name),
                reason: format!("manifest lists {} bytes, shard holds {read_bytes}", rec.bytes),
            });
        }
    }
    Ok((k, t))
}

/// Merge a loaded shard pair into staging spectra. Key sets are disjoint
/// across shards of one snapshot, so this is a pure union.
fn merge_pair(
    params: &ReptileParams,
    k: LoadedShard<FlatKmerTable>,
    t: LoadedShard<FlatTileTable>,
    into_k: &mut KmerSpectrum,
    into_t: &mut TileSpectrum,
) {
    let ks = KmerSpectrum::from_table(params.kmer_codec(), params.canonical, k.table);
    into_k.reserve(ks.len());
    for (code, count) in ks.iter() {
        into_k.add_count(Normalized::assume(code), count);
    }
    let ts = TileSpectrum::from_table(params.tile_codec(), params.canonical, t.table);
    into_t.reserve(ts.len());
    for (code, count) in ts.iter() {
        into_t.add_count(Normalized::assume(code), count);
    }
}

/// Load this rank's owned spectra from a snapshot directory. `chop`,
/// when set, truncates the first k-mer shard in this rank's group to
/// that many bytes before reading — the deterministic
/// snapshot-corruption fault injection (surfaces as a typed
/// [`SnapshotError::Truncated`]). Collective: every rank must call it
/// together (the re-shard path runs an exchange, and even the same-`np`
/// path joins the failure allgather).
pub fn load_snapshot(
    comm: &Comm,
    dir: &Path,
    params: &ReptileParams,
    chop: Option<u64>,
) -> Result<LoadedSpectra, SnapshotError> {
    let me = comm.rank();
    let np = comm.size();
    let expect = ConfigFingerprint::for_params(params);
    // All local I/O first; the group decides success together below.
    let local: Result<(Vec<_>, usize), SnapshotError> = (|| {
        let manifest = Manifest::read(dir)?;
        manifest.check_fingerprint(&expect, dir)?;
        let old_np = manifest.np;
        let mut loaded = Vec::new();
        for (i, old_rank) in shard_group(old_np, np, me).into_iter().enumerate() {
            if i == 0 {
                if let Some(keep) = chop {
                    truncate_file(&dir.join(shard_file_name(old_rank, ShardKind::Kmer)), keep)?;
                }
            }
            loaded.push(read_shard_pair(dir, &manifest, &expect, old_rank, old_np)?);
        }
        Ok((loaded, old_np))
    })();
    let failed = gather_failures(comm, local.is_err());
    let (loaded, old_np) = resolve(local, failed)?;
    let bytes_read: u64 = loaded.iter().map(|(k, t)| k.bytes_read + t.bytes_read).sum();

    if old_np == np {
        let (k, t) = loaded.into_iter().next().expect("same-np group is exactly [me]");
        return Ok(LoadedSpectra {
            kmers: KmerSpectrum::from_table(params.kmer_codec(), params.canonical, k.table),
            tiles: TileSpectrum::from_table(params.tile_codec(), params.canonical, t.table),
            bytes_read,
            resharded: false,
        });
    }

    // Re-shard: union this rank's shard group locally, then re-own the
    // entries through the build's count exchange. No prune afterwards —
    // the snapshot was pruned at save time and counts are final.
    let owners = OwnerMap::new(np, params);
    let mut staged_k = KmerSpectrum::new(params.kmer_codec(), params.canonical);
    let mut staged_t = TileSpectrum::new(params.tile_codec(), params.canonical);
    for (k, t) in loaded {
        merge_pair(params, k, t, &mut staged_k, &mut staged_t);
    }
    let mut kmers = KmerSpectrum::new(params.kmer_codec(), params.canonical);
    let mut tiles = TileSpectrum::new(params.tile_codec(), params.canonical);
    let mut stats = BuildStats::default();
    exchange_counts(comm, &owners, staged_k, staged_t, &mut kmers, &mut tiles, &mut stats);
    Ok(LoadedSpectra { kmers, tiles, bytes_read, resharded: true })
}

/// Single-process snapshot save (the virtual engine): bucket the global
/// spectra by owner, write every rank's shards and the manifest, and
/// return the bytes attributable to each rank (rank 0 carries the
/// manifest bytes, as in the distributed protocol).
pub fn save_snapshot_serial(
    dir: &Path,
    params: &ReptileParams,
    np: usize,
    kmers: &KmerSpectrum,
    tiles: &TileSpectrum,
) -> Result<Vec<u64>, SnapshotError> {
    let fp = ConfigFingerprint::for_params(params);
    let owners = OwnerMap::new(np, params);
    // Counting pass so every per-rank table is sized exactly once.
    let mut kmer_sizes = vec![0usize; np];
    for (code, _) in kmers.iter() {
        kmer_sizes[owners.kmer_owner_at(Normalized::assume(code))] += 1;
    }
    let mut tile_sizes = vec![0usize; np];
    for (code, _) in tiles.iter() {
        tile_sizes[owners.tile_owner_at(Normalized::assume(code))] += 1;
    }
    let mut rank_kmers: Vec<KmerSpectrum> = kmer_sizes
        .into_iter()
        .map(|n| {
            let mut s = KmerSpectrum::new(params.kmer_codec(), params.canonical);
            s.reserve(n);
            s
        })
        .collect();
    let mut rank_tiles: Vec<TileSpectrum> = tile_sizes
        .into_iter()
        .map(|n| {
            let mut s = TileSpectrum::new(params.tile_codec(), params.canonical);
            s.reserve(n);
            s
        })
        .collect();
    for (code, count) in kmers.iter() {
        let key = Normalized::assume(code);
        rank_kmers[owners.kmer_owner_at(key)].add_count(key, count);
    }
    for (code, count) in tiles.iter() {
        let key = Normalized::assume(code);
        rank_tiles[owners.tile_owner_at(key)].add_count(key, count);
    }
    let mut per_rank = vec![0u64; np];
    let mut shards = Vec::with_capacity(2 * np);
    for rank in 0..np {
        let (kr, tr) = write_rank_shards(dir, &fp, rank, np, &rank_kmers[rank], &rank_tiles[rank])?;
        per_rank[rank] = kr.bytes + tr.bytes;
        shards.push(kr);
        shards.push(tr);
    }
    let manifest = Manifest { np, fingerprint: fp, shards };
    per_rank[0] += manifest.write(dir)?;
    Ok(per_rank)
}

/// Single-process snapshot load (the virtual engine): read every shard,
/// merge into global spectra, and attribute the bytes each *new* rank
/// would have read. `chop` is `(rank, keep_bytes)` — the fault layer's
/// snapshot truncation, applied to the first k-mer shard in that new
/// rank's group.
pub fn load_snapshot_serial(
    dir: &Path,
    params: &ReptileParams,
    np: usize,
    chop: Option<(usize, u64)>,
) -> Result<SerialLoad, SnapshotError> {
    let expect = ConfigFingerprint::for_params(params);
    let manifest = Manifest::read(dir)?;
    manifest.check_fingerprint(&expect, dir)?;
    let old_np = manifest.np;
    let mut kmers = KmerSpectrum::new(params.kmer_codec(), params.canonical);
    let mut tiles = TileSpectrum::new(params.tile_codec(), params.canonical);
    let mut per_rank_bytes = vec![0u64; np];
    for (me, rank_bytes) in per_rank_bytes.iter_mut().enumerate() {
        for (i, old_rank) in shard_group(old_np, np, me).into_iter().enumerate() {
            if i == 0 {
                if let Some((chop_rank, keep)) = chop {
                    if chop_rank == me {
                        truncate_file(&dir.join(shard_file_name(old_rank, ShardKind::Kmer)), keep)?;
                    }
                }
            }
            let (k, t) = read_shard_pair(dir, &manifest, &expect, old_rank, old_np)?;
            *rank_bytes += k.bytes_read + t.bytes_read;
            merge_pair(params, k, t, &mut kmers, &mut tiles);
        }
    }
    Ok(SerialLoad { kmers, tiles, per_rank_bytes, resharded: old_np != np })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::HeuristicConfig;
    use crate::spectrum::{build_distributed, RankTables};
    use mpisim::Universe;
    use reptile::spectrum::LocalSpectra;

    fn params() -> ReptileParams {
        ReptileParams { k: 5, tile_overlap: 2, ..ReptileParams::for_tests() }
    }

    fn make_reads(n: usize) -> Vec<dnaseq::Read> {
        let mut reads = Vec::new();
        for i in 0..n {
            let template = i / 3;
            let seed = dnaseq::mix64(template as u64 + 1);
            let seq: Vec<u8> = (0..20)
                .map(|j| [b'A', b'C', b'G', b'T'][(dnaseq::mix64(seed ^ (j as u64)) % 4) as usize])
                .collect();
            reads.push(dnaseq::Read::new(i as u64 + 1, seq, vec![30; 20]));
        }
        reads
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("reptile-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn build_and_save(comm: &Comm, reads: &[dnaseq::Read], dir: &Path) -> RankTables {
        let np = comm.size();
        let mine: Vec<_> = reads
            .iter()
            .enumerate()
            .filter(|(i, _)| i % np == comm.rank())
            .map(|(_, r)| r.clone())
            .collect();
        let (tables, _) =
            build_distributed(comm, &mine, 1000, &params(), &HeuristicConfig::base(), 1);
        save_snapshot(comm, dir, &params(), &tables.hash_kmers, &tables.hash_tiles).expect("save");
        tables
    }

    /// Build at np, save, reload at the same np: every rank's tables are
    /// entry-identical and byte-accurately accounted.
    #[test]
    fn save_and_load_same_np_roundtrip() {
        let reads = make_reads(40);
        let reads_ref = &reads;
        let dir = tmpdir("same-np");
        let dir_ref = &dir;
        let np = 3;
        let built = Universe::new(np).run(move |comm| build_and_save(comm, reads_ref, dir_ref));
        let loaded = Universe::new(np)
            .run(move |comm| load_snapshot(comm, dir_ref, &params(), None).expect("load"));
        for (tables, l) in built.iter().zip(&loaded) {
            assert!(!l.resharded);
            assert!(l.bytes_read > 0);
            let mut a: Vec<_> = tables.hash_kmers.iter().collect();
            let mut b: Vec<_> = l.kmers.iter().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "kmer tables must roundtrip");
            assert_eq!(tables.hash_kmers.memory_bytes(), l.kmers.memory_bytes());
            let mut at: Vec<_> = tables.hash_tiles.iter().collect();
            let mut bt: Vec<_> = l.tiles.iter().collect();
            at.sort_unstable();
            bt.sort_unstable();
            assert_eq!(at, bt, "tile tables must roundtrip");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Save at np=4, load at np=3: the union of re-sharded tables equals
    /// the sequential spectrum, every key at its new owner.
    #[test]
    fn reshard_load_matches_fresh_ownership() {
        let p = params();
        let reads = make_reads(40);
        let seq = LocalSpectra::build(&reads, &p);
        let reads_ref = &reads;
        let dir = tmpdir("reshard");
        let dir_ref = &dir;
        Universe::new(4).run(move |comm| {
            build_and_save(comm, reads_ref, dir_ref);
        });
        let new_np = 3;
        let loaded = Universe::new(new_np)
            .run(move |comm| load_snapshot(comm, dir_ref, &params(), None).expect("reshard"));
        let owners = OwnerMap::new(new_np, &p);
        let mut union: Vec<(u64, u32)> = Vec::new();
        for (rank, l) in loaded.iter().enumerate() {
            assert!(l.resharded);
            for (code, count) in l.kmers.iter() {
                assert_eq!(
                    owners.kmer_owner_at(Normalized::assume(code)),
                    rank,
                    "key at wrong owner after reshard"
                );
                union.push((code, count));
            }
        }
        union.sort_unstable();
        let mut expect: Vec<(u64, u32)> = seq.kmers.iter().collect();
        expect.sort_unstable();
        assert_eq!(union, expect, "resharded union must equal the sequential spectrum");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A chopped shard surfaces as Truncated on the chopped rank and
    /// PeerFailure everywhere else — nobody deadlocks.
    #[test]
    fn chop_faults_are_typed_on_every_rank() {
        let reads = make_reads(30);
        let reads_ref = &reads;
        let dir = tmpdir("chop");
        let dir_ref = &dir;
        let np = 3;
        Universe::new(np).run(move |comm| {
            build_and_save(comm, reads_ref, dir_ref);
        });
        let results = Universe::new(np).run(move |comm| {
            let chop = (comm.rank() == 1).then_some(40u64);
            load_snapshot(comm, dir_ref, &params(), chop)
        });
        assert!(matches!(results[1], Err(SnapshotError::Truncated { .. })), "{:?}", results[1]);
        for rank in [0, 2] {
            match &results[rank] {
                Err(SnapshotError::PeerFailure { failed_ranks: 1 }) => {}
                other => panic!("rank {rank}: expected PeerFailure, got {other:?}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Serial save + serial load roundtrip, including the re-shard byte
    /// attribution.
    #[test]
    fn serial_roundtrip_and_byte_attribution() {
        let p = params();
        let reads = make_reads(40);
        let spectra = LocalSpectra::build(&reads, &p);
        let dir = tmpdir("serial");
        let per_rank =
            save_snapshot_serial(&dir, &p, 4, &spectra.kmers, &spectra.tiles).expect("save");
        assert_eq!(per_rank.len(), 4);
        assert!(per_rank.iter().all(|&b| b > 0));
        // same np
        let same = load_snapshot_serial(&dir, &p, 4, None).expect("serial load");
        assert!(!same.resharded);
        assert_eq!(same.kmers.len(), spectra.kmers.len());
        for (code, count) in spectra.kmers.iter() {
            assert_eq!(same.kmers.count(code), count);
        }
        // reshard: every shard's bytes attributed exactly once
        let re = load_snapshot_serial(&dir, &p, 3, None).expect("serial reshard");
        assert!(re.resharded);
        assert_eq!(re.kmers.len(), spectra.kmers.len());
        let manifest_bytes = std::fs::metadata(Manifest::path_in(&dir)).unwrap().len();
        let shard_total: u64 = per_rank.iter().sum::<u64>() - manifest_bytes;
        assert_eq!(re.per_rank_bytes.iter().sum::<u64>(), shard_total);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Loading with different parameters is a typed fingerprint
    /// mismatch, not garbage.
    #[test]
    fn serial_load_rejects_wrong_params() {
        let p = params();
        let reads = make_reads(20);
        let spectra = LocalSpectra::build(&reads, &p);
        let dir = tmpdir("wrong-params");
        save_snapshot_serial(&dir, &p, 2, &spectra.kmers, &spectra.tiles).expect("save");
        let other = ReptileParams { k: 7, tile_overlap: 3, ..ReptileParams::for_tests() };
        let err = load_snapshot_serial(&dir, &other, 2, None).unwrap_err();
        assert!(matches!(err, SnapshotError::FingerprintMismatch { .. }), "{err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
