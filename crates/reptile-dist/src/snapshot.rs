//! Persistent sharded spectrum snapshots — the build-once / correct-many
//! bridge between runs.
//!
//! Steps II–III dominate a correction run's wall time, yet their output —
//! the pruned, owner-partitioned k-mer and tile spectra — depends only on
//! the input dataset and the Reptile parameters. This module persists
//! that output through the [`specstore`] store API
//! ([`SnapshotWriter`] / [`SnapshotReader`]: one shard per
//! `(rank, table-kind)`, optional Reed-Solomon parity shards, and a
//! manifest) and loads it back:
//!
//! * **Same `np`** — each rank reads exactly its own two shards and
//!   adopts the slot arrays verbatim (mapped storage, no rehash): the
//!   tables probe identically to the freshly built ones.
//! * **Different `np`** — new rank `r` loads the shards of every old
//!   rank `o` with `o % np == r` and streams the entries through the
//!   build's own count exchange ([`exchange_counts`]), which re-owns
//!   every key under the new [`OwnerMap`]. Counts are already global and
//!   pruned, and shard key sets are disjoint, so the merged result is
//!   exactly what a fresh build at the new `np` owns.
//!
//! **Repair.** Loads take a [`RecoveryPolicy`]. Under `Strict` every
//! corruption class surfaces as its typed [`SnapshotError`], as it
//! always did. Under `Repair` a damaged shard (truncated, checksummed
//! wrong, missing, header stomped) is reconstructed from the snapshot's
//! parity shards *by the rank that loads it* — shard groups are disjoint
//! across loading ranks, so distributed repair needs no coordination and
//! in-place healing (`rewrite: true`) never races. The repair work each
//! rank performed is reported in [`LoadedSpectra::repair`] /
//! [`SerialLoad::per_rank_repair`] so the engines can account it.
//!
//! **Failure protocol.** All file I/O happens *before* any collective,
//! then every rank joins an allgather of its error flag. A rank that
//! failed returns its own typed [`SnapshotError`]; its peers return
//! [`SnapshotError::PeerFailure`]. No rank can be left behind in a
//! collective, and no rank ever sees garbage — every corruption class is
//! detected (and under `Repair`, mended) before a table is adopted.

use crate::owner::OwnerMap;
use crate::spectrum::{exchange_counts, BuildStats};
use mpisim::Comm;
use reptile::spectrum::{KmerSpectrum, Normalized, TileSpectrum};
use reptile::{FlatKmerTable, FlatTileTable, ReptileParams};
use specstore::{
    ConfigFingerprint, LoadedShard, RecoveryPolicy, RepairStats, ShardKind, ShardRecord,
    SnapshotError, SnapshotReader, SnapshotWriter,
};
use std::path::Path;

/// One rank's loaded owned spectra, plus the I/O accounting the reports
/// carry.
#[derive(Debug)]
pub struct LoadedSpectra {
    /// Owned k-mers with global counts (pruned) — mapped storage on a
    /// same-`np` load, rebuilt through the exchange on a re-shard.
    pub kmers: KmerSpectrum,
    /// Owned tiles, same provenance.
    pub tiles: TileSpectrum,
    /// Shard bytes (headers included) this rank read.
    pub bytes_read: u64,
    /// Whether the snapshot was built at a different `np` and went
    /// through the re-owning exchange.
    pub resharded: bool,
    /// Reed-Solomon repair work this rank performed during the load
    /// (all-zero on a clean load or under `Strict`).
    pub repair: RepairStats,
}

/// A whole snapshot loaded by one process (the virtual engine): the
/// merged global spectra plus the per-*new*-rank byte attribution the
/// cost model charges.
#[derive(Debug)]
pub struct SerialLoad {
    /// Union of every shard's entries (the global pruned spectra).
    pub kmers: KmerSpectrum,
    /// Tile twin.
    pub tiles: TileSpectrum,
    /// Bytes new rank `r` would read: its own shards at matching `np`,
    /// its `o % np == r` shard group otherwise. Indexed by new rank.
    pub per_rank_bytes: Vec<u64>,
    /// Repair work attributable to each new rank (the rank whose shard
    /// group the reconstruction ran for). Indexed like
    /// [`per_rank_bytes`](SerialLoad::per_rank_bytes).
    pub per_rank_repair: Vec<RepairStats>,
    /// Whether the snapshot `np` differs from the requested one.
    pub resharded: bool,
}

/// Allgather everyone's error flag; returns how many ranks failed. This
/// is the first collective of every snapshot operation — it runs before
/// any rank acts on its local I/O result, so a failure anywhere aborts
/// all ranks together instead of deadlocking the survivors in a later
/// collective.
fn gather_failures(comm: &Comm, my_failure: bool) -> u64 {
    comm.allgatherv(vec![my_failure as u64])
        .iter()
        .map(|flags| flags.first().copied().unwrap_or(0))
        .sum()
}

/// Resolve one rank's outcome against the group's: propagate the local
/// error if there is one, blame the peers otherwise.
fn resolve<T>(local: Result<T, SnapshotError>, failed_ranks: u64) -> Result<T, SnapshotError> {
    match local {
        Err(e) => Err(e),
        Ok(_) if failed_ranks > 0 => Err(SnapshotError::PeerFailure { failed_ranks }),
        Ok(v) => Ok(v),
    }
}

/// Save this rank's owned spectra into the snapshot directory with
/// `parity` Reed-Solomon shards per table kind; rank 0 additionally
/// gathers every rank's shard records over the wire, encodes the parity,
/// and writes the manifest. Returns the bytes this rank wrote (rank 0's
/// total includes parity and the manifest). Collective: every rank must
/// call it together.
pub fn save_snapshot(
    comm: &Comm,
    dir: &Path,
    params: &ReptileParams,
    parity: usize,
    kmers: &KmerSpectrum,
    tiles: &TileSpectrum,
) -> Result<u64, SnapshotError> {
    let me = comm.rank();
    let np = comm.size();
    let fp = ConfigFingerprint::for_params(params);
    let local: Result<(SnapshotWriter, ShardRecord, ShardRecord), SnapshotError> = (|| {
        let mut w = SnapshotWriter::create(dir, &fp, np, parity)?;
        let kr = w.write_kmer(me, kmers.table())?;
        let tr = w.write_tile(me, tiles.table())?;
        Ok((w, kr, tr))
    })();
    let failed = gather_failures(comm, local.is_err());
    let (writer, kr, tr) = resolve(local, failed)?;
    // Shard records cross the wire as fixed tuples (file names are
    // recomputed from rank and kind by the store), so the manifest lists
    // every rank's true byte counts and checksums, not recomputed
    // guesses.
    let wire = vec![
        (me as u64, ShardKind::Kmer.code() as u64, kr.bytes, kr.checksum),
        (me as u64, ShardKind::Tile.code() as u64, tr.bytes, tr.checksum),
    ];
    let gathered = comm.allgatherv(wire);
    let finish_result = if me == 0 {
        let records: Vec<ShardRecord> = gathered
            .into_iter()
            .flatten()
            .map(|(rank, kind_code, bytes, checksum)| {
                let kind = ShardKind::from_code(kind_code as u32).expect("rank sent a valid kind");
                ShardRecord::for_shard(rank as usize, kind, bytes, checksum)
            })
            .collect();
        writer.finish_with(records)
    } else {
        Ok(0)
    };
    let failed = gather_failures(comm, finish_result.is_err());
    let extra_bytes = resolve(finish_result, failed)?;
    Ok(kr.bytes + tr.bytes + extra_bytes)
}

/// The old ranks whose shards new rank `me` is responsible for: its own
/// at matching `np`, the `o % np == me` group otherwise. Every shard is
/// read exactly once across the new ranks, and the assignment needs no
/// communication to agree on — which is also what makes distributed
/// repair-with-rewrite race-free.
fn shard_group(old_np: usize, np: usize, me: usize) -> Vec<usize> {
    if old_np == np {
        vec![me]
    } else {
        (0..old_np).filter(|o| o % np == me).collect()
    }
}

/// Apply the fault plan's snapshot truncation to `old_rank`'s k-mer
/// shard (file name from the verified manifest).
fn apply_chop(
    reader: &SnapshotReader,
    dir: &Path,
    old_rank: usize,
    keep: u64,
) -> Result<(), SnapshotError> {
    let name = reader
        .manifest()
        .shard(old_rank, ShardKind::Kmer)
        .expect("parser enforces coverage")
        .file_name
        .clone();
    let path = dir.join(&name);
    mpisim::chop_file(&path, keep).map_err(|e| SnapshotError::io(&path, e))
}

/// Read one old rank's shard pair through the repairing reader.
fn load_shard_pair(
    reader: &mut SnapshotReader,
    old_rank: usize,
) -> Result<(LoadedShard<FlatKmerTable>, LoadedShard<FlatTileTable>), SnapshotError> {
    let k = reader.load_kmer(old_rank)?;
    let t = reader.load_tile(old_rank)?;
    Ok((k, t))
}

/// Merge a loaded shard pair into staging spectra. Key sets are disjoint
/// across shards of one snapshot, so this is a pure union.
fn merge_pair(
    params: &ReptileParams,
    k: LoadedShard<FlatKmerTable>,
    t: LoadedShard<FlatTileTable>,
    into_k: &mut KmerSpectrum,
    into_t: &mut TileSpectrum,
) {
    let ks = KmerSpectrum::from_table(params.kmer_codec(), params.canonical, k.table);
    into_k.reserve(ks.len());
    for (code, count) in ks.iter() {
        into_k.add_count(Normalized::assume(code), count);
    }
    let ts = TileSpectrum::from_table(params.tile_codec(), params.canonical, t.table);
    into_t.reserve(ts.len());
    for (code, count) in ts.iter() {
        into_t.add_count(Normalized::assume(code), count);
    }
}

/// Load this rank's owned spectra from a snapshot directory under
/// `policy`. `chop`, when set, truncates the first k-mer shard in this
/// rank's group to that many bytes before reading — the deterministic
/// snapshot-corruption fault injection (surfaces as a typed
/// [`SnapshotError::Truncated`] under `Strict`, and as a successful
/// repaired load under `Repair` when the loss fits the parity budget).
/// Collective: every rank must call it together (the re-shard path runs
/// an exchange, and even the same-`np` path joins the failure
/// allgather).
pub fn load_snapshot(
    comm: &Comm,
    dir: &Path,
    params: &ReptileParams,
    policy: RecoveryPolicy,
    chop: Option<u64>,
) -> Result<LoadedSpectra, SnapshotError> {
    let me = comm.rank();
    let np = comm.size();
    let expect = ConfigFingerprint::for_params(params);
    // All local I/O first; the group decides success together below.
    let local: Result<(Vec<_>, usize, RepairStats), SnapshotError> = (|| {
        let mut reader = SnapshotReader::open(dir, &expect, policy)?;
        let old_np = reader.np();
        let mut loaded = Vec::new();
        for (i, old_rank) in shard_group(old_np, np, me).into_iter().enumerate() {
            if i == 0 {
                if let Some(keep) = chop {
                    apply_chop(&reader, dir, old_rank, keep)?;
                }
            }
            loaded.push(load_shard_pair(&mut reader, old_rank)?);
        }
        Ok((loaded, old_np, reader.stats()))
    })();
    let failed = gather_failures(comm, local.is_err());
    let (loaded, old_np, repair) = resolve(local, failed)?;
    let bytes_read: u64 = loaded.iter().map(|(k, t)| k.bytes_read + t.bytes_read).sum();

    if old_np == np {
        let (k, t) = loaded.into_iter().next().expect("same-np group is exactly [me]");
        return Ok(LoadedSpectra {
            kmers: KmerSpectrum::from_table(params.kmer_codec(), params.canonical, k.table),
            tiles: TileSpectrum::from_table(params.tile_codec(), params.canonical, t.table),
            bytes_read,
            resharded: false,
            repair,
        });
    }

    // Re-shard: union this rank's shard group locally, then re-own the
    // entries through the build's count exchange. No prune afterwards —
    // the snapshot was pruned at save time and counts are final.
    let owners = OwnerMap::new(np, params);
    let mut staged_k = KmerSpectrum::new(params.kmer_codec(), params.canonical);
    let mut staged_t = TileSpectrum::new(params.tile_codec(), params.canonical);
    for (k, t) in loaded {
        merge_pair(params, k, t, &mut staged_k, &mut staged_t);
    }
    let mut kmers = KmerSpectrum::new(params.kmer_codec(), params.canonical);
    let mut tiles = TileSpectrum::new(params.tile_codec(), params.canonical);
    let mut stats = BuildStats::default();
    exchange_counts(comm, &owners, staged_k, staged_t, &mut kmers, &mut tiles, &mut stats);
    Ok(LoadedSpectra { kmers, tiles, bytes_read, resharded: true, repair })
}

/// Single-process snapshot save (the virtual engine): bucket the global
/// spectra by owner, write every rank's shards plus `parity` parity
/// shards per kind and the manifest, and return the bytes attributable
/// to each rank (rank 0 carries the parity and manifest bytes, as in
/// the distributed protocol).
pub fn save_snapshot_serial(
    dir: &Path,
    params: &ReptileParams,
    np: usize,
    parity: usize,
    kmers: &KmerSpectrum,
    tiles: &TileSpectrum,
) -> Result<Vec<u64>, SnapshotError> {
    let fp = ConfigFingerprint::for_params(params);
    let owners = OwnerMap::new(np, params);
    // Counting pass so every per-rank table is sized exactly once.
    let mut kmer_sizes = vec![0usize; np];
    for (code, _) in kmers.iter() {
        kmer_sizes[owners.kmer_owner_at(Normalized::assume(code))] += 1;
    }
    let mut tile_sizes = vec![0usize; np];
    for (code, _) in tiles.iter() {
        tile_sizes[owners.tile_owner_at(Normalized::assume(code))] += 1;
    }
    let mut rank_kmers: Vec<KmerSpectrum> = kmer_sizes
        .into_iter()
        .map(|n| {
            let mut s = KmerSpectrum::new(params.kmer_codec(), params.canonical);
            s.reserve(n);
            s
        })
        .collect();
    let mut rank_tiles: Vec<TileSpectrum> = tile_sizes
        .into_iter()
        .map(|n| {
            let mut s = TileSpectrum::new(params.tile_codec(), params.canonical);
            s.reserve(n);
            s
        })
        .collect();
    for (code, count) in kmers.iter() {
        let key = Normalized::assume(code);
        rank_kmers[owners.kmer_owner_at(key)].add_count(key, count);
    }
    for (code, count) in tiles.iter() {
        let key = Normalized::assume(code);
        rank_tiles[owners.tile_owner_at(key)].add_count(key, count);
    }
    let mut writer = SnapshotWriter::create(dir, &fp, np, parity)?;
    let mut per_rank = vec![0u64; np];
    for rank in 0..np {
        let kr = writer.write_kmer(rank, rank_kmers[rank].table())?;
        let tr = writer.write_tile(rank, rank_tiles[rank].table())?;
        per_rank[rank] = kr.bytes + tr.bytes;
    }
    per_rank[0] += writer.finish()?;
    Ok(per_rank)
}

/// Single-process snapshot load (the virtual engine): read every shard
/// under `policy`, merge into global spectra, and attribute the bytes
/// and repair work each *new* rank would have performed. `chop` is
/// `(rank, keep_bytes)` — the fault layer's snapshot truncation, applied
/// to the first k-mer shard in that new rank's group.
pub fn load_snapshot_serial(
    dir: &Path,
    params: &ReptileParams,
    np: usize,
    policy: RecoveryPolicy,
    chop: Option<(usize, u64)>,
) -> Result<SerialLoad, SnapshotError> {
    let expect = ConfigFingerprint::for_params(params);
    let mut reader = SnapshotReader::open(dir, &expect, policy)?;
    let old_np = reader.np();
    let mut kmers = KmerSpectrum::new(params.kmer_codec(), params.canonical);
    let mut tiles = TileSpectrum::new(params.tile_codec(), params.canonical);
    let mut per_rank_bytes = vec![0u64; np];
    let mut per_rank_repair = vec![RepairStats::default(); np];
    for me in 0..np {
        let before = reader.stats();
        for (i, old_rank) in shard_group(old_np, np, me).into_iter().enumerate() {
            if i == 0 {
                if let Some((chop_rank, keep)) = chop {
                    if chop_rank == me {
                        apply_chop(&reader, dir, old_rank, keep)?;
                    }
                }
            }
            let (k, t) = load_shard_pair(&mut reader, old_rank)?;
            per_rank_bytes[me] += k.bytes_read + t.bytes_read;
            merge_pair(params, k, t, &mut kmers, &mut tiles);
        }
        per_rank_repair[me] = reader.stats().since(&before);
    }
    Ok(SerialLoad { kmers, tiles, per_rank_bytes, per_rank_repair, resharded: old_np != np })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::HeuristicConfig;
    use crate::spectrum::{build_distributed, RankTables};
    use mpisim::Universe;
    use reptile::spectrum::LocalSpectra;
    use specstore::Manifest;

    fn params() -> ReptileParams {
        ReptileParams { k: 5, tile_overlap: 2, ..ReptileParams::for_tests() }
    }

    fn make_reads(n: usize) -> Vec<dnaseq::Read> {
        let mut reads = Vec::new();
        for i in 0..n {
            let template = i / 3;
            let seed = dnaseq::mix64(template as u64 + 1);
            let seq: Vec<u8> = (0..20)
                .map(|j| [b'A', b'C', b'G', b'T'][(dnaseq::mix64(seed ^ (j as u64)) % 4) as usize])
                .collect();
            reads.push(dnaseq::Read::new(i as u64 + 1, seq, vec![30; 20]));
        }
        reads
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("reptile-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn build_and_save(
        comm: &Comm,
        reads: &[dnaseq::Read],
        dir: &Path,
        parity: usize,
    ) -> RankTables {
        let np = comm.size();
        let mine: Vec<_> = reads
            .iter()
            .enumerate()
            .filter(|(i, _)| i % np == comm.rank())
            .map(|(_, r)| r.clone())
            .collect();
        let (tables, _) =
            build_distributed(comm, &mine, 1000, &params(), &HeuristicConfig::base(), 1);
        save_snapshot(comm, dir, &params(), parity, &tables.hash_kmers, &tables.hash_tiles)
            .expect("save");
        tables
    }

    /// Build at np, save, reload at the same np: every rank's tables are
    /// entry-identical and byte-accurately accounted.
    #[test]
    fn save_and_load_same_np_roundtrip() {
        let reads = make_reads(40);
        let reads_ref = &reads;
        let dir = tmpdir("same-np");
        let dir_ref = &dir;
        let np = 3;
        let built = Universe::new(np).run(move |comm| build_and_save(comm, reads_ref, dir_ref, 0));
        let loaded = Universe::new(np).run(move |comm| {
            load_snapshot(comm, dir_ref, &params(), RecoveryPolicy::Strict, None).expect("load")
        });
        for (tables, l) in built.iter().zip(&loaded) {
            assert!(!l.resharded);
            assert!(l.bytes_read > 0);
            assert_eq!(l.repair, RepairStats::default());
            let mut a: Vec<_> = tables.hash_kmers.iter().collect();
            let mut b: Vec<_> = l.kmers.iter().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "kmer tables must roundtrip");
            assert_eq!(tables.hash_kmers.memory_bytes(), l.kmers.memory_bytes());
            let mut at: Vec<_> = tables.hash_tiles.iter().collect();
            let mut bt: Vec<_> = l.tiles.iter().collect();
            at.sort_unstable();
            bt.sort_unstable();
            assert_eq!(at, bt, "tile tables must roundtrip");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Save at np=4, load at np=3: the union of re-sharded tables equals
    /// the sequential spectrum, every key at its new owner.
    #[test]
    fn reshard_load_matches_fresh_ownership() {
        let p = params();
        let reads = make_reads(40);
        let seq = LocalSpectra::build(&reads, &p);
        let reads_ref = &reads;
        let dir = tmpdir("reshard");
        let dir_ref = &dir;
        Universe::new(4).run(move |comm| {
            build_and_save(comm, reads_ref, dir_ref, 0);
        });
        let new_np = 3;
        let loaded = Universe::new(new_np).run(move |comm| {
            load_snapshot(comm, dir_ref, &params(), RecoveryPolicy::Strict, None).expect("reshard")
        });
        let owners = OwnerMap::new(new_np, &p);
        let mut union: Vec<(u64, u32)> = Vec::new();
        for (rank, l) in loaded.iter().enumerate() {
            assert!(l.resharded);
            for (code, count) in l.kmers.iter() {
                assert_eq!(
                    owners.kmer_owner_at(Normalized::assume(code)),
                    rank,
                    "key at wrong owner after reshard"
                );
                union.push((code, count));
            }
        }
        union.sort_unstable();
        let mut expect: Vec<(u64, u32)> = seq.kmers.iter().collect();
        expect.sort_unstable();
        assert_eq!(union, expect, "resharded union must equal the sequential spectrum");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A chopped shard surfaces as Truncated on the chopped rank and
    /// PeerFailure everywhere else under `Strict` — nobody deadlocks.
    #[test]
    fn chop_faults_are_typed_on_every_rank() {
        let reads = make_reads(30);
        let reads_ref = &reads;
        let dir = tmpdir("chop");
        let dir_ref = &dir;
        let np = 3;
        Universe::new(np).run(move |comm| {
            build_and_save(comm, reads_ref, dir_ref, 0);
        });
        let results = Universe::new(np).run(move |comm| {
            let chop = (comm.rank() == 1).then_some(40u64);
            load_snapshot(comm, dir_ref, &params(), RecoveryPolicy::Strict, chop)
        });
        assert!(matches!(results[1], Err(SnapshotError::Truncated { .. })), "{:?}", results[1]);
        for rank in [0, 2] {
            match &results[rank] {
                Err(SnapshotError::PeerFailure { failed_ranks: 1 }) => {}
                other => panic!("rank {rank}: expected PeerFailure, got {other:?}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The same chopped shard under a `Repair` policy (parity saved
    /// alongside): the chopped rank reconstructs from parity and every
    /// rank's load equals the clean-run tables bit for bit.
    #[test]
    fn chop_fault_is_repaired_with_parity() {
        let reads = make_reads(30);
        let reads_ref = &reads;
        let dir = tmpdir("chop-repair");
        let dir_ref = &dir;
        let np = 3;
        let built = Universe::new(np).run(move |comm| build_and_save(comm, reads_ref, dir_ref, 1));
        let policy = RecoveryPolicy::Repair { max_lost: 1, rewrite: false };
        let loaded = Universe::new(np).run(move |comm| {
            let chop = (comm.rank() == 1).then_some(40u64);
            load_snapshot(comm, dir_ref, &params(), policy, chop).expect("repairing load")
        });
        for (rank, (tables, l)) in built.iter().zip(&loaded).enumerate() {
            let mut a: Vec<_> = tables.hash_kmers.iter().collect();
            let mut b: Vec<_> = l.kmers.iter().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "rank {rank} kmers must match after repair");
            if rank == 1 {
                assert_eq!(l.repair.shards_repaired, 1, "chopped rank repaired its shard");
                assert!(l.repair.bytes_reconstructed > 0);
            } else {
                assert_eq!(l.repair, RepairStats::default(), "clean ranks repaired nothing");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Serial save + serial load roundtrip, including the re-shard byte
    /// attribution.
    #[test]
    fn serial_roundtrip_and_byte_attribution() {
        let p = params();
        let reads = make_reads(40);
        let spectra = LocalSpectra::build(&reads, &p);
        let dir = tmpdir("serial");
        let per_rank =
            save_snapshot_serial(&dir, &p, 4, 0, &spectra.kmers, &spectra.tiles).expect("save");
        assert_eq!(per_rank.len(), 4);
        assert!(per_rank.iter().all(|&b| b > 0));
        // same np
        let same =
            load_snapshot_serial(&dir, &p, 4, RecoveryPolicy::Strict, None).expect("serial load");
        assert!(!same.resharded);
        assert_eq!(same.kmers.len(), spectra.kmers.len());
        for (code, count) in spectra.kmers.iter() {
            assert_eq!(same.kmers.count(code), count);
        }
        // reshard: every shard's bytes attributed exactly once
        let re = load_snapshot_serial(&dir, &p, 3, RecoveryPolicy::Strict, None)
            .expect("serial reshard");
        assert!(re.resharded);
        assert_eq!(re.kmers.len(), spectra.kmers.len());
        let manifest_bytes = std::fs::metadata(Manifest::path_in(&dir)).unwrap().len();
        let shard_total: u64 = per_rank.iter().sum::<u64>() - manifest_bytes;
        assert_eq!(re.per_rank_bytes.iter().sum::<u64>(), shard_total);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Serial chop + repair: the repair work lands on the chopped rank's
    /// attribution row, everyone else's stays zero.
    #[test]
    fn serial_repair_attribution_lands_on_the_chopped_rank() {
        let p = params();
        let reads = make_reads(40);
        let spectra = LocalSpectra::build(&reads, &p);
        let dir = tmpdir("serial-repair");
        save_snapshot_serial(&dir, &p, 4, 1, &spectra.kmers, &spectra.tiles).expect("save");
        let policy = RecoveryPolicy::Repair { max_lost: 1, rewrite: false };
        let got = load_snapshot_serial(&dir, &p, 4, policy, Some((2, 37))).expect("load");
        assert_eq!(got.kmers.len(), spectra.kmers.len());
        for (rank, rep) in got.per_rank_repair.iter().enumerate() {
            if rank == 2 {
                assert_eq!(rep.shards_repaired, 1, "rank 2 repaired its chopped shard");
            } else {
                assert_eq!(*rep, RepairStats::default(), "rank {rank} repaired nothing");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Loading with different parameters is a typed fingerprint
    /// mismatch, not garbage.
    #[test]
    fn serial_load_rejects_wrong_params() {
        let p = params();
        let reads = make_reads(20);
        let spectra = LocalSpectra::build(&reads, &p);
        let dir = tmpdir("wrong-params");
        save_snapshot_serial(&dir, &p, 2, 0, &spectra.kmers, &spectra.tiles).expect("save");
        let other = ReptileParams { k: 7, tile_overlap: 3, ..ReptileParams::for_tests() };
        let err = load_snapshot_serial(&dir, &other, 2, RecoveryPolicy::Strict, None).unwrap_err();
        assert!(matches!(err, SnapshotError::FingerprintMismatch { .. }), "{err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
