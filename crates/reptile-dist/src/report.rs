//! Per-rank and aggregate run reports.
//!
//! Everything the paper's figures plot comes out of these structs: times
//! split into k-mer construction vs error correction vs communication,
//! per-rank lookup/traffic counts, errors corrected, memory footprints.

use crate::spectrum::BuildStats;
use mpisim::{CostModel, Topology, TraceLog};
use reptile::CorrectionStats;
use specstore::RepairStats;

/// Counters from one rank's correction phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LookupStats {
    /// K-mer lookups answered from the rank's own tables.
    pub local_kmer_lookups: u64,
    /// Tile lookups answered locally.
    pub local_tile_lookups: u64,
    /// K-mer lookups that crossed ranks.
    pub remote_kmer_lookups: u64,
    /// Tile lookups that crossed ranks.
    pub remote_tile_lookups: u64,
    /// Remote k-mer lookups answered "does not exist".
    pub remote_kmer_misses: u64,
    /// Remote tile lookups answered "does not exist" — the paper finds
    /// these dominate the communication time ("especially tiles which
    /// are not part of the tile spectrum", §IV).
    pub remote_tile_misses: u64,
    /// Lookups served *for* other ranks by this rank's comm thread
    /// (counted per key, so batch mode and base mode are comparable).
    pub requests_served: u64,
    /// Remote answers cached into the reads tables (add-remote mode).
    pub cached_answers: u64,
    /// Cache hits on previously cached answers.
    pub cache_hits: u64,
    /// Request **messages** this rank sent during correction: one per
    /// single-key lookup plus one per batch (aggregate mode). The
    /// quantity the lookup-aggregation heuristic minimizes.
    pub remote_messages: u64,
    /// Batched requests sent (aggregate mode).
    pub batches_sent: u64,
    /// Keys shipped inside those batches.
    pub batched_keys: u64,
    /// Lookups answered from the prefetch cache filled by batch
    /// responses (counted as local, not remote).
    pub prefetch_hits: u64,
    /// Batched requests this rank's comm thread answered for others.
    pub batches_served: u64,
    /// Request messages re-sent after a missed deadline (retry protocol;
    /// zero on a fault-free run).
    pub requests_retried: u64,
    /// Receive deadlines that expired while waiting for a response.
    pub deadline_misses: u64,
    /// Keys whose lookup exhausted the retry budget and degraded to the
    /// paper's "absent everywhere" answer (`-1` → count 0). Nonzero only
    /// when an owner is killed or the fault plan out-runs the budget.
    pub keys_degraded: u64,
    /// Lookups answered from a hot-shard replica (adaptive balancing,
    /// `hot_shard_k > 0`): would-be remote lookups turned local.
    pub hot_shard_hits: u64,
    /// Read chunks this rank stole from busier ranks (`steal_chunks`).
    pub chunks_stolen: u64,
}

impl LookupStats {
    /// All lookups that left the rank.
    pub fn remote_total(&self) -> u64 {
        self.remote_kmer_lookups + self.remote_tile_lookups
    }

    /// Mean keys per batch request (0 when no batches were sent).
    pub fn keys_per_batch(&self) -> f64 {
        if self.batches_sent == 0 {
            return 0.0;
        }
        self.batched_keys as f64 / self.batches_sent as f64
    }

    /// Messages the aggregation saved: each prefetch hit would have been
    /// a request + response round trip in base mode, minus the two
    /// messages each batch actually cost. Saturating — tiny workloads
    /// can batch more keys than they end up using.
    pub fn messages_saved(&self) -> u64 {
        (2 * self.prefetch_hits).saturating_sub(2 * self.batches_sent)
    }

    /// Merge counters (worker + server sides of one rank).
    pub fn merge(&mut self, o: &LookupStats) {
        self.local_kmer_lookups += o.local_kmer_lookups;
        self.local_tile_lookups += o.local_tile_lookups;
        self.remote_kmer_lookups += o.remote_kmer_lookups;
        self.remote_tile_lookups += o.remote_tile_lookups;
        self.remote_kmer_misses += o.remote_kmer_misses;
        self.remote_tile_misses += o.remote_tile_misses;
        self.requests_served += o.requests_served;
        self.cached_answers += o.cached_answers;
        self.cache_hits += o.cache_hits;
        self.remote_messages += o.remote_messages;
        self.batches_sent += o.batches_sent;
        self.batched_keys += o.batched_keys;
        self.prefetch_hits += o.prefetch_hits;
        self.batches_served += o.batches_served;
        self.requests_retried += o.requests_retried;
        self.deadline_misses += o.deadline_misses;
        self.keys_degraded += o.keys_degraded;
        self.hot_shard_hits += o.hot_shard_hits;
        self.chunks_stolen += o.chunks_stolen;
    }
}

/// One rank's full report.
#[derive(Clone, Debug, Default)]
pub struct RankReport {
    /// Rank id.
    pub rank: usize,
    /// Reads this rank corrected.
    pub reads_processed: u64,
    /// Construction-phase counters.
    pub build: BuildStats,
    /// Correction outcome counters.
    pub correction: CorrectionStats,
    /// Lookup/traffic counters.
    pub lookups: LookupStats,
    /// Modeled k-mer construction time, seconds (virtual engine) or
    /// measured wall seconds (threaded engine).
    pub construct_secs: f64,
    /// Modeled/measured total correction-phase time, seconds.
    pub correct_secs: f64,
    /// Of `correct_secs`, time attributable to communication.
    pub comm_secs: f64,
    /// Resident memory, bytes: process base overhead plus the spectrum
    /// tables' footprint — *measured* (flat-store slot arrays + headers,
    /// `RankTables::memory_bytes`) in the threaded engine, derived from
    /// the same flat-table geometry per entry count in the virtual
    /// engine. `build.table_bytes` carries the table-only portion.
    pub memory_bytes: f64,
    /// Snapshot bytes this rank read (`load_spectrum` runs; 0 otherwise).
    pub snapshot_bytes_read: u64,
    /// Snapshot bytes this rank wrote (`save_spectrum` runs; rank 0's
    /// figure includes the manifest).
    pub snapshot_bytes_written: u64,
    /// Wall (threaded) / modeled (virtual) seconds spent loading the
    /// snapshot — the number to hold against `construct_secs` of a fresh
    /// build when deciding whether build-once / correct-many pays off.
    pub snapshot_load_secs: f64,
    /// Seconds spent saving the snapshot.
    pub snapshot_save_secs: f64,
    /// Reed-Solomon shard repair this rank performed during a
    /// `load_spectrum` run under a `Repair` policy (all-zero on clean
    /// loads, `Strict` loads, and non-snapshot runs). `repair_ns` is
    /// wall time in the threaded engine and modeled time in the
    /// virtual one.
    pub repair: RepairStats,
    /// Phase-span trace (`snapshot-save` / `snapshot-load` brackets);
    /// recorded only on snapshotting runs, `None` otherwise.
    pub trace: Option<TraceLog>,
}

impl RankReport {
    /// Total rank time (construction + correction).
    pub fn total_secs(&self) -> f64 {
        self.construct_secs + self.correct_secs
    }
}

/// A whole run: per-rank reports plus the layout that produced them.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Per-rank reports, indexed by rank.
    pub ranks: Vec<RankReport>,
    /// Node/rank layout of the run.
    pub topology: Topology,
    /// Cost model used (virtual engine) — kept for reproducibility.
    pub cost: CostModel,
}

impl RunReport {
    /// Job completion time: the slowest rank (construction and correction
    /// are globally barriered phases, so phase maxima add).
    pub fn makespan_secs(&self) -> f64 {
        let construct = self.ranks.iter().map(|r| r.construct_secs).fold(0.0, f64::max);
        let correct = self.ranks.iter().map(|r| r.correct_secs).fold(0.0, f64::max);
        construct + correct
    }

    /// Max construction time across ranks (the "k-mer construction time"
    /// series of Figs 2/6/7/8).
    pub fn construct_secs(&self) -> f64 {
        self.ranks.iter().map(|r| r.construct_secs).fold(0.0, f64::max)
    }

    /// Max correction time across ranks (the "error correction time"
    /// series).
    pub fn correct_secs(&self) -> f64 {
        self.ranks.iter().map(|r| r.correct_secs).fold(0.0, f64::max)
    }

    /// Mean correction time across ranks. On scaled datasets with few
    /// reads per rank the max is inflated by Poisson count variance that
    /// the paper's full-size runs do not have; the mean is the
    /// regime-independent scaling signal (see EXPERIMENTS.md).
    pub fn correct_secs_mean(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks.iter().map(|r| r.correct_secs).sum::<f64>() / self.ranks.len() as f64
    }

    /// Total errors corrected across ranks.
    pub fn errors_corrected(&self) -> u64 {
        self.ranks.iter().map(|r| r.correction.errors_corrected).sum()
    }

    /// Largest per-rank modeled memory footprint, bytes (Fig 5's memory
    /// series reports the highest-footprint rank).
    pub fn peak_memory_bytes(&self) -> f64 {
        self.ranks.iter().map(|r| r.memory_bytes).fold(0.0, f64::max)
    }

    /// Fraction of the build's combined extract + exchange time that the
    /// pipelined builder hid by overlapping the two (summed over ranks;
    /// 0 for the serial path, approaches 1/2 when the sides are equal
    /// and every round overlaps).
    pub fn build_overlap_fraction(&self) -> f64 {
        let overlap: u64 = self.ranks.iter().map(|r| r.build.overlap_ns).sum();
        let total: u64 = self.ranks.iter().map(|r| r.build.extract_ns + r.build.exchange_ns).sum();
        if total == 0 {
            return 0.0;
        }
        overlap as f64 / total as f64
    }

    /// Total distinct `(key, count)` pairs shipped through the build's
    /// count exchanges, all ranks.
    pub fn exchanged_entries(&self) -> u64 {
        self.ranks.iter().map(|r| r.build.exchange_entries).sum()
    }

    /// Total bytes shipped through the build's count exchanges, all ranks.
    pub fn exchanged_bytes(&self) -> u64 {
        self.ranks.iter().map(|r| r.build.exchange_bytes).sum()
    }

    /// Pre-aggregation compression: raw off-rank occurrences per shipped
    /// distinct entry (1.0 = nothing deduped; higher is better).
    pub fn exchange_compression(&self) -> f64 {
        let entries = self.exchanged_entries();
        if entries == 0 {
            return 1.0;
        }
        self.ranks.iter().map(|r| r.build.exchange_occurrences).sum::<u64>() as f64 / entries as f64
    }

    /// Ratio slowest/fastest rank correction time (load imbalance, Fig 4).
    pub fn imbalance_ratio(&self) -> f64 {
        let max = self.ranks.iter().map(|r| r.correct_secs).fold(0.0, f64::max);
        let min = self.ranks.iter().map(|r| r.correct_secs).fold(f64::INFINITY, f64::min);
        if min <= 0.0 || !min.is_finite() {
            return 1.0;
        }
        max / min
    }

    /// Straggler spread: `(max − min) / mean` of per-rank correction
    /// time. 0 on a perfectly balanced run; the adaptive-balancing
    /// metric the `balance_bench` floors watch (unlike
    /// [`imbalance_ratio`](Self::imbalance_ratio) it stays finite when
    /// the fastest rank rounds to zero).
    pub fn straggler_spread(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        let max = self.ranks.iter().map(|r| r.correct_secs).fold(0.0, f64::max);
        let min = self.ranks.iter().map(|r| r.correct_secs).fold(f64::INFINITY, f64::min);
        let mean = self.correct_secs_mean();
        if mean <= 0.0 {
            return 0.0;
        }
        (max - min) / mean
    }

    /// Total lookups answered from hot-shard replicas, all ranks.
    pub fn hot_shard_hits(&self) -> u64 {
        self.ranks.iter().map(|r| r.lookups.hot_shard_hits).sum()
    }

    /// Total read chunks moved by work stealing, all ranks.
    pub fn chunks_stolen(&self) -> u64 {
        self.ranks.iter().map(|r| r.lookups.chunks_stolen).sum()
    }

    /// Total lookups that actually crossed ranks, all ranks — the
    /// traffic hot-shard replication removes.
    pub fn remote_lookups(&self) -> u64 {
        self.ranks.iter().map(|r| r.lookups.remote_total()).sum()
    }

    /// Parallel efficiency vs a reference run:
    /// `(t_ref · np_ref) / (t_this · np_this)`.
    pub fn efficiency_vs(&self, reference: &RunReport, np_ref: usize, np_this: usize) -> f64 {
        (reference.makespan_secs() * np_ref as f64) / (self.makespan_secs() * np_this as f64)
    }

    /// Total snapshot bytes read across ranks (0 on non-snapshot runs).
    pub fn snapshot_bytes_read(&self) -> u64 {
        self.ranks.iter().map(|r| r.snapshot_bytes_read).sum()
    }

    /// Total snapshot bytes written across ranks (rank 0 includes the
    /// manifest).
    pub fn snapshot_bytes_written(&self) -> u64 {
        self.ranks.iter().map(|r| r.snapshot_bytes_written).sum()
    }

    /// Slowest rank's snapshot load time — the barriered-phase cost a
    /// loaded run pays instead of `construct_secs`.
    pub fn snapshot_load_secs(&self) -> f64 {
        self.ranks.iter().map(|r| r.snapshot_load_secs).fold(0.0, f64::max)
    }

    /// Slowest rank's snapshot save time.
    pub fn snapshot_save_secs(&self) -> f64 {
        self.ranks.iter().map(|r| r.snapshot_save_secs).fold(0.0, f64::max)
    }

    /// Total data shards reconstructed from parity across ranks (0 on
    /// clean or `Strict` loads).
    pub fn shards_repaired(&self) -> u64 {
        self.ranks.iter().map(|r| r.repair.shards_repaired).sum()
    }

    /// Total bytes of shard data reconstructed from parity, all ranks.
    pub fn repair_bytes(&self) -> u64 {
        self.ranks.iter().map(|r| r.repair.bytes_reconstructed).sum()
    }

    /// Slowest rank's repair time, seconds — loads are a barriered
    /// phase, so the straggler's repair is what the run actually pays.
    pub fn repair_secs(&self) -> f64 {
        self.ranks.iter().map(|r| r.repair.repair_ns as f64 * 1e-9).fold(0.0, f64::max)
    }

    /// Total out-of-core spill runs written across ranks (0 unless a
    /// memory budget was set and tripped).
    pub fn spill_runs(&self) -> u64 {
        self.ranks.iter().map(|r| r.build.spill_runs).sum()
    }

    /// Total bytes of spill run files written across ranks.
    pub fn spill_bytes(&self) -> u64 {
        self.ranks.iter().map(|r| r.build.spill_bytes).sum()
    }

    /// Slowest rank's run-merge time, seconds — construction barriers
    /// before correction, so the straggler's merge is the cost the
    /// budgeted build actually pays.
    pub fn merge_secs(&self) -> f64 {
        self.ranks.iter().map(|r| r.build.merge_ns as f64 * 1e-9).fold(0.0, f64::max)
    }

    /// Largest per-rank high-water mark of the out-of-core accounted
    /// bytes (tables + accumulators + spill buffers; 0 on unbudgeted
    /// runs). The `ooc-floor` CI gate checks this against the budget.
    pub fn ooc_peak_bytes(&self) -> u64 {
        self.ranks.iter().map(|r| r.build.ooc_peak_bytes).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank(construct: f64, correct: f64, comm: f64) -> RankReport {
        RankReport {
            construct_secs: construct,
            correct_secs: correct,
            comm_secs: comm,
            ..Default::default()
        }
    }

    fn run(ranks: Vec<RankReport>) -> RunReport {
        RunReport { ranks, topology: Topology::new(32), cost: CostModel::bgq() }
    }

    #[test]
    fn makespan_is_sum_of_phase_maxima() {
        let r = run(vec![rank(1.0, 10.0, 5.0), rank(2.0, 8.0, 4.0)]);
        assert_eq!(r.construct_secs(), 2.0);
        assert_eq!(r.correct_secs(), 10.0);
        assert_eq!(r.makespan_secs(), 12.0);
    }

    #[test]
    fn imbalance_ratio_computed() {
        let r = run(vec![rank(0.0, 4.0, 0.0), rank(0.0, 16.0, 0.0)]);
        assert_eq!(r.imbalance_ratio(), 4.0);
        let uniform = run(vec![rank(0.0, 5.0, 0.0), rank(0.0, 5.0, 0.0)]);
        assert_eq!(uniform.imbalance_ratio(), 1.0);
    }

    #[test]
    fn efficiency_definition() {
        let base = run(vec![rank(0.0, 100.0, 0.0)]);
        let scaled = run(vec![rank(0.0, 15.0, 0.0)]);
        // 8x ranks, 100/15 speedup -> efficiency 100/(15*8)
        let eff = scaled.efficiency_vs(&base, 1, 8);
        assert!((eff - 100.0 / 120.0).abs() < 1e-12);
    }

    #[test]
    fn build_aggregates_from_rank_stats() {
        let mut a = rank(1.0, 1.0, 0.0);
        a.build.extract_ns = 600;
        a.build.exchange_ns = 400;
        a.build.overlap_ns = 300;
        a.build.exchange_entries = 10;
        a.build.exchange_occurrences = 40;
        a.build.exchange_bytes = 160;
        let mut b = rank(1.0, 1.0, 0.0);
        b.build.extract_ns = 400;
        b.build.exchange_ns = 600;
        b.build.overlap_ns = 100;
        b.build.exchange_entries = 10;
        b.build.exchange_occurrences = 20;
        b.build.exchange_bytes = 160;
        let r = run(vec![a, b]);
        assert_eq!(r.build_overlap_fraction(), 400.0 / 2000.0);
        assert_eq!(r.exchanged_entries(), 20);
        assert_eq!(r.exchanged_bytes(), 320);
        assert_eq!(r.exchange_compression(), 3.0);
        // degenerate runs: no exchange at all
        let empty = run(vec![rank(0.0, 0.0, 0.0)]);
        assert_eq!(empty.build_overlap_fraction(), 0.0);
        assert_eq!(empty.exchange_compression(), 1.0);
    }

    #[test]
    fn lookup_stats_merge() {
        let mut a = LookupStats { remote_tile_lookups: 5, ..Default::default() };
        let b = LookupStats {
            remote_tile_lookups: 7,
            requests_served: 3,
            remote_messages: 9,
            batches_sent: 2,
            batched_keys: 40,
            prefetch_hits: 30,
            batches_served: 1,
            requests_retried: 4,
            deadline_misses: 5,
            keys_degraded: 6,
            hot_shard_hits: 8,
            chunks_stolen: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.remote_tile_lookups, 12);
        assert_eq!(a.requests_served, 3);
        assert_eq!(a.remote_total(), 12);
        assert_eq!(a.remote_messages, 9);
        assert_eq!(a.batches_sent, 2);
        assert_eq!(a.batched_keys, 40);
        assert_eq!(a.prefetch_hits, 30);
        assert_eq!(a.batches_served, 1);
        assert_eq!(a.requests_retried, 4);
        assert_eq!(a.deadline_misses, 5);
        assert_eq!(a.keys_degraded, 6);
        assert_eq!(a.hot_shard_hits, 8);
        assert_eq!(a.chunks_stolen, 2);
    }

    #[test]
    fn straggler_spread_and_skew_aggregates() {
        // ranks at 4s/16s: mean 10, spread (16-4)/10
        let r = run(vec![rank(0.0, 4.0, 0.0), rank(0.0, 16.0, 0.0)]);
        assert!((r.straggler_spread() - 1.2).abs() < 1e-12);
        let uniform = run(vec![rank(0.0, 5.0, 0.0), rank(0.0, 5.0, 0.0)]);
        assert_eq!(uniform.straggler_spread(), 0.0);
        assert_eq!(run(vec![]).straggler_spread(), 0.0);
        let mut a = rank(0.0, 1.0, 0.0);
        a.lookups.hot_shard_hits = 10;
        a.lookups.chunks_stolen = 1;
        a.lookups.remote_kmer_lookups = 3;
        let mut b = rank(0.0, 1.0, 0.0);
        b.lookups.hot_shard_hits = 5;
        b.lookups.remote_tile_lookups = 4;
        let r = run(vec![a, b]);
        assert_eq!(r.hot_shard_hits(), 15);
        assert_eq!(r.chunks_stolen(), 1);
        assert_eq!(r.remote_lookups(), 7);
    }

    #[test]
    fn snapshot_aggregates() {
        let mut a = rank(0.0, 0.0, 0.0);
        a.snapshot_bytes_read = 100;
        a.snapshot_bytes_written = 300;
        a.snapshot_load_secs = 0.5;
        a.snapshot_save_secs = 0.1;
        let mut b = rank(0.0, 0.0, 0.0);
        b.snapshot_bytes_read = 50;
        b.snapshot_load_secs = 0.2;
        let r = run(vec![a, b]);
        assert_eq!(r.snapshot_bytes_read(), 150);
        assert_eq!(r.snapshot_bytes_written(), 300);
        assert_eq!(r.snapshot_load_secs(), 0.5);
        assert_eq!(r.snapshot_save_secs(), 0.1);
        assert!(r.ranks[0].trace.is_none());
    }

    #[test]
    fn repair_aggregates() {
        let mut a = rank(0.0, 0.0, 0.0);
        a.repair = RepairStats {
            shards_repaired: 2,
            bytes_reconstructed: 4096,
            survivor_bytes_read: 12_288,
            shards_rewritten: 1,
            repair_ns: 2_000_000_000,
            ..RepairStats::default()
        };
        let mut b = rank(0.0, 0.0, 0.0);
        b.repair.shards_repaired = 1;
        b.repair.bytes_reconstructed = 100;
        b.repair.repair_ns = 500_000_000;
        let r = run(vec![a, b]);
        assert_eq!(r.shards_repaired(), 3);
        assert_eq!(r.repair_bytes(), 4196);
        assert_eq!(r.repair_secs(), 2.0, "barriered phase pays the straggler");
        // clean runs report zeros
        let clean = run(vec![rank(0.0, 0.0, 0.0)]);
        assert_eq!(clean.shards_repaired(), 0);
        assert_eq!(clean.repair_secs(), 0.0);
    }

    #[test]
    fn batch_stat_derivations() {
        let s = LookupStats {
            batches_sent: 4,
            batched_keys: 100,
            prefetch_hits: 60,
            ..Default::default()
        };
        assert_eq!(s.keys_per_batch(), 25.0);
        assert_eq!(s.messages_saved(), 2 * 60 - 2 * 4);
        let none = LookupStats::default();
        assert_eq!(none.keys_per_batch(), 0.0);
        assert_eq!(none.messages_saved(), 0);
        let wasteful = LookupStats { batches_sent: 5, prefetch_hits: 1, ..Default::default() };
        assert_eq!(wasteful.messages_saved(), 0, "saturates instead of underflowing");
    }
}
