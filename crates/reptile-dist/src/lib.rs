//! Distributed-memory Reptile — the IPDPSW'16 contribution.
//!
//! Instead of replicating the k-mer and tile spectra on every node (the
//! prior parallelizations), this crate *distributes* both spectra across
//! ranks by hash ownership and resolves missing counts with messages:
//!
//! * [`owner`] — owner-rank assignment for k-mers, tiles and reads;
//! * [`heuristics`] — the execution-mode matrix of §III-B (universal,
//!   read k-mers/tiles, allgather k-mers/tiles/both, add-remote-lookups,
//!   batch reads table) plus the static load-balancing switch of §III-A;
//! * [`spectrum`] — Steps II–III: per-rank `hashKmer`/`readsKmer`
//!   (`hashTile`/`readsTile`) tables, the alltoallv count exchange, the
//!   threshold prune, batch mode;
//! * [`balance`] — the static load-balancing shuffle (reads redistributed
//!   to `hash(seq) % np`);
//! * [`protocol`] — the correction-phase request/response wire format
//!   (sequence-stamped tagged messages, or the self-describing
//!   *universal* struct), designed for idempotent retries;
//! * [`engine`] — the unified entry point: [`Engine`] trait,
//!   validating [`EngineConfig`] builder, [`RunOutput`];
//! * [`engine_mt`] — Step IV on the threaded [`mpisim`] runtime: a worker
//!   thread correcting reads + a communication thread serving lookups,
//!   per rank, with deadline/retry/degradation handling against the
//!   runtime's injected fault plan;
//! * [`engine_virtual`] — the same logical algorithm executed
//!   deterministically for thousands of logical ranks, with per-rank
//!   work/traffic counters mapped to modeled BG/Q seconds through
//!   [`mpisim::CostModel`] (this is what regenerates the paper's
//!   figures at 1024–32768 ranks), replaying the same fault plans
//!   analytically;
//! * [`serve`] — the long-lived correction service: a persistent
//!   [`ServeEngine`] that loads the snapshot once and keeps the Step-IV
//!   service plane warm, fronted by a bounded admission queue with
//!   backpressure and adaptive micro-batching (DESIGN.md §13);
//! * [`snapshot`] — persistent sharded spectrum snapshots over
//!   [`specstore`]: save the pruned spectra after Step III, reload them
//!   in later runs (zero-copy at the same `np`, re-owned through the
//!   count exchange at a different `np`) so correction starts without
//!   rebuilding — build once, correct many;
//! * [`report`] — per-rank and aggregate run reports.
//!
//! The corrector itself is [`reptile`]'s — both engines implement
//! [`reptile::SpectrumAccess`], so sequential, threaded-distributed and
//! virtual-distributed runs produce bit-identical corrected reads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
mod counts;
pub mod engine;
pub mod engine_mt;
pub mod engine_virtual;
pub mod heuristics;
pub mod ooc;
pub mod output;
pub mod owner;
pub mod prior_art;
pub mod protocol;
pub mod report;
pub mod serve;
pub mod snapshot;
pub mod spectrum;

pub use engine::{
    engine_by_name, ConfigError, Engine, EngineConfig, EngineConfigBuilder, EngineError, RunOutput,
    ThreadedEngine, VirtualEngine,
};
pub use engine_mt::{
    default_build_threads, run_distributed, run_distributed_files, try_run_distributed,
    try_run_distributed_files,
};
pub use engine_virtual::{run_virtual, try_run_virtual};
pub use heuristics::HeuristicConfig;
pub use prior_art::{run_prior_art, run_prior_art_virtual, PriorArtConfig};
pub use report::{LookupStats, RankReport, RunReport};
pub use serve::{ServeConfig, ServeEngine, ServeReport, ServeResponse, SubmitError};
pub use snapshot::{LoadedSpectra, SerialLoad};
pub use specstore::{RecoveryPolicy, RepairStats};
