//! Owner-rank assignment.
//!
//! "Each k-mer (and tile) are defined to have an owning rank; the owning
//! rank in our implementation is defined as the rank p (out of the number
//! of ranks np) for which hashFunction(kmer) % np == p" (paper §III step
//! II); reads are owned analogously for the load-balancing shuffle
//! (§III-A). Ownership is computed on the *normalized* (strand-folded, if
//! canonical) code, since that is the spectrum key.

use dnaseq::Read;
use reptile::{Normalized, ReptileParams};

/// Owner assignment for one universe size and one parameter set.
#[derive(Clone, Copy, Debug)]
pub struct OwnerMap {
    np: usize,
    canonical: bool,
    kcodec: dnaseq::KmerCodec,
    tcodec: dnaseq::TileCodec,
}

impl OwnerMap {
    /// Build the owner map for `np` ranks.
    pub fn new(np: usize, params: &ReptileParams) -> OwnerMap {
        assert!(np > 0);
        OwnerMap {
            np,
            canonical: params.canonical,
            kcodec: params.kmer_codec(),
            tcodec: params.tile_codec(),
        }
    }

    /// Number of ranks.
    #[inline]
    pub fn np(&self) -> usize {
        self.np
    }

    /// Normalize a k-mer code to its spectrum key.
    #[inline]
    pub fn kmer_key(&self, code: u64) -> Normalized<u64> {
        Normalized::assume(if self.canonical { self.kcodec.canonical(code) } else { code })
    }

    /// Normalize a tile code to its spectrum key.
    #[inline]
    pub fn tile_key(&self, code: u128) -> Normalized<u128> {
        Normalized::assume(if self.canonical { self.tcodec.canonical(code) } else { code })
    }

    /// Owning rank of a k-mer (input may be unnormalized).
    #[inline]
    pub fn kmer_owner(&self, code: u64) -> usize {
        dnaseq::owner_of(self.kmer_key(code).key(), self.np)
    }

    /// Owning rank of a normalized k-mer key — skips the (idempotent)
    /// canonicalization on paths where the key came out of a spectrum
    /// table or [`kmer_key`](OwnerMap::kmer_key).
    #[inline]
    pub fn kmer_owner_at(&self, key: Normalized<u64>) -> usize {
        dnaseq::owner_of(key.key(), self.np)
    }

    /// Owning rank of a tile (input may be unnormalized).
    #[inline]
    pub fn tile_owner(&self, code: u128) -> usize {
        dnaseq::hashing::owner_of_u128(self.tile_key(code).key(), self.np)
    }

    /// Owning rank of a normalized tile key.
    #[inline]
    pub fn tile_owner_at(&self, key: Normalized<u128>) -> usize {
        dnaseq::hashing::owner_of_u128(key.key(), self.np)
    }

    /// Owning rank of a read under the load-balancing policy.
    #[inline]
    pub fn read_owner(&self, read: &Read) -> usize {
        read.owner(self.np)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(np: usize) -> OwnerMap {
        OwnerMap::new(np, &ReptileParams::for_tests())
    }

    #[test]
    fn owners_in_range() {
        let m = map(7);
        for code in [0u64, 1, 99, u64::MAX] {
            assert!(m.kmer_owner(code) < 7);
        }
        for code in [0u128, 1, u128::MAX >> 1] {
            assert!(m.tile_owner(code) < 7);
        }
    }

    #[test]
    fn canonical_strands_share_owner() {
        let params = ReptileParams { canonical: true, ..ReptileParams::for_tests() };
        let m = OwnerMap::new(16, &params);
        let kc = params.kmer_codec();
        let code = kc.encode(b"ACGTTGCA").unwrap();
        let rc = kc.reverse_complement(code);
        assert_eq!(m.kmer_owner(code), m.kmer_owner(rc));
        assert_eq!(m.kmer_key(code), m.kmer_key(rc));
    }

    #[test]
    fn non_canonical_uses_raw_code() {
        let m = map(16);
        assert_eq!(m.kmer_key(12345).key(), 12345);
        assert_eq!(m.tile_key(98765).key(), 98765);
        assert_eq!(m.kmer_owner_at(m.kmer_key(12345)), m.kmer_owner(12345));
        assert_eq!(m.tile_owner_at(m.tile_key(98765)), m.tile_owner(98765));
    }

    #[test]
    fn single_rank_owns_everything() {
        let m = map(1);
        assert_eq!(m.kmer_owner(42), 0);
        assert_eq!(m.tile_owner(42), 0);
    }
}
