//! The threaded distributed engine — paper Step IV on real threads.
//!
//! "Each rank at the beginning of this step forks two separate threads —
//! one thread is responsible for the error correction of the reads in its
//! part of the file, while the other thread acts as a communication
//! thread. ... Once all the ranks have finished their error correction
//! step, each rank shuts down its communication threads and outputs the
//! reads it has corrected" (paper §III step IV).
//!
//! Termination: when a rank's worker drains its reads it enters a
//! barrier with every other worker; once the barrier completes no rank
//! can issue another first-hand lookup, so each worker raises a shutdown
//! flag for its own communication thread. The comm thread polls its
//! mailbox with a short deadline, drains any straggling (duplicated)
//! requests, and exits on the first quiet poll after the flag is up.
//! Unlike a DONE-counting protocol this cannot hang when a fault plan
//! severs a rank's message plane: the barrier is a collective, and
//! collectives stay reliable under every fault except a stall.
//!
//! Reliability: every request carries a sequence number that its
//! response echoes. When a lookup deadline is configured, requests that
//! miss it are retried with exponential backoff — resending the *same*
//! sequence number, so duplicated requests are idempotent and stale or
//! duplicated responses are recognized and discarded. Once the retry
//! budget is exhausted the key degrades to the paper's "absent
//! everywhere" answer (count 0) and the degradation is counted in
//! [`LookupStats`]. With no faults injected the protocol is pure
//! overhead-free bookkeeping: the output is bit-identical to a run
//! without it.

use crate::balance::{owner_volume_histogram, select_hot_owners, shuffle_reads, sum_histograms};
use crate::engine::{EngineConfig, EngineError, RunOutput};
use crate::heuristics::HeuristicConfig;
use crate::ooc::OocBuild;
use crate::owner::OwnerMap;
use crate::protocol::{
    count_to_wire, decode_response, decode_steal_ack, decode_steal_request, encode_response_into,
    encode_steal_ack, encode_steal_request, wire_to_count, BatchRequest, BatchResponse,
    LookupRequest, StealResponse, MAX_BATCH_KEYS, TAG_BATCH_REQ, TAG_BATCH_RESP, TAG_KMER_REQ,
    TAG_RESP, TAG_STEAL_ACK, TAG_STEAL_REQ, TAG_STEAL_RESP, TAG_TILE_REQ, TAG_UNIVERSAL,
};
use crate::report::{LookupStats, RankReport, RunReport};
use crate::snapshot;
use crate::spectrum::{
    build_distributed, build_distributed_spillable, derive_heuristic_tables, replicate_hot_shards,
    scan_nonowned_keys, BuildStats, RankTables,
};
use dnaseq::{FxHashMap, Read};
use mpisim::message::WireWriter;
use mpisim::{Comm, Source, TagSel, TraceLog, Universe};
use reptile::spectrum::{KmerSpectrum, TileSpectrum};
use reptile::{correct_read, CorrectionStats, Normalized, ReptileParams, SpectrumAccess};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The machine's available parallelism (1 if it cannot be queried).
pub fn default_build_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A process- and run-unique temp directory for one rank's spill runs.
/// Ranks could share a directory (file names embed the rank), but
/// per-rank dirs make cleanup a local `remove_dir_all` with no
/// coordination.
fn ooc_spill_dir(rank: usize) -> std::path::PathBuf {
    use std::sync::atomic::AtomicU64;
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("reptile-ooc-{}-{seq}-r{rank:05}", std::process::id()))
}

/// Run the full distributed pipeline (shuffle → build → correct) over an
/// in-memory read set, on `cfg.np` real threads.
///
/// Reads are initially dealt to ranks in contiguous slices, mimicking the
/// byte-offset file partitioning of Step I.
pub fn run_distributed(cfg: &EngineConfig, reads: &[Read]) -> RunOutput {
    match try_run_distributed(cfg, reads) {
        Ok(out) => out,
        Err(e) => panic!("engine run failed: {e}"),
    }
}

/// Fallible twin of [`run_distributed`]: snapshot save/load failures (and
/// invalid configs) surface as typed [`EngineError`]s instead of panics.
pub fn try_run_distributed(cfg: &EngineConfig, reads: &[Read]) -> Result<RunOutput, EngineError> {
    cfg.validate()?;
    cfg.params.assert_valid();
    let np = cfg.np;
    let universe = Universe::with_topology(np, cfg.topology).with_fault_plan(cfg.fault);
    let per_rank: Vec<Result<(Vec<Read>, RankReport), EngineError>> = universe.run(|comm| {
        let me = comm.rank();
        // Step I analog: contiguous slice of the file.
        let lo = reads.len() * me / np;
        let hi = reads.len() * (me + 1) / np;
        run_rank(comm, reads[lo..hi].to_vec(), cfg)
    });
    Ok(assemble_output(root_cause(per_rank)?, cfg))
}

/// Collapse per-rank results to either every rank's payload or the
/// root-cause error. When one rank hits a real failure its peers abort
/// with sentinel errors ([`specstore::SnapshotError::PeerFailure`], or the
/// `aborted:`-prefixed input sentinel); prefer the rank that actually
/// failed so callers see the underlying cause.
pub(crate) fn root_cause<T>(per_rank: Vec<Result<T, EngineError>>) -> Result<Vec<T>, EngineError> {
    if per_rank.iter().any(|r| r.is_err()) {
        let mut fallback = None;
        for r in per_rank {
            if let Err(e) = r {
                let sentinel = match &e {
                    EngineError::Snapshot(specstore::SnapshotError::PeerFailure { .. }) => true,
                    EngineError::Spill(specstore::SpillError::PeerFailure { .. }) => true,
                    EngineError::Io(genio::IoError::Malformed(m)) => m.starts_with("aborted:"),
                    _ => false,
                };
                if !sentinel {
                    return Err(e);
                }
                fallback = Some(e);
            }
        }
        return Err(fallback.expect("checked any(is_err)"));
    }
    Ok(per_rank.into_iter().map(|r| r.expect("checked no errors")).collect())
}

pub(crate) fn assemble_output(
    per_rank: Vec<(Vec<Read>, RankReport)>,
    cfg: &EngineConfig,
) -> RunOutput {
    let mut corrected = Vec::new();
    let mut ranks = Vec::with_capacity(per_rank.len());
    for (reads, report) in per_rank {
        corrected.extend(reads);
        ranks.push(report);
    }
    corrected.sort_unstable_by_key(|r| r.id);
    // Chunk stealing under a fault plan is at-least-once: a victim
    // re-adopts a handed-out chunk whose ACK never arrived, so a read can
    // be corrected on two ranks. Both corrections are byte-identical
    // (same global tables), so collapsing by id restores exactly-once
    // output. A no-op on every other run (ids are unique).
    corrected.dedup_by_key(|r| r.id);
    RunOutput { corrected, report: RunReport { ranks, topology: cfg.topology, cost: cfg.cost } }
}

/// Run the distributed pipeline against (fasta, qual) files on disk, each
/// rank reading its own byte-offset slice — the paper's Step I. Returns
/// the corrected reads; write them out with
/// [`genio::fasta::write_record`] or [`genio::qual::write_dataset`].
pub fn run_distributed_files(
    cfg: &EngineConfig,
    fasta: &std::path::Path,
    qual: &std::path::Path,
) -> genio::Result<RunOutput> {
    match try_run_distributed_files(cfg, fasta, qual) {
        Ok(out) => Ok(out),
        Err(EngineError::Io(e)) => Err(e),
        Err(e) => panic!("engine run failed: {e}"),
    }
}

/// Fallible twin of [`run_distributed_files`]: input *and* snapshot
/// failures surface as typed [`EngineError`]s.
pub fn try_run_distributed_files(
    cfg: &EngineConfig,
    fasta: &std::path::Path,
    qual: &std::path::Path,
) -> Result<RunOutput, EngineError> {
    cfg.validate()?;
    cfg.params.assert_valid();
    let np = cfg.np;
    let universe = Universe::with_topology(np, cfg.topology).with_fault_plan(cfg.fault);
    let per_rank: Vec<Result<(Vec<Read>, RankReport), EngineError>> = universe.run(|comm| {
        // Read this rank's slice before any collective, so an IO failure
        // on one rank can abort the whole universe without deadlocking
        // peers inside a collective.
        let mine = genio::PartitionedReader::open(fasta, qual, np, comm.rank())
            .and_then(|mut part| part.read_all());
        let failed = comm.allreduce_max_u64(mine.is_err() as u64);
        match (failed, mine) {
            (0, Ok(mine)) => run_rank(comm, mine, cfg),
            (_, Err(e)) => Err(EngineError::Io(e)),
            (_, Ok(_)) => Err(EngineError::Io(genio::IoError::Malformed(
                "aborted: input error on another rank".into(),
            ))),
        }
    });
    Ok(assemble_output(root_cause(per_rank)?, cfg))
}

/// The per-rank pipeline, reusable by the file-backed front end.
///
/// Fails only through the snapshot paths; a failure on any rank is
/// collectively agreed inside [`snapshot::load_snapshot`] /
/// [`snapshot::save_snapshot`], so every rank returns `Err` together and
/// no rank is left stranded in a later collective.
pub(crate) fn run_rank(
    comm: &Comm,
    initial_reads: Vec<Read>,
    cfg: &EngineConfig,
) -> Result<(Vec<Read>, RankReport), EngineError> {
    let me = comm.rank();
    let t0 = Instant::now();
    // Trace only snapshot-touching runs: the log is for the snapshot
    // phase spans, and staying `None` otherwise keeps reports lean.
    let mut trace =
        (cfg.save_spectrum.is_some() || cfg.load_spectrum.is_some()).then(|| TraceLog::new(me));

    // --- load balancing shuffle (per chunk, §III-A) ---
    let my_reads: Vec<Read> = if cfg.heuristics.load_balance {
        let mut mine = Vec::new();
        let n_chunks = initial_reads.len().div_ceil(cfg.chunk_size).max(1) as u64;
        let max_chunks = comm.allreduce_max_u64(n_chunks);
        for c in 0..max_chunks as usize {
            let lo = (c * cfg.chunk_size).min(initial_reads.len());
            let hi = ((c + 1) * cfg.chunk_size).min(initial_reads.len());
            mine.extend(shuffle_reads(comm, initial_reads[lo..hi].to_vec()));
        }
        mine.sort_unstable_by_key(|r| r.id);
        mine
    } else {
        initial_reads
    };

    // --- Steps II–III: distributed spectrum construction, or a snapshot
    // load that skips them entirely ---
    let (mut tables, mut build_stats, snapshot_load_secs, snapshot_bytes_read, repair) =
        if let Some(dir) = &cfg.load_spectrum {
            if let Some(t) = trace.as_mut() {
                t.phase_start("snapshot-load");
            }
            let t_load = Instant::now();
            let chop = cfg.fault.snapshot_chop_for(me);
            let loaded = snapshot::load_snapshot(comm, dir, &cfg.params, cfg.recovery, chop)?;
            // The owned tables came off disk already pruned; only the
            // heuristic-derived side tables remain to be built. The
            // reads-table *key sets* were never persisted (their counts
            // are global in the loaded tables), so rescan for them when
            // keep_read_tables asks.
            let owners = OwnerMap::new(comm.size(), &cfg.params);
            let (kmer_keys, tile_keys) = if cfg.heuristics.keep_read_tables {
                scan_nonowned_keys(&my_reads, &cfg.params, &owners, me)
            } else {
                (Vec::new(), Vec::new())
            };
            let (tables, stats) = derive_heuristic_tables(
                comm,
                owners,
                &cfg.params,
                &cfg.heuristics,
                loaded.kmers,
                loaded.tiles,
                kmer_keys,
                tile_keys,
                BuildStats::default(),
            );
            if let Some(t) = trace.as_mut() {
                t.phase_end("snapshot-load");
            }
            (tables, stats, t_load.elapsed().as_secs_f64(), loaded.bytes_read, loaded.repair)
        } else if let Some(budget) = cfg.memory_budget {
            // Out-of-core build: run files live in a per-rank temp dir
            // for the duration of the build. The `chop=` fault plan
            // composes with the spill plane here — with no snapshot in
            // play, the chopped file is this rank's first k-mer run.
            let dir = ooc_spill_dir(me);
            std::fs::create_dir_all(&dir)
                .map_err(|source| specstore::SpillError::Io { path: dir.clone(), source })?;
            let chop = cfg.fault.snapshot_chop_for(me);
            let mut ooc = OocBuild::new(budget, dir.clone(), me, chop, &cfg.params);
            let built = build_distributed_spillable(
                comm,
                &my_reads,
                cfg.chunk_size,
                &cfg.params,
                &cfg.heuristics,
                cfg.build_threads.max(1),
                Some(&mut ooc),
            );
            let _ = std::fs::remove_dir_all(&dir);
            let (tables, stats) = built?;
            (tables, stats, 0.0, 0, Default::default())
        } else {
            let (tables, stats) = build_distributed(
                comm,
                &my_reads,
                cfg.chunk_size,
                &cfg.params,
                &cfg.heuristics,
                cfg.build_threads.max(1),
            );
            (tables, stats, 0.0, 0, Default::default())
        };

    // --- adaptive balancing: detect skew and replicate the hot shards ---
    if cfg.heuristics.hot_shard_k > 0 && comm.size() > 1 {
        let hist = owner_volume_histogram(&my_reads, &cfg.params, &tables.owners);
        let global = sum_histograms(&comm.allgatherv(hist));
        let hot = select_hot_owners(&global, cfg.heuristics.hot_shard_k);
        // `hot` comes out of the same global histogram on every rank, so
        // this branch (and its collectives) is collectively uniform.
        if hot.iter().any(|&h| h) {
            replicate_hot_shards(comm, &cfg.params, &mut tables, &hot, &mut build_stats);
        }
    }
    comm.barrier();
    let construct_secs = t0.elapsed().as_secs_f64();

    // --- snapshot save: persist the pruned owned spectra for later runs ---
    let mut snapshot_save_secs = 0.0;
    let mut snapshot_bytes_written = 0u64;
    if let Some(dir) = &cfg.save_spectrum {
        if let Some(t) = trace.as_mut() {
            t.phase_start("snapshot-save");
        }
        let t_save = Instant::now();
        snapshot_bytes_written = snapshot::save_snapshot(
            comm,
            dir,
            &cfg.params,
            cfg.parity,
            &tables.hash_kmers,
            &tables.hash_tiles,
        )?;
        snapshot_save_secs = t_save.elapsed().as_secs_f64();
        if let Some(t) = trace.as_mut() {
            t.phase_end("snapshot-save");
        }
    }

    // --- Step IV: correction with a communication thread ---
    let t1 = Instant::now();
    // Exact bytes of every resident spectrum table, measured before the
    // tables are moved into the access chain (cache_remote can grow the
    // reads tables during correction; construction-time footprint is what
    // Fig 5 compares).
    let spectrum_bytes = tables.memory_bytes();
    let RankTables {
        owners,
        hash_kmers,
        hash_tiles,
        reads_kmers,
        reads_tiles,
        replicated_kmers,
        replicated_tiles,
        group_kmers,
        group_tiles,
        hot_kmers,
        hot_tiles,
        hot_owners,
    } = tables;
    let mut corrected = my_reads;
    let mut correction = CorrectionStats::default();
    let mut lookups = LookupStats::default();
    let mut comm_secs = 0.0;
    let mut served = ServedCounts::default();
    let shutdown = AtomicBool::new(false);
    // Fully replicated (or whole-universe partial-group) runs never touch
    // the p2p service plane; skip the comm thread entirely.
    let service_plane = cfg.heuristics.needs_service_plane(comm.size());
    // --- chunk stealing setup: share the work queue with the comm
    // thread, and allgather initial loads so thieves target the most
    // loaded victims first ---
    let chunk_unit = cfg.chunk_size.max(1);
    let want_steal = cfg.heuristics.steal_chunks && comm.size() > 1;
    let loads: Vec<u64> = if want_steal {
        let mine = corrected.len().div_ceil(chunk_unit) as u64;
        comm.allgatherv(vec![mine]).into_iter().map(|v| v[0]).collect()
    } else {
        Vec::new()
    };
    // Every rank sees the same allgathered loads, so the gate decision is
    // collectively uniform: either all ranks run the steal protocol or
    // none do. A balanced shuffle runs exactly the static path.
    let steal_mode = want_steal && crate::balance::steal_worth_it(&loads);
    let steal_state =
        steal_mode.then(|| Mutex::new(StealState::new(std::mem::take(&mut corrected), chunk_unit)));
    std::thread::scope(|s| {
        let server = service_plane.then(|| {
            s.spawn(|| {
                comm_thread(
                    comm,
                    &hash_kmers,
                    &hash_tiles,
                    cfg.heuristics.universal,
                    steal_state.as_ref(),
                    &shutdown,
                )
            })
        });
        let mut access = DistAccess {
            comm,
            me,
            owners: &owners,
            hash_kmers: &hash_kmers,
            hash_tiles: &hash_tiles,
            reads_kmers,
            reads_tiles,
            replicated_kmers: &replicated_kmers,
            replicated_tiles: &replicated_tiles,
            group_kmers: &group_kmers,
            group_tiles: &group_tiles,
            hot_kmers: &hot_kmers,
            hot_tiles: &hot_tiles,
            hot_owners: &hot_owners,
            heur: cfg.heuristics,
            lookup_deadline: cfg.lookup_deadline,
            retry_budget: cfg.retry_budget,
            next_seq: 1,
            batch_stash: FxHashMap::default(),
            prefetch_kmers: FxHashMap::default(),
            prefetch_tiles: FxHashMap::default(),
            scratch: WireWriter::with_capacity(64),
            stats: LookupStats::default(),
            comm_secs: 0.0,
        };
        if let Some(state) = &steal_state {
            let mut correct_chunk = |access: &mut DistAccess, chunk: &mut [Read]| {
                if cfg.heuristics.aggregate_lookups {
                    access.prefetch(chunk, &cfg.params);
                }
                for read in chunk.iter_mut() {
                    let outcome = correct_read(read, access, &cfg.params);
                    correction.absorb(&outcome);
                }
            };
            // own queue first: pop chunks off the front while the comm
            // thread hands the back out to thieves. Never hold the lock
            // while correcting — the comm thread must stay responsive.
            loop {
                let chunk = state.lock().expect("steal lock").pop_front();
                let Some(mut chunk) = chunk else { break };
                correct_chunk(&mut access, &mut chunk);
                corrected.extend(chunk);
            }
            // At-least-once under faults: a handed-out chunk whose ACK
            // never arrived may have been lost in flight — re-adopt and
            // correct it here. If the thief did receive it, both copies
            // are identical and the id-ordered merge dedups them.
            if !cfg.fault.is_none() {
                let adopted: Vec<Vec<Read>> = {
                    let mut st = state.lock().expect("steal lock");
                    st.handed_out.drain(..).map(|(_, _, c)| c).collect()
                };
                for mut chunk in adopted {
                    correct_chunk(&mut access, &mut chunk);
                    corrected.extend(chunk);
                }
            }
            // thief phase: sweep the other ranks, most-loaded first;
            // each victim's queue only shrinks, so one sweep that drains
            // every victim to "nothing left" is complete.
            let mut victims: Vec<usize> =
                (0..comm.size()).filter(|&r| r != me && loads[r] > 0).collect();
            victims.sort_by_key(|&r| (std::cmp::Reverse(loads[r]), r));
            for victim in victims {
                while let Some(mut chunk) = access.steal_from(victim) {
                    access.stats.chunks_stolen += 1;
                    correct_chunk(&mut access, &mut chunk);
                    corrected.extend(chunk);
                }
            }
        } else if cfg.heuristics.aggregate_lookups {
            // aggregate mode: one batched prefetch round per chunk, then
            // correct the chunk against the filled cache
            for chunk in corrected.chunks_mut(chunk_unit) {
                access.prefetch(chunk, &cfg.params);
                for read in chunk.iter_mut() {
                    let outcome = correct_read(read, &mut access, &cfg.params);
                    correction.absorb(&outcome);
                }
            }
        } else {
            for read in corrected.iter_mut() {
                let outcome = correct_read(read, &mut access, &cfg.params);
                correction.absorb(&outcome);
            }
        }
        // Once every worker has passed this barrier no rank can issue a
        // new first-hand request; anything still in a mailbox (delayed
        // duplicates) is drained by the servers before they exit.
        comm.barrier();
        shutdown.store(true, Ordering::Release);
        lookups = access.stats;
        comm_secs = access.comm_secs;
        if let Some(server) = server {
            served = server.join().expect("comm thread panicked");
        }
    });
    lookups.requests_served = served.keys;
    lookups.batches_served = served.batches;
    let correct_secs = t1.elapsed().as_secs_f64();

    let report = RankReport {
        rank: me,
        reads_processed: corrected.len() as u64,
        build: build_stats,
        correction,
        lookups,
        construct_secs,
        correct_secs,
        comm_secs,
        memory_bytes: cfg.cost.rank_memory_bytes_measured(spectrum_bytes),
        snapshot_bytes_read,
        snapshot_bytes_written,
        snapshot_load_secs,
        snapshot_save_secs,
        repair,
        trace,
    };
    Ok((corrected, report))
}

/// The shared work queue of chunk stealing: the rank's own worker pops
/// chunks off the *front* while the comm thread hands the *back* out to
/// thieving ranks. One mutex guards the cursors, so a chunk is taken by
/// exactly one side; the lock is never held across a correction or a
/// blocking receive.
pub(crate) struct StealState {
    /// Read chunks still to correct; `None` slots were taken.
    chunks: Vec<Option<Vec<Read>>>,
    /// Front cursor — the worker's next chunk.
    next: usize,
    /// Back boundary — steals decrement it; queue is empty when
    /// `next >= end`.
    end: usize,
    /// Handed-out, not-yet-ACKed chunks as `(thief, seq, reads)`. Under
    /// a fault plan the worker re-adopts these before the final barrier
    /// (at-least-once); fault-free they are dropped at exit, because the
    /// response is guaranteed delivered.
    handed_out: Vec<(usize, u64, Vec<Read>)>,
    /// Encoded responses by `(thief, seq)`: a retried request is answered
    /// with the **same** payload, so no chunk is ever handed to two
    /// thieves through a resend.
    served: FxHashMap<(usize, u64), Vec<u8>>,
}

impl StealState {
    fn new(reads: Vec<Read>, chunk_size: usize) -> StealState {
        let chunks: Vec<Option<Vec<Read>>> =
            reads.chunks(chunk_size.max(1)).map(|c| Some(c.to_vec())).collect();
        let end = chunks.len();
        StealState { chunks, next: 0, end, handed_out: Vec::new(), served: FxHashMap::default() }
    }

    /// Worker side: take the next chunk from the front.
    fn pop_front(&mut self) -> Option<Vec<Read>> {
        if self.next >= self.end {
            return None;
        }
        let chunk = self.chunks[self.next].take();
        self.next += 1;
        chunk
    }

    /// Steal side: take a whole chunk off the back.
    fn steal_back(&mut self) -> Option<Vec<Read>> {
        if self.next >= self.end {
            return None;
        }
        self.end -= 1;
        self.chunks[self.end].take()
    }
}

/// Serve counters returned by [`comm_thread`].
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ServedCounts {
    /// Lookups answered, counted per key (singles plus every key inside
    /// a batch) so base and aggregate modes stay comparable.
    pub(crate) keys: u64,
    /// Batched requests answered.
    pub(crate) batches: u64,
}

/// How long the comm thread waits on an empty mailbox before re-checking
/// its shutdown flag. Arrival wakes the wait immediately (condvar), so
/// this bounds only shutdown latency, not serving latency.
const SERVER_POLL: Duration = Duration::from_millis(1);

/// The communication thread: serve k-mer/tile count lookups against the
/// *owned* tables until this rank's worker raises `shutdown` after the
/// end-of-correction barrier. Requesters normalize keys before sending,
/// so serving assumes the wire keys are spectrum keys. The server is
/// stateless and idempotent: a duplicated or retried request is simply
/// answered again, echoing its sequence number.
pub(crate) fn comm_thread(
    comm: &Comm,
    hash_kmers: &KmerSpectrum,
    hash_tiles: &TileSpectrum,
    universal: bool,
    steal: Option<&Mutex<StealState>>,
    shutdown: &AtomicBool,
) -> ServedCounts {
    let mut req_tags: Vec<u32> = if universal {
        vec![TAG_UNIVERSAL, TAG_BATCH_REQ]
    } else {
        vec![TAG_KMER_REQ, TAG_TILE_REQ, TAG_BATCH_REQ]
    };
    if steal.is_some() {
        req_tags.extend([TAG_STEAL_REQ, TAG_STEAL_ACK]);
    }
    let mut served = ServedCounts::default();
    let mut scratch = WireWriter::with_capacity(64);
    loop {
        let Some(info) = comm.probe_tags_deadline(Source::Any, &req_tags, SERVER_POLL) else {
            if shutdown.load(Ordering::Acquire) {
                return served;
            }
            continue;
        };
        let msg = comm.recv(Source::Rank(info.src), TagSel::Tag(info.tag));
        if msg.tag == TAG_STEAL_REQ {
            let state = steal.expect("steal tag probed without steal state");
            let seq = decode_steal_request(&msg.payload);
            let payload = {
                let mut st = state.lock().expect("steal lock");
                match st.served.get(&(msg.src, seq)).cloned() {
                    Some(p) => p,
                    None => {
                        let resp = StealResponse { chunk: st.steal_back() };
                        let (_, p) = resp.encode(seq);
                        if let Some(reads) = resp.chunk {
                            st.handed_out.push((msg.src, seq, reads));
                        }
                        st.served.insert((msg.src, seq), p.clone());
                        p
                    }
                }
            };
            comm.send_from_slice(msg.src, TAG_STEAL_RESP, &payload);
            continue;
        }
        if msg.tag == TAG_STEAL_ACK {
            let state = steal.expect("steal tag probed without steal state");
            let seq = decode_steal_ack(&msg.payload);
            let mut st = state.lock().expect("steal lock");
            st.handed_out.retain(|(src, s, _)| !(*src == msg.src && *s == seq));
            continue;
        }
        if msg.tag == TAG_BATCH_REQ {
            // one sweep over the owned tables answers the whole batch
            let (seq, req) = BatchRequest::decode(&msg.payload);
            let resp = BatchResponse {
                kmer_counts: req
                    .kmers
                    .iter()
                    .map(|&k| count_to_wire(hash_kmers.get_at(Normalized::assume(k))))
                    .collect(),
                tile_counts: req
                    .tiles
                    .iter()
                    .map(|&t| count_to_wire(hash_tiles.get_at(Normalized::assume(t))))
                    .collect(),
            };
            scratch.reset();
            let tag = resp.encode_into(seq, &mut scratch);
            comm.send_from_slice(msg.src, tag, scratch.payload());
            served.keys += req.len() as u64;
            served.batches += 1;
            continue;
        }
        let (seq, req) = LookupRequest::decode(msg.tag, &msg.payload);
        let count = match req {
            LookupRequest::Kmer(code) => hash_kmers.get_at(Normalized::assume(code)),
            LookupRequest::Tile(code) => hash_tiles.get_at(Normalized::assume(code)),
        };
        scratch.reset();
        encode_response_into(seq, count, &mut scratch);
        comm.send_from_slice(msg.src, TAG_RESP, scratch.payload());
        served.keys += 1;
    }
}

/// Deadline for retry attempt `attempt` (0-based): the base deadline
/// doubled per attempt, capped at `base * 2^16` so the shift cannot
/// overflow on absurd budgets.
fn attempt_deadline(base: Option<Duration>, attempt: u32) -> Option<Duration> {
    base.map(|d| d.saturating_mul(1u32 << attempt.min(16)))
}

/// The worker-side lookup chain of §III step IV:
/// replicated table → owned table → reads table → remote request.
pub(crate) struct DistAccess<'a> {
    comm: &'a Comm,
    me: usize,
    owners: &'a OwnerMap,
    hash_kmers: &'a KmerSpectrum,
    hash_tiles: &'a TileSpectrum,
    reads_kmers: Option<KmerSpectrum>,
    reads_tiles: Option<TileSpectrum>,
    replicated_kmers: &'a Option<KmerSpectrum>,
    replicated_tiles: &'a Option<TileSpectrum>,
    group_kmers: &'a Option<KmerSpectrum>,
    group_tiles: &'a Option<TileSpectrum>,
    hot_kmers: &'a Option<KmerSpectrum>,
    hot_tiles: &'a Option<TileSpectrum>,
    /// Hot-owner flags (length `np`, or empty when adaptive replication
    /// is off / found no skew); a hot owner's keys resolve from the
    /// local replica instead of the wire.
    hot_owners: &'a [bool],
    heur: HeuristicConfig,
    /// Base per-request deadline; `None` = block indefinitely (the
    /// fault-free fast path).
    lookup_deadline: Option<Duration>,
    /// Retries after the first missed deadline before a key degrades.
    retry_budget: u32,
    /// Next request sequence number (monotonic per worker, echoed by
    /// responses; never reused, so stale responses are recognizable).
    next_seq: u64,
    /// Batch responses that arrived while awaiting a different sequence
    /// number — reordered or duplicated deliveries parked until their
    /// own await comes around. Cleared at the end of each prefetch.
    batch_stash: FxHashMap<u64, BatchResponse>,
    /// Per-chunk prefetch cache (aggregate mode), filled from batch
    /// responses with counts normalized like the single-key path
    /// (nonexistent key → 0).
    prefetch_kmers: FxHashMap<u64, u32>,
    prefetch_tiles: FxHashMap<u128, u32>,
    /// Reused encode buffer — no fresh `Vec` per request.
    scratch: WireWriter,
    pub(crate) stats: LookupStats,
    pub(crate) comm_secs: f64,
}

impl<'a> DistAccess<'a> {
    /// Build the lookup chain over a rank's intact [`RankTables`] — the
    /// serve plane's constructor. The reads tables stay `None` (a
    /// long-lived service has no fixed read set to scan), so the caller
    /// must have rejected `keep_read_tables`/`cache_remote` up front.
    /// The prefetch maps, wire scratch and batch stash allocated here
    /// live as long as the access: reusing one `DistAccess` across many
    /// serve micro-batches is what makes repeat jobs allocate ~zero.
    pub(crate) fn for_tables(
        comm: &'a Comm,
        tables: &'a RankTables,
        cfg: &EngineConfig,
    ) -> DistAccess<'a> {
        DistAccess {
            comm,
            me: comm.rank(),
            owners: &tables.owners,
            hash_kmers: &tables.hash_kmers,
            hash_tiles: &tables.hash_tiles,
            reads_kmers: None,
            reads_tiles: None,
            replicated_kmers: &tables.replicated_kmers,
            replicated_tiles: &tables.replicated_tiles,
            group_kmers: &tables.group_kmers,
            group_tiles: &tables.group_tiles,
            hot_kmers: &tables.hot_kmers,
            hot_tiles: &tables.hot_tiles,
            hot_owners: &tables.hot_owners,
            heur: cfg.heuristics,
            lookup_deadline: cfg.lookup_deadline,
            retry_budget: cfg.retry_budget,
            next_seq: 1,
            batch_stash: FxHashMap::default(),
            prefetch_kmers: FxHashMap::default(),
            prefetch_tiles: FxHashMap::default(),
            scratch: WireWriter::with_capacity(64),
            stats: LookupStats::default(),
            comm_secs: 0.0,
        }
    }
}

impl DistAccess<'_> {
    /// One remote lookup under the retry protocol: send, await the
    /// response matching our sequence number, resend with exponential
    /// backoff on every missed deadline, and degrade to "absent
    /// everywhere" (count 0) once the budget is spent.
    fn remote_lookup(&mut self, req: LookupRequest, owner: usize) -> u32 {
        let t = Instant::now();
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut outcome = None;
        for attempt in 0..=self.retry_budget {
            self.scratch.reset();
            let tag = if self.heur.universal {
                req.encode_universal_into(seq, &mut self.scratch)
            } else {
                req.encode_tagged_into(seq, &mut self.scratch)
            };
            self.comm.send_from_slice(owner, tag, self.scratch.payload());
            if attempt == 0 {
                self.stats.remote_messages += 1;
            } else {
                self.stats.requests_retried += 1;
            }
            match self.await_response(owner, seq, attempt_deadline(self.lookup_deadline, attempt)) {
                Some(count) => {
                    outcome = Some(count);
                    break;
                }
                // only reachable with a configured deadline: without one
                // await_response blocks until an answer arrives
                None => self.stats.deadline_misses += 1,
            }
        }
        self.comm_secs += t.elapsed().as_secs_f64();
        match outcome {
            Some(count) => {
                match (&req, count) {
                    (LookupRequest::Kmer(_), None) => self.stats.remote_kmer_misses += 1,
                    (LookupRequest::Tile(_), None) => self.stats.remote_tile_misses += 1,
                    _ => {}
                }
                count.unwrap_or(0)
            }
            None => {
                self.stats.keys_degraded += 1;
                0
            }
        }
    }

    /// Wait up to `deadline` for the response stamped `seq` from
    /// `owner`, discarding responses to requests this worker already
    /// resolved or gave up on. Returns `None` on timeout; the inner
    /// `Option` is the key's count (None = absent on the owner).
    fn await_response(
        &mut self,
        owner: usize,
        seq: u64,
        deadline: Option<Duration>,
    ) -> Option<Option<u32>> {
        let start = Instant::now();
        loop {
            let msg = match deadline {
                None => self.comm.recv(Source::Rank(owner), TagSel::Tag(TAG_RESP)),
                Some(d) => {
                    let left = d.checked_sub(start.elapsed()).unwrap_or(Duration::ZERO);
                    self.comm.recv_deadline(Source::Rank(owner), TagSel::Tag(TAG_RESP), left)?
                }
            };
            let (rseq, count) = decode_response(&msg.payload);
            if rseq == seq {
                return Some(count);
            }
            // stale or duplicated response for another sequence — drop it
        }
    }

    /// Owner of a k-mer key that would need a remote message right now —
    /// `None` when the lookup chain resolves it locally. Mirrors
    /// [`SpectrumAccess::kmer_count`]'s chain.
    fn remote_kmer_owner(&self, key: Normalized<u64>) -> Option<usize> {
        if self.replicated_kmers.is_some() {
            return None;
        }
        let owner = self.owners.kmer_owner_at(key);
        if self.group_kmers.is_some() {
            let g = self.heur.partial_group;
            if owner / g == self.me / g {
                return None;
            }
        } else if owner == self.me {
            return None;
        }
        if self.hot_owners.get(owner) == Some(&true) {
            return None;
        }
        if let Some(rk) = &self.reads_kmers {
            if rk.get_at(key).is_some() {
                return None;
            }
        }
        Some(owner)
    }

    /// Tile twin of [`Self::remote_kmer_owner`].
    fn remote_tile_owner(&self, key: Normalized<u128>) -> Option<usize> {
        if self.replicated_tiles.is_some() {
            return None;
        }
        let owner = self.owners.tile_owner_at(key);
        if self.group_tiles.is_some() {
            let g = self.heur.partial_group;
            if owner / g == self.me / g {
                return None;
            }
        } else if owner == self.me {
            return None;
        }
        if self.hot_owners.get(owner) == Some(&true) {
            return None;
        }
        if let Some(rt) = &self.reads_tiles {
            if rt.get_at(key).is_some() {
                return None;
            }
        }
        Some(owner)
    }

    /// Aggregate-lookups prefetch: enumerate every key `reads` can
    /// request, keep the remote-destined ones, and fetch their counts
    /// with one vectorized round trip per owning rank (split at
    /// [`MAX_BATCH_KEYS`]). All batches go out before any response is
    /// received: sends are buffered and comm threads always answer, so
    /// this cannot deadlock. Responses are matched by sequence number
    /// (reordered deliveries park in [`DistAccess::batch_stash`]), so
    /// arrival order does not matter.
    pub(crate) fn prefetch(&mut self, reads: &[Read], params: &ReptileParams) {
        self.prefetch_kmers.clear();
        self.prefetch_tiles.clear();
        let keys = reptile::prefetch_keys(reads, params);
        // `clear` keeps the allocation across chunks; reserving the
        // worst case (every enumerated key remote) up front means the
        // inserts while responses drain never rehash mid-round. After
        // the first chunk this is a no-op for same-sized chunks.
        self.prefetch_kmers.reserve(keys.kmers.len());
        self.prefetch_tiles.reserve(keys.tiles.len());
        let t = Instant::now();
        let mut per_owner: Vec<BatchRequest> = vec![BatchRequest::default(); self.owners.np()];
        for &k in &keys.kmers {
            if let Some(owner) = self.remote_kmer_owner(Normalized::assume(k)) {
                per_owner[owner].kmers.push(k);
            }
        }
        for &tl in &keys.tiles {
            if let Some(owner) = self.remote_tile_owner(Normalized::assume(tl)) {
                per_owner[owner].tiles.push(tl);
            }
        }
        let mut sent: Vec<(usize, BatchRequest, u64)> = Vec::new();
        for (owner, mut req) in per_owner.into_iter().enumerate() {
            while req.len() > MAX_BATCH_KEYS {
                let take_k = req.kmers.len().min(MAX_BATCH_KEYS);
                let part = BatchRequest {
                    kmers: req.kmers.drain(..take_k).collect(),
                    tiles: req.tiles.drain(..MAX_BATCH_KEYS - take_k).collect(),
                };
                let seq = self.send_batch(owner, &part);
                sent.push((owner, part, seq));
            }
            if !req.is_empty() {
                let seq = self.send_batch(owner, &req);
                sent.push((owner, req, seq));
            }
        }
        for (owner, req, seq) in sent {
            self.await_batch_response(owner, &req, seq);
        }
        self.batch_stash.clear();
        self.comm_secs += t.elapsed().as_secs_f64();
    }

    /// Resolve one in-flight batch: match its response by sequence
    /// number, retrying with backoff on missed deadlines; once the
    /// budget is spent, degrade every key in the batch to absent.
    fn await_batch_response(&mut self, owner: usize, req: &BatchRequest, seq: u64) {
        let resp = 'resolve: {
            if let Some(r) = self.batch_stash.remove(&seq) {
                break 'resolve Some(r);
            }
            for attempt in 0..=self.retry_budget {
                if attempt > 0 {
                    self.resend_batch(owner, req, seq);
                }
                let start = Instant::now();
                let deadline = attempt_deadline(self.lookup_deadline, attempt);
                loop {
                    let msg = match deadline {
                        None => self.comm.recv(Source::Rank(owner), TagSel::Tag(TAG_BATCH_RESP)),
                        Some(d) => {
                            let left = d.checked_sub(start.elapsed()).unwrap_or(Duration::ZERO);
                            match self.comm.recv_deadline(
                                Source::Rank(owner),
                                TagSel::Tag(TAG_BATCH_RESP),
                                left,
                            ) {
                                Some(m) => m,
                                None => {
                                    self.stats.deadline_misses += 1;
                                    break;
                                }
                            }
                        }
                    };
                    let (rseq, resp) = BatchResponse::decode(&msg.payload);
                    if rseq == seq {
                        break 'resolve Some(resp);
                    }
                    // response to a different batch from this owner —
                    // reordered ahead of ours or a duplicate; park it
                    self.batch_stash.insert(rseq, resp);
                }
            }
            None
        };
        match resp {
            Some(resp) => {
                debug_assert_eq!(resp.kmer_counts.len(), req.kmers.len());
                debug_assert_eq!(resp.tile_counts.len(), req.tiles.len());
                for (&k, &c) in req.kmers.iter().zip(&resp.kmer_counts) {
                    self.prefetch_kmers.insert(k, wire_to_count(c).unwrap_or(0));
                }
                for (&tl, &c) in req.tiles.iter().zip(&resp.tile_counts) {
                    self.prefetch_tiles.insert(tl, wire_to_count(c).unwrap_or(0));
                }
            }
            None => {
                // budget exhausted: every key in the batch reads as
                // absent — the paper's degradation semantics
                for &k in &req.kmers {
                    self.prefetch_kmers.insert(k, 0);
                }
                for &tl in &req.tiles {
                    self.prefetch_tiles.insert(tl, 0);
                }
                self.stats.keys_degraded += req.len() as u64;
            }
        }
    }

    /// One steal round trip: ask `victim` for a chunk off the back of
    /// its queue, await the seq-matched response (retrying with backoff
    /// under a deadline, like every other request on the service plane),
    /// and acknowledge receipt. Returns `None` when the victim is
    /// drained — or when the retry budget ran out, which a thief treats
    /// the same way: stop stealing from that victim.
    fn steal_from(&mut self, victim: usize) -> Option<Vec<Read>> {
        let t = Instant::now();
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut outcome = None;
        'attempts: for attempt in 0..=self.retry_budget {
            self.comm.send_from_slice(victim, TAG_STEAL_REQ, &encode_steal_request(seq));
            if attempt > 0 {
                self.stats.requests_retried += 1;
            }
            let deadline = attempt_deadline(self.lookup_deadline, attempt);
            let start = Instant::now();
            loop {
                let msg = match deadline {
                    None => self.comm.recv(Source::Rank(victim), TagSel::Tag(TAG_STEAL_RESP)),
                    Some(d) => {
                        let left = d.checked_sub(start.elapsed()).unwrap_or(Duration::ZERO);
                        match self.comm.recv_deadline(
                            Source::Rank(victim),
                            TagSel::Tag(TAG_STEAL_RESP),
                            left,
                        ) {
                            Some(m) => m,
                            None => {
                                self.stats.deadline_misses += 1;
                                continue 'attempts;
                            }
                        }
                    }
                };
                let (rseq, resp) = StealResponse::decode(&msg.payload);
                if rseq == seq {
                    self.comm.send_from_slice(victim, TAG_STEAL_ACK, &encode_steal_ack(seq));
                    outcome = Some(resp);
                    break 'attempts;
                }
                // response to an earlier steal round (duplicate or
                // reordered) — the victim's resend cache makes dropping
                // it safe
            }
        }
        self.comm_secs += t.elapsed().as_secs_f64();
        outcome.and_then(|resp| resp.chunk)
    }

    fn send_batch(&mut self, owner: usize, req: &BatchRequest) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scratch.reset();
        let tag = req.encode_into(seq, &mut self.scratch);
        self.comm.send_from_slice(owner, tag, self.scratch.payload());
        self.stats.batches_sent += 1;
        self.stats.batched_keys += req.len() as u64;
        self.stats.remote_messages += 1;
        seq
    }

    fn resend_batch(&mut self, owner: usize, req: &BatchRequest, seq: u64) {
        self.scratch.reset();
        let tag = req.encode_into(seq, &mut self.scratch);
        self.comm.send_from_slice(owner, tag, self.scratch.payload());
        self.stats.requests_retried += 1;
    }
}

impl SpectrumAccess for DistAccess<'_> {
    fn kmer_count(&mut self, code: u64) -> u32 {
        let key = self.owners.kmer_key(code);
        if let Some(rep) = self.replicated_kmers {
            self.stats.local_kmer_lookups += 1;
            return rep.count_at(key);
        }
        let owner = self.owners.kmer_owner_at(key);
        if let Some(group) = self.group_kmers {
            // §V partial replication: in-group owners are local
            let g = self.heur.partial_group;
            if owner / g == self.me / g {
                self.stats.local_kmer_lookups += 1;
                return group.count_at(key);
            }
        } else if owner == self.me {
            self.stats.local_kmer_lookups += 1;
            return self.hash_kmers.count_at(key);
        }
        if self.hot_owners.get(owner) == Some(&true) {
            if let Some(hk) = self.hot_kmers {
                // exact copy of the hot owner's pruned table: the same
                // count a remote request would return
                self.stats.local_kmer_lookups += 1;
                self.stats.hot_shard_hits += 1;
                return hk.count_at(key);
            }
        }
        if let Some(rk) = &self.reads_kmers {
            if let Some(c) = rk.get_at(key) {
                self.stats.local_kmer_lookups += 1;
                self.stats.cache_hits += 1;
                return c;
            }
        }
        if let Some(&c) = self.prefetch_kmers.get(&key.key()) {
            self.stats.local_kmer_lookups += 1;
            self.stats.prefetch_hits += 1;
            return c;
        }
        self.stats.remote_kmer_lookups += 1;
        let count = self.remote_lookup(LookupRequest::Kmer(key.key()), owner);
        if self.heur.cache_remote {
            if let Some(rk) = &mut self.reads_kmers {
                rk.add_count(key, count);
                self.stats.cached_answers += 1;
            }
        }
        count
    }

    fn tile_count(&mut self, code: u128) -> u32 {
        let key = self.owners.tile_key(code);
        if let Some(rep) = self.replicated_tiles {
            self.stats.local_tile_lookups += 1;
            return rep.count_at(key);
        }
        let owner = self.owners.tile_owner_at(key);
        if let Some(group) = self.group_tiles {
            let g = self.heur.partial_group;
            if owner / g == self.me / g {
                self.stats.local_tile_lookups += 1;
                return group.count_at(key);
            }
        } else if owner == self.me {
            self.stats.local_tile_lookups += 1;
            return self.hash_tiles.count_at(key);
        }
        if self.hot_owners.get(owner) == Some(&true) {
            if let Some(ht) = self.hot_tiles {
                self.stats.local_tile_lookups += 1;
                self.stats.hot_shard_hits += 1;
                return ht.count_at(key);
            }
        }
        if let Some(rt) = &self.reads_tiles {
            if let Some(c) = rt.get_at(key) {
                self.stats.local_tile_lookups += 1;
                self.stats.cache_hits += 1;
                return c;
            }
        }
        if let Some(&c) = self.prefetch_tiles.get(&key.key()) {
            self.stats.local_tile_lookups += 1;
            self.stats.prefetch_hits += 1;
            return c;
        }
        self.stats.remote_tile_lookups += 1;
        let count = self.remote_lookup(LookupRequest::Tile(key.key()), owner);
        if self.heur.cache_remote {
            if let Some(rt) = &mut self.reads_tiles {
                rt.add_count(key, count);
                self.stats.cached_answers += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::FaultPlan;
    use reptile::correct_dataset;

    fn params() -> ReptileParams {
        ReptileParams { k: 6, tile_overlap: 3, ..ReptileParams::for_tests() }
    }

    /// Deterministic small dataset with injected low-quality errors.
    fn dataset(n: usize) -> Vec<Read> {
        let genome: Vec<u8> =
            (0..400).map(|i| [b'A', b'C', b'G', b'T'][(i * 7 + i / 3) % 4]).collect();
        let mut reads = Vec::new();
        for i in 0..n {
            let start = (i * 13) % (genome.len() - 40);
            let mut seq = genome[start..start + 40].to_vec();
            let mut qual = vec![35u8; 40];
            if i % 3 == 0 {
                // inject one substitution with low quality
                let pos = 5 + (i % 30);
                seq[pos] = match seq[pos] {
                    b'A' => b'C',
                    b'C' => b'G',
                    b'G' => b'T',
                    _ => b'A',
                };
                qual[pos] = 6;
            }
            reads.push(Read::new(i as u64 + 1, seq, qual));
        }
        reads
    }

    fn check_matches_sequential(cfg: &EngineConfig, reads: &[Read]) {
        let (seq_corrected, seq_stats) = correct_dataset(reads, &cfg.params);
        let out = run_distributed(cfg, reads);
        assert_eq!(out.corrected.len(), seq_corrected.len());
        for (d, s) in out.corrected.iter().zip(&seq_corrected) {
            assert_eq!(d, s, "distributed output must equal sequential (read {})", d.id);
        }
        let total_errors: u64 =
            out.report.ranks.iter().map(|r| r.correction.errors_corrected).sum();
        assert_eq!(total_errors, seq_stats.errors_corrected);
    }

    #[test]
    fn matches_sequential_base() {
        let reads = dataset(60);
        for np in [1, 2, 4] {
            let cfg = EngineConfig::new(np, params());
            check_matches_sequential(&cfg, &reads);
        }
    }

    #[test]
    fn matches_sequential_all_heuristics() {
        let reads = dataset(50);
        let heuristic_matrix = [
            HeuristicConfig { universal: true, ..Default::default() },
            HeuristicConfig { keep_read_tables: true, ..Default::default() },
            HeuristicConfig { keep_read_tables: true, cache_remote: true, ..Default::default() },
            HeuristicConfig { replicate_kmers: true, ..Default::default() },
            HeuristicConfig { replicate_tiles: true, ..Default::default() },
            HeuristicConfig::replicate_both(),
            HeuristicConfig { batch_reads: true, ..Default::default() },
            HeuristicConfig::paper_production(),
            HeuristicConfig { load_balance: false, ..Default::default() },
            HeuristicConfig { partial_group: 2, ..Default::default() },
            HeuristicConfig { aggregate_lookups: true, ..Default::default() },
            HeuristicConfig { aggregate_lookups: true, universal: true, ..Default::default() },
            HeuristicConfig { aggregate_lookups: true, batch_reads: true, ..Default::default() },
            HeuristicConfig {
                aggregate_lookups: true,
                keep_read_tables: true,
                cache_remote: true,
                ..Default::default()
            },
            HeuristicConfig { aggregate_lookups: true, partial_group: 2, ..Default::default() },
        ];
        for heur in heuristic_matrix {
            let cfg = EngineConfig {
                chunk_size: 7,
                heuristics: heur,
                build_threads: 2,
                ..EngineConfig::new(3, params())
            };
            check_matches_sequential(&cfg, &reads);
        }
    }

    #[test]
    fn replication_eliminates_messages() {
        let reads = dataset(40);
        let mut cfg = EngineConfig::new(3, params());
        cfg.heuristics = HeuristicConfig::replicate_both();
        let out = run_distributed(&cfg, &reads);
        for r in &out.report.ranks {
            assert_eq!(r.lookups.remote_total(), 0, "rank {} messaged under replication", r.rank);
            assert_eq!(r.lookups.requests_served, 0);
        }
    }

    #[test]
    fn base_mode_does_message() {
        let reads = dataset(40);
        let cfg = EngineConfig::new(4, params());
        let out = run_distributed(&cfg, &reads);
        let total_remote: u64 = out.report.ranks.iter().map(|r| r.lookups.remote_total()).sum();
        assert!(total_remote > 0, "distributed spectrum must trigger remote lookups");
        let total_served: u64 = out.report.ranks.iter().map(|r| r.lookups.requests_served).sum();
        assert_eq!(total_served, total_remote, "every request is served exactly once");
    }

    #[test]
    fn aggregation_matches_sequential_and_cuts_messages() {
        let reads = dataset(60);
        let base_cfg = EngineConfig::new(4, params());
        let mut agg_cfg = EngineConfig::new(4, params());
        agg_cfg.heuristics.aggregate_lookups = true;
        // bit-identical output is asserted inside the helper
        check_matches_sequential(&agg_cfg, &reads);

        let base = run_distributed(&base_cfg, &reads);
        let agg = run_distributed(&agg_cfg, &reads);
        let msgs = |out: &RunOutput| -> u64 {
            out.report.ranks.iter().map(|r| r.lookups.remote_messages).sum()
        };
        let (base_msgs, agg_msgs) = (msgs(&base), msgs(&agg));
        assert!(agg_msgs > 0, "np=4 still needs batch messages");
        assert!(
            base_msgs >= 5 * agg_msgs,
            "aggregation must cut request messages >= 5x (base {base_msgs}, agg {agg_msgs})"
        );

        // batch accounting: every batch sent is served exactly once, the
        // per-key serve count covers singles + batched keys, and the bulk
        // of lookups resolve from the prefetch cache
        let sum = |f: &dyn Fn(&LookupStats) -> u64, out: &RunOutput| -> u64 {
            out.report.ranks.iter().map(|r| f(&r.lookups)).sum()
        };
        assert_eq!(sum(&|l| l.batches_sent, &agg), sum(&|l| l.batches_served, &agg));
        assert_eq!(
            sum(&|l| l.requests_served, &agg),
            sum(&|l| l.remote_total(), &agg) + sum(&|l| l.batched_keys, &agg)
        );
        assert!(sum(&|l| l.prefetch_hits, &agg) > 0);
        assert!(sum(&|l| l.batched_keys, &agg) > 0);
        assert_eq!(sum(&|l| l.batches_sent, &base), 0, "base mode must not batch");
        // in base mode every remote lookup is exactly one request message
        assert_eq!(base_msgs, sum(&|l| l.remote_total(), &base));
    }

    #[test]
    fn cache_remote_reduces_messages_on_second_pass() {
        // add-remote caches answers; within one pass repeated tiles from
        // overlapping reads should produce cache hits.
        let reads = dataset(60);
        let base_cfg = EngineConfig {
            chunk_size: 2000,
            heuristics: HeuristicConfig { keep_read_tables: true, ..Default::default() },
            build_threads: 2,
            ..EngineConfig::new(3, params())
        };
        let cache_cfg = EngineConfig {
            heuristics: HeuristicConfig {
                keep_read_tables: true,
                cache_remote: true,
                ..Default::default()
            },
            ..base_cfg.clone()
        };
        let base = run_distributed(&base_cfg, &reads);
        let cached = run_distributed(&cache_cfg, &reads);
        let base_remote: u64 = base.report.ranks.iter().map(|r| r.lookups.remote_total()).sum();
        let cached_remote: u64 = cached.report.ranks.iter().map(|r| r.lookups.remote_total()).sum();
        assert!(cached_remote <= base_remote);
        let hits: u64 = cached.report.ranks.iter().map(|r| r.lookups.cache_hits).sum();
        let base_hits: u64 = base.report.ranks.iter().map(|r| r.lookups.cache_hits).sum();
        assert!(hits >= base_hits, "caching cannot reduce hits");
    }

    #[test]
    fn load_balance_changes_assignment_not_output() {
        let reads = dataset(48);
        let balanced = EngineConfig::new(4, params());
        let mut imbalanced = EngineConfig::new(4, params());
        imbalanced.heuristics.load_balance = false;
        let out_b = run_distributed(&balanced, &reads);
        let out_i = run_distributed(&imbalanced, &reads);
        assert_eq!(out_b.corrected, out_i.corrected, "output invariant to balancing");
        // balanced mode spreads reads by hash: processed counts differ
        // from the contiguous split for this np with high probability
        let dist_b: Vec<u64> = out_b.report.ranks.iter().map(|r| r.reads_processed).collect();
        assert_eq!(dist_b.iter().sum::<u64>(), 48);
    }

    #[test]
    fn empty_and_tiny_datasets() {
        let cfg = EngineConfig::new(3, params());
        let out = run_distributed(&cfg, &[]);
        assert!(out.corrected.is_empty());
        // fewer reads than ranks
        let reads = dataset(2);
        let out = run_distributed(&cfg, &reads);
        assert_eq!(out.corrected.len(), 2);
    }

    /// Lossy faults with a retry budget: output stays bit-identical to
    /// the fault-free run and the retry counters light up. Fault
    /// decisions are seeded, so a passing grid is reproducible.
    #[test]
    fn retries_mask_message_faults_bit_identically() {
        let reads = dataset(36);
        let clean_cfg = EngineConfig::new(3, params());
        let clean = run_distributed(&clean_cfg, &reads);
        let fault = FaultPlan::parse("seed=7,drop=0.15,dup=0.1,reorder=0.2").unwrap();
        let faulted_cfg = EngineConfig {
            fault,
            lookup_deadline: Some(Duration::from_millis(25)),
            retry_budget: 10,
            ..EngineConfig::new(3, params())
        };
        let faulted = run_distributed(&faulted_cfg, &reads);
        assert_eq!(faulted.corrected, clean.corrected, "retries must mask lossy faults");
        let retried: u64 = faulted.report.ranks.iter().map(|r| r.lookups.requests_retried).sum();
        let degraded: u64 = faulted.report.ranks.iter().map(|r| r.lookups.keys_degraded).sum();
        assert!(retried > 0, "drop=0.15 must trigger retries");
        assert_eq!(degraded, 0, "budget 10 must outlast drop=0.15");
    }

    /// Reordered batches in aggregate mode resolve through the sequence
    /// stash without changing the output.
    #[test]
    fn aggregate_mode_survives_reordering() {
        let reads = dataset(36);
        let mut clean_cfg = EngineConfig::new(3, params());
        clean_cfg.heuristics.aggregate_lookups = true;
        clean_cfg.chunk_size = 7;
        let clean = run_distributed(&clean_cfg, &reads);
        let faulted_cfg = EngineConfig {
            fault: FaultPlan::parse("seed=11,drop=0.1,dup=0.15,reorder=0.4").unwrap(),
            lookup_deadline: Some(Duration::from_millis(25)),
            retry_budget: 10,
            ..clean_cfg
        };
        let faulted = run_distributed(&faulted_cfg, &reads);
        assert_eq!(faulted.corrected, clean.corrected);
        let degraded: u64 = faulted.report.ranks.iter().map(|r| r.lookups.keys_degraded).sum();
        assert_eq!(degraded, 0);
    }

    /// Killing an owner rank: the run still completes, its keys degrade
    /// to absent, and the degradation counters report it.
    #[test]
    fn killed_owner_degrades_gracefully() {
        let reads = dataset(36);
        let cfg = EngineConfig {
            fault: FaultPlan::parse("seed=3,kill=1").unwrap(),
            lookup_deadline: Some(Duration::from_millis(2)),
            retry_budget: 2,
            heuristics: HeuristicConfig { aggregate_lookups: true, ..Default::default() },
            chunk_size: 9,
            ..EngineConfig::new(3, params())
        };
        let out = run_distributed(&cfg, &reads);
        assert_eq!(out.corrected.len(), reads.len(), "kill must not lose reads");
        let degraded: u64 = out.report.ranks.iter().map(|r| r.lookups.keys_degraded).sum();
        assert!(degraded > 0, "lookups owned by the killed rank must degrade");
        // the killed rank's message plane is severed: it serves nothing
        assert_eq!(out.report.ranks[1].lookups.requests_served, 0);
    }
}
