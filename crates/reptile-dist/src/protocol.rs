//! Correction-phase wire protocol.
//!
//! During step IV a worker thread that misses a k-mer/tile locally "sends
//! a message to the owning rank, requesting the count of the k-mer or
//! tile. The communication thread of each rank probes any incoming
//! messages – based on the probe, it first finds out the nature of the
//! request ... The response is either the count of the k-mer or tile or a
//! response like (−1) implying that the k-mer or tile does not exist"
//! (paper §III step IV).
//!
//! Two request encodings exist, matching the paper's *universal*
//! heuristic:
//!
//! * **tagged** (base mode): the request kind travels in the message tag
//!   (`TAG_KMER_REQ` / `TAG_TILE_REQ`), the payload is just the code;
//! * **universal**: one tag (`TAG_UNIVERSAL`), the payload carries a kind
//!   byte + the code — bigger message, no per-tag probing at the server.
//!
//! Responses carry an `i64` count, `-1` for "does not exist" (we could
//! use 0, but we keep the paper's sentinel on the wire and normalize at
//! the caller).

use mpisim::message::{WireReader, WireWriter};

/// Tag for k-mer count requests (base mode).
pub const TAG_KMER_REQ: u32 = 0x10;
/// Tag for tile count requests (base mode).
pub const TAG_TILE_REQ: u32 = 0x11;
/// Tag for universal-mode requests (kind inside the payload).
pub const TAG_UNIVERSAL: u32 = 0x12;
/// Tag for count responses.
pub const TAG_RESP: u32 = 0x13;
/// Tag announcing "my worker finished all its reads" (termination).
pub const TAG_DONE: u32 = 0x14;

/// A decoded lookup request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupRequest {
    /// K-mer count request (normalized code).
    Kmer(u64),
    /// Tile count request (normalized code).
    Tile(u128),
}

impl LookupRequest {
    /// Encode for base (tagged) mode: `(tag, payload)`.
    pub fn encode_tagged(&self) -> (u32, Vec<u8>) {
        match *self {
            LookupRequest::Kmer(code) => {
                let mut w = WireWriter::with_capacity(8);
                w.put_u64(code);
                (TAG_KMER_REQ, w.finish())
            }
            LookupRequest::Tile(code) => {
                let mut w = WireWriter::with_capacity(16);
                w.put_u128(code);
                (TAG_TILE_REQ, w.finish())
            }
        }
    }

    /// Encode for universal mode: `(TAG_UNIVERSAL, payload)` with the
    /// kind byte leading.
    pub fn encode_universal(&self) -> (u32, Vec<u8>) {
        let mut w = WireWriter::with_capacity(17);
        match *self {
            LookupRequest::Kmer(code) => {
                w.put_u8(0);
                w.put_u64(code);
            }
            LookupRequest::Tile(code) => {
                w.put_u8(1);
                w.put_u128(code);
            }
        }
        (TAG_UNIVERSAL, w.finish())
    }

    /// Decode a request delivered with `tag`.
    pub fn decode(tag: u32, payload: &[u8]) -> LookupRequest {
        let mut r = WireReader::new(payload);
        match tag {
            TAG_KMER_REQ => LookupRequest::Kmer(r.get_u64()),
            TAG_TILE_REQ => LookupRequest::Tile(r.get_u128()),
            TAG_UNIVERSAL => match r.get_u8() {
                0 => LookupRequest::Kmer(r.get_u64()),
                1 => LookupRequest::Tile(r.get_u128()),
                k => panic!("unknown universal request kind {k}"),
            },
            t => panic!("not a request tag: {t:#x}"),
        }
    }

    /// Wire size of this request under the given mode, for the cost model.
    pub fn wire_bytes(&self, universal: bool) -> usize {
        let code = match *self {
            LookupRequest::Kmer(_) => 8,
            LookupRequest::Tile(_) => 16,
        };
        if universal {
            code + 1
        } else {
            code
        }
    }
}

/// Encode a count response: the paper's `-1` sentinel for "nonexistent".
pub fn encode_response(count: Option<u32>) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(8);
    w.put_i64(count.map(|c| c as i64).unwrap_or(-1));
    w.finish()
}

/// Decode a count response back to `Option<count>`.
pub fn decode_response(payload: &[u8]) -> Option<u32> {
    let v = WireReader::new(payload).get_i64();
    if v < 0 {
        None
    } else {
        Some(v as u32)
    }
}

/// Wire size of a response.
pub const RESPONSE_BYTES: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_round_trip() {
        for req in [LookupRequest::Kmer(0xABCD), LookupRequest::Tile(1u128 << 90)] {
            let (tag, payload) = req.encode_tagged();
            assert_eq!(LookupRequest::decode(tag, &payload), req);
        }
    }

    #[test]
    fn universal_round_trip() {
        for req in [LookupRequest::Kmer(7), LookupRequest::Tile(u128::MAX)] {
            let (tag, payload) = req.encode_universal();
            assert_eq!(tag, TAG_UNIVERSAL);
            assert_eq!(LookupRequest::decode(tag, &payload), req);
        }
    }

    #[test]
    fn universal_messages_are_bigger() {
        let k = LookupRequest::Kmer(1);
        assert_eq!(k.wire_bytes(false), 8);
        assert_eq!(k.wire_bytes(true), 9);
        assert_eq!(k.encode_tagged().1.len(), 8);
        assert_eq!(k.encode_universal().1.len(), 9);
        let t = LookupRequest::Tile(1);
        assert_eq!(t.encode_tagged().1.len(), 16);
        assert_eq!(t.encode_universal().1.len(), 17);
    }

    #[test]
    fn response_sentinel() {
        assert_eq!(decode_response(&encode_response(Some(42))), Some(42));
        assert_eq!(decode_response(&encode_response(Some(0))), Some(0));
        assert_eq!(decode_response(&encode_response(None)), None);
        assert_eq!(encode_response(None).len(), RESPONSE_BYTES);
    }

    #[test]
    #[should_panic(expected = "not a request tag")]
    fn decode_rejects_bad_tag() {
        let _ = LookupRequest::decode(TAG_RESP, &[0; 8]);
    }
}
