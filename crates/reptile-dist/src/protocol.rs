//! Correction-phase wire protocol.
//!
//! During step IV a worker thread that misses a k-mer/tile locally "sends
//! a message to the owning rank, requesting the count of the k-mer or
//! tile. The communication thread of each rank probes any incoming
//! messages – based on the probe, it first finds out the nature of the
//! request ... The response is either the count of the k-mer or tile or a
//! response like (−1) implying that the k-mer or tile does not exist"
//! (paper §III step IV).
//!
//! Two request encodings exist, matching the paper's *universal*
//! heuristic:
//!
//! * **tagged** (base mode): the request kind travels in the message tag
//!   (`TAG_KMER_REQ` / `TAG_TILE_REQ`), the payload is just the code;
//! * **universal**: one tag (`TAG_UNIVERSAL`), the payload carries a kind
//!   byte + the code — bigger message, no per-tag probing at the server.
//!
//! Responses carry an `i64` count, `-1` for "does not exist" (we could
//! use 0, but we keep the paper's sentinel on the wire and normalize at
//! the caller).
//!
//! Beyond the paper, the `aggregate_lookups` heuristic adds a
//! **batched** encoding ([`BatchRequest`]/[`BatchResponse`]): all keys a
//! chunk of reads can touch at one owner travel in a single vectorized
//! message (`n × u64` k-mer keys + `n × u128` tile keys), and the owner
//! answers with one message of `n × i64` counts in key order, keeping
//! the `-1` sentinel per key. This is the request-aggregation idiom of
//! diBELLA / Extreme-Scale Metagenome Assembly (PAPERS.md) applied to
//! the Reptile step IV.
//!
//! ## Sequence numbers, retries, dedup
//!
//! Every request and response leads with a `u64` **sequence number**.
//! The requesting worker stamps each request with a fresh per-rank seq;
//! the server is stateless and idempotent (lookups are pure reads of an
//! immutable table) and simply echoes the seq into its response. Under a
//! fault plan the worker re-sends an unanswered request **with the same
//! seq** after its deadline (exponential backoff), and discards any
//! response whose seq is not the one it is currently waiting for — that
//! single rule dedups responses to duplicated or retried requests and
//! survives reordering. The fault-free path uses the identical encoding
//! (one protocol, no mode split); a run without deadline simply blocks
//! on the first response, which always has the expected seq because the
//! per-pair channel is FIFO and nothing is lost.
//!
//! Termination is a collective concern, not a p2p one: after its last
//! read, each worker enters a barrier, then raises its rank's local
//! shutdown flag; the comm thread polls with
//! [`mpisim::Comm::probe_tags_deadline`] and exits once the flag is up
//! and its mailbox holds no pending request. (Earlier revisions counted
//! per-rank `DONE` messages, which cannot survive a fault plan that may
//! drop, duplicate, or never deliver them.)

//!
//! ## Work stealing
//!
//! The adaptive balancer (`HeuristicConfig::steal_chunks`) rides the same
//! service plane with three more tags: a thief that drained its own
//! correction queue sends a seq-stamped [`TAG_STEAL_REQ`] to a loaded
//! victim, whose comm thread pops a whole read chunk off the *back* of
//! its pending queue and ships it in a [`StealResponse`] (or an empty
//! response when nothing is left). The thief confirms receipt with a
//! [`TAG_STEAL_ACK`]. The victim caches each `(thief, seq)` response so a
//! retried request gets the **same chunk** back (idempotent resend, no
//! read is ever handed to two thieves), and under a fault plan re-adopts
//! any handed-out-but-unacknowledged chunk before the final barrier —
//! at-least-once delivery, with duplicates collapsed by the id-ordered
//! output merge.

use dnaseq::Read;
use mpisim::message::{WireReader, WireWriter};

/// Tag for k-mer count requests (base mode).
pub const TAG_KMER_REQ: u32 = 0x10;
/// Tag for tile count requests (base mode).
pub const TAG_TILE_REQ: u32 = 0x11;
/// Tag for universal-mode requests (kind inside the payload).
pub const TAG_UNIVERSAL: u32 = 0x12;
/// Tag for count responses.
pub const TAG_RESP: u32 = 0x13;
/// Tag for batched (aggregated) key requests.
pub const TAG_BATCH_REQ: u32 = 0x15;
/// Tag for batched count responses.
pub const TAG_BATCH_RESP: u32 = 0x16;
/// Tag for work-steal chunk requests (adaptive balancing).
pub const TAG_STEAL_REQ: u32 = 0x17;
/// Tag for steal responses: a whole read chunk, or "nothing left".
pub const TAG_STEAL_RESP: u32 = 0x18;
/// Tag for steal acknowledgements (thief confirms chunk receipt).
pub const TAG_STEAL_ACK: u32 = 0x19;

/// Maximum keys (k-mers + tiles) per batch message; larger key sets are
/// split so a single request cannot grow unboundedly.
pub const MAX_BATCH_KEYS: usize = 1 << 16;

/// A decoded lookup request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupRequest {
    /// K-mer count request (normalized code).
    Kmer(u64),
    /// Tile count request (normalized code).
    Tile(u128),
}

impl LookupRequest {
    /// Encode for base (tagged) mode: `(tag, payload)`.
    pub fn encode_tagged(&self, seq: u64) -> (u32, Vec<u8>) {
        let mut w = WireWriter::with_capacity(24);
        let tag = self.encode_tagged_into(seq, &mut w);
        (tag, w.finish())
    }

    /// Encode for base (tagged) mode into a reusable scratch writer
    /// (call [`WireWriter::reset`] first); returns the tag.
    pub fn encode_tagged_into(&self, seq: u64, w: &mut WireWriter) -> u32 {
        w.put_u64(seq);
        match *self {
            LookupRequest::Kmer(code) => {
                w.put_u64(code);
                TAG_KMER_REQ
            }
            LookupRequest::Tile(code) => {
                w.put_u128(code);
                TAG_TILE_REQ
            }
        }
    }

    /// Encode for universal mode: `(TAG_UNIVERSAL, payload)` with the
    /// kind byte after the seq header.
    pub fn encode_universal(&self, seq: u64) -> (u32, Vec<u8>) {
        let mut w = WireWriter::with_capacity(25);
        let tag = self.encode_universal_into(seq, &mut w);
        (tag, w.finish())
    }

    /// Encode for universal mode into a reusable scratch writer; returns
    /// [`TAG_UNIVERSAL`].
    pub fn encode_universal_into(&self, seq: u64, w: &mut WireWriter) -> u32 {
        w.put_u64(seq);
        match *self {
            LookupRequest::Kmer(code) => {
                w.put_u8(0);
                w.put_u64(code);
            }
            LookupRequest::Tile(code) => {
                w.put_u8(1);
                w.put_u128(code);
            }
        }
        TAG_UNIVERSAL
    }

    /// Decode a request delivered with `tag`: `(seq, request)`.
    pub fn decode(tag: u32, payload: &[u8]) -> (u64, LookupRequest) {
        let mut r = WireReader::new(payload);
        let seq = r.get_u64();
        let req = match tag {
            TAG_KMER_REQ => LookupRequest::Kmer(r.get_u64()),
            TAG_TILE_REQ => LookupRequest::Tile(r.get_u128()),
            TAG_UNIVERSAL => match r.get_u8() {
                0 => LookupRequest::Kmer(r.get_u64()),
                1 => LookupRequest::Tile(r.get_u128()),
                k => panic!("unknown universal request kind {k}"),
            },
            t => panic!("not a request tag: {t:#x}"),
        };
        (seq, req)
    }

    /// Wire size of this request under the given mode, for the cost
    /// model: the 8 B seq header plus the code (plus the universal kind
    /// byte).
    pub fn wire_bytes(&self, universal: bool) -> usize {
        let code = match *self {
            LookupRequest::Kmer(_) => 8,
            LookupRequest::Tile(_) => 16,
        };
        8 + if universal { code + 1 } else { code }
    }
}

/// Encode a count response: seq echo + the paper's `-1` sentinel for
/// "nonexistent".
pub fn encode_response(seq: u64, count: Option<u32>) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(RESPONSE_BYTES);
    encode_response_into(seq, count, &mut w);
    w.finish()
}

/// Encode a count response into a reusable scratch writer.
pub fn encode_response_into(seq: u64, count: Option<u32>, w: &mut WireWriter) {
    w.put_u64(seq);
    w.put_i64(count_to_wire(count));
}

/// Decode a count response back to `(seq, Option<count>)`.
pub fn decode_response(payload: &[u8]) -> (u64, Option<u32>) {
    let mut r = WireReader::new(payload);
    let seq = r.get_u64();
    (seq, wire_to_count(r.get_i64()))
}

/// Wire size of a response: 8 B seq echo + 8 B count.
pub const RESPONSE_BYTES: usize = 16;

/// Map a table lookup onto the wire sentinel (`-1` = nonexistent).
#[inline]
pub fn count_to_wire(count: Option<u32>) -> i64 {
    count.map(|c| c as i64).unwrap_or(-1)
}

/// Map the wire sentinel back to a table lookup result.
#[inline]
pub fn wire_to_count(v: i64) -> Option<u32> {
    if v < 0 {
        None
    } else {
        Some(v as u32)
    }
}

/// A batched key request: every key one chunk of reads can touch at a
/// single owning rank, in one message.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchRequest {
    /// Normalized k-mer keys (the sender keeps them sorted/deduped).
    pub kmers: Vec<u64>,
    /// Normalized tile keys.
    pub tiles: Vec<u128>,
}

impl BatchRequest {
    /// Total keys in the batch.
    pub fn len(&self) -> usize {
        self.kmers.len() + self.tiles.len()
    }

    /// Whether the batch carries no keys.
    pub fn is_empty(&self) -> bool {
        self.kmers.is_empty() && self.tiles.is_empty()
    }

    /// Encode into a reusable scratch writer; returns [`TAG_BATCH_REQ`].
    pub fn encode_into(&self, seq: u64, w: &mut WireWriter) -> u32 {
        assert!(self.len() <= MAX_BATCH_KEYS, "batch exceeds MAX_BATCH_KEYS; split it");
        w.put_u64(seq);
        w.put_u64s(&self.kmers);
        w.put_u128s(&self.tiles);
        TAG_BATCH_REQ
    }

    /// Encode to an owned payload: `(TAG_BATCH_REQ, payload)`.
    pub fn encode(&self, seq: u64) -> (u32, Vec<u8>) {
        let mut w = WireWriter::with_capacity(self.wire_bytes());
        let tag = self.encode_into(seq, &mut w);
        (tag, w.finish())
    }

    /// Decode a batch request payload: `(seq, request)`.
    pub fn decode(payload: &[u8]) -> (u64, BatchRequest) {
        let mut r = WireReader::new(payload);
        let seq = r.get_u64();
        (seq, BatchRequest { kmers: r.get_u64s(), tiles: r.get_u128s() })
    }

    /// Wire size: 8 B seq + two `u32` length prefixes + 8 B per k-mer +
    /// 16 B per tile (for the cost model and capacity hints).
    pub fn wire_bytes(&self) -> usize {
        16 + 8 * self.kmers.len() + 16 * self.tiles.len()
    }
}

/// A batched count response: one `i64` per requested key, in the
/// request's key order, with the paper's `-1` sentinel kept per key.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchResponse {
    /// Counts for the request's k-mer keys, in order.
    pub kmer_counts: Vec<i64>,
    /// Counts for the request's tile keys, in order.
    pub tile_counts: Vec<i64>,
}

impl BatchResponse {
    /// Encode into a reusable scratch writer; returns [`TAG_BATCH_RESP`].
    pub fn encode_into(&self, seq: u64, w: &mut WireWriter) -> u32 {
        w.put_u64(seq);
        w.put_i64s(&self.kmer_counts);
        w.put_i64s(&self.tile_counts);
        TAG_BATCH_RESP
    }

    /// Encode to an owned payload: `(TAG_BATCH_RESP, payload)`.
    pub fn encode(&self, seq: u64) -> (u32, Vec<u8>) {
        let mut w = WireWriter::with_capacity(self.wire_bytes());
        let tag = self.encode_into(seq, &mut w);
        (tag, w.finish())
    }

    /// Decode a batch response payload: `(seq, response)`.
    pub fn decode(payload: &[u8]) -> (u64, BatchResponse) {
        let mut r = WireReader::new(payload);
        let seq = r.get_u64();
        (seq, BatchResponse { kmer_counts: r.get_i64s(), tile_counts: r.get_i64s() })
    }

    /// Wire size: 8 B seq + two `u32` length prefixes + 8 B per count.
    pub fn wire_bytes(&self) -> usize {
        16 + 8 * (self.kmer_counts.len() + self.tile_counts.len())
    }
}

/// Encode a steal request: just the seq header (the thief's identity is
/// the message source).
pub fn encode_steal_request(seq: u64) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(8);
    w.put_u64(seq);
    w.finish()
}

/// Decode a steal request back to its seq.
pub fn decode_steal_request(payload: &[u8]) -> u64 {
    WireReader::new(payload).get_u64()
}

/// Encode a steal acknowledgement: the seq of the response being acked.
pub fn encode_steal_ack(seq: u64) -> Vec<u8> {
    encode_steal_request(seq)
}

/// Decode a steal acknowledgement.
pub fn decode_steal_ack(payload: &[u8]) -> u64 {
    decode_steal_request(payload)
}

/// A steal response: one whole read chunk off the back of the victim's
/// pending queue, or `None` when the victim has nothing left to give.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StealResponse {
    /// The stolen chunk; `None` = queue drained, stop asking this victim.
    pub chunk: Option<Vec<Read>>,
}

impl StealResponse {
    /// Encode into a reusable scratch writer; returns [`TAG_STEAL_RESP`].
    pub fn encode_into(&self, seq: u64, w: &mut WireWriter) -> u32 {
        w.put_u64(seq);
        match &self.chunk {
            None => {
                w.put_u8(0);
            }
            Some(reads) => {
                w.put_u8(1);
                w.put_u32(reads.len() as u32);
                for read in reads {
                    w.put_u64(read.id);
                    w.put_bytes(&read.seq);
                    w.put_bytes(&read.qual);
                }
            }
        }
        TAG_STEAL_RESP
    }

    /// Encode to an owned payload: `(TAG_STEAL_RESP, payload)`.
    pub fn encode(&self, seq: u64) -> (u32, Vec<u8>) {
        let mut w = WireWriter::with_capacity(self.wire_bytes());
        let tag = self.encode_into(seq, &mut w);
        (tag, w.finish())
    }

    /// Decode a steal response payload: `(seq, response)`.
    pub fn decode(payload: &[u8]) -> (u64, StealResponse) {
        let mut r = WireReader::new(payload);
        let seq = r.get_u64();
        let chunk = match r.get_u8() {
            0 => None,
            _ => {
                let n = r.get_u32() as usize;
                let mut reads = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = r.get_u64();
                    let seq_bytes = r.get_bytes().to_vec();
                    let qual = r.get_bytes().to_vec();
                    reads.push(Read::from_parts(id, seq_bytes, qual));
                }
                Some(reads)
            }
        };
        (seq, StealResponse { chunk })
    }

    /// Wire size: seq + flag (+ count + per-read id and length-prefixed
    /// sequence/quality bytes), for the cost model.
    pub fn wire_bytes(&self) -> usize {
        match &self.chunk {
            None => 9,
            Some(reads) => 13 + reads.iter().map(|r| 24 + 2 * r.len()).sum::<usize>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_round_trip() {
        for req in [LookupRequest::Kmer(0xABCD), LookupRequest::Tile(1u128 << 90)] {
            let (tag, payload) = req.encode_tagged(99);
            assert_eq!(LookupRequest::decode(tag, &payload), (99, req));
        }
    }

    #[test]
    fn universal_round_trip() {
        for req in [LookupRequest::Kmer(7), LookupRequest::Tile(u128::MAX)] {
            let (tag, payload) = req.encode_universal(u64::MAX);
            assert_eq!(tag, TAG_UNIVERSAL);
            assert_eq!(LookupRequest::decode(tag, &payload), (u64::MAX, req));
        }
    }

    #[test]
    fn universal_messages_are_bigger() {
        let k = LookupRequest::Kmer(1);
        assert_eq!(k.wire_bytes(false), 16);
        assert_eq!(k.wire_bytes(true), 17);
        assert_eq!(k.encode_tagged(0).1.len(), 16);
        assert_eq!(k.encode_universal(0).1.len(), 17);
        let t = LookupRequest::Tile(1);
        assert_eq!(t.encode_tagged(0).1.len(), 24);
        assert_eq!(t.encode_universal(0).1.len(), 25);
    }

    #[test]
    fn response_sentinel() {
        assert_eq!(decode_response(&encode_response(3, Some(42))), (3, Some(42)));
        assert_eq!(decode_response(&encode_response(0, Some(0))), (0, Some(0)));
        assert_eq!(decode_response(&encode_response(7, None)), (7, None));
        assert_eq!(encode_response(0, None).len(), RESPONSE_BYTES);
    }

    #[test]
    fn seq_survives_every_encoding() {
        // the dedup header: whatever seq goes in must come back out
        for seq in [0u64, 1, 0xFFFF_FFFF, u64::MAX] {
            let (t, p) = LookupRequest::Kmer(5).encode_tagged(seq);
            assert_eq!(LookupRequest::decode(t, &p).0, seq);
            let (t, p) = LookupRequest::Tile(5).encode_universal(seq);
            assert_eq!(LookupRequest::decode(t, &p).0, seq);
            assert_eq!(decode_response(&encode_response(seq, Some(1))).0, seq);
            let (_, p) = BatchRequest { kmers: vec![1], tiles: vec![] }.encode(seq);
            assert_eq!(BatchRequest::decode(&p).0, seq);
            let (_, p) = BatchResponse { kmer_counts: vec![1], tile_counts: vec![] }.encode(seq);
            assert_eq!(BatchResponse::decode(&p).0, seq);
        }
    }

    #[test]
    #[should_panic(expected = "not a request tag")]
    fn decode_rejects_bad_tag() {
        let _ = LookupRequest::decode(TAG_RESP, &[0; 16]);
    }

    #[test]
    fn batch_request_round_trip() {
        let req = BatchRequest {
            kmers: vec![0, 1, u64::MAX, 0xDEAD_BEEF],
            tiles: vec![u128::MAX, 1u128 << 100],
        };
        let (tag, payload) = req.encode(11);
        assert_eq!(tag, TAG_BATCH_REQ);
        assert_eq!(payload.len(), req.wire_bytes());
        assert_eq!(BatchRequest::decode(&payload), (11, req.clone()));
        assert_eq!(req.len(), 6);
        assert!(!req.is_empty());
    }

    #[test]
    fn batch_response_round_trip() {
        let resp = BatchResponse { kmer_counts: vec![-1, 0, 42], tile_counts: vec![7, -1] };
        let (tag, payload) = resp.encode(5);
        assert_eq!(tag, TAG_BATCH_RESP);
        assert_eq!(payload.len(), resp.wire_bytes());
        assert_eq!(BatchResponse::decode(&payload), (5, resp));
    }

    #[test]
    fn empty_batch_round_trip() {
        let req = BatchRequest::default();
        assert!(req.is_empty());
        let (_, payload) = req.encode(0);
        assert_eq!(payload.len(), 16, "seq header + two empty length prefixes");
        assert_eq!(BatchRequest::decode(&payload), (0, req));
        let resp = BatchResponse::default();
        let (_, rp) = resp.encode(0);
        assert_eq!(BatchResponse::decode(&rp), (0, resp));
    }

    #[test]
    fn max_batch_is_encodable() {
        let req = BatchRequest { kmers: (0..MAX_BATCH_KEYS as u64).collect(), tiles: vec![] };
        let (_, payload) = req.encode(1);
        assert_eq!(payload.len(), 16 + 8 * MAX_BATCH_KEYS);
        assert_eq!(BatchRequest::decode(&payload).1.kmers.len(), MAX_BATCH_KEYS);
    }

    #[test]
    #[should_panic(expected = "batch exceeds MAX_BATCH_KEYS")]
    fn oversized_batch_rejected() {
        let req = BatchRequest { kmers: vec![0; MAX_BATCH_KEYS], tiles: vec![1] };
        let _ = req.encode(0);
    }

    #[test]
    fn steal_request_and_ack_round_trip() {
        for seq in [0u64, 17, u64::MAX] {
            assert_eq!(decode_steal_request(&encode_steal_request(seq)), seq);
            assert_eq!(decode_steal_ack(&encode_steal_ack(seq)), seq);
        }
        assert_eq!(encode_steal_request(1).len(), 8);
    }

    #[test]
    fn steal_response_round_trip() {
        let chunk = vec![
            Read::new(41, b"ACGTACGT".to_vec(), vec![30; 8]),
            Read::new(42, b"TTTTN".to_vec(), vec![2; 5]),
        ];
        let resp = StealResponse { chunk: Some(chunk) };
        let (tag, payload) = resp.encode(9);
        assert_eq!(tag, TAG_STEAL_RESP);
        assert_eq!(payload.len(), resp.wire_bytes());
        assert_eq!(StealResponse::decode(&payload), (9, resp));
        // empty chunk (victim handing over a zero-read chunk) is distinct
        // from "nothing left"
        let empty = StealResponse { chunk: Some(vec![]) };
        let (_, p) = empty.encode(3);
        assert_eq!(StealResponse::decode(&p), (3, empty));
        let none = StealResponse { chunk: None };
        let (_, p) = none.encode(4);
        assert_eq!(p.len(), none.wire_bytes());
        assert_eq!(StealResponse::decode(&p), (4, none));
    }

    #[test]
    fn steal_tags_are_distinct() {
        let tags = [
            TAG_KMER_REQ,
            TAG_TILE_REQ,
            TAG_UNIVERSAL,
            TAG_RESP,
            TAG_BATCH_REQ,
            TAG_BATCH_RESP,
            TAG_STEAL_REQ,
            TAG_STEAL_RESP,
            TAG_STEAL_ACK,
        ];
        for (i, a) in tags.iter().enumerate() {
            for b in &tags[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn sentinel_helpers() {
        assert_eq!(count_to_wire(None), -1);
        assert_eq!(count_to_wire(Some(0)), 0);
        assert_eq!(wire_to_count(-1), None);
        assert_eq!(wire_to_count(5), Some(5));
        assert_eq!(wire_to_count(count_to_wire(Some(u32::MAX))), Some(u32::MAX));
    }
}
