//! The virtual cluster engine: thousands of logical ranks, modeled time.
//!
//! The threaded engine is the protocol-faithful implementation, but OS
//! threads cap it at a few hundred ranks. The paper's evaluation runs
//! 1024–32768 ranks, so the figures need an engine that executes the
//! *identical logical algorithm* — same owner partitioning, same lookup
//! chain, same corrections — for arbitrary `np`, deterministically, and
//! charges every counted event to a per-rank clock through
//! [`mpisim::CostModel`].
//!
//! The key observation making this sound: during the correction phase the
//! spectra are immutable, so a remote lookup is semantically a pure query
//! against the owner's table. The virtual engine answers it from the
//! global spectrum (which *is* the disjoint union of all owners' tables —
//! asserted by the spectrum tests) while charging the requester the
//! modeled round-trip and counting the request for the owner's service
//! load. Per-rank remote-lookup counts, the quantity the paper's load
//! figures hinge on, come out exactly, not approximately: they are
//! counted while running the real corrector on the rank's real reads.
//!
//! Faults are replayed analytically: each modeled request consults the
//! same seeded per-edge [`FaultPlan`] decisions the threaded engine's
//! message plane applies physically, walks the same retry/backoff state
//! machine, charges the missed-deadline waits to the modeled clock
//! ([`CostModel::retry_wait_ns`]), and degrades keys to the paper's
//! "absent everywhere" answer when the budget runs out. A kill severs
//! the rank's p2p plane both directions, so every lookup it owns (and
//! every lookup it issues) degrades — exactly the threaded semantics.
//!
//! `scale` linearly extrapolates modeled times from a scaled-down dataset
//! to paper-scale counts (per-rank work and traffic are linear in reads
//! per rank; see DESIGN.md §2).

use crate::balance::{
    owner_volume_histogram, select_hot_owners, shuffle_reads_virtual, steal_worth_it,
    sum_histograms,
};
use crate::engine::{EngineConfig, EngineError, RunOutput};
use crate::heuristics::HeuristicConfig;
use crate::owner::OwnerMap;
use crate::protocol::{MAX_BATCH_KEYS, RESPONSE_BYTES};
use crate::report::{LookupStats, RankReport, RunReport};
use crate::snapshot;
use crate::spectrum::BuildStats;
use dnaseq::{FxHashSet, Read};
use mpisim::{CostModel, FaultPlan, TraceLog};
use reptile::spectrum::{KmerSpectrum, LocalSpectra, TileSpectrum};
use reptile::{correct_read, CorrectionStats, Normalized, ReptileParams, SpectrumAccess};

/// Execute the distributed algorithm on `cfg.np` logical ranks.
pub fn run_virtual(cfg: &EngineConfig, reads: &[Read]) -> RunOutput {
    match try_run_virtual(cfg, reads) {
        Ok(out) => out,
        Err(e) => panic!("engine run failed: {e}"),
    }
}

/// Fallible twin of [`run_virtual`]: snapshot save/load failures (and
/// invalid configs) surface as typed [`EngineError`]s instead of panics.
/// Snapshot shards are real files even under this engine — the virtual
/// cluster writes/reads them serially and charges each logical rank the
/// modeled I/O time for its own shard pair.
pub fn try_run_virtual(cfg: &EngineConfig, reads: &[Read]) -> Result<RunOutput, EngineError> {
    cfg.validate()?;
    cfg.params.assert_valid();
    let np = cfg.np;
    let owners = OwnerMap::new(np, &cfg.params);
    let cost = &cfg.cost;
    let smt = cost.smt_factor(cfg.topology.threads_per_node(np));
    let rpn = cfg.topology.ranks_per_node().min(np);
    let deadline_ns = cfg.lookup_deadline.map_or(0.0, |d| d.as_nanos() as f64);

    // --- Step I analog + load balancing ---
    let slices: Vec<Vec<Read>> = (0..np)
        .map(|r| {
            let lo = reads.len() * r / np;
            let hi = reads.len() * (r + 1) / np;
            reads[lo..hi].to_vec()
        })
        .collect();
    let (rank_reads, shuffle_bytes) = if cfg.heuristics.load_balance {
        shuffle_reads_virtual(slices, np)
    } else {
        (slices, vec![0u64; np])
    };

    // --- adaptive balancing: the same skew detection the threaded engine
    // runs, over the identically shuffled reads, so both engines agree on
    // the hot-owner set. Empty = no replication (nothing tripped the gate).
    let hot_owners: Vec<bool> = if cfg.heuristics.hot_shard_k > 0 && np > 1 {
        let per_rank: Vec<Vec<u64>> = rank_reads
            .iter()
            .map(|reads| owner_volume_histogram(reads, &cfg.params, &owners))
            .collect();
        let hot = select_hot_owners(&sum_histograms(&per_rank), cfg.heuristics.hot_shard_k);
        if hot.iter().any(|&h| h) {
            hot
        } else {
            Vec::new()
        }
    } else {
        Vec::new()
    };

    // --- global spectra (the disjoint union of all owners' tables):
    // built from the reads, or reassembled from a snapshot's shards ---
    let (spectra, load_info) = if let Some(dir) = &cfg.load_spectrum {
        let chop = cfg.fault.snapshot_chop.map(|c| (c.rank, c.keep_bytes));
        let loaded = snapshot::load_snapshot_serial(dir, &cfg.params, np, cfg.recovery, chop)?;
        let spectra = LocalSpectra { kmers: loaded.kmers, tiles: loaded.tiles };
        (spectra, Some((loaded.per_rank_bytes, loaded.resharded, loaded.per_rank_repair)))
    } else {
        (LocalSpectra::build(reads, &cfg.params), None)
    };

    // --- snapshot save: real per-owner shard files, modeled write time ---
    let saved_bytes = match &cfg.save_spectrum {
        Some(dir) => Some(snapshot::save_snapshot_serial(
            dir,
            &cfg.params,
            np,
            cfg.parity,
            &spectra.kmers,
            &spectra.tiles,
        )?),
        None => None,
    };
    let snapshotting = load_info.is_some() || saved_bytes.is_some();

    // owned-entry counts per rank, in one pass over the spectra
    let mut owned_kmers = vec![0u64; np];
    for (code, _) in spectra.kmers.iter() {
        owned_kmers[owners.kmer_owner_at(Normalized::assume(code))] += 1;
    }
    let mut owned_tiles = vec![0u64; np];
    for (code, _) in spectra.tiles.iter() {
        owned_tiles[owners.tile_owner_at(Normalized::assume(code))] += 1;
    }

    // hot-shard replica size: ownership is disjoint, so the merged
    // replica every rank holds is exactly the sum of the hot owners'
    // pruned tables (mirrors `spectrum::replicate_hot_shards`)
    let hot_kmer_entries: u64 =
        hot_owners.iter().zip(&owned_kmers).filter(|&(&h, _)| h).map(|(_, &n)| n).sum();
    let hot_tile_entries: u64 =
        hot_owners.iter().zip(&owned_tiles).filter(|&(&h, _)| h).map(|(_, &n)| n).sum();
    // the replication collective: hot owners allgather their entries at
    // the count-exchange wire widths; every rank receives the union
    let hot_allgather_ns = if hot_owners.is_empty() {
        0.0
    } else {
        cost.allgatherv_ns(np, (hot_kmer_entries * 12 + hot_tile_entries * 20) as usize)
    };

    // --- per-rank construction accounting + correction ---
    let kcodec = cfg.params.kmer_codec();
    let tcodec = cfg.params.tile_codec();
    let max_batches = rank_reads
        .iter()
        .map(|r| r.len().div_ceil(cfg.chunk_size).max(1) as u64)
        .max()
        .unwrap_or(1);
    let mut ranks = Vec::with_capacity(np);
    let mut rank_bases = Vec::with_capacity(np);
    let mut corrected_all = Vec::with_capacity(reads.len());
    for (me, mine) in rank_reads.into_iter().enumerate() {
        // construction counters
        let mut build = BuildStats {
            batches: if cfg.heuristics.batch_reads { max_batches } else { 1 },
            ..Default::default()
        };
        let mut nonowned_kmers: FxHashSet<u64> = FxHashSet::default();
        let mut nonowned_tiles: FxHashSet<u128> = FxHashSet::default();
        let mut chunk_start = 0usize;
        while chunk_start < mine.len() || chunk_start == 0 {
            let chunk_end = (chunk_start + cfg.chunk_size).min(mine.len());
            for read in &mine[chunk_start..chunk_end] {
                build.bases_processed += read.len() as u64;
                for (_, code) in kcodec.kmers_of(&read.seq) {
                    build.kmers_extracted += 1;
                    let key = owners.kmer_key(code);
                    if owners.kmer_owner_at(key) != me {
                        build.exchange_occurrences += 1;
                        nonowned_kmers.insert(key.key());
                    }
                }
                for (_, code) in tcodec.tiles_of(&read.seq) {
                    build.tiles_extracted += 1;
                    let key = owners.tile_key(code);
                    if owners.tile_owner_at(key) != me {
                        build.exchange_occurrences += 1;
                        nonowned_tiles.insert(key.key());
                    }
                }
                // True high-water sampling: inside the loop, per read —
                // matching the real engines (a chunk-boundary-only sample
                // can never under-report, but keep the semantics aligned).
                build.peak_reads_kmers = build.peak_reads_kmers.max(nonowned_kmers.len() as u64);
                build.peak_reads_tiles = build.peak_reads_tiles.max(nonowned_tiles.len() as u64);
            }
            if cfg.heuristics.batch_reads {
                // tables shipped + cleared by the per-batch exchange
                count_exchange_volume(&mut build, &nonowned_kmers, &nonowned_tiles);
                nonowned_kmers.clear();
                nonowned_tiles.clear();
            }
            if chunk_end >= mine.len() {
                break;
            }
            chunk_start = chunk_end;
        }
        if !cfg.heuristics.batch_reads {
            // single end-of-build exchange ships the whole reads tables
            count_exchange_volume(&mut build, &nonowned_kmers, &nonowned_tiles);
        }
        if load_info.is_some() {
            // Steps II–III never ran: the scan above only recovered the
            // reads-table key sets (needed for keep_read_tables), so its
            // extraction/exchange counters describe work that was skipped.
            build = BuildStats::default();
        }
        build.owned_kmers = owned_kmers[me];
        build.owned_tiles = owned_tiles[me];
        build.hot_entries = hot_kmer_entries + hot_tile_entries;
        let reads_table_entries = if cfg.heuristics.keep_read_tables {
            (nonowned_kmers.len() + nonowned_tiles.len()) as u64
        } else {
            0
        };
        build.reads_table_entries = reads_table_entries;
        if cfg.heuristics.replicate_kmers {
            build.replicated_entries += spectra.kmers.len() as u64;
        }
        if cfg.heuristics.replicate_tiles {
            build.replicated_entries += spectra.tiles.len() as u64;
        }
        let (group_kmer_entries, group_tile_entries) = if cfg.heuristics.partial_group > 1 {
            let g = cfg.heuristics.partial_group;
            let lo = (me / g) * g;
            let hi = (lo + g).min(np);
            let gk: u64 = owned_kmers[lo..hi].iter().sum();
            let gt: u64 = owned_tiles[lo..hi].iter().sum();
            build.group_entries = gk + gt;
            (gk, gt)
        } else {
            (owned_kmers[me], owned_tiles[me])
        };

        // --- correction (the real corrector, counted lookups) ---
        let probe_extra = if cfg.heuristics.universal { 0.0 } else { cost.probe_ns };
        let mut access = VirtualAccess {
            spectra: &spectra,
            owners: &owners,
            hot_owners: &hot_owners,
            me,
            heur: cfg.heuristics,
            cost: *cost,
            fault: cfg.fault,
            deadline_ns,
            retry_budget: cfg.retry_budget,
            edge_req_seq: vec![0u64; np],
            retry_wait_ns: 0.0,
            own_kmer_keys: if cfg.heuristics.keep_read_tables {
                Some(&nonowned_kmers)
            } else {
                None
            },
            own_tile_keys: if cfg.heuristics.keep_read_tables {
                Some(&nonowned_tiles)
            } else {
                None
            },
            cached_kmers: FxHashSet::default(),
            cached_tiles: FxHashSet::default(),
            degraded_kmers: FxHashSet::default(),
            degraded_tiles: FxHashSet::default(),
            prefetch_kmers: FxHashSet::default(),
            prefetch_tiles: FxHashSet::default(),
            degraded_prefetch_kmers: FxHashSet::default(),
            degraded_prefetch_tiles: FxHashSet::default(),
            batch_comm_ns: 0.0,
            stats: LookupStats::default(),
        };
        let mut correction = CorrectionStats::default();
        let mut corrected = mine;
        if cfg.heuristics.aggregate_lookups {
            for chunk in corrected.chunks_mut(cfg.chunk_size.max(1)) {
                access.prefetch(chunk, &cfg.params, np, rpn, probe_extra);
                for read in chunk.iter_mut() {
                    let outcome = correct_read(read, &mut access, &cfg.params);
                    correction.absorb(&outcome);
                }
            }
        } else {
            for read in corrected.iter_mut() {
                let outcome = correct_read(read, &mut access, &cfg.params);
                correction.absorb(&outcome);
            }
        }
        let lookups = access.stats;
        let retry_wait_ns = access.retry_wait_ns;
        let cached_kmer_entries = access.cached_kmers.len() as u64;
        let cached_tile_entries = access.cached_tiles.len() as u64;

        // --- time model ---
        let construct_ns = if let Some((per_rank_bytes, resharded, per_rank_repair)) = &load_info {
            // a snapshot load replaces the build: each logical rank reads
            // its own shard pair off disk; a repairing load additionally
            // streams the surviving group members and runs the GF(2^8)
            // rebuild; a re-shard load routes every entry through one
            // count-exchange round
            let io = cost.snapshot_io_ns(per_rank_bytes[me]);
            let rep = &per_rank_repair[me];
            let repair_ns = if rep.shards_repaired > 0 {
                cost.rs_repair_ns(rep.survivor_bytes_read, rep.bytes_reconstructed)
            } else {
                0.0
            };
            let reshard =
                if *resharded { cost.alltoallv_ns(np, per_rank_bytes[me] as usize) } else { 0.0 };
            (io + repair_ns + reshard + hot_allgather_ns) * smt
        } else {
            // extraction shards across the build workers; the per-round
            // collective overlaps the next round's extraction (pipelined
            // build), so the makespan is C + (B-1)·max(C,X) + X
            let compute = (build.bases_processed as f64 * cost.per_base_ns
                + (build.kmers_extracted + build.tiles_extracted) as f64 * cost.hash_insert_ns)
                / cfg.build_threads.max(1) as f64;
            // exchanges: each batch round ships the reads tables; bytes
            // approximated by entry counts × wire width
            let exchange_bytes =
                (build.peak_reads_kmers * 12 + build.peak_reads_tiles * 20).max(shuffle_bytes[me]);
            let comm_round = cost.alltoallv_ns(np, exchange_bytes as usize);
            let rounds = build.batches.max(1);
            let total = cost.overlapped_rounds_ns(rounds, compute / rounds as f64, comm_round);
            build.extract_ns = compute as u64;
            build.exchange_ns = (rounds as f64 * comm_round) as u64;
            build.overlap_ns = ((compute + rounds as f64 * comm_round) - total).max(0.0) as u64;
            // Out-of-core build: model the spill plane analytically. The
            // run bodies are this rank's owned entries at the run-file
            // entry widths (12 B k-mer, 20 B tile); spill waves fire
            // every time the accumulators outgrow the trigger (half the
            // budget headroom, mirroring `ooc::OocBuild`), each wave
            // draining both kinds to one run apiece. Runs are written
            // once and read twice (survivor-count pass + stream pass).
            let spill_ns = if let Some(budget) = cfg.memory_budget {
                let fixed = crate::ooc::fixed_floor(&cfg.params);
                let trigger = budget.saturating_sub(fixed).max(2) / 2;
                let body = owned_kmers[me] * 12 + owned_tiles[me] * 20;
                let waves = body.div_ceil(trigger).max(1);
                let runs = 2 * waves;
                let bytes = body + runs * specstore::spill::RUN_HEADER_BYTES as u64;
                build.spill_runs = runs;
                build.spill_bytes = bytes;
                build.ooc_peak_bytes = (fixed + 2 * trigger).min(budget);
                build.merge_ns = cost.spill_io_ns(2 * bytes) as u64;
                cost.spill_io_ns(bytes) + cost.spill_io_ns(2 * bytes)
            } else {
                0.0
            };
            (total + spill_ns + hot_allgather_ns) * smt
        };
        let local_lookups = lookups.local_kmer_lookups + lookups.local_tile_lookups;
        let rank_base_count = corrected.iter().map(|r| r.len() as u64).sum::<u64>();
        rank_bases.push(rank_base_count);
        let compute_ns =
            local_lookups as f64 * cost.hash_lookup_ns + rank_base_count as f64 * cost.per_base_ns;
        // seq-stamped wire sizes: 8-byte header on every request/response
        let kmer_req_bytes = if cfg.heuristics.universal { 17 } else { 16 };
        let tile_req_bytes = if cfg.heuristics.universal { 25 } else { 24 };
        let comm_ns = lookups.remote_kmer_lookups as f64
            * (cost.avg_lookup_roundtrip_ns(kmer_req_bytes, RESPONSE_BYTES, np, rpn) + probe_extra)
            + lookups.remote_tile_lookups as f64
                * (cost.avg_lookup_roundtrip_ns(tile_req_bytes, RESPONSE_BYTES, np, rpn)
                    + probe_extra)
            + access.batch_comm_ns
            + retry_wait_ns;
        let correct_ns = (compute_ns + comm_ns) * smt;

        // Per-table byte model mirroring `RankTables::memory_bytes`: each
        // resident table is priced by the flat-store geometry (smallest
        // power-of-two capacity holding its entries) at its paper-scale
        // entry count. Entry counts scale linearly with dataset size, so
        // paper-scale memory applies the same divisor as the time model
        // *before* the (step-wise) geometry.
        let kmer_bytes =
            |n: u64| KmerSpectrum::bytes_for_entries((n as f64 * cfg.scale) as usize) as u64;
        let tile_bytes =
            |n: u64| TileSpectrum::bytes_for_entries((n as f64 * cfg.scale) as usize) as u64;
        let mut spectrum_bytes = kmer_bytes(owned_kmers[me]) + tile_bytes(owned_tiles[me]);
        if cfg.heuristics.partial_group > 1 {
            // group tables coexist with the owned ones (the comm thread
            // still serves out-of-group requests from hash_kmers)
            spectrum_bytes += kmer_bytes(group_kmer_entries) + tile_bytes(group_tile_entries);
        }
        if cfg.heuristics.keep_read_tables {
            // cache_remote grows the reads tables in place (validate()
            // guarantees keep_read_tables here)
            spectrum_bytes += kmer_bytes(nonowned_kmers.len() as u64 + cached_kmer_entries)
                + tile_bytes(nonowned_tiles.len() as u64 + cached_tile_entries);
        }
        if cfg.heuristics.replicate_kmers {
            spectrum_bytes += kmer_bytes(spectra.kmers.len() as u64);
        }
        if cfg.heuristics.replicate_tiles {
            spectrum_bytes += tile_bytes(spectra.tiles.len() as u64);
        }
        if !hot_owners.is_empty() {
            // every rank holds the merged hot-shard replica
            spectrum_bytes += kmer_bytes(hot_kmer_entries) + tile_bytes(hot_tile_entries);
        }
        let memory = cost.rank_memory_bytes_measured(spectrum_bytes);

        // snapshot accounting: modeled per-rank I/O time over real bytes,
        // with the same phase spans the threaded engine traces
        let snapshot_bytes_read = load_info.as_ref().map_or(0, |(b, _, _)| b[me]);
        let snapshot_bytes_written = saved_bytes.as_ref().map_or(0, |b| b[me]);
        // repair accounting: real reconstruction counters, modeled time
        // (the virtual engine's clock is the cost model, not the wall)
        let repair = load_info.as_ref().map_or_else(Default::default, |(_, _, reps)| {
            let mut rep = reps[me];
            rep.repair_ns = if rep.shards_repaired > 0 {
                (cost.rs_repair_ns(rep.survivor_bytes_read, rep.bytes_reconstructed) * cfg.scale)
                    as u64
            } else {
                0
            };
            rep
        });
        let snapshot_load_secs = if load_info.is_some() {
            cost.snapshot_io_ns(snapshot_bytes_read) * 1e-9 * cfg.scale
        } else {
            0.0
        };
        let snapshot_save_secs = if saved_bytes.is_some() {
            cost.snapshot_io_ns(snapshot_bytes_written) * 1e-9 * cfg.scale
        } else {
            0.0
        };
        let trace = snapshotting.then(|| {
            let mut t = TraceLog::new(me);
            if load_info.is_some() {
                t.phase_start("snapshot-load");
                t.phase_end("snapshot-load");
            }
            if saved_bytes.is_some() {
                t.phase_start("snapshot-save");
                t.phase_end("snapshot-save");
            }
            t
        });

        ranks.push(RankReport {
            rank: me,
            reads_processed: corrected.len() as u64,
            build,
            correction,
            lookups,
            construct_secs: construct_ns * 1e-9 * cfg.scale,
            correct_secs: correct_ns * 1e-9 * cfg.scale,
            comm_secs: comm_ns * smt * 1e-9 * cfg.scale,
            memory_bytes: memory,
            snapshot_bytes_read,
            snapshot_bytes_written,
            snapshot_load_secs,
            snapshot_save_secs,
            repair,
            trace,
        });
        corrected_all.extend(corrected);
    }

    // --- adaptive balancing: read-chunk stealing, modeled ---
    // Same gate as the threaded engine: stealing switches on only when
    // the shuffled chunk loads are imbalanced enough to pay for it.
    if cfg.heuristics.steal_chunks && np > 1 {
        let chunk_unit = cfg.chunk_size.max(1);
        let loads: Vec<u64> = ranks
            .iter()
            .map(|r| (r.reads_processed as usize).div_ceil(chunk_unit) as u64)
            .collect();
        if steal_worth_it(&loads) {
            model_chunk_stealing(&mut ranks, &rank_bases, chunk_unit, cost, rpn, smt, cfg.scale);
        }
    }

    // service load: every remote lookup is served by its owner — attribute
    // served counts by replaying the per-owner tallies
    // (uniform hashing makes these near-uniform; Fig 3's premise)
    distribute_service_counts(&mut ranks, &cfg.fault);

    corrected_all.sort_by_key(|r| r.id);
    Ok(RunOutput {
        corrected: corrected_all,
        report: RunReport { ranks, topology: cfg.topology, cost: *cost },
    })
}

/// Tally one count exchange's shipped volume: the reads tables' distinct
/// entries at the wire-tuple widths the real engines charge.
fn count_exchange_volume(
    build: &mut BuildStats,
    nonowned_kmers: &FxHashSet<u64>,
    nonowned_tiles: &FxHashSet<u128>,
) {
    build.exchange_entries += (nonowned_kmers.len() + nonowned_tiles.len()) as u64;
    build.exchange_bytes += (nonowned_kmers.len() * std::mem::size_of::<(u64, u32)>()
        + nonowned_tiles.len() * std::mem::size_of::<(u128, u32)>())
        as u64;
}

/// Analytic twin of the threaded engine's read-chunk stealing: level the
/// per-rank correction makespans toward the mean by moving whole chunks
/// from the currently slowest rank to the currently fastest, charging the
/// thief each chunk's correction work plus the steal round trip (request
/// plus the chunk's reads on the wire at the `StealResponse` widths). A move
/// only happens while it shrinks the spread — `t_max − t_min` must exceed
/// the chunk's cost — so a balanced run steals nothing, exactly like the
/// threaded protocol where no rank finishes early enough to steal.
///
/// Only modeled time, `chunks_stolen`, and `comm_secs` move;
/// `reads_processed` keeps describing the shuffle assignment (the
/// threaded engine's counter drifts with the actual steals, but which
/// physical rank corrected a read is immaterial to the model's outputs).
#[allow(clippy::too_many_arguments)]
fn model_chunk_stealing(
    ranks: &mut [RankReport],
    rank_bases: &[u64],
    chunk_size: usize,
    cost: &CostModel,
    rpn: usize,
    smt: f64,
    scale: f64,
) {
    let np = ranks.len();
    let mut t: Vec<f64> = ranks.iter().map(|r| r.correct_secs).collect();
    let mut chunks: Vec<u64> =
        ranks.iter().map(|r| (r.reads_processed as usize).div_ceil(chunk_size) as u64).collect();
    // per-chunk correction cost (and its comm share), fixed per donor rank
    let per_chunk: Vec<f64> =
        t.iter().zip(&chunks).map(|(&t, &c)| if c > 0 { t / c as f64 } else { 0.0 }).collect();
    let comm_per_chunk: Vec<f64> = ranks
        .iter()
        .zip(&chunks)
        .map(|(r, &c)| if c > 0 { r.comm_secs / c as f64 } else { 0.0 })
        .collect();
    let steal_rt: Vec<f64> = ranks
        .iter()
        .zip(rank_bases)
        .map(|(r, &bases)| {
            let reads = r.reads_processed.max(1);
            let avg_len = bases / reads;
            let n = (chunk_size as u64).min(reads);
            // StealResponse: seq + flag + count, then id + len-prefixed
            // seq/qual per read (see protocol::StealResponse::wire_bytes)
            let resp_bytes = (13 + n * (24 + 2 * avg_len)) as usize;
            cost.avg_lookup_roundtrip_ns(8, resp_bytes, np, rpn) * smt * 1e-9 * scale
        })
        .collect();
    let mut budget: u64 = chunks.iter().sum();
    while budget > 0 {
        budget -= 1;
        let (vi, _) = match t
            .iter()
            .enumerate()
            .filter(|&(r, _)| chunks[r] > 1)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
        {
            Some(v) => v,
            None => break,
        };
        let (ti, _) = t
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(&b.0)))
            .expect("non-empty ranks");
        let move_cost = per_chunk[vi] + steal_rt[vi];
        if vi == ti || t[vi] - t[ti] <= move_cost {
            break;
        }
        chunks[vi] -= 1;
        chunks[ti] += 1;
        t[vi] -= per_chunk[vi];
        t[ti] += move_cost;
        ranks[ti].lookups.chunks_stolen += 1;
        // the chunk's remote-lookup traffic moves with it, and the thief
        // additionally pays the steal round trip
        ranks[vi].comm_secs = (ranks[vi].comm_secs - comm_per_chunk[vi]).max(0.0);
        ranks[ti].comm_secs += comm_per_chunk[vi] + steal_rt[vi];
    }
    for (r, t) in ranks.iter_mut().zip(t) {
        r.correct_secs = t;
    }
}

/// Spread `requests_served` over ranks proportionally to owned entries —
/// the virtual engine does not track per-owner request targets (that
/// would require per-lookup owner logging); uniform hashing makes the
/// share proportional to spectrum ownership, which Fig 3 shows is uniform
/// to within 1–2%. A killed rank's message plane is severed, so it
/// serves nothing and degraded keys are excluded from the served total.
fn distribute_service_counts(ranks: &mut [RankReport], fault: &FaultPlan) {
    let total_keys: u64 = ranks
        .iter()
        .map(|r| {
            (r.lookups.remote_total() + r.lookups.batched_keys)
                .saturating_sub(r.lookups.keys_degraded)
        })
        .sum();
    let total_batches: u64 = ranks.iter().map(|r| r.lookups.batches_sent).sum();
    let total_owned: u64 = ranks
        .iter()
        .filter(|r| !fault.kills(r.rank))
        .map(|r| r.build.owned_kmers + r.build.owned_tiles)
        .sum();
    if total_owned == 0 {
        return;
    }
    for r in ranks.iter_mut() {
        if fault.kills(r.rank) {
            r.lookups.requests_served = 0;
            r.lookups.batches_served = 0;
            continue;
        }
        let share = (r.build.owned_kmers + r.build.owned_tiles) as f64 / total_owned as f64;
        r.lookups.requests_served = (total_keys as f64 * share).round() as u64;
        r.lookups.batches_served = (total_batches as f64 * share).round() as u64;
    }
}

/// Lookup chain of the virtual engine — mirrors `engine_mt::DistAccess`
/// but answers remote lookups from the global spectrum while counting
/// them as messages and replaying the fault plan's per-edge decisions.
struct VirtualAccess<'a> {
    spectra: &'a LocalSpectra,
    owners: &'a OwnerMap,
    /// Hot-shard replication routing table (empty = no replication):
    /// lookups owned by a flagged rank resolve from the local replica.
    hot_owners: &'a [bool],
    me: usize,
    heur: HeuristicConfig,
    cost: CostModel,
    fault: FaultPlan,
    /// Base lookup deadline in modeled nanoseconds (0 = none).
    deadline_ns: f64,
    retry_budget: u32,
    /// Per-destination count of modeled p2p requests sent by this rank —
    /// the per-edge message index feeding the seeded fault decisions
    /// (mirrors the threaded message plane's per-edge counters).
    edge_req_seq: Vec<u64>,
    /// Modeled nanoseconds spent waiting out missed deadlines.
    retry_wait_ns: f64,
    /// keep_read_tables: the non-owned keys this rank saw in its reads
    /// (global counts are resolved, so hits are local).
    own_kmer_keys: Option<&'a FxHashSet<u64>>,
    own_tile_keys: Option<&'a FxHashSet<u128>>,
    cached_kmers: FxHashSet<u64>,
    cached_tiles: FxHashSet<u128>,
    /// cache_remote under faults: keys whose remote lookup degraded; the
    /// cached answer is the degraded 0, exactly like the threaded engine
    /// caching the absent answer in its reads table.
    degraded_kmers: FxHashSet<u64>,
    degraded_tiles: FxHashSet<u128>,
    /// Aggregate mode: keys whose counts the current chunk's batch round
    /// fetched (counts come from the global spectra either way, so only
    /// membership must be modeled).
    prefetch_kmers: FxHashSet<u64>,
    prefetch_tiles: FxHashSet<u128>,
    /// Keys of the current chunk whose batch exhausted its retry budget:
    /// present in the prefetch cache, but as the degraded 0.
    degraded_prefetch_kmers: FxHashSet<u64>,
    degraded_prefetch_tiles: FxHashSet<u128>,
    /// Modeled nanoseconds spent on batch round trips.
    batch_comm_ns: f64,
    stats: LookupStats,
}

impl VirtualAccess<'_> {
    /// Replay the retry protocol for one modeled request to `owner`:
    /// walk the seeded per-edge fault decisions attempt by attempt,
    /// charging a missed deadline per lost round trip, until an attempt
    /// survives or the budget runs out. Returns `false` when the key
    /// degrades. The fault-free path costs one branch.
    fn simulate_request(&mut self, owner: usize) -> bool {
        if self.fault.is_none() {
            return true;
        }
        let severed = self.fault.severed(self.me, owner) || self.fault.severed(owner, self.me);
        let mut failed = 0u32;
        let mut answered = false;
        for attempt in 0..=self.retry_budget {
            if attempt > 0 {
                self.stats.requests_retried += 1;
            }
            let lost = severed || {
                let n = self.edge_req_seq[owner];
                self.edge_req_seq[owner] += 1;
                let d = self.fault.decide(self.me, owner, n);
                if d.delayed {
                    self.retry_wait_ns += self.fault.delay.as_nanos() as f64;
                }
                d.dropped
            };
            if !lost {
                answered = true;
                break;
            }
            failed += 1;
            self.stats.deadline_misses += 1;
        }
        self.retry_wait_ns += self.cost.retry_wait_ns(self.deadline_ns, failed);
        answered
    }

    /// Whether the lookup chain would resolve this k-mer key without a
    /// message right now (mirrors `kmer_count` up to the remote branch).
    fn kmer_is_local(&self, key: Normalized<u64>) -> bool {
        let owner = self.owners.kmer_owner_at(key);
        let g = self.heur.partial_group;
        let in_group = if g > 1 { owner / g == self.me / g } else { owner == self.me };
        self.heur.replicate_kmers
            || in_group
            || self.hot_owners.get(owner) == Some(&true)
            || self.own_kmer_keys.is_some_and(|keys| keys.contains(&key.key()))
            || (self.heur.cache_remote && self.cached_kmers.contains(&key.key()))
    }

    /// Tile twin of [`Self::kmer_is_local`].
    fn tile_is_local(&self, key: Normalized<u128>) -> bool {
        let owner = self.owners.tile_owner_at(key);
        let g = self.heur.partial_group;
        let in_group = if g > 1 { owner / g == self.me / g } else { owner == self.me };
        self.heur.replicate_tiles
            || in_group
            || self.hot_owners.get(owner) == Some(&true)
            || self.own_tile_keys.is_some_and(|keys| keys.contains(&key.key()))
            || (self.heur.cache_remote && self.cached_tiles.contains(&key.key()))
    }

    /// Modeled counterpart of `engine_mt`'s batched prefetch: enumerate
    /// the chunk's keys, keep the remote-destined ones, fill the prefetch
    /// sets, and charge one vectorized round trip per owner (split at
    /// [`MAX_BATCH_KEYS`], same peel order as the threaded engine). A
    /// batch that exhausts its retry budget degrades its exact key list.
    fn prefetch(
        &mut self,
        reads: &[Read],
        params: &ReptileParams,
        np: usize,
        rpn: usize,
        probe_extra: f64,
    ) {
        self.prefetch_kmers.clear();
        self.prefetch_tiles.clear();
        self.degraded_prefetch_kmers.clear();
        self.degraded_prefetch_tiles.clear();
        let keys = reptile::prefetch_keys(reads, params);
        let mut per_owner_k: Vec<Vec<u64>> = vec![Vec::new(); np];
        let mut per_owner_t: Vec<Vec<u128>> = vec![Vec::new(); np];
        for &k in &keys.kmers {
            let key = Normalized::assume(k);
            if !self.kmer_is_local(key) {
                per_owner_k[self.owners.kmer_owner_at(key)].push(k);
                self.prefetch_kmers.insert(k);
            }
        }
        for &tl in &keys.tiles {
            let key = Normalized::assume(tl);
            if !self.tile_is_local(key) {
                per_owner_t[self.owners.tile_owner_at(key)].push(tl);
                self.prefetch_tiles.insert(tl);
            }
        }
        for owner in 0..np {
            let (nk, nt) = (per_owner_k[owner].len(), per_owner_t[owner].len());
            let (mut off_k, mut off_t) = (0usize, 0usize);
            while off_k < nk || off_t < nt {
                let take_k = (nk - off_k).min(MAX_BATCH_KEYS);
                let take_t = (nt - off_t).min(MAX_BATCH_KEYS - take_k);
                let req_bytes = 16 + 8 * take_k + 16 * take_t;
                let resp_bytes = 16 + 8 * (take_k + take_t);
                self.batch_comm_ns +=
                    self.cost.avg_lookup_roundtrip_ns(req_bytes, resp_bytes, np, rpn) + probe_extra;
                self.stats.batches_sent += 1;
                self.stats.batched_keys += (take_k + take_t) as u64;
                self.stats.remote_messages += 1;
                if !self.simulate_request(owner) {
                    for &k in &per_owner_k[owner][off_k..off_k + take_k] {
                        self.degraded_prefetch_kmers.insert(k);
                    }
                    for &tl in &per_owner_t[owner][off_t..off_t + take_t] {
                        self.degraded_prefetch_tiles.insert(tl);
                    }
                    self.stats.keys_degraded += (take_k + take_t) as u64;
                }
                off_k += take_k;
                off_t += take_t;
            }
        }
    }
}

impl SpectrumAccess for VirtualAccess<'_> {
    fn kmer_count(&mut self, code: u64) -> u32 {
        let key = self.owners.kmer_key(code);
        let count = self.spectra.kmers.count_at(key);
        let owner = self.owners.kmer_owner_at(key);
        let g = self.heur.partial_group;
        let in_group = if g > 1 { owner / g == self.me / g } else { owner == self.me };
        if self.heur.replicate_kmers || in_group {
            self.stats.local_kmer_lookups += 1;
            return count;
        }
        if self.hot_owners.get(owner) == Some(&true) {
            // hot-shard replica: the same count a remote request returns
            self.stats.local_kmer_lookups += 1;
            self.stats.hot_shard_hits += 1;
            return count;
        }
        if let Some(keys) = self.own_kmer_keys {
            if keys.contains(&key.key()) {
                self.stats.local_kmer_lookups += 1;
                self.stats.cache_hits += 1;
                return count;
            }
        }
        if self.heur.cache_remote && self.cached_kmers.contains(&key.key()) {
            self.stats.local_kmer_lookups += 1;
            self.stats.cache_hits += 1;
            return if self.degraded_kmers.contains(&key.key()) { 0 } else { count };
        }
        if self.prefetch_kmers.contains(&key.key()) {
            self.stats.local_kmer_lookups += 1;
            self.stats.prefetch_hits += 1;
            return if self.degraded_prefetch_kmers.contains(&key.key()) { 0 } else { count };
        }
        self.stats.remote_kmer_lookups += 1;
        self.stats.remote_messages += 1;
        if !self.simulate_request(owner) {
            self.stats.keys_degraded += 1;
            if self.heur.cache_remote {
                self.cached_kmers.insert(key.key());
                self.degraded_kmers.insert(key.key());
                self.stats.cached_answers += 1;
            }
            return 0;
        }
        if count == 0 {
            self.stats.remote_kmer_misses += 1;
        }
        if self.heur.cache_remote {
            self.cached_kmers.insert(key.key());
            self.stats.cached_answers += 1;
        }
        count
    }

    fn tile_count(&mut self, code: u128) -> u32 {
        let key = self.owners.tile_key(code);
        let count = self.spectra.tiles.count_at(key);
        let owner = self.owners.tile_owner_at(key);
        let g = self.heur.partial_group;
        let in_group = if g > 1 { owner / g == self.me / g } else { owner == self.me };
        if self.heur.replicate_tiles || in_group {
            self.stats.local_tile_lookups += 1;
            return count;
        }
        if self.hot_owners.get(owner) == Some(&true) {
            self.stats.local_tile_lookups += 1;
            self.stats.hot_shard_hits += 1;
            return count;
        }
        if let Some(keys) = self.own_tile_keys {
            if keys.contains(&key.key()) {
                self.stats.local_tile_lookups += 1;
                self.stats.cache_hits += 1;
                return count;
            }
        }
        if self.heur.cache_remote && self.cached_tiles.contains(&key.key()) {
            self.stats.local_tile_lookups += 1;
            self.stats.cache_hits += 1;
            return if self.degraded_tiles.contains(&key.key()) { 0 } else { count };
        }
        if self.prefetch_tiles.contains(&key.key()) {
            self.stats.local_tile_lookups += 1;
            self.stats.prefetch_hits += 1;
            return if self.degraded_prefetch_tiles.contains(&key.key()) { 0 } else { count };
        }
        self.stats.remote_tile_lookups += 1;
        self.stats.remote_messages += 1;
        if !self.simulate_request(owner) {
            self.stats.keys_degraded += 1;
            if self.heur.cache_remote {
                self.cached_tiles.insert(key.key());
                self.degraded_tiles.insert(key.key());
                self.stats.cached_answers += 1;
            }
            return 0;
        }
        if count == 0 {
            self.stats.remote_tile_misses += 1;
        }
        if self.heur.cache_remote {
            self.cached_tiles.insert(key.key());
            self.stats.cached_answers += 1;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::Topology;
    use reptile::correct_dataset;
    use std::time::Duration;

    fn params() -> ReptileParams {
        ReptileParams { k: 6, tile_overlap: 3, ..ReptileParams::for_tests() }
    }

    fn cfg(np: usize) -> EngineConfig {
        EngineConfig::virtual_cluster(np, params())
    }

    fn dataset(n: usize) -> Vec<Read> {
        // non-repetitive genome (mixed bases) so k-mers are position-specific
        let genome: Vec<u8> = (0..3000)
            .map(|i| [b'A', b'C', b'G', b'T'][(dnaseq::mix64(i as u64) % 4) as usize])
            .collect();
        let mut reads = Vec::new();
        for i in 0..n {
            let start = (i * 13) % (genome.len() - 40);
            let mut seq = genome[start..start + 40].to_vec();
            let mut qual = vec![35u8; 40];
            if i % 3 == 0 {
                let pos = 5 + (i % 30);
                seq[pos] = match seq[pos] {
                    b'A' => b'C',
                    b'C' => b'G',
                    b'G' => b'T',
                    _ => b'A',
                };
                qual[pos] = 6;
            }
            reads.push(Read::new(i as u64 + 1, seq, qual));
        }
        reads
    }

    #[test]
    fn matches_sequential_output() {
        let reads = dataset(80);
        let (seq_out, _) = correct_dataset(&reads, &params());
        for np in [1usize, 2, 16, 257] {
            let run = run_virtual(&cfg(np), &reads);
            assert_eq!(run.corrected, seq_out, "np={np}");
        }
    }

    #[test]
    fn matches_sequential_under_heuristics() {
        let reads = dataset(60);
        let (seq_out, _) = correct_dataset(&reads, &params());
        let matrix = [
            HeuristicConfig { universal: true, ..Default::default() },
            HeuristicConfig { keep_read_tables: true, ..Default::default() },
            HeuristicConfig { keep_read_tables: true, cache_remote: true, ..Default::default() },
            HeuristicConfig::replicate_both(),
            HeuristicConfig { batch_reads: true, ..Default::default() },
            HeuristicConfig::paper_production(),
            HeuristicConfig { load_balance: false, ..Default::default() },
            HeuristicConfig { aggregate_lookups: true, ..Default::default() },
            HeuristicConfig { aggregate_lookups: true, universal: true, ..Default::default() },
            HeuristicConfig { aggregate_lookups: true, batch_reads: true, ..Default::default() },
            HeuristicConfig {
                aggregate_lookups: true,
                keep_read_tables: true,
                cache_remote: true,
                ..Default::default()
            },
        ];
        for heur in matrix {
            let mut c = cfg(13);
            c.heuristics = heur;
            c.chunk_size = 5;
            let run = run_virtual(&c, &reads);
            assert_eq!(run.corrected, seq_out, "heur={}", heur.label());
        }
    }

    #[test]
    fn more_ranks_less_time() {
        // stay in the strong-scaling regime: >= ~100 reads per rank
        let reads = dataset(2000);
        let t_small = run_virtual(&cfg(4), &reads).report.makespan_secs();
        let t_large = run_virtual(&cfg(16), &reads).report.makespan_secs();
        assert!(t_large < t_small, "strong scaling must reduce makespan: {t_small} -> {t_large}");
    }

    #[test]
    fn replication_trades_memory_for_time() {
        let reads = dataset(200);
        let base = run_virtual(&cfg(16), &reads);
        let mut c = cfg(16);
        c.heuristics = HeuristicConfig::replicate_both();
        let repl = run_virtual(&c, &reads);
        assert!(repl.report.correct_secs() < base.report.correct_secs());
        assert!(repl.report.peak_memory_bytes() > base.report.peak_memory_bytes());
        assert_eq!(repl.report.ranks.iter().map(|r| r.lookups.remote_total()).sum::<u64>(), 0);
    }

    #[test]
    fn universal_mode_is_faster() {
        let reads = dataset(200);
        let base = run_virtual(&cfg(16), &reads);
        let mut c = cfg(16);
        c.heuristics.universal = true;
        let uni = run_virtual(&c, &reads);
        assert!(uni.report.correct_secs() < base.report.correct_secs());
        // same memory
        assert!((uni.report.peak_memory_bytes() - base.report.peak_memory_bytes()).abs() < 1.0);
    }

    #[test]
    fn scale_multiplies_times_linearly() {
        let reads = dataset(100);
        let one = run_virtual(&cfg(8), &reads);
        let mut c = cfg(8);
        c.scale = 100.0;
        let hundred = run_virtual(&c, &reads);
        let ratio = hundred.report.makespan_secs() / one.report.makespan_secs();
        assert!((ratio - 100.0).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    fn smt_oversubscription_slows_ranks_per_node_32() {
        let reads = dataset(200);
        let mut cfg8 = cfg(128);
        cfg8.topology = Topology::new(8);
        let mut cfg32 = cfg(128);
        cfg32.topology = Topology::new(32);
        let t8 = run_virtual(&cfg8, &reads).report.makespan_secs();
        let t32 = run_virtual(&cfg32, &reads).report.makespan_secs();
        assert!(t32 > t8, "Fig 2: 32 ranks/node slower than 8 ({t8} vs {t32})");
    }

    #[test]
    fn partial_replication_trades_memory_for_messages() {
        let reads = dataset(200);
        let mut prev_remote = u64::MAX;
        let mut prev_mem = 0.0f64;
        for g in [1usize, 2, 4, 8, 16] {
            let mut c = cfg(16);
            c.heuristics.partial_group = g;
            let run = run_virtual(&c, &reads);
            let remote: u64 = run.report.ranks.iter().map(|r| r.lookups.remote_total()).sum();
            let mem = run.report.peak_memory_bytes();
            assert!(remote <= prev_remote, "g={g}: remote lookups must not grow");
            assert!(mem >= prev_mem, "g={g}: memory must not shrink");
            prev_remote = remote;
            prev_mem = mem;
        }
        // g == np behaves like full replication: zero messages
        assert_eq!(prev_remote, 0, "group covering all ranks removes all messages");
    }

    #[test]
    fn partial_replication_output_matches_sequential() {
        let reads = dataset(80);
        let (seq_out, _) = reptile::correct_dataset(&reads, &params());
        for g in [2usize, 5] {
            let mut c = cfg(12);
            c.heuristics.partial_group = g;
            let run = run_virtual(&c, &reads);
            assert_eq!(run.corrected, seq_out, "g={g}");
        }
    }

    #[test]
    fn aggregation_cuts_modeled_messages_and_comm_time() {
        let reads = dataset(200);
        let base = run_virtual(&cfg(16), &reads);
        let mut c = cfg(16);
        c.heuristics.aggregate_lookups = true;
        let agg = run_virtual(&c, &reads);
        assert_eq!(agg.corrected, base.corrected, "aggregation must not change output");
        let msgs = |run: &RunOutput| -> u64 {
            run.report.ranks.iter().map(|r| r.lookups.remote_messages).sum()
        };
        let (base_msgs, agg_msgs) = (msgs(&base), msgs(&agg));
        assert!(agg_msgs > 0);
        assert!(
            base_msgs >= 5 * agg_msgs,
            "modeled message cut >= 5x (base {base_msgs}, agg {agg_msgs})"
        );
        let comm = |run: &RunOutput| -> f64 { run.report.ranks.iter().map(|r| r.comm_secs).sum() };
        assert!(
            comm(&agg) < comm(&base),
            "fewer round trips must lower modeled comm time ({} vs {})",
            comm(&agg),
            comm(&base)
        );
        let hits: u64 = agg.report.ranks.iter().map(|r| r.lookups.prefetch_hits).sum();
        assert!(hits > 0, "prefetch cache must serve lookups");
        let batches: u64 = agg.report.ranks.iter().map(|r| r.lookups.batches_sent).sum();
        let served: u64 = agg.report.ranks.iter().map(|r| r.lookups.batches_served).sum();
        assert!(batches > 0);
        assert!(served > 0, "service shares must attribute batches to owners");
    }

    #[test]
    fn overlap_and_threads_shrink_modeled_build_time() {
        let reads = dataset(300);
        let mut batched = cfg(8);
        batched.chunk_size = 10;
        batched.heuristics.batch_reads = true;
        let b = run_virtual(&batched, &reads);
        // the pipelined batch build must report a positive overlap window
        assert!(b.report.ranks.iter().any(|r| r.build.overlap_ns > 0));
        for r in &b.report.ranks {
            // hidden time can never exceed either pipeline side
            assert!(r.build.overlap_ns <= r.build.extract_ns.min(r.build.exchange_ns) + 1);
            assert!(r.build.exchange_entries > 0);
            assert!(r.build.exchange_entries <= r.build.exchange_occurrences);
        }
        // quadrupling the build workers must cut modeled construction time
        let mut threaded = batched;
        threaded.build_threads = 4;
        let t = run_virtual(&threaded, &reads);
        let sum = |run: &RunOutput| run.report.ranks.iter().map(|r| r.construct_secs).sum::<f64>();
        assert!(sum(&t) < sum(&b), "more build threads must shrink modeled build time");
    }

    #[test]
    fn batch_mode_shrinks_peak_reads_tables() {
        let reads = dataset(300);
        let mut base = cfg(8);
        base.chunk_size = 10;
        let mut batch = base.clone();
        batch.heuristics.batch_reads = true;
        let b = run_virtual(&batch, &reads);
        let u = run_virtual(&base, &reads);
        let peak_b: u64 = b.report.ranks.iter().map(|r| r.build.peak_reads_kmers).max().unwrap();
        let peak_u: u64 = u.report.ranks.iter().map(|r| r.build.peak_reads_kmers).max().unwrap();
        assert!(peak_b < peak_u, "batching must shrink the reads table ({peak_b} vs {peak_u})");
    }

    /// Repeat-heavy dataset: half the reads are one homopolymer repeat
    /// (identical sequence — same shuffle owner, same few hot keys), the
    /// other half diverse background. This is simultaneously the skew
    /// shape for hot-shard detection (lookup volume funnels to the
    /// repeat keys' owners) and for stealing (all repeat reads land on
    /// one rank after the ownership shuffle).
    fn skewed_dataset(n: usize) -> Vec<Read> {
        let genome: Vec<u8> = (0..3000)
            .map(|i| [b'A', b'C', b'G', b'T'][(dnaseq::mix64(i as u64 + 7) % 4) as usize])
            .collect();
        (0..n)
            .map(|i| {
                let seq: Vec<u8> = if i % 2 == 0 {
                    vec![b'A'; 40]
                } else {
                    let start = (i * 17) % (genome.len() - 40);
                    genome[start..start + 40].to_vec()
                };
                Read::new(i as u64 + 1, seq, vec![35; 40])
            })
            .collect()
    }

    #[test]
    fn hot_shard_replication_cuts_remote_lookups_not_output() {
        let reads = skewed_dataset(300);
        let (seq_out, _) = correct_dataset(&reads, &params());
        let base = run_virtual(&cfg(8), &reads);
        assert_eq!(base.corrected, seq_out);
        let mut c = cfg(8);
        c.heuristics.hot_shard_k = 2;
        let adaptive = run_virtual(&c, &reads);
        assert_eq!(adaptive.corrected, seq_out, "replication must not change output");
        assert!(adaptive.report.hot_shard_hits() > 0, "hot replicas must serve lookups");
        assert!(
            adaptive.report.remote_lookups() < base.report.remote_lookups(),
            "hot-shard hits must replace remote lookups ({} vs {})",
            adaptive.report.remote_lookups(),
            base.report.remote_lookups()
        );
        assert!(
            adaptive.report.peak_memory_bytes() > base.report.peak_memory_bytes(),
            "the replica costs memory"
        );
    }

    #[test]
    fn uniform_workload_replicates_nothing() {
        let reads = dataset(200);
        let base = run_virtual(&cfg(8), &reads);
        let mut c = cfg(8);
        c.heuristics.hot_shard_k = 4;
        let run = run_virtual(&c, &reads);
        assert_eq!(run.corrected, base.corrected);
        assert_eq!(run.report.hot_shard_hits(), 0, "no owner should trip the 1.5x gate");
        assert!(
            (run.report.peak_memory_bytes() - base.report.peak_memory_bytes()).abs() < 1.0,
            "an untripped gate must cost nothing"
        );
    }

    #[test]
    fn chunk_stealing_levels_stragglers() {
        let reads = skewed_dataset(400);
        let (seq_out, _) = correct_dataset(&reads, &params());
        let mut base = cfg(8);
        base.chunk_size = 10;
        let b = run_virtual(&base, &reads);
        let mut c = base.clone();
        c.heuristics.steal_chunks = true;
        let s = run_virtual(&c, &reads);
        assert_eq!(s.corrected, seq_out, "stealing must not change output");
        assert!(s.report.chunks_stolen() > 0, "the skewed assignment must trigger steals");
        assert!(
            s.report.straggler_spread() < b.report.straggler_spread(),
            "stealing must shrink the spread ({} vs {})",
            s.report.straggler_spread(),
            b.report.straggler_spread()
        );
        assert!(
            s.report.makespan_secs() < b.report.makespan_secs(),
            "leveling the stragglers must shrink the modeled makespan"
        );
    }

    /// Benign faults (dup/reorder, nothing lost) leave the modeled run
    /// byte-identical to the fault-free one — including all counters.
    #[test]
    fn benign_faults_change_nothing() {
        let reads = dataset(80);
        let clean = run_virtual(&cfg(8), &reads);
        let mut c = cfg(8);
        c.fault = FaultPlan::parse("seed=5,dup=0.3,reorder=0.4").unwrap();
        let faulted = run_virtual(&c, &reads);
        assert_eq!(faulted.corrected, clean.corrected);
        for (a, b) in faulted.report.ranks.iter().zip(&clean.report.ranks) {
            assert_eq!(a.lookups.keys_degraded, 0);
            assert_eq!(a.lookups.remote_total(), b.lookups.remote_total());
        }
    }

    /// Lossy faults with a generous budget: output identical, retries
    /// and deadline misses counted, modeled comm time strictly larger.
    #[test]
    fn retries_mask_drops_in_the_model() {
        let reads = dataset(80);
        let clean = run_virtual(&cfg(8), &reads);
        let mut c = cfg(8);
        c.fault = FaultPlan::parse("seed=9,drop=0.2").unwrap();
        c.lookup_deadline = Some(Duration::from_micros(50));
        c.retry_budget = 30;
        let faulted = run_virtual(&c, &reads);
        assert_eq!(faulted.corrected, clean.corrected, "retries must mask drops");
        let retried: u64 = faulted.report.ranks.iter().map(|r| r.lookups.requests_retried).sum();
        let missed: u64 = faulted.report.ranks.iter().map(|r| r.lookups.deadline_misses).sum();
        let degraded: u64 = faulted.report.ranks.iter().map(|r| r.lookups.keys_degraded).sum();
        assert!(retried > 0 && missed > 0, "drop=0.2 must cost retries");
        assert_eq!(degraded, 0, "budget 30 must outlast drop=0.2");
        let comm = |run: &RunOutput| -> f64 { run.report.ranks.iter().map(|r| r.comm_secs).sum() };
        assert!(comm(&faulted) > comm(&clean), "deadline waits must show up in modeled time");
    }

    /// A killed owner degrades every key it owns; the run completes and
    /// the killed rank serves nothing.
    #[test]
    fn killed_rank_degrades_its_keys() {
        let reads = dataset(80);
        let mut c = cfg(8);
        c.fault = FaultPlan::parse("seed=1,kill=3").unwrap();
        c.lookup_deadline = Some(Duration::from_micros(50));
        c.retry_budget = 2;
        let run = run_virtual(&c, &reads);
        assert_eq!(run.corrected.len(), reads.len());
        let degraded: u64 = run.report.ranks.iter().map(|r| r.lookups.keys_degraded).sum();
        assert!(degraded > 0, "keys owned by the killed rank must degrade");
        assert_eq!(run.report.ranks[3].lookups.requests_served, 0);
    }
}
