//! The prior-art parallelization: replicated spectra + dynamic
//! master–worker scheduling (Shah et al. IPDPS'12, Jammula et al.
//! HiPC'15 — the approaches §II-B contrasts with).
//!
//! "Previous approaches to parallelize Reptile have either replicated
//! k-mer and tile spectrum on each process or on each node ... A dynamic
//! work allocation scheme that depends upon a global master which
//! coordinates the entire work allocation mechanism ... The actual error
//! correction is performed by worker threads ... who fetch chunks of
//! sequences from the work-queue."
//!
//! Two realizations:
//!
//! * [`run_prior_art`] — on the threaded runtime: every rank holds the
//!   full spectra (allgathered); rank 0 runs a master thread handing out
//!   chunk indices on demand; workers request, correct, repeat. No
//!   correction-phase spectrum messages (everything is local), but the
//!   full-spectrum memory footprint the paper set out to eliminate.
//! * [`run_prior_art_virtual`] — the modeled counterpart: per-chunk
//!   costs measured by running the real corrector, then greedy
//!   list-scheduling onto `np` ranks (what dynamic self-scheduling
//!   converges to), plus a master round-trip charge per chunk.
//!
//! Comparing these against the paper's engine (`figures -- prior-art`)
//! reproduces the motivation table: the prior art wins on time at small
//! scale and loses the memory war as datasets grow.

use crate::heuristics::HeuristicConfig;
use crate::report::{LookupStats, RankReport, RunReport};
use crate::spectrum::build_distributed_serial;
use dnaseq::Read;
use mpisim::message::{WireReader, WireWriter};
use mpisim::{CostModel, Source, TagSel, Topology, Universe};
use reptile::spectrum::LocalSpectra;
use reptile::{correct_read, CorrectionStats, ReptileParams, SpectrumAccess};
use std::time::Instant;

/// Tag: worker asks the global master for a chunk.
const TAG_WORK_REQ: u32 = 0x20;
/// Tag: master's reply (chunk index, or the NONE sentinel).
const TAG_WORK_ASSIGN: u32 = 0x21;
/// Sentinel meaning "queue drained, stop".
const WORK_NONE: u64 = u64::MAX;

/// Configuration for a prior-art run.
#[derive(Clone, Copy, Debug)]
pub struct PriorArtConfig {
    /// Number of ranks (each holding the full spectra).
    pub np: usize,
    /// Node layout.
    pub topology: Topology,
    /// Reads per work-queue chunk.
    pub chunk_size: usize,
    /// Corrector parameters.
    pub params: ReptileParams,
}

impl PriorArtConfig {
    /// Defaults mirroring [`crate::EngineConfig::new`].
    pub fn new(np: usize, params: ReptileParams) -> PriorArtConfig {
        PriorArtConfig { np, topology: Topology::single_node(), chunk_size: 200, params }
    }
}

/// Run the replicated + dynamic-master pipeline on real threads.
pub fn run_prior_art(cfg: &PriorArtConfig, reads: &[Read]) -> crate::RunOutput {
    cfg.params.assert_valid();
    let np = cfg.np;
    let n_chunks = reads.len().div_ceil(cfg.chunk_size);
    let universe = Universe::with_topology(np, cfg.topology);
    let per_rank: Vec<(Vec<Read>, RankReport)> = universe.run(|comm| {
        let me = comm.rank();
        let t0 = Instant::now();
        // --- replicate the spectra on every rank (allgather) ---
        let lo = reads.len() * me / np;
        let hi = reads.len() * (me + 1) / np;
        let heur = HeuristicConfig {
            replicate_kmers: true,
            replicate_tiles: true,
            load_balance: false,
            ..HeuristicConfig::default()
        };
        // Prior art keeps the faithful serial build (it models the
        // original Reptile program, not this paper's pipeline).
        let (tables, build_stats) =
            build_distributed_serial(comm, &reads[lo..hi], cfg.chunk_size, &cfg.params, &heur);
        let mut spectra = LocalSpectra {
            kmers: tables.replicated_kmers.expect("replication requested"),
            tiles: tables.replicated_tiles.expect("replication requested"),
        };
        comm.barrier();
        let construct_secs = t0.elapsed().as_secs_f64();

        // --- dynamic correction: master thread on rank 0 ---
        let t1 = Instant::now();
        let mut corrected: Vec<Read> = Vec::new();
        let mut correction = CorrectionStats::default();
        let mut lookups = LookupStats::default();
        std::thread::scope(|s| {
            let master = if me == 0 {
                Some(s.spawn(|| {
                    let mut next = 0u64;
                    let mut stopped = 0usize;
                    while stopped < np {
                        let req = comm.recv(Source::Any, TagSel::Tag(TAG_WORK_REQ));
                        let assignment = if next < n_chunks as u64 {
                            let a = next;
                            next += 1;
                            a
                        } else {
                            stopped += 1;
                            WORK_NONE
                        };
                        let mut w = WireWriter::with_capacity(8);
                        w.put_u64(assignment);
                        comm.send(req.src, TAG_WORK_ASSIGN, w.finish());
                    }
                }))
            } else {
                None
            };
            // worker loop (every rank, including the master's rank)
            loop {
                comm.send(0, TAG_WORK_REQ, Vec::new());
                let resp = comm.recv(Source::Rank(0), TagSel::Tag(TAG_WORK_ASSIGN));
                let chunk = WireReader::new(&resp.payload).get_u64();
                if chunk == WORK_NONE {
                    break;
                }
                let lo = chunk as usize * cfg.chunk_size;
                let hi = (lo + cfg.chunk_size).min(reads.len());
                for read in &reads[lo..hi] {
                    let mut read = read.clone();
                    let outcome = correct_read(
                        &mut read,
                        &mut CountingLocal { spectra: &mut spectra, lookups: &mut lookups },
                        &cfg.params,
                    );
                    correction.absorb(&outcome);
                    corrected.push(read);
                }
            }
            if let Some(m) = master {
                m.join().expect("master thread panicked");
            }
        });
        let correct_secs = t1.elapsed().as_secs_f64();
        comm.barrier();
        let cost = CostModel::bgq();
        let report = RankReport {
            rank: me,
            reads_processed: corrected.len() as u64,
            build: build_stats,
            correction,
            lookups,
            construct_secs,
            correct_secs,
            comm_secs: 0.0,
            memory_bytes: cost
                .rank_memory_bytes(spectra.kmers.len() as u64, spectra.tiles.len() as u64),
            ..Default::default()
        };
        (corrected, report)
    });
    let mut corrected = Vec::new();
    let mut ranks = Vec::with_capacity(np);
    for (mine, report) in per_rank {
        corrected.extend(mine);
        ranks.push(report);
    }
    corrected.sort_by_key(|r| r.id);
    crate::RunOutput {
        corrected,
        report: RunReport { ranks, topology: cfg.topology, cost: CostModel::bgq() },
    }
}

/// Local-lookup adapter that counts lookups into [`LookupStats`].
struct CountingLocal<'a> {
    spectra: &'a mut LocalSpectra,
    lookups: &'a mut LookupStats,
}

impl SpectrumAccess for CountingLocal<'_> {
    fn kmer_count(&mut self, code: u64) -> u32 {
        self.lookups.local_kmer_lookups += 1;
        self.spectra.kmer_count(code)
    }

    fn tile_count(&mut self, code: u128) -> u32 {
        self.lookups.local_tile_lookups += 1;
        self.spectra.tile_count(code)
    }
}

/// Modeled prior-art run: per-chunk costs from the real corrector,
/// greedy list scheduling (what a dynamic master converges to), zero
/// lookup messages, full-spectrum memory, one master round-trip per
/// chunk. `scale` as in [`crate::EngineConfig`].
pub fn run_prior_art_virtual(
    cfg: &PriorArtConfig,
    reads: &[Read],
    cost: &CostModel,
    scale: f64,
) -> RunReport {
    cfg.params.assert_valid();
    let np = cfg.np;
    let spectra = LocalSpectra::build(reads, &cfg.params);
    let smt = cost.smt_factor(cfg.topology.threads_per_node(np));

    // measure per-chunk compute cost with the real corrector
    let n_chunks = reads.len().div_ceil(cfg.chunk_size);
    let mut chunk_cost_ns = vec![0f64; n_chunks.max(1)];
    let mut chunk_stats: Vec<(CorrectionStats, LookupStats)> =
        vec![(CorrectionStats::default(), LookupStats::default()); n_chunks.max(1)];
    let mut work = spectra.clone();
    for (c, chunk) in reads.chunks(cfg.chunk_size.max(1)).enumerate() {
        let mut lookups = LookupStats::default();
        let mut correction = CorrectionStats::default();
        let mut bases = 0u64;
        for read in chunk {
            bases += read.len() as u64;
            let mut read = read.clone();
            let outcome = correct_read(
                &mut read,
                &mut CountingLocal { spectra: &mut work, lookups: &mut lookups },
                &cfg.params,
            );
            correction.absorb(&outcome);
        }
        let local = lookups.local_kmer_lookups + lookups.local_tile_lookups;
        chunk_cost_ns[c] = local as f64 * cost.hash_lookup_ns + bases as f64 * cost.per_base_ns;
        chunk_stats[c] = (correction, lookups);
    }

    // greedy list scheduling: each chunk goes to the earliest-free rank
    // (+ master round trip per fetch)
    let master_rt = 2.0 * cost.net_latency_ns + cost.request_service_ns;
    let mut rank_clock = vec![0f64; np];
    let mut rank_correction = vec![CorrectionStats::default(); np];
    let mut rank_lookups = vec![LookupStats::default(); np];
    let mut rank_reads = vec![0u64; np];
    for c in 0..n_chunks {
        let rank =
            (0..np).min_by(|&a, &b| rank_clock[a].total_cmp(&rank_clock[b])).expect("np >= 1");
        rank_clock[rank] += chunk_cost_ns[c] + master_rt;
        rank_correction[rank].merge(&chunk_stats[c].0);
        rank_lookups[rank].merge(&chunk_stats[c].1);
        rank_reads[rank] +=
            reads.len().min((c + 1) * cfg.chunk_size).saturating_sub(c * cfg.chunk_size) as u64;
    }

    let full_k = spectra.kmers.len() as u64;
    let full_t = spectra.tiles.len() as u64;
    let ranks = (0..np)
        .map(|r| RankReport {
            rank: r,
            reads_processed: rank_reads[r],
            build: Default::default(),
            correction: rank_correction[r],
            lookups: rank_lookups[r],
            construct_secs: 0.0,
            correct_secs: rank_clock[r] * smt * 1e-9 * scale,
            comm_secs: 0.0,
            memory_bytes: cost
                .rank_memory_bytes((full_k as f64 * scale) as u64, (full_t as f64 * scale) as u64),
            ..Default::default()
        })
        .collect();
    RunReport { ranks, topology: cfg.topology, cost: *cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reptile::correct_dataset;

    fn params() -> ReptileParams {
        ReptileParams {
            k: 6,
            tile_overlap: 3,
            kmer_threshold: 2,
            tile_threshold: 2,
            ..ReptileParams::default()
        }
    }

    fn dataset(n: usize) -> Vec<Read> {
        let genome: Vec<u8> = (0..3000)
            .map(|i| [b'A', b'C', b'G', b'T'][(dnaseq::mix64(i as u64) % 4) as usize])
            .collect();
        let mut reads = Vec::new();
        for i in 0..n {
            let start = (i * 13) % (genome.len() - 40);
            let mut seq = genome[start..start + 40].to_vec();
            let mut qual = vec![35u8; 40];
            if i % 3 == 0 {
                let pos = 5 + (i % 30);
                seq[pos] = match seq[pos] {
                    b'A' => b'C',
                    b'C' => b'G',
                    b'G' => b'T',
                    _ => b'A',
                };
                qual[pos] = 6;
            }
            reads.push(Read::new(i as u64 + 1, seq, qual));
        }
        reads
    }

    #[test]
    fn prior_art_matches_sequential() {
        let reads = dataset(120);
        let p = params();
        let (seq, seq_stats) = correct_dataset(&reads, &p);
        for np in [1usize, 2, 4] {
            let mut cfg = PriorArtConfig::new(np, p);
            cfg.chunk_size = 7;
            let out = run_prior_art(&cfg, &reads);
            assert_eq!(out.corrected, seq, "np={np}");
            assert_eq!(out.report.errors_corrected(), seq_stats.errors_corrected);
        }
    }

    #[test]
    fn every_read_processed_exactly_once() {
        let reads = dataset(101);
        let mut cfg = PriorArtConfig::new(3, params());
        cfg.chunk_size = 10;
        let out = run_prior_art(&cfg, &reads);
        assert_eq!(out.corrected.len(), reads.len());
        let total: u64 = out.report.ranks.iter().map(|r| r.reads_processed).sum();
        assert_eq!(total, reads.len() as u64);
        // no spectrum messages in the replicated mode
        for r in &out.report.ranks {
            assert_eq!(r.lookups.remote_total(), 0);
        }
    }

    #[test]
    fn virtual_prior_art_is_balanced_and_memory_heavy() {
        let reads = dataset(400);
        let p = params();
        let cost = CostModel::bgq();
        let cfg = PriorArtConfig { chunk_size: 10, ..PriorArtConfig::new(8, p) };
        let report = run_prior_art_virtual(&cfg, &reads, &cost, 1.0);
        // greedy scheduling keeps ranks within one chunk of each other
        let max = report.correct_secs();
        let mean = report.correct_secs_mean();
        assert!(max <= mean * 1.5 + 1e-9, "dynamic scheduling balances: {max} vs {mean}");
        // memory equals the full spectra on every rank
        let dist =
            crate::engine_virtual::run_virtual(&crate::EngineConfig::virtual_cluster(8, p), &reads);
        assert!(
            report.peak_memory_bytes() >= dist.report.peak_memory_bytes(),
            "replication must cost at least as much memory"
        );
        // and no communication time
        assert!(report.ranks.iter().all(|r| r.comm_secs == 0.0));
    }

    #[test]
    fn virtual_prior_art_faster_but_fatter_than_distributed() {
        let reads = dataset(600);
        let p = params();
        let cost = CostModel::bgq();
        let np = 16;
        let pa = run_prior_art_virtual(
            &PriorArtConfig { chunk_size: 20, ..PriorArtConfig::new(np, p) },
            &reads,
            &cost,
            1.0,
        );
        let dist = crate::engine_virtual::run_virtual(
            &crate::EngineConfig::virtual_cluster(np, p),
            &reads,
        );
        assert!(
            pa.correct_secs() < dist.report.correct_secs(),
            "no lookup messages -> faster correction ({} vs {})",
            pa.correct_secs(),
            dist.report.correct_secs()
        );
    }

    #[test]
    fn single_rank_prior_art() {
        let reads = dataset(30);
        let cfg = PriorArtConfig::new(1, params());
        let out = run_prior_art(&cfg, &reads);
        assert_eq!(out.corrected.len(), 30);
    }
}
