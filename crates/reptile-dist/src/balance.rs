//! Static load balancing through randomization (paper §III-A).
//!
//! "Since the reads in the file are divided up into chunks amongst the
//! ranks, this leads to certain ranks having considerably more erroneous
//! sequences ... a sequence is designated to be owned by a rank p if
//! hashFunction(seq) % np == p ... The sequences are then placed in
//! separate buckets corresponding to the owning ranks. Subsequently, a
//! collective communication MPI_Alltoallv is performed; each rank then
//! processes the sequences for which they are the owning rank. This
//! hashing of sequences has the same effect as the 'randomization' of the
//! file might have."

use dnaseq::Read;
use mpisim::Comm;

/// Bucket reads by their owning rank (pure helper; used by both engines).
pub fn bucket_reads_by_owner(reads: Vec<Read>, np: usize) -> Vec<Vec<Read>> {
    let mut buckets: Vec<Vec<Read>> = (0..np).map(|_| Vec::new()).collect();
    for read in reads {
        let owner = read.owner(np);
        buckets[owner].push(read);
    }
    buckets
}

/// Exchange one batch of reads so every rank ends up with exactly the
/// reads it owns. Returns this rank's owned reads from the batch, sorted
/// by sequence number (deterministic processing order regardless of which
/// rank read them from the file).
pub fn shuffle_reads(comm: &Comm, batch: Vec<Read>) -> Vec<Read> {
    let buckets = bucket_reads_by_owner(batch, comm.size());
    let received = comm.alltoallv(buckets);
    let mut mine: Vec<Read> = received.into_iter().flatten().collect();
    mine.sort_by_key(|r| r.id);
    mine
}

/// Serialized shuffle for the virtual engine: given every rank's batch,
/// produce every rank's owned reads (same result as [`shuffle_reads`] on
/// the threaded runtime) plus the per-rank sent-byte counts for the cost
/// model.
pub fn shuffle_reads_virtual(batches: Vec<Vec<Read>>, np: usize) -> (Vec<Vec<Read>>, Vec<u64>) {
    let mut out: Vec<Vec<Read>> = (0..np).map(|_| Vec::new()).collect();
    let mut sent_bytes = vec![0u64; np];
    for (src, batch) in batches.into_iter().enumerate() {
        for read in batch {
            let owner = read.owner(np);
            if owner != src {
                // sequence + qualities + id on the wire
                sent_bytes[src] += (2 * read.len() + 8) as u64;
            }
            out[owner].push(read);
        }
    }
    for mine in &mut out {
        mine.sort_by_key(|r| r.id);
    }
    (out, sent_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::Universe;

    fn make_reads(n: usize) -> Vec<Read> {
        (0..n)
            .map(|i| {
                let seq: Vec<u8> =
                    (0..20).map(|j| [b'A', b'C', b'G', b'T'][(i * 3 + j) % 4]).collect();
                Read::new(i as u64 + 1, seq, vec![30; 20])
            })
            .collect()
    }

    #[test]
    fn buckets_partition_reads() {
        let reads = make_reads(50);
        let np = 7;
        let buckets = bucket_reads_by_owner(reads.clone(), np);
        assert_eq!(buckets.len(), np);
        let total: usize = buckets.iter().map(|b| b.len()).sum();
        assert_eq!(total, 50);
        for (rank, bucket) in buckets.iter().enumerate() {
            for r in bucket {
                assert_eq!(r.owner(np), rank);
            }
        }
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let reads = make_reads(60);
        let np = 4;
        let reads_ref = &reads;
        let results = Universe::new(np).run(move |comm| {
            // rank r starts with a contiguous slice — the file layout
            let per = reads_ref.len() / np;
            let lo = comm.rank() * per;
            let hi = if comm.rank() == np - 1 { reads_ref.len() } else { lo + per };
            shuffle_reads(comm, reads_ref[lo..hi].to_vec())
        });
        let mut all: Vec<Read> = results.into_iter().flatten().collect();
        all.sort_by_key(|r| r.id);
        assert_eq!(all, reads);
    }

    #[test]
    fn shuffle_is_deterministic_in_start_layout() {
        // The owned set per rank depends only on content, not on which
        // rank held a read initially.
        let reads = make_reads(40);
        let np = 4;
        let reads_ref = &reads;
        let layout_a = Universe::new(np).run(move |comm| {
            let per = reads_ref.len() / np;
            let lo = comm.rank() * per;
            shuffle_reads(comm, reads_ref[lo..lo + per].to_vec())
        });
        let layout_b = Universe::new(np).run(move |comm| {
            // interleaved initial layout
            let mine: Vec<Read> = reads_ref
                .iter()
                .enumerate()
                .filter(|(i, _)| i % np == comm.rank())
                .map(|(_, r)| r.clone())
                .collect();
            shuffle_reads(comm, mine)
        });
        assert_eq!(layout_a, layout_b);
    }

    #[test]
    fn virtual_shuffle_matches_threaded() {
        let reads = make_reads(60);
        let np = 5;
        let per = reads.len() / np;
        let batches: Vec<Vec<Read>> = (0..np)
            .map(|r| {
                let lo = r * per;
                let hi = if r == np - 1 { reads.len() } else { lo + per };
                reads[lo..hi].to_vec()
            })
            .collect();
        let (virt, sent) = shuffle_reads_virtual(batches.clone(), np);
        let reads_ref = &batches;
        let threaded =
            Universe::new(np).run(move |comm| shuffle_reads(comm, reads_ref[comm.rank()].clone()));
        assert_eq!(virt, threaded);
        // some traffic must have moved unless the hash magically matched
        assert!(sent.iter().sum::<u64>() > 0);
    }

    #[test]
    fn empty_batches_are_fine() {
        let np = 3;
        let results = Universe::new(np).run(move |comm| shuffle_reads(comm, Vec::new()));
        assert!(results.into_iter().all(|v| v.is_empty()));
    }
}
