//! Load balancing: the paper's static randomization (§III-A) plus the
//! skew-detection half of the adaptive balancing layer.
//!
//! "Since the reads in the file are divided up into chunks amongst the
//! ranks, this leads to certain ranks having considerably more erroneous
//! sequences ... a sequence is designated to be owned by a rank p if
//! hashFunction(seq) % np == p ... The sequences are then placed in
//! separate buckets corresponding to the owning ranks. Subsequently, a
//! collective communication MPI_Alltoallv is performed; each rank then
//! processes the sequences for which they are the owning rank. This
//! hashing of sequences has the same effect as the 'randomization' of the
//! file might have."
//!
//! Static randomization balances *read counts* but not *lookup traffic*:
//! on repeat-heavy genomes a handful of spectrum owners absorb most Step
//! IV lookups no matter how evenly the reads are spread. The
//! [`owner_volume_histogram`] / [`select_hot_owners`] pair detects that
//! skew from the reads' own k-mer/tile occurrence stream, so the
//! engines can replicate just the hot shard groups (see
//! `HeuristicConfig::hot_shard_k`) and steal read chunks from stragglers
//! (`steal_chunks`).

use crate::owner::OwnerMap;
use dnaseq::Read;
use mpisim::Comm;
use reptile::ReptileParams;

/// Reusable per-owner bucket scratch for the shuffle. The `alltoallv`
/// hands bucket ownership to the peers, so the vectors themselves cannot
/// survive a batch — what *is* reusable is the sizing knowledge: each
/// batch's per-owner counts become the next batch's pre-allocation
/// hints, so steady-state batches fill their buckets without a single
/// growth reallocation.
pub struct ReadBuckets {
    np: usize,
    /// Per-owner bucket length of the previous batch.
    hint: Vec<usize>,
}

impl ReadBuckets {
    /// Scratch for `np` owner ranks.
    pub fn new(np: usize) -> ReadBuckets {
        ReadBuckets { np, hint: vec![0; np] }
    }

    /// Distribute `reads` into per-owner buckets. Buckets are pre-sized
    /// to the larger of the previous batch's count and the fair share
    /// (+25% hash-variance slack), so pushes don't reallocate.
    pub fn bucket(&mut self, reads: Vec<Read>) -> Vec<Vec<Read>> {
        let fair = reads.len() / self.np;
        let default_cap = fair + fair / 4 + 1;
        let mut buckets: Vec<Vec<Read>> =
            self.hint.iter().map(|&h| Vec::with_capacity(h.max(default_cap))).collect();
        for read in reads {
            let owner = read.owner(self.np);
            buckets[owner].push(read);
        }
        for (h, b) in self.hint.iter_mut().zip(&buckets) {
            *h = b.len();
        }
        buckets
    }
}

/// Bucket reads by their owning rank (pure helper; used by both engines).
pub fn bucket_reads_by_owner(reads: Vec<Read>, np: usize) -> Vec<Vec<Read>> {
    ReadBuckets::new(np).bucket(reads)
}

/// Exchange one batch of reads so every rank ends up with exactly the
/// reads it owns. Returns this rank's owned reads from the batch, sorted
/// by sequence number (deterministic processing order regardless of which
/// rank read them from the file).
pub fn shuffle_reads(comm: &Comm, batch: Vec<Read>) -> Vec<Read> {
    shuffle_reads_with(comm, batch, &mut ReadBuckets::new(comm.size()))
}

/// [`shuffle_reads`] with caller-owned bucket scratch, for batch-mode
/// loops that shuffle many chunks back to back.
pub fn shuffle_reads_with(comm: &Comm, batch: Vec<Read>, scratch: &mut ReadBuckets) -> Vec<Read> {
    let received = comm.alltoallv(scratch.bucket(batch));
    let mut mine: Vec<Read> = received.into_iter().flatten().collect();
    mine.sort_unstable_by_key(|r| r.id);
    mine
}

/// Serialized shuffle for the virtual engine: given every rank's batch,
/// produce every rank's owned reads (same result as [`shuffle_reads`] on
/// the threaded runtime) plus the per-rank sent-byte counts for the cost
/// model.
pub fn shuffle_reads_virtual(batches: Vec<Vec<Read>>, np: usize) -> (Vec<Vec<Read>>, Vec<u64>) {
    let mut out: Vec<Vec<Read>> = (0..np).map(|_| Vec::new()).collect();
    let mut sent_bytes = vec![0u64; np];
    for (src, batch) in batches.into_iter().enumerate() {
        // Tally moved reads/bases and convert to wire bytes once per
        // batch (sequence + qualities + id per moved read) instead of
        // doing the arithmetic per read.
        let mut moved_reads = 0u64;
        let mut moved_bases = 0u64;
        for read in batch {
            let owner = read.owner(np);
            if owner != src {
                moved_reads += 1;
                moved_bases += read.len() as u64;
            }
            out[owner].push(read);
        }
        sent_bytes[src] += 2 * moved_bases + 8 * moved_reads;
    }
    for mine in &mut out {
        mine.sort_unstable_by_key(|r| r.id);
    }
    (out, sent_bytes)
}

// ------------------------------------------------------ skew detection

/// Skew gate for hot-shard replication: an owner qualifies as *hot* only
/// when its sampled lookup volume exceeds this multiple of the fair
/// (uniform) per-rank share. On a balanced workload nothing trips the
/// gate, so `hot_shard_k > 0` replicates nothing and costs nothing.
pub const HOT_SHARD_MIN_LOAD: f64 = 1.5;

/// Reads sampled per rank for the owner-volume histogram. The histogram
/// only has to rank `np` owners, so a bounded prefix is plenty; capping
/// keeps detection cost independent of dataset size.
pub const HISTOGRAM_SAMPLE_READS: usize = 4096;

/// Per-owner lookup-volume histogram, sampled from (a bounded prefix of)
/// this rank's reads. Counts the *backbone* keys — every k-mer and tile
/// occurrence the corrector's verification pass looks up — and leaves
/// out the speculative mutation-neighbor candidates the prefetch also
/// enumerates: those are near-uniform by hash construction, so folding
/// them in would only dilute the signal. Occurrences are counted raw —
/// *not* deduplicated — because the skew of a repeat-heavy genome lives
/// exactly in how often the same few keys recur.
///
/// Both engines call this on identically shuffled reads, so after an
/// elementwise sum across ranks ([`sum_histograms`]) every rank — and
/// both engines — agree on the same global histogram and therefore the
/// same hot-owner set.
pub fn owner_volume_histogram(
    reads: &[Read],
    params: &ReptileParams,
    owners: &OwnerMap,
) -> Vec<u64> {
    let mut hist = vec![0u64; owners.np()];
    let sample = &reads[..reads.len().min(HISTOGRAM_SAMPLE_READS)];
    let kcodec = params.kmer_codec();
    let tcodec = params.tile_codec();
    for read in sample {
        for (_, code) in kcodec.kmers_of(&read.seq) {
            hist[owners.kmer_owner_at(owners.kmer_key(code))] += 1;
        }
        for (_, code) in tcodec.tiles_of(&read.seq) {
            hist[owners.tile_owner_at(owners.tile_key(code))] += 1;
        }
    }
    hist
}

/// Elementwise sum of every rank's histogram into the global one.
pub fn sum_histograms(per_rank: &[Vec<u64>]) -> Vec<u64> {
    let np = per_rank.first().map_or(0, |h| h.len());
    let mut global = vec![0u64; np];
    for h in per_rank {
        for (g, &v) in global.iter_mut().zip(h) {
            *g += v;
        }
    }
    global
}

/// Deterministically pick the at-most-`k` hottest owners from the global
/// histogram: owners above the [`HOT_SHARD_MIN_LOAD`] skew gate, ranked
/// by volume (ties broken by rank id). Returns a per-rank hot flag.
pub fn select_hot_owners(global: &[u64], k: usize) -> Vec<bool> {
    let np = global.len();
    let mut hot = vec![false; np];
    if k == 0 || np <= 1 {
        return hot;
    }
    let total: u64 = global.iter().sum();
    if total == 0 {
        return hot;
    }
    let gate = total as f64 / np as f64 * HOT_SHARD_MIN_LOAD;
    let mut candidates: Vec<(u64, usize)> = global
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v as f64 > gate)
        .map(|(i, &v)| (v, i))
        .collect();
    candidates.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in candidates.iter().take(k) {
        hot[i] = true;
    }
    hot
}

/// Skew gate for chunk stealing: stealing engages only when the most
/// loaded rank holds more than this multiple of the mean per-rank chunk
/// count. Below it the steal traffic (request/response roundtrips plus
/// queue contention) buys back less than it costs, so a balanced shuffle
/// runs exactly the static protocol.
pub const STEAL_IMBALANCE_MIN: f64 = 1.25;

/// Decide — identically on every rank, from the allgathered per-rank
/// chunk counts — whether chunk stealing is worth switching on for this
/// run. See [`STEAL_IMBALANCE_MIN`].
pub fn steal_worth_it(chunk_loads: &[u64]) -> bool {
    if chunk_loads.len() <= 1 {
        return false;
    }
    let total: u64 = chunk_loads.iter().sum();
    if total == 0 {
        return false;
    }
    let mean = total as f64 / chunk_loads.len() as f64;
    let max = *chunk_loads.iter().max().expect("non-empty") as f64;
    max > mean * STEAL_IMBALANCE_MIN
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::Universe;

    fn make_reads(n: usize) -> Vec<Read> {
        (0..n)
            .map(|i| {
                let seq: Vec<u8> =
                    (0..20).map(|j| [b'A', b'C', b'G', b'T'][(i * 3 + j) % 4]).collect();
                Read::new(i as u64 + 1, seq, vec![30; 20])
            })
            .collect()
    }

    #[test]
    fn buckets_partition_reads() {
        let reads = make_reads(50);
        let np = 7;
        let buckets = bucket_reads_by_owner(reads.clone(), np);
        assert_eq!(buckets.len(), np);
        let total: usize = buckets.iter().map(|b| b.len()).sum();
        assert_eq!(total, 50);
        for (rank, bucket) in buckets.iter().enumerate() {
            for r in bucket {
                assert_eq!(r.owner(np), rank);
            }
        }
    }

    #[test]
    fn reused_buckets_match_fresh_and_learn_sizes() {
        let np = 5;
        let mut scratch = ReadBuckets::new(np);
        for round in 0..3 {
            let reads = make_reads(40 + round * 20);
            let reused = scratch.bucket(reads.clone());
            let fresh = bucket_reads_by_owner(reads, np);
            assert_eq!(reused, fresh);
            for (h, b) in scratch.hint.iter().zip(&reused) {
                assert_eq!(*h, b.len(), "hints must track the last batch");
            }
        }
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let reads = make_reads(60);
        let np = 4;
        let reads_ref = &reads;
        let results = Universe::new(np).run(move |comm| {
            // rank r starts with a contiguous slice — the file layout
            let per = reads_ref.len() / np;
            let lo = comm.rank() * per;
            let hi = if comm.rank() == np - 1 { reads_ref.len() } else { lo + per };
            shuffle_reads(comm, reads_ref[lo..hi].to_vec())
        });
        let mut all: Vec<Read> = results.into_iter().flatten().collect();
        all.sort_by_key(|r| r.id);
        assert_eq!(all, reads);
    }

    #[test]
    fn shuffle_is_deterministic_in_start_layout() {
        // The owned set per rank depends only on content, not on which
        // rank held a read initially.
        let reads = make_reads(40);
        let np = 4;
        let reads_ref = &reads;
        let layout_a = Universe::new(np).run(move |comm| {
            let per = reads_ref.len() / np;
            let lo = comm.rank() * per;
            shuffle_reads(comm, reads_ref[lo..lo + per].to_vec())
        });
        let layout_b = Universe::new(np).run(move |comm| {
            // interleaved initial layout, reused scratch as the batch
            // loops in the engines use it
            let mut scratch = ReadBuckets::new(np);
            let mine: Vec<Read> = reads_ref
                .iter()
                .enumerate()
                .filter(|(i, _)| i % np == comm.rank())
                .map(|(_, r)| r.clone())
                .collect();
            shuffle_reads_with(comm, mine, &mut scratch)
        });
        assert_eq!(layout_a, layout_b);
    }

    #[test]
    fn virtual_shuffle_matches_threaded() {
        let reads = make_reads(60);
        let np = 5;
        let per = reads.len() / np;
        let batches: Vec<Vec<Read>> = (0..np)
            .map(|r| {
                let lo = r * per;
                let hi = if r == np - 1 { reads.len() } else { lo + per };
                reads[lo..hi].to_vec()
            })
            .collect();
        let (virt, sent) = shuffle_reads_virtual(batches.clone(), np);
        let reads_ref = &batches;
        let threaded =
            Universe::new(np).run(move |comm| shuffle_reads(comm, reads_ref[comm.rank()].clone()));
        assert_eq!(virt, threaded);
        // some traffic must have moved unless the hash magically matched
        assert!(sent.iter().sum::<u64>() > 0);
        // the batched byte tally equals the per-read formula it replaced
        let mut expect = vec![0u64; np];
        for (src, batch) in batches.iter().enumerate() {
            for read in batch {
                if read.owner(np) != src {
                    expect[src] += (2 * read.len() + 8) as u64;
                }
            }
        }
        assert_eq!(sent, expect);
    }

    #[test]
    fn empty_batches_are_fine() {
        let np = 3;
        let results = Universe::new(np).run(move |comm| shuffle_reads(comm, Vec::new()));
        assert!(results.into_iter().all(|v| v.is_empty()));
    }

    // -------------------------------------------------- skew detection

    fn detect_params() -> ReptileParams {
        ReptileParams {
            k: 8,
            tile_overlap: 4,
            kmer_threshold: 2,
            tile_threshold: 2,
            ..ReptileParams::for_tests()
        }
    }

    /// A repeat-heavy workload: three quarters of the reads are one
    /// homopolymer run (a single distinct k-mer and tile — the extreme
    /// repeat), the rest diverse background. All the repeat volume
    /// lands on the one or two owners of those keys, which is exactly
    /// the skew shape a repeat-dense genome produces.
    fn repeat_reads(n: usize) -> Vec<Read> {
        (0..n)
            .map(|i| {
                let seq: Vec<u8> = if i % 4 != 0 {
                    vec![b'A'; 36]
                } else {
                    (0..36)
                        .map(|j| {
                            [b'A', b'C', b'G', b'T']
                                [(dnaseq::mix64((i * 36 + j) as u64) % 4) as usize]
                        })
                        .collect()
                };
                Read::new(i as u64 + 1, seq, vec![35; 36])
            })
            .collect()
    }

    #[test]
    fn histogram_is_deterministic_and_counts_volume() {
        let params = detect_params();
        let owners = OwnerMap::new(4, &params);
        let reads = repeat_reads(200);
        let a = owner_volume_histogram(&reads, &params, &owners);
        let b = owner_volume_histogram(&reads, &params, &owners);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(a.iter().sum::<u64>() > 0);
        // doubling the reads (within the sample cap) doubles the volume
        let twice = owner_volume_histogram(&repeat_reads(400), &params, &owners);
        assert_eq!(twice.iter().sum::<u64>(), 2 * a.iter().sum::<u64>());
    }

    #[test]
    fn repeat_heavy_reads_trip_the_skew_gate() {
        let params = detect_params();
        let owners = OwnerMap::new(8, &params);
        let hist = owner_volume_histogram(&repeat_reads(300), &params, &owners);
        // the homopolymer repeat funnels 3/4 of all key occurrences to
        // the owner(s) of a single k-mer/tile — far above fair share
        let hot = select_hot_owners(&hist, 8);
        assert!(hot.iter().any(|&h| h), "repeat workload must produce hot owners: {hist:?}");
        // K caps the set
        let hot1 = select_hot_owners(&hist, 1);
        assert_eq!(hot1.iter().filter(|&&h| h).count(), 1);
        // the K=1 pick is the global argmax (first on ties)
        let max = hist.iter().copied().max().unwrap();
        let argmax = hist.iter().position(|&v| v == max).unwrap();
        assert!(hot1[argmax]);
    }

    #[test]
    fn uniform_volume_stays_cold() {
        // A flat histogram has no owner above the 1.5× gate.
        let hist = vec![100u64; 6];
        assert!(select_hot_owners(&hist, 6).iter().all(|&h| !h));
        // k=0 disables detection outright
        let skewed = vec![1000u64, 1, 1, 1];
        assert!(select_hot_owners(&skewed, 0).iter().all(|&h| !h));
        // single rank: nothing is remote, nothing to replicate
        assert_eq!(select_hot_owners(&[42], 4), vec![false]);
        // empty histogram (no lookups at all) selects nothing
        assert!(select_hot_owners(&[0, 0, 0], 2).iter().all(|&h| !h));
    }

    #[test]
    fn sum_histograms_is_elementwise() {
        let global = sum_histograms(&[vec![1, 2, 3], vec![10, 20, 30], vec![0, 0, 1]]);
        assert_eq!(global, vec![11, 22, 34]);
        assert!(sum_histograms(&[]).is_empty());
    }

    #[test]
    fn steal_gate_opens_only_on_load_imbalance() {
        // balanced loads (and shuffle-level jitter) stay static
        assert!(!steal_worth_it(&[40, 40, 40, 40]));
        assert!(!steal_worth_it(&[38, 41, 40, 42]));
        // a rank holding >1.25x the mean trips the gate
        assert!(steal_worth_it(&[200, 40, 40, 40]));
        // degenerate shapes never steal
        assert!(!steal_worth_it(&[]));
        assert!(!steal_worth_it(&[100]));
        assert!(!steal_worth_it(&[0, 0, 0]));
    }
}
