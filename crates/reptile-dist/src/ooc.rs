//! Out-of-core spectrum construction: the `MemoryBudget`-driven build
//! mode (ROADMAP item 5, RECKONER/KMC-style external-memory counting).
//!
//! The in-memory build's working set peaks when `CountAcc::finalize`
//! materializes every distinct pre-prune key at once. With a
//! [`memory budget`](crate::EngineConfig::memory_budget) set, the build
//! instead watches the accumulators' resident bytes between batches and,
//! when they trip the spill threshold, drains them into sorted
//! [`specstore::spill`] run files — pre-prune, so no information is
//! lost. After the last exchange the runs (plus one final drain) are
//! k-way merged by a loser-tree [`RunMerger`] with streaming
//! saturating-count folding and prune-on-merge, and the survivors flow
//! straight into the flat tables' streaming sorted bulk load — the full
//! distinct-key vector never exists in memory.
//!
//! **Bit-identity.** Saturating addition of non-negative counts is
//! associative and commutative, so per-run saturated counts folded at
//! merge time equal the single-accumulator tally; the same threshold is
//! applied (at merge instead of `retain`), and the table is reserved
//! for the same survivor count, so capacity, `len`, contents, and
//! `memory_bytes` all match the unbudgeted build exactly. The proptest
//! matrix in `tests/ooc_build.rs` enforces this across budgets, rank
//! counts, and engines.
//!
//! **Budget accounting.** The accounted set is everything this mode
//! controls: the fixed floor (direct-count arrays, which *are* the
//! aggregation and cannot spill, plus the two bounded spill buffers),
//! the accumulators' resident bytes, transient drained-entry vectors
//! while a spill is writing, and — during the merge — the per-run
//! reader buffers, the stream chunk, and the growing tables.
//! [`BuildStats::ooc_peak_bytes`] reports the high-water mark;
//! `ooc_bench` proves it stays under the budget while the output
//! matches. Read buffers, reads themselves, and replication heuristics
//! are outside the accounted set (the reads side streams through
//! `genio`'s bounded readers).
//!
//! The trigger arithmetic that keeps the peak under the budget: the
//! exchange drain absorbs incoming runs in
//! [`ABSORB_CHUNK_ENTRIES`]-entry sub-chunks with a spill check after
//! each, so pending entry bytes at spill time never exceed
//! `trigger + one chunk`; the trigger sits at a *quarter* of the
//! headroom (`budget - fixed_floor`) because a drain transiently holds
//! both the raw buffers (capacity ≤ 2× pending) and the drained entry
//! vector — `2 × (headroom/4 + chunk) ≤ headroom` as long as a chunk
//! fits in a quarter of the headroom, which [`min_budget`]'s minimum
//! room guarantees by construction. The merge is budget-scaled the
//! same way: the per-run reader buffers share at most a quarter of the
//! headroom (clamped to the run format's 4 KiB floor), the bulk-load
//! stream chunk takes at most another quarter, and the final drains
//! release the accumulators' retained raw-buffer capacities first —
//! half the headroom is left for the tables being built.
//!
//! Direct-strategy kinds are exempt from all of it: their fixed-size
//! count array (inside [`fixed_floor`]) *is* the aggregation, so
//! spilling it would shrink nothing — the finish streams the
//! already-sorted array straight into the flat table with a
//! chunk-bounded transient and zero IO. Only buffered kinds write run
//! files.
//!
//! [`RunMerger`]: specstore::spill::RunMerger
//! [`BuildStats::ooc_peak_bytes`]: crate::spectrum::BuildStats::ooc_peak_bytes

use std::path::PathBuf;
use std::time::Instant;

use reptile::flat::{FlatKmerTable, FlatTileTable};
use reptile::spectrum::{KmerSpectrum, TileSpectrum};
use reptile::ReptileParams;
use specstore::spill::{
    write_run, RunMerger, RunReader, SpillError, SpillKey, DEFAULT_SPILL_BUF_BYTES,
    MIN_SPILL_BUF_BYTES,
};

use crate::counts::{direct_array_bytes, CountAcc};
use crate::spectrum::BuildStats;

/// Entries per chunk of the merge→table stream (bounded scratch, small
/// next to any realistic budget: 4096 × 12 B = 48 KB for k-mers).
/// Budgeted merges scale this down toward
/// [`MIN_STREAM_CHUNK_ENTRIES`] when the headroom is tight.
pub const STREAM_CHUNK_ENTRIES: usize = 4096;

/// Floor for the budget-scaled merge stream chunk: small enough that
/// even the tightest legal headroom fits it (256 × 32 B = 8 KiB for
/// tiles), big enough that the per-chunk bulk-load overhead stays
/// amortized.
const MIN_STREAM_CHUNK_ENTRIES: usize = 256;

/// Entries the exchange drain absorbs between spill checks when a
/// budget is set. Bounds the pending-byte overshoot past the trigger to
/// one chunk: 2048 × 32 B = 64 KiB for tiles, half that for k-mers —
/// exactly a quarter of [`MIN_ACC_ROOM`], which is what the trigger
/// arithmetic (module docs) needs at the tightest legal budget.
pub(crate) const ABSORB_CHUNK_ENTRIES: usize = 2048;

/// Room the accumulators must be able to grow into before the first
/// spill can trip — a budget tighter than `floor + this` would spill
/// every batch without ever freeing enough to matter, and the drain
/// transient (2× pending at spill, see the module docs) could not stay
/// under the budget past one [`ABSORB_CHUNK_ENTRIES`] absorb chunk.
const MIN_ACC_ROOM: u64 = 256 * 1024;

/// The irreducible accounted floor of a budgeted build for `params`:
/// the direct-count arrays (present only for narrow key widths — they
/// *are* the aggregation and cannot spill) plus the two bounded spill
/// buffers. [`min_budget`] adds working room on top; `EngineConfig`
/// validation rejects budgets below that.
pub fn fixed_floor(params: &ReptileParams) -> u64 {
    let kbits = 2 * params.kmer_codec().k() as u32;
    let tbits = 2 * params.tile_codec().len() as u32;
    direct_array_bytes(kbits) + direct_array_bytes(tbits) + 2 * DEFAULT_SPILL_BUF_BYTES as u64
}

/// Smallest `memory_budget` the engine accepts for `params` — the
/// fixed floor plus enough accumulation room to make forward progress.
pub fn min_budget(params: &ReptileParams) -> u64 {
    fixed_floor(params) + MIN_ACC_ROOM
}

/// Per-rank state of one budgeted build: the spill directory, the run
/// lists, the trigger, and the running byte/peak accounting. Created by
/// the threaded engine, threaded through
/// `spectrum::build_distributed_spillable`.
pub(crate) struct OocBuild {
    /// Directory the run files live in (engine-owned temp dir).
    dir: PathBuf,
    /// This rank — run file names embed it, so ranks share the dir.
    rank: usize,
    /// Fault injection: chop this rank's first run file (k-mer if one
    /// exists, tile otherwise) down to
    /// `keep_bytes` before the merge opens it (the PR-4 `chop=` fault
    /// composed with the spill plane).
    chop: Option<u64>,
    /// Pending spillable bytes ([`CountAcc::pending_entry_bytes`])
    /// above this spill: a quarter of the budget headroom, because the
    /// drain transiently holds both the raw buffers (capacity up to 2×
    /// the pending bytes) and the drained entry vector, and the
    /// chunked absorb can overshoot the trigger by one
    /// [`ABSORB_CHUNK_ENTRIES`] chunk before the next check.
    trigger: u64,
    /// Budget minus the fixed floor: the room the accumulators and the
    /// merge transient must fit in. The per-run merge reader buffers
    /// scale down within half of this so a many-run merge cannot
    /// overshoot a tight budget on its own.
    headroom: u64,
    /// The bounded spill-buffer overhead, charged on top of every
    /// measured transient (the direct arrays are NOT added here — they
    /// are inside the measured `memory_bytes` figures, and adding them
    /// again would double-count).
    buf_overhead: u64,
    kmer_runs: Vec<PathBuf>,
    tile_runs: Vec<PathBuf>,
    /// First spill failure hit inside the batch loop, deferred until
    /// the post-loop resolution point: the loop's collective schedule
    /// (one exchange per batch, uniform across ranks) must not be cut
    /// short by a local IO error, or the peers deadlock mid-collective.
    /// Once set, no further spills are attempted.
    deferred: Option<SpillError>,
    /// Run files written.
    pub(crate) spill_runs: u64,
    /// Bytes of run files written (header + body).
    pub(crate) spill_bytes: u64,
    /// High-water mark of the accounted set.
    pub(crate) peak_bytes: u64,
}

impl OocBuild {
    /// State for one rank's budgeted build. `dir` must exist; callers
    /// validated `budget >= min_budget(params)`.
    pub(crate) fn new(
        budget: u64,
        dir: PathBuf,
        rank: usize,
        chop: Option<u64>,
        params: &ReptileParams,
    ) -> OocBuild {
        let floor = fixed_floor(params);
        let buf_overhead = 2 * DEFAULT_SPILL_BUF_BYTES as u64;
        let headroom = budget.saturating_sub(floor).max(MIN_ACC_ROOM);
        OocBuild {
            dir,
            rank,
            chop,
            trigger: headroom / 4,
            headroom,
            buf_overhead,
            kmer_runs: Vec::new(),
            tile_runs: Vec::new(),
            deferred: None,
            spill_runs: 0,
            spill_bytes: 0,
            peak_bytes: buf_overhead,
        }
    }

    /// Charge `transient` measured bytes on top of the spill-buffer
    /// overhead and update the peak.
    fn charge(&mut self, transient: u64) {
        self.peak_bytes = self.peak_bytes.max(self.buf_overhead + transient);
    }

    /// Spill-check hook, called after every absorbed
    /// [`ABSORB_CHUNK_ENTRIES`] chunk of the exchange drain and at each
    /// batch boundary: charge the accumulators' resident bytes and,
    /// when the combined pending bytes trip the threshold, spill the
    /// kinds holding a meaningful share of them (at least half the
    /// trigger — when the combined total trips, at least one kind is
    /// there). A nearly-empty sibling keeps accumulating instead of
    /// paying a drain (sort + file) for a tiny run; what it holds stays
    /// below half the trigger, so the combined resident still shrinks
    /// below the threshold. Infallible by design — a spill failure is
    /// deferred (see [`OocBuild::deferred`]) so the caller's collective
    /// schedule stays uniform across ranks; it surfaces at the
    /// post-loop resolution point.
    pub(crate) fn maybe_spill(
        &mut self,
        acc_kmers: &mut CountAcc<u64>,
        acc_tiles: &mut CountAcc<u128>,
    ) {
        if self.deferred.is_some() {
            return;
        }
        let resident = (acc_kmers.memory_bytes() + acc_tiles.memory_bytes()) as u64;
        self.charge(resident);
        // The trigger watches *pending* entry bytes, not resident bytes:
        // a direct-count array's resident size never changes, so its
        // spill pressure is the occupancy it has accumulated.
        // Direct kinds exert no spill pressure: their array is the
        // aggregation (fixed size, inside the fixed floor) and the
        // finish streams it out with a chunk-bounded transient, so
        // draining it to disk would free nothing.
        let kmer_pending =
            if acc_kmers.is_direct() { 0 } else { acc_kmers.pending_entry_bytes() as u64 };
        let tile_pending =
            if acc_tiles.is_direct() { 0 } else { acc_tiles.pending_entry_bytes() as u64 };
        if kmer_pending + tile_pending > self.trigger {
            let share = self.trigger / 2;
            let mut spilled = Ok(());
            if kmer_pending >= share {
                spilled = self.spill_kind(acc_kmers, acc_tiles.memory_bytes() as u64);
            }
            if spilled.is_ok() && tile_pending >= share {
                spilled = self.spill_kind(acc_tiles, acc_kmers.memory_bytes() as u64);
            }
            if let Err(e) = spilled {
                self.deferred = Some(e);
            }
        }
    }

    /// Drain one accumulator into a fresh sorted run file (pre-prune —
    /// thresholds apply at merge time, over global folded counts).
    /// `other_resident` is the sibling accumulator's resident bytes —
    /// it stays allocated while this kind drains, so the transient
    /// charge must carry it too.
    fn spill_kind<K>(
        &mut self,
        acc: &mut CountAcc<K>,
        other_resident: u64,
    ) -> Result<(), SpillError>
    where
        K: SpillAccKey + SpillKey,
    {
        let before = acc.memory_bytes() as u64;
        let entries = acc.finalize();
        if entries.is_empty() {
            return Ok(());
        }
        // The drain's transient peak: retained raw-buffer capacity plus
        // the drained vector plus the writer's bounded buffer, on top
        // of whatever the sibling accumulator is holding.
        let entry_bytes = (entries.len() * std::mem::size_of::<(K, u32)>()) as u64;
        self.charge(other_resident + before.max(acc.memory_bytes() as u64 + entry_bytes));
        let seq = K::runs(self).len();
        let path = self.dir.join(format!("rank{:05}.{}{seq:04}.run", self.rank, K::KIND));
        let meta = write_run(&path, &entries, DEFAULT_SPILL_BUF_BYTES)?;
        K::runs(self).push(path);
        self.spill_runs += 1;
        self.spill_bytes += meta.file_bytes;
        Ok(())
    }

    /// Materialize the final pruned spectra. Kinds that never spilled
    /// take the in-memory finalize path verbatim (zero IO); spilled
    /// kinds drain once more, then run the two-pass k-way merge: pass 1
    /// counts post-prune survivors (fixing the table geometry exactly
    /// as the in-memory `reserve` does), pass 2 streams them into the
    /// table. Fills the spill counters and `merge_ns` of `stats`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish_spectra(
        &mut self,
        acc_kmers: &mut CountAcc<u64>,
        acc_tiles: &mut CountAcc<u128>,
        params: &ReptileParams,
        stats: &mut BuildStats,
    ) -> Result<(KmerSpectrum, TileSpectrum), SpillError> {
        // A failure deferred from the batch loop aborts here, before
        // any table is built.
        if let Some(e) = self.deferred.take() {
            return Err(e);
        }
        // Final drain: a kind that spilled before must ship its tail as
        // one last run so the merge sees every count.
        if !self.kmer_runs.is_empty() {
            self.spill_kind(acc_kmers, acc_tiles.memory_bytes() as u64)?;
            // No next batch is coming: return the drain buffers so the
            // merge's headroom is not eaten by dead capacity.
            acc_kmers.release_buffers();
        }
        if !self.tile_runs.is_empty() {
            self.spill_kind(acc_tiles, acc_kmers.memory_bytes() as u64)?;
            acc_tiles.release_buffers();
        }
        // Fault composition: the `chop=` plan truncates this rank's
        // first run file — k-mer if one exists, tile otherwise (the
        // selective spill can leave a light kind entirely in memory) —
        // before the merge opens (and verifies) it.
        if let Some(keep) = self.chop {
            if let Some(first) = self.kmer_runs.first().or_else(|| self.tile_runs.first()) {
                mpisim::chop_file(first, keep)
                    .map_err(|source| SpillError::Io { path: first.clone(), source })?;
            }
        }

        let t_merge = Instant::now();
        let kmer_table = if acc_kmers.is_direct() {
            // A direct kind never spilled: its array is already the
            // sorted aggregation, so stream it straight into the table
            // — exact survivor reserve, chunk-bounded transient, zero
            // IO.
            debug_assert!(self.kmer_runs.is_empty());
            let threshold = params.kmer_threshold;
            let survivors = acc_kmers.iter_direct().filter(|&(_, c)| c >= threshold).count();
            let chunk = self.stream_chunk::<u64>();
            let mut t = FlatKmerTable::new();
            t.bulk_load_sorted_stream(
                survivors,
                chunk,
                acc_kmers.iter_direct().filter(|&(_, c)| c >= threshold),
            );
            self.charge(
                (chunk * std::mem::size_of::<(u64, u32)>()) as u64
                    + t.memory_bytes() as u64
                    + acc_tiles.memory_bytes() as u64,
            );
            t
        } else if self.kmer_runs.is_empty() {
            let mut entries = acc_kmers.finalize();
            acc_kmers.release_buffers();
            entries.retain(|&(_, c)| c >= params.kmer_threshold);
            self.charge(
                (entries.len() * std::mem::size_of::<(u64, u32)>()) as u64
                    + FlatKmerTable::bytes_for_entries(entries.len()) as u64
                    + acc_tiles.memory_bytes() as u64,
            );
            let mut t = FlatKmerTable::new();
            t.reserve(entries.len());
            t.merge_sorted(&entries);
            t
        } else {
            let runs = self.kmer_runs.clone();
            let survivors = self.count_survivors::<u64>(
                &runs,
                params.kmer_threshold,
                acc_tiles.memory_bytes() as u64,
            )?;
            let mut merger = self.open_merger::<u64>(&runs, params.kmer_threshold)?;
            let mut t = FlatKmerTable::new();
            t.bulk_load_sorted_stream(
                survivors,
                self.stream_chunk::<u64>(),
                std::iter::from_fn(|| merger.next().expect("verified spill run failed mid-merge")),
            );
            self.charge(
                self.merge_overhead::<u64>(runs.len())
                    + t.memory_bytes() as u64
                    + acc_tiles.memory_bytes() as u64,
            );
            t
        };
        // The k-mer table stays resident while the tile merge runs, so
        // every tile-phase charge carries it.
        let kmer_resident = kmer_table.memory_bytes() as u64;
        let tile_table = if acc_tiles.is_direct() {
            debug_assert!(self.tile_runs.is_empty());
            let threshold = params.tile_threshold;
            let survivors = acc_tiles.iter_direct().filter(|&(_, c)| c >= threshold).count();
            let chunk = self.stream_chunk::<u128>();
            let mut t = FlatTileTable::new();
            t.bulk_load_sorted_stream(
                survivors,
                chunk,
                acc_tiles.iter_direct().filter(|&(_, c)| c >= threshold),
            );
            self.charge(
                (chunk * std::mem::size_of::<(u128, u32)>()) as u64
                    + t.memory_bytes() as u64
                    + kmer_resident,
            );
            t
        } else if self.tile_runs.is_empty() {
            let mut entries = acc_tiles.finalize();
            acc_tiles.release_buffers();
            entries.retain(|&(_, c)| c >= params.tile_threshold);
            self.charge(
                (entries.len() * std::mem::size_of::<(u128, u32)>()) as u64
                    + FlatTileTable::bytes_for_entries(entries.len()) as u64
                    + kmer_resident,
            );
            let mut t = FlatTileTable::new();
            t.reserve(entries.len());
            t.merge_sorted(&entries);
            t
        } else {
            let runs = self.tile_runs.clone();
            let survivors =
                self.count_survivors::<u128>(&runs, params.tile_threshold, kmer_resident)?;
            let mut merger = self.open_merger::<u128>(&runs, params.tile_threshold)?;
            let mut t = FlatTileTable::new();
            t.bulk_load_sorted_stream(
                survivors,
                self.stream_chunk::<u128>(),
                std::iter::from_fn(|| merger.next().expect("verified spill run failed mid-merge")),
            );
            self.charge(
                self.merge_overhead::<u128>(runs.len()) + t.memory_bytes() as u64 + kmer_resident,
            );
            t
        };
        stats.merge_ns += t_merge.elapsed().as_nanos() as u64;
        stats.spill_runs = self.spill_runs;
        stats.spill_bytes = self.spill_bytes;
        stats.ooc_peak_bytes = self.peak_bytes;

        // The runs are merged; return their disk space.
        for p in self.kmer_runs.drain(..).chain(self.tile_runs.drain(..)) {
            let _ = std::fs::remove_file(p);
        }
        let kcodec = params.kmer_codec();
        let tcodec = params.tile_codec();
        Ok((
            KmerSpectrum::from_table(kcodec, params.canonical, kmer_table),
            TileSpectrum::from_table(tcodec, params.canonical, tile_table),
        ))
    }

    /// Per-run reader buffer for a `k`-way merge: the readers together
    /// get at most a quarter of the budget headroom, clamped to the
    /// run format's floor. A floor-budget build that spilled many runs
    /// merges with small buffers instead of blowing `k * 64 KiB` past
    /// the budget.
    fn reader_buf(&self, k: usize) -> usize {
        ((self.headroom / 4) as usize / k.max(1))
            .clamp(MIN_SPILL_BUF_BYTES, DEFAULT_SPILL_BUF_BYTES)
    }

    /// Streaming bulk-load chunk for a merge pass: at most a quarter of
    /// the budget headroom staged at once (and never more than
    /// [`STREAM_CHUNK_ENTRIES`]), so readers + chunk together stay
    /// within half the headroom and the other half is left for the
    /// tables being built.
    fn stream_chunk<K: SpillKey>(&self) -> usize {
        let entry = std::mem::size_of::<(K, u32)>();
        ((self.headroom / 4) as usize / entry).clamp(MIN_STREAM_CHUNK_ENTRIES, STREAM_CHUNK_ENTRIES)
    }

    /// Accounted transient bytes of a `k`-way merge pass: per-run
    /// reader buffers plus the stream chunk.
    fn merge_overhead<K: SpillKey>(&self, k: usize) -> u64 {
        (k * self.reader_buf(k)) as u64
            + (self.stream_chunk::<K>() * std::mem::size_of::<(K, u32)>()) as u64
    }

    /// Pass 1: fold + prune the runs, counting survivors (the table
    /// geometry input). Every run is checksum-verified on open, so a
    /// chopped or flipped file is a typed error here, before any table
    /// exists.
    fn count_survivors<K: SpillKey>(
        &mut self,
        runs: &[PathBuf],
        threshold: u32,
        resident: u64,
    ) -> Result<usize, SpillError> {
        let mut merger = self.open_merger::<K>(runs, threshold)?;
        let mut n = 0usize;
        while merger.next()?.is_some() {
            n += 1;
        }
        self.charge(self.merge_overhead::<K>(runs.len()) + resident);
        Ok(n)
    }

    /// Open (and thereby fully verify) every run and build the merger.
    fn open_merger<K: SpillKey>(
        &self,
        runs: &[PathBuf],
        threshold: u32,
    ) -> Result<RunMerger<K>, SpillError> {
        let buf = self.reader_buf(runs.len());
        let readers =
            runs.iter().map(|p| RunReader::open(p, buf)).collect::<Result<Vec<_>, _>>()?;
        RunMerger::new(readers, threshold)
    }
}

/// Key-width-specific plumbing of [`OocBuild`]: which run list a kind
/// appends to and how its files are named.
pub(crate) trait SpillAccKey: crate::counts::AccKey {
    /// File-name tag ("kmer"/"tile").
    const KIND: &'static str;
    /// The run list for this kind.
    fn runs(state: &mut OocBuild) -> &mut Vec<PathBuf>;
}

impl SpillAccKey for u64 {
    const KIND: &'static str = "kmer";
    fn runs(state: &mut OocBuild) -> &mut Vec<PathBuf> {
        &mut state.kmer_runs
    }
}

impl SpillAccKey for u128 {
    const KIND: &'static str = "tile";
    fn runs(state: &mut OocBuild) -> &mut Vec<PathBuf> {
        &mut state.tile_runs
    }
}
