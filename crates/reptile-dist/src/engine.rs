//! The unified engine entry point.
//!
//! Both execution engines — the threaded one that really runs ranks as
//! OS threads over `mpisim`, and the virtual one that models thousands
//! of ranks analytically — correct reads the same way and answer with
//! the same shape of result. This module gives them one front door:
//!
//! * [`EngineConfig`] — a single validated configuration covering both
//!   engines (the virtual engine simply ignores nothing: every field is
//!   meaningful to at least one engine, and the cost-model fields are
//!   carried by the threaded engine's reports too);
//! * [`EngineConfig::builder`] — the validating constructor; invalid
//!   combinations come back as a typed [`ConfigError`] instead of a
//!   panic deep inside a rank thread;
//! * [`Engine`] — the object-safe trait the CLI, benches and tests
//!   dispatch through ([`ThreadedEngine`], [`VirtualEngine`],
//!   [`engine_by_name`]);
//! * [`RunOutput`] — corrected reads plus the merged [`RunReport`],
//!   identical across engines.

use crate::heuristics::HeuristicConfig;
use crate::report::RunReport;
use dnaseq::Read;
use mpisim::{CostModel, FaultPlan, Topology};
use reptile::ReptileParams;
use specstore::RecoveryPolicy;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Configuration for a correction run, shared by every engine.
///
/// Construct via [`EngineConfig::new`] (threaded-engine defaults),
/// [`EngineConfig::virtual_cluster`] (virtual-engine defaults: a 32
/// ranks-per-node BlueGene/Q-like topology, serial build) or — when any
/// field is being overridden — [`EngineConfig::builder`], which
/// validates the combination before handing the config out.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Number of ranks.
    pub np: usize,
    /// Node/rank layout (intra- vs inter-node links, SMT pressure).
    pub topology: Topology,
    /// Reads per Step I chunk.
    pub chunk_size: usize,
    /// Reptile algorithm parameters.
    pub params: ReptileParams,
    /// Paper heuristics (§IV–V knobs).
    pub heuristics: HeuristicConfig,
    /// Extraction worker threads per rank in the pipelined build.
    pub build_threads: usize,
    /// Analytic cost model (virtual engine's clock, threaded engine's
    /// modeled-memory reporting).
    pub cost: CostModel,
    /// Dataset scale multiplier for modeled time/memory (virtual
    /// engine; see DESIGN.md §2).
    pub scale: f64,
    /// Deterministic fault plan injected into the message plane
    /// (threaded engine) or replayed analytically (virtual engine).
    pub fault: FaultPlan,
    /// Base per-request deadline for Step IV lookups. `None` disables
    /// the retry protocol: receives block indefinitely (the fault-free
    /// fast path).
    pub lookup_deadline: Option<Duration>,
    /// Retries after the first missed deadline before a lookup degrades
    /// to the paper's "absent everywhere" answer. Attempt `i` waits
    /// `lookup_deadline * 2^i` (exponential backoff).
    pub retry_budget: u32,
    /// Save the pruned spectra into this snapshot directory after Step
    /// III (the build-once half of build-once / correct-many).
    pub save_spectrum: Option<PathBuf>,
    /// Load the spectra from this snapshot directory instead of running
    /// Steps II–III. Same-`np` loads adopt the shard tables verbatim; a
    /// different `np` re-owns entries through the count exchange.
    /// Combining with `save_spectrum` re-shards a snapshot to this
    /// config's `np` without correcting anything twice.
    pub load_spectrum: Option<PathBuf>,
    /// Reed-Solomon parity shards written per table kind on a
    /// `save_spectrum` run (0 = no erasure coding; `m` parity shards
    /// let a later `Repair` load survive any `m` lost shards per
    /// group).
    pub parity: usize,
    /// What a `load_spectrum` run does when a shard is corrupt:
    /// surface the typed error (`Strict`) or reconstruct it from the
    /// snapshot's parity shards (`Repair`).
    pub recovery: RecoveryPolicy,
    /// Per-rank byte budget for spectrum construction. `None` builds
    /// fully in memory; `Some(bytes)` switches to the out-of-core
    /// spill/merge build ([`crate::ooc`]): the count accumulators are
    /// drained to sorted run files whenever they outgrow the budget and
    /// the final tables are materialized by a streaming k-way merge —
    /// bit-identical output, peak accounted table+buffer bytes kept
    /// under the budget. Validated against the table geometry
    /// ([`crate::ooc::min_budget`]) and requires `batch_reads` (the
    /// non-batch path must hold its whole reads tally for one final
    /// exchange, so it cannot bound memory).
    pub memory_budget: Option<u64>,
}

impl EngineConfig {
    /// Threaded-engine defaults: single-node topology, 2000-read
    /// chunks, default heuristics, measured-core build parallelism, no
    /// faults, no deadlines.
    pub fn new(np: usize, params: ReptileParams) -> EngineConfig {
        EngineConfig {
            np,
            topology: Topology::single_node(),
            chunk_size: 2000,
            params,
            heuristics: HeuristicConfig::default(),
            build_threads: crate::engine_mt::default_build_threads(),
            cost: CostModel::bgq(),
            scale: 1.0,
            fault: FaultPlan::none(),
            lookup_deadline: None,
            retry_budget: 0,
            save_spectrum: None,
            load_spectrum: None,
            parity: 0,
            recovery: RecoveryPolicy::Strict,
            memory_budget: None,
        }
    }

    /// Virtual-engine defaults: 32 ranks per node (the BlueGene/Q
    /// layout the paper ran on) and a serial build model.
    pub fn virtual_cluster(np: usize, params: ReptileParams) -> EngineConfig {
        EngineConfig {
            topology: Topology::new(32),
            build_threads: 1,
            ..EngineConfig::new(np, params)
        }
    }

    /// Start a validating builder from the threaded-engine defaults.
    pub fn builder(np: usize, params: ReptileParams) -> EngineConfigBuilder {
        EngineConfigBuilder { cfg: EngineConfig::new(np, params) }
    }

    /// Check the configuration; every engine calls this on entry, so a
    /// bad config fails fast in the caller's thread rather than
    /// panicking inside a rank.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.np == 0 {
            return Err(ConfigError::ZeroRanks);
        }
        if self.chunk_size == 0 {
            return Err(ConfigError::ZeroChunkSize);
        }
        if self.build_threads == 0 {
            return Err(ConfigError::ZeroBuildThreads);
        }
        if !(self.scale > 0.0 && self.scale.is_finite()) {
            return Err(ConfigError::NonPositiveScale(self.scale));
        }
        if self.retry_budget > 0 && self.lookup_deadline.is_none() {
            return Err(ConfigError::RetryWithoutDeadline);
        }
        // Message loss without a deadline means a blocking receive that
        // never returns; refuse the combination up front.
        if (self.fault.drop_p > 0.0 || self.fault.kill.is_some()) && self.lookup_deadline.is_none()
        {
            return Err(ConfigError::FaultNeedsDeadline);
        }
        if let Some(kill) = self.fault.kill {
            if kill.rank >= self.np {
                return Err(ConfigError::KilledRankOutOfRange { rank: kill.rank, np: self.np });
            }
        }
        if let Some(stall) = self.fault.stall {
            if stall.rank >= self.np {
                return Err(ConfigError::KilledRankOutOfRange { rank: stall.rank, np: self.np });
            }
        }
        if self.parity > 0 {
            if self.save_spectrum.is_none() {
                return Err(ConfigError::ParityWithoutSave);
            }
            if self.np + self.parity > 256 {
                return Err(ConfigError::ParityTooWide { np: self.np, parity: self.parity });
            }
        }
        if let RecoveryPolicy::Repair { max_lost, .. } = self.recovery {
            if max_lost == 0 {
                return Err(ConfigError::RepairZeroBudget);
            }
            if self.load_spectrum.is_none() {
                return Err(ConfigError::RepairWithoutLoad);
            }
        }
        if let Some(budget) = self.memory_budget {
            if !self.heuristics.batch_reads {
                return Err(ConfigError::MemoryBudgetNeedsBatching);
            }
            let floor = crate::ooc::min_budget(&self.params);
            if budget < floor {
                return Err(ConfigError::MemoryBudgetTooSmall { budget, floor });
            }
        }
        self.heuristics.validate().map_err(ConfigError::Heuristics)?;
        Ok(())
    }
}

/// Why an [`EngineConfig`] was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// `np == 0` — there is no rank to run.
    ZeroRanks,
    /// `chunk_size == 0` — Step I cannot make progress.
    ZeroChunkSize,
    /// `build_threads == 0` — the pipelined build needs a worker.
    ZeroBuildThreads,
    /// `scale` must be a positive finite multiplier.
    NonPositiveScale(f64),
    /// A retry budget without a `lookup_deadline` can never fire.
    RetryWithoutDeadline,
    /// Message drops or a killed rank without a `lookup_deadline` would
    /// hang a blocking receive forever.
    FaultNeedsDeadline,
    /// The fault plan names a rank outside `0..np`.
    KilledRankOutOfRange {
        /// The out-of-range rank in the plan.
        rank: usize,
        /// The universe size it was checked against.
        np: usize,
    },
    /// Parity shards were requested without a `save_spectrum` directory
    /// to write them into.
    ParityWithoutSave,
    /// `np + parity` exceeds the GF(2^8) Reed-Solomon limit of 256
    /// shards per group.
    ParityTooWide {
        /// Data shards per group (= ranks).
        np: usize,
        /// Requested parity shards per group.
        parity: usize,
    },
    /// A `Repair` recovery policy with `max_lost == 0` can never repair
    /// anything — use `Strict` instead.
    RepairZeroBudget,
    /// A `Repair` recovery policy without a `load_spectrum` directory
    /// has nothing to repair.
    RepairWithoutLoad,
    /// A `Repair` recovery policy was requested but the snapshot being
    /// loaded carries no parity shards (e.g. a v1 snapshot, or one
    /// saved with `parity = 0`).
    RepairWithoutParity,
    /// The memory budget is below the irreducible working set of this
    /// table geometry — the build could never finish under it.
    MemoryBudgetTooSmall {
        /// The requested budget.
        budget: u64,
        /// The smallest acceptable budget for these params
        /// ([`crate::ooc::min_budget`]).
        floor: u64,
    },
    /// A memory budget without `batch_reads`: the non-batch build holds
    /// its entire reads tally for one final exchange and cannot bound
    /// memory.
    MemoryBudgetNeedsBatching,
    /// The heuristic combination is invalid (message from
    /// [`HeuristicConfig::validate`]).
    Heuristics(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroRanks => write!(f, "np must be at least 1"),
            ConfigError::ZeroChunkSize => write!(f, "chunk_size must be at least 1"),
            ConfigError::ZeroBuildThreads => write!(f, "build_threads must be at least 1"),
            ConfigError::NonPositiveScale(s) => {
                write!(f, "scale must be a positive finite number, got {s}")
            }
            ConfigError::RetryWithoutDeadline => {
                write!(f, "retry_budget > 0 requires a lookup_deadline")
            }
            ConfigError::FaultNeedsDeadline => {
                write!(f, "fault plans with drops or a kill require a lookup_deadline")
            }
            ConfigError::KilledRankOutOfRange { rank, np } => {
                write!(f, "fault plan names rank {rank}, but np is {np}")
            }
            ConfigError::ParityWithoutSave => {
                write!(f, "parity > 0 requires a save_spectrum directory")
            }
            ConfigError::ParityTooWide { np, parity } => {
                write!(f, "np {np} + parity {parity} exceeds the 256-shard GF(2^8) group limit")
            }
            ConfigError::RepairZeroBudget => {
                write!(f, "a Repair policy needs max_lost >= 1 (use Strict otherwise)")
            }
            ConfigError::RepairWithoutLoad => {
                write!(f, "a Repair policy requires a load_spectrum directory")
            }
            ConfigError::RepairWithoutParity => {
                write!(f, "a Repair policy needs a snapshot saved with parity shards")
            }
            ConfigError::MemoryBudgetTooSmall { budget, floor } => {
                write!(
                    f,
                    "memory budget {budget} B is below the {floor} B floor for this table \
                     geometry (direct count arrays + spill buffers + working room)"
                )
            }
            ConfigError::MemoryBudgetNeedsBatching => {
                write!(f, "a memory budget requires batch_reads (non-batch builds are unbounded)")
            }
            ConfigError::Heuristics(msg) => write!(f, "invalid heuristics: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Why an engine run failed. The infallible [`Engine::run`] panics on
/// these; [`Engine::try_run`] hands them back typed so callers (the
/// CLI's serve mode, tests, benches) can distinguish a corrupt snapshot
/// from a malformed input file.
#[derive(Debug)]
pub enum EngineError {
    /// The configuration failed [`EngineConfig::validate`].
    Config(ConfigError),
    /// Snapshot save/load failed (corruption, fingerprint mismatch,
    /// filesystem error, or a peer rank's failure).
    Snapshot(specstore::SnapshotError),
    /// Input FASTA/QUAL files could not be read or parsed.
    Io(genio::IoError),
    /// An out-of-core build's spill plane failed (run-file IO error or
    /// verification failure — a chopped/flipped run is surfaced here,
    /// never folded into wrong counts).
    Spill(specstore::SpillError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Config(e) => write!(f, "invalid config: {e}"),
            EngineError::Snapshot(e) => write!(f, "spectrum snapshot: {e}"),
            EngineError::Io(e) => write!(f, "input: {e}"),
            EngineError::Spill(e) => write!(f, "out-of-core build: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Config(e) => Some(e),
            EngineError::Snapshot(e) => Some(e),
            EngineError::Io(e) => Some(e),
            EngineError::Spill(e) => Some(e),
        }
    }
}

impl From<ConfigError> for EngineError {
    fn from(e: ConfigError) -> EngineError {
        EngineError::Config(e)
    }
}

impl From<specstore::SnapshotError> for EngineError {
    fn from(e: specstore::SnapshotError) -> EngineError {
        // A Repair policy against a parity-free snapshot is a
        // configuration mistake (the combination can never work), not a
        // corruption event — surface it as such.
        if matches!(e, specstore::SnapshotError::NoParity { .. }) {
            return EngineError::Config(ConfigError::RepairWithoutParity);
        }
        EngineError::Snapshot(e)
    }
}

impl From<genio::IoError> for EngineError {
    fn from(e: genio::IoError) -> EngineError {
        EngineError::Io(e)
    }
}

impl From<specstore::SpillError> for EngineError {
    fn from(e: specstore::SpillError) -> EngineError {
        EngineError::Spill(e)
    }
}

/// Builder for [`EngineConfig`]; [`build`](EngineConfigBuilder::build)
/// validates before returning the config.
#[derive(Clone, Debug)]
pub struct EngineConfigBuilder {
    cfg: EngineConfig,
}

impl EngineConfigBuilder {
    /// Switch every default the virtual engine wants (see
    /// [`EngineConfig::virtual_cluster`]); call before other setters.
    pub fn virtual_cluster(mut self) -> Self {
        self.cfg = EngineConfig::virtual_cluster(self.cfg.np, self.cfg.params);
        self
    }

    /// Set the node/rank topology.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.cfg.topology = topology;
        self
    }

    /// Set the Step I chunk size.
    pub fn chunk_size(mut self, chunk_size: usize) -> Self {
        self.cfg.chunk_size = chunk_size;
        self
    }

    /// Set the heuristic knobs.
    pub fn heuristics(mut self, heuristics: HeuristicConfig) -> Self {
        self.cfg.heuristics = heuristics;
        self
    }

    /// Set the per-rank extraction parallelism.
    pub fn build_threads(mut self, build_threads: usize) -> Self {
        self.cfg.build_threads = build_threads;
        self
    }

    /// Set the analytic cost model.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cfg.cost = cost;
        self
    }

    /// Set the modeled dataset scale multiplier.
    pub fn scale(mut self, scale: f64) -> Self {
        self.cfg.scale = scale;
        self
    }

    /// Install a fault plan.
    pub fn fault(mut self, fault: FaultPlan) -> Self {
        self.cfg.fault = fault;
        self
    }

    /// Enable per-request deadlines for Step IV lookups.
    pub fn lookup_deadline(mut self, deadline: Duration) -> Self {
        self.cfg.lookup_deadline = Some(deadline);
        self
    }

    /// Set the retry budget (requires a deadline to validate).
    pub fn retry_budget(mut self, retries: u32) -> Self {
        self.cfg.retry_budget = retries;
        self
    }

    /// Save the pruned spectra into a snapshot directory after Step III.
    pub fn save_spectrum(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cfg.save_spectrum = Some(dir.into());
        self
    }

    /// Load the spectra from a snapshot directory instead of building.
    pub fn load_spectrum(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cfg.load_spectrum = Some(dir.into());
        self
    }

    /// Write `parity` Reed-Solomon shards per table kind when saving
    /// (requires `save_spectrum` to validate).
    pub fn parity(mut self, parity: usize) -> Self {
        self.cfg.parity = parity;
        self
    }

    /// Set the shard-corruption recovery policy for loads.
    pub fn recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.cfg.recovery = recovery;
        self
    }

    /// Cap the per-rank spectrum-construction working set at `bytes`,
    /// switching the build to the out-of-core spill/merge mode
    /// (requires `batch_reads`; validated against
    /// [`crate::ooc::min_budget`]).
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.cfg.memory_budget = Some(bytes);
        self
    }

    /// Validate and return the config.
    pub fn build(self) -> Result<EngineConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// A correction run's result: the corrected dataset (sorted by read id)
/// and the merged cross-rank report. Identical shape for both engines —
/// and identical *content* for equivalent configs, which the
/// cross-engine tests assert.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Corrected reads, sorted by read id.
    pub corrected: Vec<Read>,
    /// Per-rank and aggregate statistics.
    pub report: RunReport,
}

/// A correction engine: turns a dataset and an [`EngineConfig`] into a
/// [`RunOutput`]. Object-safe, so callers can pick an engine at runtime
/// ([`engine_by_name`]) without duplicating dispatch arms.
pub trait Engine {
    /// Short stable name ("mt", "virtual") for CLIs and reports.
    fn name(&self) -> &'static str;

    /// Correct an in-memory dataset, reporting failures (bad config,
    /// unreadable or corrupt snapshot) as typed errors.
    fn try_run(&self, cfg: &EngineConfig, reads: &[Read]) -> Result<RunOutput, EngineError>;

    /// Correct a FASTA + QUAL file pair, reporting failures as typed
    /// errors.
    fn try_run_files(
        &self,
        cfg: &EngineConfig,
        fasta: &Path,
        qual: &Path,
    ) -> Result<RunOutput, EngineError>;

    /// Correct an in-memory dataset.
    ///
    /// # Panics
    /// On an invalid config ([`EngineConfig::validate`]) or a snapshot
    /// failure — use [`Engine::try_run`] to get the typed error
    /// instead.
    fn run(&self, cfg: &EngineConfig, reads: &[Read]) -> RunOutput {
        match self.try_run(cfg, reads) {
            Ok(out) => out,
            Err(e) => panic!("engine run failed: {e}"),
        }
    }

    /// Correct a FASTA + QUAL file pair.
    ///
    /// # Panics
    /// On an invalid config or snapshot failure (input I/O problems
    /// come back as `Err`) — use [`Engine::try_run_files`] for fully
    /// typed errors.
    fn run_files(&self, cfg: &EngineConfig, fasta: &Path, qual: &Path) -> genio::Result<RunOutput> {
        match self.try_run_files(cfg, fasta, qual) {
            Ok(out) => Ok(out),
            Err(EngineError::Io(e)) => Err(e),
            Err(e) => panic!("engine run failed: {e}"),
        }
    }
}

/// The real multi-threaded engine: ranks are OS threads over `mpisim`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadedEngine;

impl Engine for ThreadedEngine {
    fn name(&self) -> &'static str {
        "mt"
    }

    fn try_run(&self, cfg: &EngineConfig, reads: &[Read]) -> Result<RunOutput, EngineError> {
        crate::engine_mt::try_run_distributed(cfg, reads)
    }

    fn try_run_files(
        &self,
        cfg: &EngineConfig,
        fasta: &Path,
        qual: &Path,
    ) -> Result<RunOutput, EngineError> {
        crate::engine_mt::try_run_distributed_files(cfg, fasta, qual)
    }
}

/// The virtual engine: models `np` ranks analytically (memory and time
/// from counted work), corrects with the same shared corrector.
#[derive(Clone, Copy, Debug, Default)]
pub struct VirtualEngine;

impl Engine for VirtualEngine {
    fn name(&self) -> &'static str {
        "virtual"
    }

    fn try_run(&self, cfg: &EngineConfig, reads: &[Read]) -> Result<RunOutput, EngineError> {
        crate::engine_virtual::try_run_virtual(cfg, reads)
    }

    fn try_run_files(
        &self,
        cfg: &EngineConfig,
        fasta: &Path,
        qual: &Path,
    ) -> Result<RunOutput, EngineError> {
        let reads = genio::qual::load_dataset(fasta, qual)?;
        crate::engine_virtual::try_run_virtual(cfg, &reads)
    }
}

/// Look an engine up by its CLI name.
pub fn engine_by_name(name: &str) -> Option<Box<dyn Engine>> {
    match name {
        "mt" | "threaded" => Some(Box::new(ThreadedEngine)),
        "virtual" => Some(Box::new(VirtualEngine)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::KillSpec;

    fn params() -> ReptileParams {
        ReptileParams { k: 6, tile_overlap: 3, ..ReptileParams::for_tests() }
    }

    #[test]
    fn builder_accepts_defaults() {
        let cfg = EngineConfig::builder(4, params()).build().expect("defaults are valid");
        assert_eq!(cfg.np, 4);
        assert_eq!(cfg.chunk_size, 2000);
        assert!(cfg.fault.is_none());
        assert!(cfg.lookup_deadline.is_none());
    }

    #[test]
    fn builder_rejects_zero_ranks_and_chunks() {
        assert_eq!(EngineConfig::builder(0, params()).build().unwrap_err(), ConfigError::ZeroRanks);
        assert_eq!(
            EngineConfig::builder(2, params()).chunk_size(0).build().unwrap_err(),
            ConfigError::ZeroChunkSize
        );
        assert_eq!(
            EngineConfig::builder(2, params()).build_threads(0).build().unwrap_err(),
            ConfigError::ZeroBuildThreads
        );
    }

    #[test]
    fn builder_rejects_retries_without_deadline() {
        assert_eq!(
            EngineConfig::builder(2, params()).retry_budget(3).build().unwrap_err(),
            ConfigError::RetryWithoutDeadline
        );
        // with a deadline the same budget is fine
        EngineConfig::builder(2, params())
            .retry_budget(3)
            .lookup_deadline(Duration::from_millis(5))
            .build()
            .expect("deadline makes retries valid");
    }

    #[test]
    fn builder_rejects_lossy_faults_without_deadline() {
        let lossy = FaultPlan { drop_p: 0.2, ..FaultPlan::none() };
        assert_eq!(
            EngineConfig::builder(2, params()).fault(lossy).build().unwrap_err(),
            ConfigError::FaultNeedsDeadline
        );
        let kill = FaultPlan { kill: Some(KillSpec { rank: 1 }), ..FaultPlan::none() };
        assert_eq!(
            EngineConfig::builder(2, params()).fault(kill).build().unwrap_err(),
            ConfigError::FaultNeedsDeadline
        );
        // dup/reorder/delay keep every message; no deadline required
        let benign = FaultPlan { dup_p: 0.5, reorder_p: 0.5, ..FaultPlan::none() };
        EngineConfig::builder(2, params()).fault(benign).build().expect("benign faults valid");
    }

    #[test]
    fn builder_rejects_kill_out_of_range() {
        let plan = FaultPlan { kill: Some(KillSpec { rank: 7 }), ..FaultPlan::none() };
        let err = EngineConfig::builder(4, params())
            .fault(plan)
            .lookup_deadline(Duration::from_millis(5))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::KilledRankOutOfRange { rank: 7, np: 4 });
    }

    #[test]
    fn builder_rejects_bad_heuristics() {
        let heur = HeuristicConfig { cache_remote: true, ..Default::default() };
        let err = EngineConfig::builder(4, params()).heuristics(heur).build().unwrap_err();
        assert!(matches!(err, ConfigError::Heuristics(_)), "{err:?}");
    }

    #[test]
    fn builder_rejects_bad_parity_and_recovery_combinations() {
        use specstore::RecoveryPolicy;
        // parity without a save target
        assert_eq!(
            EngineConfig::builder(4, params()).parity(2).build().unwrap_err(),
            ConfigError::ParityWithoutSave
        );
        // parity wider than the GF(2^8) group
        assert_eq!(
            EngineConfig::builder(255, params())
                .parity(2)
                .save_spectrum("/tmp/snap")
                .build()
                .unwrap_err(),
            ConfigError::ParityTooWide { np: 255, parity: 2 }
        );
        // repair with a zero budget
        assert_eq!(
            EngineConfig::builder(4, params())
                .recovery(RecoveryPolicy::Repair { max_lost: 0, rewrite: false })
                .load_spectrum("/tmp/snap")
                .build()
                .unwrap_err(),
            ConfigError::RepairZeroBudget
        );
        // repair without anything to load
        assert_eq!(
            EngineConfig::builder(4, params())
                .recovery(RecoveryPolicy::Repair { max_lost: 1, rewrite: false })
                .build()
                .unwrap_err(),
            ConfigError::RepairWithoutLoad
        );
        // the valid combination passes
        let cfg = EngineConfig::builder(4, params())
            .parity(1)
            .save_spectrum("/tmp/snap")
            .recovery(RecoveryPolicy::Repair { max_lost: 1, rewrite: true })
            .load_spectrum("/tmp/snap")
            .build()
            .expect("valid parity + repair config");
        assert_eq!(cfg.parity, 1);
        assert!(cfg.recovery.repairs());
    }

    #[test]
    fn no_parity_snapshot_error_maps_to_config() {
        let e = specstore::SnapshotError::NoParity { dir: "/tmp/x".into() };
        assert!(matches!(
            EngineError::from(e),
            EngineError::Config(ConfigError::RepairWithoutParity)
        ));
    }

    #[test]
    fn builder_rejects_nonpositive_scale() {
        let err = EngineConfig::builder(2, params()).scale(0.0).build().unwrap_err();
        assert_eq!(err, ConfigError::NonPositiveScale(0.0));
    }

    #[test]
    fn virtual_cluster_defaults() {
        let cfg = EngineConfig::virtual_cluster(64, params());
        assert_eq!(cfg.build_threads, 1);
        assert_eq!(cfg.topology.ranks_per_node(), 32);
        cfg.validate().expect("virtual defaults are valid");
    }

    #[test]
    fn errors_render_messages() {
        for err in [
            ConfigError::ZeroRanks,
            ConfigError::RetryWithoutDeadline,
            ConfigError::FaultNeedsDeadline,
            ConfigError::KilledRankOutOfRange { rank: 9, np: 4 },
            ConfigError::ParityWithoutSave,
            ConfigError::ParityTooWide { np: 255, parity: 2 },
            ConfigError::RepairZeroBudget,
            ConfigError::RepairWithoutLoad,
            ConfigError::RepairWithoutParity,
            ConfigError::Heuristics("x".into()),
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn engine_by_name_dispatch() {
        assert_eq!(engine_by_name("mt").unwrap().name(), "mt");
        assert_eq!(engine_by_name("threaded").unwrap().name(), "mt");
        assert_eq!(engine_by_name("virtual").unwrap().name(), "virtual");
        assert!(engine_by_name("gpu").is_none());
    }

    #[test]
    fn both_engines_run_through_the_trait() {
        let p = params();
        let reads: Vec<Read> = (0..12)
            .map(|i| {
                let seed = dnaseq::mix64(i + 1);
                let seq: Vec<u8> = (0..20)
                    .map(|j| [b'A', b'C', b'G', b'T'][(dnaseq::mix64(seed ^ j) % 4) as usize])
                    .collect();
                Read::new(i + 1, seq, vec![30; 20])
            })
            .collect();
        let mt = ThreadedEngine.run(&EngineConfig::builder(2, p).build().unwrap(), &reads);
        let virt = VirtualEngine
            .run(&EngineConfig::builder(2, p).virtual_cluster().build().unwrap(), &reads);
        assert_eq!(mt.corrected.len(), reads.len());
        assert_eq!(virt.corrected.len(), reads.len());
        let mt_seq: Vec<_> = mt.corrected.iter().map(|r| r.seq.clone()).collect();
        let virt_seq: Vec<_> = virt.corrected.iter().map(|r| r.seq.clone()).collect();
        assert_eq!(mt_seq, virt_seq, "engines agree through the trait");
    }
}
