//! Distributed spectrum construction (paper Steps II–III).
//!
//! Each rank extracts the k-mers and tiles of its reads into *two* hash
//! tables per spectrum: `hashKmer` for codes it owns
//! (`hash(code) % np == rank`) and `readsKmer` for codes owned elsewhere
//! (`hashTile`/`readsTile` for tiles). An `MPI_Alltoallv` then ships every
//! `readsKmer` entry to its owner, which merges the counts; after the
//! exchange each code lives **only** at its owner with its true global
//! count, and entries below the frequency threshold are pruned.
//!
//! In *batch reads table* mode the exchange runs after every chunk and
//! the reads tables are cleared, bounding their size; an
//! `allreduce(max)` on the batch count keeps every rank participating in
//! the collectives until the slowest rank has drained its reads.

use crate::heuristics::HeuristicConfig;
use crate::owner::OwnerMap;
use dnaseq::Read;
use mpisim::Comm;
use reptile::spectrum::{KmerSpectrum, TileSpectrum};
use reptile::ReptileParams;

/// The per-rank spectrum tables after construction.
pub struct RankTables {
    /// Owner map used throughout the run.
    pub owners: OwnerMap,
    /// Owned k-mers with global counts (pruned).
    pub hash_kmers: KmerSpectrum,
    /// Owned tiles with global counts (pruned).
    pub hash_tiles: TileSpectrum,
    /// With `keep_read_tables`: non-owned k-mers from this rank's reads,
    /// with **global** counts (0 = known absent). Counts here are
    /// post-prune global counts, so lookups hit without messaging.
    pub reads_kmers: Option<KmerSpectrum>,
    /// With `keep_read_tables`: non-owned tiles from this rank's reads.
    pub reads_tiles: Option<TileSpectrum>,
    /// With `replicate_kmers`: the full pruned k-mer spectrum.
    pub replicated_kmers: Option<KmerSpectrum>,
    /// With `replicate_tiles`: the full pruned tile spectrum.
    pub replicated_tiles: Option<TileSpectrum>,
    /// With `partial_group > 1`: the merged owned k-mers of this rank's
    /// whole group (the §V partial-replication proposal). Includes this
    /// rank's own entries, so in-group lookups go here first.
    pub group_kmers: Option<KmerSpectrum>,
    /// With `partial_group > 1`: the group's merged owned tiles.
    pub group_tiles: Option<TileSpectrum>,
}

/// Counters from the construction phase (feeds the reports/cost model).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// K-mer occurrences extracted from this rank's reads.
    pub kmers_extracted: u64,
    /// Tile occurrences extracted.
    pub tiles_extracted: u64,
    /// Bases scanned.
    pub bases_processed: u64,
    /// Chunk iterations executed (== global max batches).
    pub batches: u64,
    /// Largest size the (k-mer) reads table reached before a clear.
    pub peak_reads_kmers: u64,
    /// Largest size the (tile) reads table reached before a clear.
    pub peak_reads_tiles: u64,
    /// Owned k-mers after pruning.
    pub owned_kmers: u64,
    /// Owned tiles after pruning.
    pub owned_tiles: u64,
    /// Entries retained in the reads tables (keep_read_tables).
    pub reads_table_entries: u64,
    /// Entries replicated locally (allgather modes).
    pub replicated_entries: u64,
    /// Entries held for the rank's group (partial replication), incl.
    /// the rank's own owned entries.
    pub group_entries: u64,
    /// Measured bytes of every spectrum table resident on this rank
    /// after construction (owned + reads + replicated + group), exact
    /// per [`KmerSpectrum::memory_bytes`].
    pub table_bytes: u64,
}

/// Build the distributed spectra from this rank's reads, delivered in
/// chunks of `chunk_size` (the config-file chunk size of Step I).
///
/// `reads` are the reads this rank will *extract from* — already
/// load-balanced if that heuristic is on (the shuffle happens upstream,
/// per batch, in the engines).
pub fn build_distributed(
    comm: &Comm,
    reads: &[Read],
    chunk_size: usize,
    params: &ReptileParams,
    heur: &HeuristicConfig,
) -> (RankTables, BuildStats) {
    params.assert_valid();
    heur.validate().expect("invalid heuristic combination");
    assert!(chunk_size > 0);
    let np = comm.size();
    let owners = OwnerMap::new(np, params);
    let kcodec = params.kmer_codec();
    let tcodec = params.tile_codec();

    let mut hash_kmers = KmerSpectrum::new(kcodec, params.canonical);
    let mut hash_tiles = TileSpectrum::new(tcodec, params.canonical);
    let mut reads_kmers = KmerSpectrum::new(kcodec, params.canonical);
    let mut reads_tiles = TileSpectrum::new(tcodec, params.canonical);
    let mut stats = BuildStats::default();

    // Every rank must join the same number of collective rounds (§III-B).
    let my_batches = reads.len().div_ceil(chunk_size).max(1) as u64;
    let max_batches =
        if heur.batch_reads { comm.allreduce_max_u64(my_batches) } else { my_batches };
    stats.batches = max_batches;

    let me = comm.rank();
    for batch in 0..max_batches {
        let lo = (batch as usize * chunk_size).min(reads.len());
        let hi = ((batch as usize + 1) * chunk_size).min(reads.len());
        for read in &reads[lo..hi] {
            stats.bases_processed += read.len() as u64;
            for (_, code) in kcodec.kmers_of(&read.seq) {
                stats.kmers_extracted += 1;
                let key = owners.kmer_key(code);
                if owners.kmer_owner_raw(key) == me {
                    hash_kmers.add_count(key, 1);
                } else {
                    reads_kmers.add_count(key, 1);
                }
            }
            for (_, code) in tcodec.tiles_of(&read.seq) {
                stats.tiles_extracted += 1;
                let key = owners.tile_key(code);
                if owners.tile_owner_raw(key) == me {
                    hash_tiles.add_count(key, 1);
                } else {
                    reads_tiles.add_count(key, 1);
                }
            }
        }
        if heur.batch_reads {
            stats.peak_reads_kmers = stats.peak_reads_kmers.max(reads_kmers.len() as u64);
            stats.peak_reads_tiles = stats.peak_reads_tiles.max(reads_tiles.len() as u64);
            exchange_counts(
                comm,
                &owners,
                std::mem::replace(&mut reads_kmers, KmerSpectrum::new(kcodec, params.canonical)),
                std::mem::replace(&mut reads_tiles, TileSpectrum::new(tcodec, params.canonical)),
                &mut hash_kmers,
                &mut hash_tiles,
            );
        }
    }

    // Record the rank's own-reads key sets before the final exchange
    // consumes the tables (needed by keep_read_tables).
    let (kmer_keys, tile_keys) = if heur.keep_read_tables {
        (
            reads_kmers.iter().map(|(k, _)| k).collect::<Vec<u64>>(),
            reads_tiles.iter().map(|(t, _)| t).collect::<Vec<u128>>(),
        )
    } else {
        (Vec::new(), Vec::new())
    };

    if !heur.batch_reads {
        stats.peak_reads_kmers = reads_kmers.len() as u64;
        stats.peak_reads_tiles = reads_tiles.len() as u64;
        exchange_counts(comm, &owners, reads_kmers, reads_tiles, &mut hash_kmers, &mut hash_tiles);
    }

    // Threshold prune at the owner (Step III).
    hash_kmers.prune(params.kmer_threshold);
    hash_tiles.prune(params.tile_threshold);
    stats.owned_kmers = hash_kmers.len() as u64;
    stats.owned_tiles = hash_tiles.len() as u64;

    // --- keep_read_tables: resolve global counts for own-reads keys ---
    let (final_reads_kmers, final_reads_tiles) = if heur.keep_read_tables {
        let (rk, rt) = resolve_read_tables(
            comm,
            &owners,
            params,
            kmer_keys,
            tile_keys,
            &hash_kmers,
            &hash_tiles,
        );
        stats.reads_table_entries = (rk.len() + rt.len()) as u64;
        (Some(rk), Some(rt))
    } else {
        (None, None)
    };

    // --- replication heuristics: allgather the pruned spectra ---
    let replicated_kmers = if heur.replicate_kmers {
        let entries: Vec<(u64, u32)> = hash_kmers.iter().collect();
        let all = comm.allgatherv(entries);
        let mut full = KmerSpectrum::new(kcodec, params.canonical);
        for part in all {
            for (code, count) in part {
                full.add_count(code, count);
            }
        }
        stats.replicated_entries += full.len() as u64;
        Some(full)
    } else {
        None
    };
    let replicated_tiles = if heur.replicate_tiles {
        let entries: Vec<(u128, u32)> = hash_tiles.iter().collect();
        let all = comm.allgatherv(entries);
        let mut full = TileSpectrum::new(tcodec, params.canonical);
        for part in all {
            for (code, count) in part {
                full.add_count(code, count);
            }
        }
        stats.replicated_entries += full.len() as u64;
        Some(full)
    } else {
        None
    };

    // --- partial replication (§V): gather the group's owned spectra ---
    let (group_kmers, group_tiles) = if heur.partial_group > 1 {
        let g = heur.partial_group;
        let my_group = comm.rank() / g;
        let k_entries: Vec<(u64, u32)> = hash_kmers.iter().collect();
        let mut gk = KmerSpectrum::new(kcodec, params.canonical);
        for part in comm.allgatherv(k_entries) {
            for (code, count) in part {
                if owners.kmer_owner_raw(code) / g == my_group {
                    gk.add_count(code, count);
                }
            }
        }
        let t_entries: Vec<(u128, u32)> = hash_tiles.iter().collect();
        let mut gt = TileSpectrum::new(tcodec, params.canonical);
        for part in comm.allgatherv(t_entries) {
            for (code, count) in part {
                if owners.tile_owner_raw(code) / g == my_group {
                    gt.add_count(code, count);
                }
            }
        }
        stats.group_entries = (gk.len() + gt.len()) as u64;
        (Some(gk), Some(gt))
    } else {
        (None, None)
    };

    let tables = RankTables {
        owners,
        hash_kmers,
        hash_tiles,
        reads_kmers: final_reads_kmers,
        reads_tiles: final_reads_tiles,
        replicated_kmers,
        replicated_tiles,
        group_kmers,
        group_tiles,
    };
    stats.table_bytes = tables.memory_bytes();
    (tables, stats)
}

/// The Step III exchange: ship `reads_*` entries to their owners and merge
/// into the owners' hash tables.
fn exchange_counts(
    comm: &Comm,
    owners: &OwnerMap,
    reads_kmers: KmerSpectrum,
    reads_tiles: TileSpectrum,
    hash_kmers: &mut KmerSpectrum,
    hash_tiles: &mut TileSpectrum,
) {
    let np = comm.size();
    // Counting pass first, so every per-owner bucket is allocated once at
    // its exact final size instead of growing by push-reallocation.
    let mut kmer_sizes = vec![0usize; np];
    for (code, _) in reads_kmers.iter() {
        kmer_sizes[owners.kmer_owner_raw(code)] += 1;
    }
    let mut kmer_out: Vec<Vec<(u64, u32)>> =
        kmer_sizes.into_iter().map(Vec::with_capacity).collect();
    for (code, count) in reads_kmers.into_entries() {
        kmer_out[owners.kmer_owner_raw(code)].push((code, count));
    }
    for part in comm.alltoallv(kmer_out) {
        for (code, count) in part {
            debug_assert_eq!(owners.kmer_owner_raw(code), comm.rank());
            hash_kmers.add_count(code, count);
        }
    }
    let mut tile_sizes = vec![0usize; np];
    for (code, _) in reads_tiles.iter() {
        tile_sizes[owners.tile_owner_raw(code)] += 1;
    }
    let mut tile_out: Vec<Vec<(u128, u32)>> =
        tile_sizes.into_iter().map(Vec::with_capacity).collect();
    for (code, count) in reads_tiles.into_entries() {
        tile_out[owners.tile_owner_raw(code)].push((code, count));
    }
    for part in comm.alltoallv(tile_out) {
        for (code, count) in part {
            debug_assert_eq!(owners.tile_owner_raw(code), comm.rank());
            hash_tiles.add_count(code, count);
        }
    }
}

/// The extra alltoallv round of the *read k-mers/tiles* heuristic: ask
/// each owner for the global (post-prune) counts of the keys this rank
/// saw in its own reads, and build local tables from the answers. A count
/// of 0 is stored too — "known absent" avoids a pointless future message.
fn resolve_read_tables(
    comm: &Comm,
    owners: &OwnerMap,
    params: &ReptileParams,
    kmer_keys: Vec<u64>,
    tile_keys: Vec<u128>,
    hash_kmers: &KmerSpectrum,
    hash_tiles: &TileSpectrum,
) -> (KmerSpectrum, TileSpectrum) {
    let np = comm.size();
    // k-mers: request codes, answer (code, count) pairs. The keys came
    // out of the reads tables, so they are normalized by construction —
    // raw owner/count lookups skip re-canonicalizing every one, and a
    // counting pass sizes each per-owner bucket exactly once.
    let mut ask_sizes = vec![0usize; np];
    for &code in &kmer_keys {
        ask_sizes[owners.kmer_owner_raw(code)] += 1;
    }
    let mut ask: Vec<Vec<u64>> = ask_sizes.into_iter().map(Vec::with_capacity).collect();
    for code in kmer_keys {
        ask[owners.kmer_owner_raw(code)].push(code);
    }
    let questions = comm.alltoallv(ask);
    let answers: Vec<Vec<(u64, u32)>> = questions
        .into_iter()
        .map(|codes| codes.into_iter().map(|c| (c, hash_kmers.count_raw(c))).collect())
        .collect();
    let mut rk = KmerSpectrum::new(params.kmer_codec(), params.canonical);
    for part in comm.alltoallv(answers) {
        for (code, count) in part {
            rk.add_count(code, count);
        }
    }
    // tiles
    let mut ask_sizes_t = vec![0usize; np];
    for &code in &tile_keys {
        ask_sizes_t[owners.tile_owner_raw(code)] += 1;
    }
    let mut ask_t: Vec<Vec<u128>> = ask_sizes_t.into_iter().map(Vec::with_capacity).collect();
    for code in tile_keys {
        ask_t[owners.tile_owner_raw(code)].push(code);
    }
    let questions_t = comm.alltoallv(ask_t);
    let answers_t: Vec<Vec<(u128, u32)>> = questions_t
        .into_iter()
        .map(|codes| codes.into_iter().map(|c| (c, hash_tiles.count_raw(c))).collect())
        .collect();
    let mut rt = TileSpectrum::new(params.tile_codec(), params.canonical);
    for part in comm.alltoallv(answers_t) {
        for (code, count) in part {
            rt.add_count(code, count);
        }
    }
    (rk, rt)
}

impl RankTables {
    /// Total spectrum entries resident on this rank (memory model input).
    /// Group tables subsume the rank's own entries, so when present they
    /// replace `hash_kmers` in the tally rather than double-counting.
    pub fn resident_kmer_entries(&self) -> u64 {
        let own = match &self.group_kmers {
            Some(g) => g.len() as u64,
            None => self.hash_kmers.len() as u64,
        };
        own + self.reads_kmers.as_ref().map_or(0, |s| s.len() as u64)
            + self.replicated_kmers.as_ref().map_or(0, |s| s.len() as u64)
    }

    /// Total tile entries resident on this rank.
    pub fn resident_tile_entries(&self) -> u64 {
        let own = match &self.group_tiles {
            Some(g) => g.len() as u64,
            None => self.hash_tiles.len() as u64,
        };
        own + self.reads_tiles.as_ref().map_or(0, |s| s.len() as u64)
            + self.replicated_tiles.as_ref().map_or(0, |s| s.len() as u64)
    }

    /// Measured bytes of **every** spectrum table resident on this rank
    /// (owned, reads, replicated, and group — unlike the entry tallies
    /// above, group tables do not replace the owned ones here, because
    /// both really are in memory). Exact: flat-table slot arrays plus
    /// headers.
    pub fn memory_bytes(&self) -> u64 {
        let k = self.hash_kmers.memory_bytes()
            + self.reads_kmers.as_ref().map_or(0, |s| s.memory_bytes())
            + self.replicated_kmers.as_ref().map_or(0, |s| s.memory_bytes())
            + self.group_kmers.as_ref().map_or(0, |s| s.memory_bytes());
        let t = self.hash_tiles.memory_bytes()
            + self.reads_tiles.as_ref().map_or(0, |s| s.memory_bytes())
            + self.replicated_tiles.as_ref().map_or(0, |s| s.memory_bytes())
            + self.group_tiles.as_ref().map_or(0, |s| s.memory_bytes());
        (k + t) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::Universe;
    use reptile::spectrum::LocalSpectra;

    fn params() -> ReptileParams {
        ReptileParams { k: 5, tile_overlap: 2, ..ReptileParams::for_tests() }
    }

    fn make_reads(n: usize, len: usize) -> Vec<Read> {
        // deterministic reads: groups of 3 copies of a distinct template,
        // so counts pass the threshold (2) while different chunks still
        // contribute different k-mers
        let mut reads = Vec::new();
        for i in 0..n {
            let template = i / 3;
            let seed = dnaseq::mix64(template as u64 + 1);
            let seq: Vec<u8> = (0..len)
                .map(|j| [b'A', b'C', b'G', b'T'][(dnaseq::mix64(seed ^ (j as u64)) % 4) as usize])
                .collect();
            reads.push(Read::new(i as u64 + 1, seq, vec![30; len]));
        }
        reads
    }

    fn partition(reads: &[Read], np: usize, rank: usize) -> Vec<Read> {
        reads.iter().enumerate().filter(|(i, _)| i % np == rank).map(|(_, r)| r.clone()).collect()
    }

    /// Distributed tables must equal the sequential spectra: every code at
    /// exactly its owner, global counts, same pruning.
    fn check_equivalence(np: usize, heur: HeuristicConfig, chunk: usize) {
        let p = params();
        let reads = make_reads(40, 18);
        let seq = LocalSpectra::build(&reads, &p);
        let reads_ref = &reads;
        let results = Universe::new(np).run(move |comm| {
            let mine = partition(reads_ref, np, comm.rank());
            build_distributed(comm, &mine, chunk, &params(), &heur)
        });
        // union of owned tables == sequential spectrum
        let mut union_k = dnaseq::FxHashMap::default();
        let mut union_t = dnaseq::FxHashMap::default();
        for (tables, _) in &results {
            for (code, count) in tables.hash_kmers.iter() {
                assert_eq!(tables.owners.kmer_owner(code), tables_rank(&results, tables));
                assert!(union_k.insert(code, count).is_none(), "kmer at two owners");
            }
            for (code, count) in tables.hash_tiles.iter() {
                assert!(union_t.insert(code, count).is_none(), "tile at two owners");
            }
        }
        let seq_k: dnaseq::FxHashMap<_, _> = seq.kmers.iter().collect();
        let seq_t: dnaseq::FxHashMap<_, _> = seq.tiles.iter().collect();
        assert_eq!(union_k, seq_k, "np={np} heur={}", heur.label());
        assert_eq!(union_t, seq_t, "np={np} heur={}", heur.label());
    }

    fn tables_rank(results: &[(RankTables, BuildStats)], needle: &RankTables) -> usize {
        results.iter().position(|(t, _)| std::ptr::eq(t, needle)).expect("tables belong to results")
    }

    #[test]
    fn matches_sequential_base_mode() {
        for np in [1, 2, 4, 7] {
            check_equivalence(np, HeuristicConfig::base(), 1000);
        }
    }

    #[test]
    fn matches_sequential_batch_mode() {
        check_equivalence(4, HeuristicConfig { batch_reads: true, ..Default::default() }, 3);
    }

    #[test]
    fn batch_mode_bounds_reads_tables() {
        let p = params();
        let reads = make_reads(60, 18);
        let reads_ref = &reads;
        let np = 4;
        let batched = Universe::new(np).run(move |comm| {
            let mine = partition(reads_ref, np, comm.rank());
            let heur = HeuristicConfig { batch_reads: true, ..Default::default() };
            build_distributed(comm, &mine, 2, &p, &heur).1
        });
        let unbatched = Universe::new(np).run(move |comm| {
            let mine = partition(reads_ref, np, comm.rank());
            build_distributed(comm, &mine, 2, &p, &HeuristicConfig::base()).1
        });
        for (b, u) in batched.iter().zip(&unbatched) {
            assert!(
                b.peak_reads_kmers <= u.peak_reads_kmers,
                "batching must not grow the reads table ({} vs {})",
                b.peak_reads_kmers,
                u.peak_reads_kmers
            );
            assert!(b.batches >= u.batches);
        }
        // and strictly smaller for at least one rank (many batches)
        assert!(
            batched.iter().zip(&unbatched).any(|(b, u)| b.peak_reads_kmers < u.peak_reads_kmers),
            "batch mode should shrink peak reads tables somewhere"
        );
    }

    #[test]
    fn keep_read_tables_resolves_global_counts() {
        let p = params();
        let reads = make_reads(40, 18);
        let seq = LocalSpectra::build(&reads, &p);
        let reads_ref = &reads;
        let np = 4;
        let heur = HeuristicConfig { keep_read_tables: true, ..Default::default() };
        let results = Universe::new(np).run(move |comm| {
            let mine = partition(reads_ref, np, comm.rank());
            build_distributed(comm, &mine, 1000, &p, &heur)
        });
        for (tables, stats) in &results {
            let rk = tables.reads_kmers.as_ref().expect("reads table kept");
            assert!(stats.reads_table_entries > 0 || rk.is_empty());
            for (code, count) in rk.iter() {
                assert_eq!(count, seq.kmers.count(code), "global count mismatch for {code}");
            }
            let rt = tables.reads_tiles.as_ref().expect("tile reads table kept");
            for (code, count) in rt.iter() {
                assert_eq!(count, seq.tiles.count(code));
            }
        }
    }

    #[test]
    fn replication_builds_full_spectra() {
        let p = params();
        let reads = make_reads(40, 18);
        let seq = LocalSpectra::build(&reads, &p);
        let reads_ref = &reads;
        let np = 3;
        let heur = HeuristicConfig::replicate_both();
        let results = Universe::new(np).run(move |comm| {
            let mine = partition(reads_ref, np, comm.rank());
            build_distributed(comm, &mine, 1000, &p, &heur)
        });
        for (tables, _) in &results {
            let rep_k = tables.replicated_kmers.as_ref().unwrap();
            let rep_t = tables.replicated_tiles.as_ref().unwrap();
            assert_eq!(rep_k.len(), seq.kmers.len());
            assert_eq!(rep_t.len(), seq.tiles.len());
            for (code, count) in seq.kmers.iter() {
                assert_eq!(rep_k.count(code), count);
            }
        }
    }

    #[test]
    fn owned_counts_roughly_uniform() {
        // The Fig 3 property: per-rank k-mer counts spread within a few
        // percent (here looser: random small dataset).
        let p = params();
        let reads = make_reads(200, 30);
        let reads_ref = &reads;
        let np = 8;
        let results = Universe::new(np).run(move |comm| {
            let mine = partition(reads_ref, np, comm.rank());
            build_distributed(comm, &mine, 1000, &p, &HeuristicConfig::base()).1
        });
        let counts: Vec<u64> = results.iter().map(|s| s.owned_kmers).collect();
        let total: u64 = counts.iter().sum();
        assert!(total > 0);
        // no rank should be empty while others are loaded (hash spread)
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 4 * min.max(1) + 8, "wildly uneven: {counts:?}");
    }
}
